//! # prem-gpu — Taming Data Caches for Predictable Execution on GPU-based SoCs
//!
//! A full-system reproduction of Forsberg, Benini, Marongiu (DATE 2019) as a
//! Rust workspace: a TX1-class SoC simulator (caches with biased-random
//! replacement, scratchpad, shared DRAM with interference), the PREM runtime
//! with prefetch repetition, PolyBench-ACC kernel models, cache-dissection
//! microbenchmarks, and an experiment harness regenerating every figure of
//! the paper.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`memsim`] — memory hierarchy simulation
//! * [`gpusim`] — GPU/CPU execution-timing model and platform presets
//!   (TX1, TX2-like, Xavier-like, synthetic geometries)
//! * [`core`] — the PREM executor, prefetch strategies, budgets, metrics
//! * [`kernels`] — PolyBench-ACC kernels with PREM tilings
//! * [`dissect`] — Mei-style cache dissection
//! * [`report`] — figure generators: plan builders + renderers
//! * [`harness`] — the parallel scenario-matrix engine and the
//!   content-addressed run-plan layer (canonical `RunRequest`s deduped,
//!   executed and cached at run granularity on a deterministic thread
//!   pool)
//! * [`serve`] — the budgeted sweep service: an owned, wire-ready
//!   request form (`OwnedRunRequest`) and the long-running `serve` front
//!   end draining request streams through one shared plan executor
//! * [`obs`] — zero-overhead observability: counters, gauges, latency
//!   histograms, RAII span timers, and stable text/JSON snapshot
//!   exporters threaded through the executor, store, pool, and serve
//! * [`table`] — dependency-free tables, CSV export, seed statistics
//! * [`trace`] — cache-event capture, binary trace format, introspection
//!   passes and the trace-driven replay engine for fast policy sweeps
//!
//! ```
//! use prem_gpu::core::{run_prem, PremConfig};
//! use prem_gpu::gpusim::{PlatformConfig, Scenario};
//! use prem_gpu::kernels::{Bicg, Kernel};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let kernel = Bicg::new(256, 256);
//! let intervals = kernel.intervals(96 * 1024)?;
//! let mut platform = PlatformConfig::tx1().build();
//! let run = run_prem(&mut platform, &intervals, &PremConfig::llc_tamed(),
//!                    Scenario::Isolation)?;
//! assert!(run.cpmr < 0.05);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

pub use prem_core as core;
pub use prem_dissect as dissect;
pub use prem_gpusim as gpusim;
pub use prem_harness as harness;
pub use prem_kernels as kernels;
pub use prem_memsim as memsim;
pub use prem_obs as obs;
pub use prem_report as report;
pub use prem_serve as serve;
pub use prem_table as table;
pub use prem_trace as trace;
