//! Quickstart: run one kernel under PREM on the simulated TX1 and compare
//! the tamed cache (R = 8) against the naive cache (R = 1), the SPM state
//! of the art, and the unprotected baseline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use prem_gpu::core::{run_baseline, run_prem, LocalStore, NoiseModel, PremConfig};
use prem_gpu::gpusim::{PlatformConfig, Scenario};
use prem_gpu::kernels::{Bicg, Kernel};
use prem_gpu::memsim::KIB;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The case-study kernel at a laptop-friendly size.
    let kernel = Bicg::new(512, 512);
    let t = 160 * KIB; // the paper's best interval size
    let intervals = kernel.intervals(t)?;
    println!(
        "bicg {} -> {} PREM intervals of <= {} KiB",
        kernel.dims(),
        intervals.len(),
        t / KIB
    );

    let mut platform = PlatformConfig::tx1().build();
    let noise = NoiseModel::tx1();

    let mut report = Vec::new();
    for (name, store) in [
        ("llc tamed (R=8)", LocalStore::llc_tamed()),
        ("llc naive (R=1)", LocalStore::llc_naive()),
    ] {
        let cfg = PremConfig::llc_tamed().with_store(store).with_noise(noise);
        let iso = run_prem(&mut platform, &intervals, &cfg, Scenario::Isolation)?;
        let intf = run_prem(&mut platform, &intervals, &cfg, Scenario::Interference)?;
        report.push((name, iso.makespan_cycles, intf.makespan_cycles, iso.cpmr));
    }

    // SPM state of the art needs intervals that fit 2 x 48 KiB.
    let spm_intervals = kernel.intervals(96 * KIB)?;
    let spm_cfg = PremConfig::spm().with_noise(noise);
    let iso = run_prem(&mut platform, &spm_intervals, &spm_cfg, Scenario::Isolation)?;
    let intf = run_prem(
        &mut platform,
        &spm_intervals,
        &spm_cfg,
        Scenario::Interference,
    )?;
    // CPMR is a cache metric; not meaningful on the scratchpad path.
    report.push((
        "spm (96K)",
        iso.makespan_cycles,
        intf.makespan_cycles,
        f64::NAN,
    ));

    let base_iso = run_baseline(&mut platform, &intervals, 1, Scenario::Isolation, noise)?;
    let base_intf = run_baseline(&mut platform, &intervals, 1, Scenario::Interference, noise)?;
    report.push(("baseline", base_iso.cycles, base_intf.cycles, f64::NAN));

    println!(
        "\n{:<18} {:>12} {:>14} {:>10} {:>8}",
        "config", "iso (us)", "interf (us)", "slowdown", "CPMR"
    );
    for (name, iso, intf, cpmr) in &report {
        println!(
            "{:<18} {:>12.1} {:>14.1} {:>9.1}% {:>7.1}%",
            name,
            iso / 1000.0,
            intf / 1000.0,
            (intf / iso - 1.0) * 100.0,
            cpmr * 100.0
        );
    }
    println!(
        "\nThe tamed cache keeps the compute-phase miss ratio (CPMR) near zero,\n\
         so interference barely moves its execution time — at a fraction of\n\
         the SPM's synchronization overhead."
    );
    Ok(())
}
