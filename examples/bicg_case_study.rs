//! The paper's case study (§III-A and §IV-A): how interval size `T` and the
//! prefetch repetition factor `R` shape the CPMR and the execution-time
//! breakdown of `bicg` — a compact reproduction of Figs 3, 4 and 5.
//!
//! ```text
//! cargo run --release --example bicg_case_study
//! ```

use prem_gpu::kernels::Bicg;
use prem_gpu::report::fig3::fig35;
use prem_gpu::report::fig4::fig4_with_sweeps;
use prem_gpu::report::Harness;

fn main() {
    let kernel = Bicg::new(512, 512);
    let harness = Harness::quick();

    // Fig 4 (reduced grid): CPMR vs (R, T).
    let grid = fig4_with_sweeps(
        &kernel,
        &harness,
        &[1, 2, 4, 8],
        &[64, 128, 160, 192, 224, 256],
    );
    println!("{}", grid.table());
    let knee_before = grid.at(8, 192).expect("grid value");
    let knee_after = grid.at(8, 256).expect("grid value");
    println!(
        "good-way capacity knee: CPMR {:.2}% at 192K vs {:.2}% at 256K\n",
        knee_before * 100.0,
        knee_after * 100.0
    );

    // Fig 3 (naive) vs Fig 5 (tamed) at a few sizes.
    for r in [1, 8] {
        let fig = fig35(&kernel, &harness, r, &[64, 96], &[96, 160, 192]);
        println!("{}", fig.table());
        println!("{}", fig.chart());
    }
}
