//! Suite-level evaluation (paper §V): per-kernel fair co-scheduling results
//! and the average sensitivity to interference — compact Figs 6 and 7 on
//! reduced problem sizes.
//!
//! ```text
//! cargo run --release --example polybench_sweep
//! ```

use prem_gpu::kernels::suite_small;
use prem_gpu::report::fig6::fig6;
use prem_gpu::report::fig7::fig7_with_sweep;
use prem_gpu::report::Harness;

fn main() {
    let suite = suite_small();
    let harness = Harness::quick();

    let f6 = fig6(&suite, &harness, 160, 8);
    println!("{}", f6.table());
    println!(
        "LLC vs SPM (geomean, interference): {:.2}x  |  LLC vs baseline-interf: {:.2}x (best {:.2}x)\n",
        f6.avg_spm_over_llc(),
        f6.avg_base_over_llc_intf(),
        f6.best_base_over_llc_intf()
    );

    let f7 = fig7_with_sweep(&suite, &harness, 8, &[64, 96, 128, 160, 192]);
    println!("{}", f7.table());
    println!(
        "PREM keeps sensitivity in the single digits; the baseline suffers {:.0}%.",
        f7.baseline_sensitivity * 100.0
    );
}
