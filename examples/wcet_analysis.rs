//! Real-time system analysis on top of PREM: derive the GPU kernel's WCET
//! envelope from a profiled run, inspect the interval timeline (paper
//! Fig 1), and check whether a CPU task set fits the DRAM-token windows the
//! co-schedule exposes.
//!
//! ```text
//! cargo run --release --example wcet_analysis
//! ```

use prem_gpu::core::schedulability::{analyze, CpuTask};
use prem_gpu::core::{run_prem, NoiseModel, PremConfig, SyncConfig};
use prem_gpu::gpusim::{PlatformConfig, Scenario};
use prem_gpu::kernels::{Gemm, Kernel};
use prem_gpu::memsim::KIB;
use prem_gpu::report::fig1::timeline;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kernel = Gemm::new(256, 256, 256);
    let intervals = kernel.intervals(160 * KIB)?;
    let mut platform = PlatformConfig::tx1().build();
    let cfg = PremConfig::llc_tamed().with_noise(NoiseModel::tx1());

    let run = run_prem(&mut platform, &intervals, &cfg, Scenario::Isolation)?;
    println!(
        "gemm {}: {} intervals, measured {:.1} us, WCET envelope {:.1} us",
        kernel.dims(),
        run.intervals,
        platform.cycles_to_us(run.makespan_cycles),
        platform.cycles_to_us(run.budget_envelope_cycles),
    );
    println!();
    println!(
        "{}",
        timeline(&run, &SyncConfig::tx1(), platform.clock_ghz, 3, 0.4)
    );

    // An automotive-flavoured CPU task set sharing the SoC.
    let tasks = vec![
        CpuTask::new("lidar-preproc", 900.0, 300.0, 10_000.0),
        CpuTask::new("sensor-fusion", 1_500.0, 400.0, 20_000.0),
        CpuTask::new("control-loop", 150.0, 40.0, 1_000.0),
    ];
    let analysis = analyze(&run, &SyncConfig::tx1(), platform.clock_ghz, &tasks, 4);
    println!("CPU task set on 4 cores:");
    for t in &tasks {
        println!(
            "  {:<14} util {:>5.1}%  token {:>5.1}%",
            t.name,
            t.utilization() * 100.0,
            t.token_utilization() * 100.0
        );
    }
    println!(
        "\ntoken supply {:.1}% vs demand {:.1}%, CPU util {:.1}% -> {}",
        analysis.token_supply * 100.0,
        analysis.token_demand * 100.0,
        analysis.cpu_utilization * 100.0,
        if analysis.feasible {
            "FEASIBLE"
        } else {
            "NOT FEASIBLE"
        }
    );

    // Under interference the schedule may violate its envelope — that's the
    // quantity certification cares about.
    let intf = run_prem(&mut platform, &intervals, &cfg, Scenario::Interference)?;
    println!(
        "\nunder interference: {:.1} us ({:+.1}%), budget violations {:.1} us",
        platform.cycles_to_us(intf.makespan_cycles),
        (intf.makespan_cycles / run.makespan_cycles - 1.0) * 100.0,
        platform.cycles_to_us(intf.budget_violation_cycles),
    );
    Ok(())
}
