//! Dissecting the simulated TX1 LLC with Mei-style microbenchmarks —
//! recovering the cache geometry and the biased victim distribution the
//! paper's taming technique is built on.
//!
//! ```text
//! cargo run --release --example cache_dissection
//! ```

use prem_gpu::dissect::{dissect, DissectReport};
use prem_gpu::memsim::{CacheConfig, Policy, KIB};

fn main() {
    // The real target: the TX1 LLC with the NVIDIA-like biased policy.
    let tx1 = CacheConfig::new(256 * KIB, 4, 128).policy(Policy::nvidia_tegra());
    let rep = dissect(&tx1, 50_000, 42);
    print_report("TX1 LLC (biased random)", &rep);

    // A hypothetical uniform-random cache for contrast.
    let uniform = CacheConfig::new(256 * KIB, 4, 128).policy(Policy::Random);
    let rep = dissect(&uniform, 50_000, 42);
    print_report("uniform random", &rep);
}

fn print_report(name: &str, rep: &DissectReport) {
    println!("== {name} ==");
    println!("line size : {} B", rep.line_bytes);
    println!("capacity  : {} KiB", rep.capacity_bytes / 1024);
    println!("ways      : {}", rep.ways);
    println!("policy    : {:?}", rep.policy_class);
    for (w, p) in rep.victim_distribution.iter().enumerate() {
        let marker = if !rep.good_ways.contains(&w) {
            "  <- bad way"
        } else {
            ""
        };
        println!("victim p(way {w}) = {:.3}{marker}", p);
    }
    println!(
        "usable (good-way) capacity: {} KiB of {} KiB\n",
        rep.capacity_bytes * rep.good_ways.len() / rep.victim_distribution.len() / 1024,
        rep.capacity_bytes / 1024
    );
}
