//! Integration tests asserting the paper's headline claims end-to-end,
//! on reduced problem sizes (full-size artifacts come from the `figures`
//! binary; see EXPERIMENTS.md).

use prem_gpu::core::analytic;
use prem_gpu::gpusim::Scenario;
use prem_gpu::kernels::{suite_small, Bicg};
use prem_gpu::memsim::KIB;
use prem_gpu::report::fig4::fig4_with_sweeps;
use prem_gpu::report::fig6::fig6;
use prem_gpu::report::fig7::fig7_with_sweep;
use prem_gpu::report::{run_base, run_llc, run_spm, Harness};

fn bicg() -> Bicg {
    Bicg::new(512, 512)
}

/// §IV: prefetch repetition monotonically (statistically) drives the CPMR
/// towards near-zero for intervals that fit the good ways.
#[test]
fn cpmr_decreases_with_repetition() {
    let kernel = bicg();
    let grid = fig4_with_sweeps(&kernel, &Harness::quick(), &[1, 2, 4, 8], &[96, 160]);
    for t in [96usize, 160] {
        let series: Vec<f64> = [1u32, 2, 4, 8]
            .iter()
            .map(|&r| grid.at(r, t).unwrap())
            .collect();
        for w in series.windows(2) {
            assert!(
                w[1] <= w[0] + 0.02,
                "CPMR not decreasing at T={t}K: {series:?}"
            );
        }
        let tamed = grid.at(8, t).unwrap();
        assert!(tamed < 0.10, "CPMR at R=8, T={t}K is {tamed}");
    }
}

/// §IV: the good-way capacity knee — CPMR grows sharply past 192 KiB.
/// Needs a data set spanning enough intervals for steady-state churn, so a
/// paper-scale matrix is used.
#[test]
fn cpmr_knee_at_good_way_capacity() {
    let kernel = Bicg::new(1024, 1024);
    let grid = fig4_with_sweeps(&kernel, &Harness::quick(), &[8], &[128, 192, 256]);
    let well_within = grid.at(8, 128).unwrap();
    let at_edge = grid.at(8, 192).unwrap();
    let beyond = grid.at(8, 256).unwrap();
    // Rising through the good-way capacity edge, sharply beyond it.
    assert!(at_edge >= well_within - 0.01, "{well_within} -> {at_edge}");
    assert!(
        beyond > 1.3 * well_within,
        "no knee: {well_within} at 128K vs {beyond} at 256K"
    );
}

/// The analytic coin-toss model matches the paper's R = 8 choice.
#[test]
fn coin_toss_model_picks_r8() {
    assert_eq!(analytic::repetitions_for_residency(0.005), 8);
    assert!(analytic::bad_way_residency(8) < 0.005);
}

/// §III/V: the SPM is indifferent to interference; the baseline is not.
#[test]
fn spm_indifferent_baseline_exposed() {
    let kernel = bicg();
    let spm_iso = run_spm(&kernel, 96 * KIB, 11, Scenario::Isolation);
    let spm_intf = run_spm(&kernel, 96 * KIB, 11, Scenario::Interference);
    let rel = spm_intf.makespan_cycles / spm_iso.makespan_cycles;
    assert!(rel < 1.01, "SPM sensitivity {rel}");

    let base_iso = run_base(&kernel, 11, Scenario::Isolation);
    let base_intf = run_base(&kernel, 11, Scenario::Interference);
    let rel = base_intf.cycles / base_iso.cycles;
    assert!(rel > 2.0, "baseline sensitivity only {rel}");
}

/// §V-A: the tamed LLC outperforms the SPM state of the art (suite-wide).
#[test]
fn llc_beats_spm() {
    let suite = suite_small();
    let f6 = fig6(&suite, &Harness::quick(), 160, 8);
    assert!(
        f6.avg_spm_over_llc() > 1.3,
        "SPM/LLC only {:.2}",
        f6.avg_spm_over_llc()
    );
}

/// §V-A: under interference the tamed LLC beats the unprotected baseline.
/// The claim holds at paper scale (small kernels pay the MSG floor
/// disproportionately), so a full-size bicg is used.
#[test]
fn llc_beats_contended_baseline_at_scale() {
    let kernel = Bicg::new(1024, 1024);
    let llc = run_llc(&kernel, 160 * KIB, 8, 11, Scenario::Interference);
    let base = run_base(&kernel, 11, Scenario::Interference);
    assert!(
        base.cycles > llc.makespan_cycles,
        "baseline {:.3e} vs llc {:.3e}",
        base.cycles,
        llc.makespan_cycles
    );
}

/// §V-B: sensitivity grows with T but stays far below the baseline's.
#[test]
fn sensitivity_ordering() {
    let suite = suite_small();
    let f7 = fig7_with_sweep(&suite, &Harness::quick(), 8, &[96, 160, 192]);
    let s96 = f7.at(96).unwrap();
    let s192 = f7.at(192).unwrap();
    assert!(s96 <= s192 + 0.01, "{s96} vs {s192}");
    assert!(f7.baseline_sensitivity > 1.0);
    assert!(s192 < f7.baseline_sensitivity / 4.0);
}

/// The naive LLC (R = 1) degrades under interference where the tamed LLC
/// (R = 8) holds — the core taming claim of Figs 3 vs 5.
#[test]
fn taming_restores_predictability() {
    let kernel = bicg();
    let t = 160 * KIB;
    let sens = |r: u32| {
        let iso = run_llc(&kernel, t, r, 11, Scenario::Isolation).makespan_cycles;
        let intf = run_llc(&kernel, t, r, 11, Scenario::Interference).makespan_cycles;
        intf / iso - 1.0
    };
    let naive = sens(1);
    let tamed = sens(8);
    assert!(
        tamed < naive,
        "taming did not reduce sensitivity: R=1 {naive}, R=8 {tamed}"
    );
}

/// Coarser intervals amortize synchronization: idle+sync share shrinks as
/// T grows (the case *for* caches, §III).
#[test]
fn overhead_shrinks_with_interval_size() {
    let kernel = bicg();
    let share = |t_kib: usize| {
        let run = run_llc(&kernel, t_kib * KIB, 8, 11, Scenario::Isolation);
        (run.breakdown.idle + run.breakdown.sync) / run.makespan_cycles
    };
    let small = share(32);
    let large = share(160);
    assert!(large < small, "overhead share {small} -> {large}");
}

/// Every kernel of the suite admits both SPM- and LLC-sized tilings, and
/// passes its functional verification at both.
#[test]
fn suite_tiles_and_verifies_at_evaluation_sizes() {
    for k in suite_small() {
        for t in [96 * KIB, 160 * KIB] {
            k.verify(t)
                .unwrap_or_else(|e| panic!("{} at {}K: {e}", k.name(), t / KIB));
        }
    }
}
