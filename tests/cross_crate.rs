//! Cross-crate integration: the dissection validates the platform the PREM
//! executor runs on, and the facade crate exposes a coherent API.

use prem_gpu::core::{check_tiling, run_baseline, run_prem, LocalStore, NoiseModel, PremConfig};
use prem_gpu::dissect::{dissect, good_ways_from_distribution};
use prem_gpu::gpusim::{PlatformConfig, Scenario};
use prem_gpu::kernels::{Atax, Bicg, Kernel, LINE_BYTES};
use prem_gpu::memsim::KIB;

/// The facade exposes the whole taming story end-to-end: on a small BiCG
/// tiling, the tamed LLC (R = 8) achieves a lower compute-phase miss ratio
/// than the untamed LLC (R = 1), and the unprotected baseline still runs
/// (and pays real cycles) through the same re-exported API.
#[test]
fn facade_tamed_beats_untamed_on_bicg() {
    let kernel = Bicg::new(256, 256);
    let t = 96 * KIB;
    let intervals = kernel.intervals(t).expect("tiling");
    let mut platform = PlatformConfig::tx1().build();

    let tamed = run_prem(
        &mut platform,
        &intervals,
        &PremConfig::llc_tamed(),
        Scenario::Isolation,
    )
    .expect("tamed run");
    let untamed = run_prem(
        &mut platform,
        &intervals,
        &PremConfig::llc_tamed().with_store(LocalStore::llc_naive()),
        Scenario::Isolation,
    )
    .expect("untamed run");
    assert!(
        tamed.cpmr < untamed.cpmr,
        "taming did not reduce CPMR: tamed {} vs untamed {}",
        tamed.cpmr,
        untamed.cpmr
    );

    let baseline = run_baseline(
        &mut platform,
        &intervals,
        11,
        Scenario::Isolation,
        NoiseModel::tx1(),
    )
    .expect("baseline run");
    assert!(baseline.cycles > 0.0);
    assert!(baseline.llc.total_accesses() > 0);
}

/// The dissection of the platform's own LLC recovers exactly the structure
/// the paper's interval-sizing rule assumes: 3 good ways of 4, hence
/// 192 KiB of usable capacity.
#[test]
fn dissection_matches_platform_llc() {
    let cfg = PlatformConfig::tx1();
    let report = dissect(&cfg.llc, 20_000, 3);
    assert_eq!(report.line_bytes, cfg.llc.line_bytes());
    assert_eq!(report.capacity_bytes, cfg.llc.size_bytes());
    assert_eq!(report.good_ways.len(), 3);
    assert_eq!(
        cfg.llc.good_capacity_bytes(),
        report.capacity_bytes * report.good_ways.len() / 4
    );
    // The measured bad way carries ~1/2 of the victim probability.
    let bad = report
        .victim_distribution
        .iter()
        .cloned()
        .fold(0.0, f64::max);
    assert!((bad - 0.5).abs() < 0.03, "bad-way probability {bad}");
    assert_eq!(
        good_ways_from_distribution(&report.victim_distribution).len(),
        3
    );
}

/// A kernel tiled by `prem-kernels` passes `prem-core`'s legality check and
/// executes end-to-end on the `prem-gpusim` platform.
#[test]
fn kernel_to_platform_pipeline() {
    let kernel = Atax::new(256, 256);
    let t = 96 * KIB;
    let intervals = kernel.intervals(t).expect("tiling");
    check_tiling(&intervals, t, LINE_BYTES).expect("coverage");

    let mut platform = PlatformConfig::tx1().build();
    let run = run_prem(
        &mut platform,
        &intervals,
        &PremConfig::llc_tamed(),
        Scenario::Isolation,
    )
    .expect("prem run");
    assert_eq!(run.intervals, intervals.len());
    assert!(run.makespan_cycles > 0.0);
    // Accounting invariant: components sum to the makespan.
    let b = &run.breakdown;
    let sum = b.m_work + b.c_work + b.idle + b.sync;
    assert!((sum - run.makespan_cycles).abs() < 1e-6);
}

/// Determinism across the whole stack: same seed, same run; different
/// seeds, different victim choices (but same interval count).
#[test]
fn end_to_end_determinism() {
    let kernel = Atax::new(256, 256);
    let intervals = kernel.intervals(96 * KIB).expect("tiling");
    let mut platform = PlatformConfig::tx1().build();
    let cfg = PremConfig::llc_tamed().with_seed(5);
    let a = run_prem(&mut platform, &intervals, &cfg, Scenario::Isolation).unwrap();
    let b = run_prem(&mut platform, &intervals, &cfg, Scenario::Isolation).unwrap();
    assert_eq!(a, b);

    let other = run_prem(
        &mut platform,
        &intervals,
        &PremConfig::llc_tamed().with_seed(6),
        Scenario::Isolation,
    )
    .unwrap();
    assert_eq!(other.intervals, a.intervals);
    assert_ne!(
        (a.llc.evictions, a.prefetch_misses),
        (other.llc.evictions, other.prefetch_misses),
        "different seeds should shuffle victim selection"
    );
}
