//! Host-CPU side of the SoC: the co-scheduled PREM partner and the
//! best-effort interference generator ("memory bomb").
//!
//! The CPU matters to the GPU's timing in exactly two ways, both captured as
//! [`Contention`](prem_memsim::Contention) levels handed to the cost model:
//!
//! * during GPU **C-phases** the CPU legitimately owns the DRAM token and
//!   runs its own memory phase — any GPU C-phase miss contends with it;
//! * in the **interference** scenario additional best-effort cores hammer
//!   DRAM continuously, but the PREM token still protects GPU M-phases.

use prem_memsim::Contention;

/// Scenario under which a schedule executes.
#[derive(Copy, Clone, PartialEq, Debug, Default)]
pub enum Scenario {
    /// GPU alone: no CPU traffic at all (isolation measurement).
    #[default]
    Isolation,
    /// Memory-intensive CPU co-runners are active.
    Interference,
}

/// CPU-side configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct CpuConfig {
    /// Membomb traffic intensity in `[0, 1]` during unprotected windows.
    pub membomb_intensity: f64,
    /// Traffic intensity of the co-scheduled (PREM-regulated) CPU work
    /// during GPU C-phases, in `[0, 1]`. Under fair co-scheduling the CPU
    /// uses its token window fully, so the default is 1.0.
    pub coscheduled_intensity: f64,
}

impl CpuConfig {
    /// TX1 defaults: saturating membomb, fully used CPU token window.
    pub fn tx1() -> Self {
        CpuConfig {
            membomb_intensity: 1.0,
            coscheduled_intensity: 1.0,
        }
    }

    /// Contention experienced by a *protected* GPU M-phase: the token
    /// guarantees isolation regardless of scenario.
    pub fn m_phase_contention(&self, _scenario: Scenario) -> Contention {
        Contention::Isolated
    }

    /// Contention experienced by GPU C-phase misses under `scenario`.
    ///
    /// Even in isolation-style PREM runs the C-phase is where the CPU may
    /// hold the token; for the paper's "in isolation" measurements no CPU
    /// work runs, so only the interference scenario adds traffic.
    pub fn c_phase_contention(&self, scenario: Scenario) -> Contention {
        match scenario {
            Scenario::Isolation => Contention::Isolated,
            Scenario::Interference => Contention::CoRun {
                intensity: self.membomb_intensity.max(self.coscheduled_intensity),
            },
        }
    }

    /// Contention experienced by an *unprotected* baseline kernel.
    pub fn baseline_contention(&self, scenario: Scenario) -> Contention {
        match scenario {
            Scenario::Isolation => Contention::Isolated,
            Scenario::Interference => Contention::CoRun {
                intensity: self.membomb_intensity,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn m_phase_always_protected() {
        let cpu = CpuConfig::tx1();
        assert_eq!(
            cpu.m_phase_contention(Scenario::Interference),
            Contention::Isolated
        );
    }

    #[test]
    fn c_phase_contended_only_under_interference() {
        let cpu = CpuConfig::tx1();
        assert_eq!(
            cpu.c_phase_contention(Scenario::Isolation),
            Contention::Isolated
        );
        assert_eq!(
            cpu.c_phase_contention(Scenario::Interference).intensity(),
            1.0
        );
    }

    #[test]
    fn baseline_fully_exposed() {
        let cpu = CpuConfig::tx1();
        assert_eq!(
            cpu.baseline_contention(Scenario::Interference).intensity(),
            1.0
        );
    }
}
