//! Host-CPU side of the SoC: the co-scheduled PREM partner and the
//! best-effort interference generators.
//!
//! The CPU matters to the GPU's timing through the co-runner mix it runs:
//! each co-runner is an actor with a memory-access profile
//! ([`CorunnerProfile`](crate::CorunnerProfile)) whose concurrent demand
//! the [`InterferenceEngine`](crate::InterferenceEngine) turns into bus
//! contention and LLC pollution. The paper's two measurement scenarios
//! remain available as presets:
//!
//! * [`Scenario::Isolation`] — no CPU traffic at all (the empty mix);
//! * [`Scenario::Interference`] — the paper's membomb scenario: three
//!   saturating memory bombs on the CPU cluster, which is exactly the
//!   calibration point of the DRAM model
//!   ([`CALIBRATED_DEMAND`](prem_memsim::CALIBRATED_DEMAND)), so preset
//!   results are bit-identical to the pre-engine scalar model;
//! * [`Scenario::Corunners`] — the configured [`CpuConfig::corunners`]
//!   mix, the general case.

use prem_memsim::Contention;

use crate::interference::CorunnerProfile;

/// Scenario under which a schedule executes.
#[derive(Copy, Clone, PartialEq, Debug, Default)]
pub enum Scenario {
    /// GPU alone: no CPU traffic at all (isolation measurement).
    #[default]
    Isolation,
    /// The paper's interference preset: three membomb co-runners.
    Interference,
    /// The co-runner mix configured in [`CpuConfig::corunners`].
    Corunners,
}

/// The fixed co-runner mix behind [`Scenario::Interference`]: three
/// saturating membomb cores (the A57 cluster minus the core reserved for
/// the co-scheduled PREM partner).
pub const INTERFERENCE_MIX: [CorunnerProfile; 3] = [
    CorunnerProfile::Membomb,
    CorunnerProfile::Membomb,
    CorunnerProfile::Membomb,
];

/// CPU-side configuration.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct CpuConfig {
    /// The co-runner mix activated by [`Scenario::Corunners`]. Empty by
    /// default (equivalent to isolation until a mix is configured).
    pub corunners: Vec<CorunnerProfile>,
}

impl CpuConfig {
    /// TX1 defaults: no custom co-runner mix configured; the presets
    /// carry the paper's scenarios.
    pub fn tx1() -> Self {
        CpuConfig { corunners: vec![] }
    }

    /// Replaces the co-runner mix (builder form).
    #[must_use]
    pub fn with_corunners(mut self, corunners: Vec<CorunnerProfile>) -> Self {
        self.corunners = corunners;
        self
    }

    /// The co-runner profiles active under `scenario`.
    pub fn active_corunners(&self, scenario: Scenario) -> &[CorunnerProfile] {
        match scenario {
            Scenario::Isolation => &[],
            Scenario::Interference => &INTERFERENCE_MIX,
            Scenario::Corunners => &self.corunners,
        }
    }

    /// Contention experienced by a *protected* GPU M-phase.
    ///
    /// Takes no scenario: the PREM DRAM token blocks every co-runner's
    /// memory traffic while the GPU stages data, whatever the mix — the
    /// guarantee is now expressed by the signature instead of a silently
    /// ignored parameter.
    pub fn m_phase_contention(&self) -> Contention {
        Contention::Isolated
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn m_phase_always_protected() {
        let cpu = CpuConfig::tx1().with_corunners(vec![CorunnerProfile::Membomb; 6]);
        assert_eq!(cpu.m_phase_contention(), Contention::Isolated);
    }

    #[test]
    fn presets_map_to_fixed_mixes() {
        let cpu = CpuConfig::tx1().with_corunners(vec![CorunnerProfile::Stream]);
        assert!(cpu.active_corunners(Scenario::Isolation).is_empty());
        assert_eq!(
            cpu.active_corunners(Scenario::Interference),
            &INTERFERENCE_MIX
        );
        assert_eq!(
            cpu.active_corunners(Scenario::Corunners),
            &[CorunnerProfile::Stream]
        );
    }

    #[test]
    fn interference_preset_hits_the_calibration_point() {
        let demand: f64 = INTERFERENCE_MIX.iter().map(|p| p.mean_demand()).sum();
        assert_eq!(Contention::from_demand(demand), Contention::membomb());
    }
}
