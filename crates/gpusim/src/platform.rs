//! Whole-platform composition and presets.

use prem_memsim::{Cache, CacheConfig, MemSystem, Policy, Spm, SpmConfig, KIB};

use crate::cost::CostModel;
use crate::cpu::CpuConfig;

/// Static description of a platform.
#[derive(Clone, Debug, PartialEq)]
pub struct PlatformConfig {
    /// LLC geometry and policy.
    pub llc: CacheConfig,
    /// Optional L1 in front of the LLC.
    pub l1: Option<CacheConfig>,
    /// Scratchpad geometry.
    pub spm: SpmConfig,
    /// Execution cost model.
    pub cost: CostModel,
    /// CPU-side configuration.
    pub cpu: CpuConfig,
    /// GPU clock in GHz (converts cycles to wall time).
    pub clock_ghz: f64,
}

impl PlatformConfig {
    /// The NVIDIA Jetson TX1-like platform the paper evaluates on:
    /// 256 KiB 4-way LLC with biased-random replacement, 2 × 48 KiB SPM,
    /// shared LPDDR4, 1 GHz GPU clock. No L1 (GPU global loads on Maxwell
    /// bypass L1 by default).
    pub fn tx1() -> Self {
        PlatformConfig {
            llc: CacheConfig::new(256 * KIB, 4, 128)
                .policy(Policy::nvidia_tegra())
                .index_hash(true),
            l1: None,
            spm: SpmConfig::tx1(),
            cost: CostModel::tx1(),
            cpu: CpuConfig::tx1(),
            clock_ghz: 1.0,
        }
    }

    /// Replaces the LLC replacement policy (ablation studies).
    pub fn llc_policy(mut self, policy: Policy) -> Self {
        self.llc = self.llc.policy(policy);
        self
    }

    /// Replaces the LLC seed (multi-seed experiments).
    pub fn llc_seed(mut self, seed: u64) -> Self {
        self.llc = self.llc.seed(seed);
        self
    }

    /// Builds the runnable platform.
    pub fn build(&self) -> Platform {
        let mut mem = MemSystem::new(Cache::new(self.llc.clone()), Spm::new(self.spm.clone()));
        if let Some(l1) = &self.l1 {
            mem = mem.with_l1(Cache::new(l1.clone()));
        }
        Platform {
            mem,
            cost: self.cost.clone(),
            cpu: self.cpu.clone(),
            clock_ghz: self.clock_ghz,
        }
    }
}

/// A runnable platform instance: memory system + cost model + clock.
#[derive(Clone, Debug)]
pub struct Platform {
    /// The GPU-visible memory system.
    pub mem: MemSystem,
    /// The execution cost model.
    pub cost: CostModel,
    /// The CPU-side configuration.
    pub cpu: CpuConfig,
    /// GPU clock in GHz.
    pub clock_ghz: f64,
}

impl Platform {
    /// Converts cycles to microseconds at the platform clock.
    pub fn cycles_to_us(&self, cycles: f64) -> f64 {
        cycles / (self.clock_ghz * 1000.0)
    }

    /// Converts microseconds to cycles at the platform clock.
    pub fn us_to_cycles(&self, us: f64) -> f64 {
        us * self.clock_ghz * 1000.0
    }

    /// Cold-resets caches and scratchpad and clears statistics.
    pub fn reset(&mut self) {
        self.mem.cold_reset();
        self.mem.reset_stats();
    }

    /// Reseeds randomized components.
    pub fn reseed(&mut self, seed: u64) {
        self.mem.reseed(seed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prem_memsim::{AccessKind, LineAddr, Phase};

    #[test]
    fn tx1_preset_matches_paper_numbers() {
        let cfg = PlatformConfig::tx1();
        assert_eq!(cfg.llc.size_bytes(), 256 * KIB);
        assert_eq!(cfg.llc.good_capacity_bytes(), 192 * KIB);
        assert_eq!(cfg.spm.capacity_bytes(), 96 * KIB);
        // LLC is 5x the SPM size, but usable capacity ratio is 2x
        assert!(cfg.llc.size_bytes() >= 2 * cfg.spm.capacity_bytes());
    }

    #[test]
    fn clock_conversions_roundtrip() {
        let p = PlatformConfig::tx1().build();
        let us = p.cycles_to_us(20_000.0);
        assert!((us - 20.0).abs() < 1e-9);
        assert!((p.us_to_cycles(us) - 20_000.0).abs() < 1e-9);
    }

    #[test]
    fn reset_clears_contents_and_stats() {
        let mut p = PlatformConfig::tx1().build();
        p.mem
            .llc_mut()
            .access(LineAddr::new(1), AccessKind::Read, Phase::Unphased);
        p.reset();
        assert_eq!(p.mem.llc().occupancy(), 0);
        assert_eq!(p.mem.llc().stats().total_accesses(), 0);
    }

    #[test]
    fn policy_override_builds() {
        let p = PlatformConfig::tx1().llc_policy(Policy::Lru).build();
        assert_eq!(p.mem.llc().config().policy_ref(), &Policy::Lru);
    }
}
