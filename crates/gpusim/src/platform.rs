//! Whole-platform composition and presets.

use prem_memsim::{Cache, CacheConfig, MemSystem, Policy, Spm, SpmConfig, KIB};

use crate::cost::CostModel;
use crate::cpu::CpuConfig;

/// Static description of a platform.
#[derive(Clone, Debug, PartialEq)]
pub struct PlatformConfig {
    /// LLC geometry and policy.
    pub llc: CacheConfig,
    /// Optional L1 in front of the LLC.
    pub l1: Option<CacheConfig>,
    /// Scratchpad geometry.
    pub spm: SpmConfig,
    /// Execution cost model.
    pub cost: CostModel,
    /// CPU-side configuration.
    pub cpu: CpuConfig,
    /// GPU clock in GHz (converts cycles to wall time).
    pub clock_ghz: f64,
}

impl PlatformConfig {
    /// The NVIDIA Jetson TX1-like platform the paper evaluates on:
    /// 256 KiB 4-way LLC with biased-random replacement, 2 × 48 KiB SPM,
    /// shared LPDDR4, 1 GHz GPU clock. No L1 (GPU global loads on Maxwell
    /// bypass L1 by default).
    pub fn tx1() -> Self {
        PlatformConfig {
            llc: CacheConfig::new(256 * KIB, 4, 128)
                .policy(Policy::nvidia_tegra())
                .index_hash(true),
            l1: None,
            spm: SpmConfig::tx1(),
            cost: CostModel::tx1(),
            cpu: CpuConfig::tx1(),
            clock_ghz: 1.0,
        }
    }

    /// A Jetson TX2-like platform (Pascal GP10B iGPU): 512 KiB 8-way LLC
    /// with the generalized biased-random policy ([`Policy::nvidia_like`]),
    /// 2 × 64 KiB SPM, the wider LPDDR4 bus of the TX2 carrier, 1.3 GHz GPU
    /// clock. Geometry beyond the LLC size is extrapolated — NVIDIA
    /// publishes no replacement details for Pascal either.
    pub fn tx2() -> Self {
        PlatformConfig {
            llc: CacheConfig::new(512 * KIB, 8, 128)
                .policy(Policy::nvidia_like(8))
                .index_hash(true),
            l1: None,
            spm: SpmConfig::tx2(),
            cost: CostModel::tx2(),
            cpu: CpuConfig::tx1(),
            clock_ghz: 1.3,
        }
    }

    /// A Xavier-like platform (Volta GV10B iGPU): 512 KiB 16-way LLC,
    /// 8 × 96 KiB SPM, LPDDR4x with better memory-controller QoS, ≈1.4 GHz
    /// GPU clock. The "-like" is deliberate: this is a plausible
    /// extrapolation for matrix sweeps, not a validated model.
    pub fn xavier_like() -> Self {
        PlatformConfig {
            llc: CacheConfig::new(512 * KIB, 16, 128)
                .policy(Policy::nvidia_like(16))
                .index_hash(true),
            l1: None,
            spm: SpmConfig::xavier_like(),
            cost: CostModel::xavier_like(),
            cpu: CpuConfig::tx1(),
            clock_ghz: 1.377,
        }
    }

    /// A synthetic platform for LLC-geometry sweeps: `llc_kib` KiB of
    /// `ways`-way LLC under [`Policy::nvidia_like`], `spm_kib` KiB of
    /// scratchpad, TX1 cost model and clock. The set count
    /// (`llc_kib × 1024 / (ways × 128)`) must come out a power of two —
    /// [`PlatformConfig::build`] panics otherwise, like any other invalid
    /// cache geometry.
    pub fn generic(llc_kib: usize, ways: usize, spm_kib: usize) -> Self {
        PlatformConfig {
            llc: CacheConfig::new(llc_kib * KIB, ways, 128)
                .policy(Policy::nvidia_like(ways))
                .index_hash(true),
            l1: None,
            spm: SpmConfig::new(spm_kib * KIB, 128),
            cost: CostModel::tx1(),
            cpu: CpuConfig::tx1(),
            clock_ghz: 1.0,
        }
    }

    /// Replaces the LLC replacement policy (ablation studies).
    pub fn llc_policy(mut self, policy: Policy) -> Self {
        self.llc = self.llc.policy(policy);
        self
    }

    /// Replaces the LLC seed (multi-seed experiments).
    pub fn llc_seed(mut self, seed: u64) -> Self {
        self.llc = self.llc.seed(seed);
        self
    }

    /// Replaces the CPU co-runner mix activated by
    /// [`Scenario::Corunners`](crate::Scenario::Corunners).
    pub fn with_corunners(mut self, corunners: Vec<crate::CorunnerProfile>) -> Self {
        self.cpu.corunners = corunners;
        self
    }

    /// Converts cycles to microseconds at this config's GPU clock — the
    /// conversion [`Platform::cycles_to_us`] delegates to, available
    /// without building a platform (the run-plan layer folds cached run
    /// outputs into µs with only the config at hand).
    pub fn cycles_to_us(&self, cycles: f64) -> f64 {
        cycles / (self.clock_ghz * 1000.0)
    }

    /// Builds the runnable platform.
    pub fn build(&self) -> Platform {
        let mut mem = MemSystem::new(Cache::new(self.llc.clone()), Spm::new(self.spm.clone()));
        if let Some(l1) = &self.l1 {
            mem = mem.with_l1(Cache::new(l1.clone()));
        }
        Platform {
            mem,
            cost: self.cost.clone(),
            cpu: self.cpu.clone(),
            clock_ghz: self.clock_ghz,
        }
    }
}

/// A runnable platform instance: memory system + cost model + clock.
#[derive(Clone, Debug)]
pub struct Platform {
    /// The GPU-visible memory system.
    pub mem: MemSystem,
    /// The execution cost model.
    pub cost: CostModel,
    /// The CPU-side configuration.
    pub cpu: CpuConfig,
    /// GPU clock in GHz.
    pub clock_ghz: f64,
}

impl Platform {
    /// Converts cycles to microseconds at the platform clock (same
    /// formula as [`PlatformConfig::cycles_to_us`]).
    pub fn cycles_to_us(&self, cycles: f64) -> f64 {
        cycles / (self.clock_ghz * 1000.0)
    }

    /// Converts microseconds to cycles at the platform clock.
    pub fn us_to_cycles(&self, us: f64) -> f64 {
        us * self.clock_ghz * 1000.0
    }

    /// Cold-resets caches and scratchpad and clears statistics.
    pub fn reset(&mut self) {
        self.mem.cold_reset();
        self.mem.reset_stats();
    }

    /// Reseeds randomized components.
    pub fn reseed(&mut self, seed: u64) {
        self.mem.reseed(seed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prem_memsim::{AccessKind, LineAddr, Phase};

    #[test]
    fn tx1_preset_matches_paper_numbers() {
        let cfg = PlatformConfig::tx1();
        assert_eq!(cfg.llc.size_bytes(), 256 * KIB);
        assert_eq!(cfg.llc.good_capacity_bytes(), 192 * KIB);
        assert_eq!(cfg.spm.capacity_bytes(), 96 * KIB);
        // LLC is 5x the SPM size, but usable capacity ratio is 2x
        assert!(cfg.llc.size_bytes() >= 2 * cfg.spm.capacity_bytes());
    }

    #[test]
    fn clock_conversions_roundtrip() {
        let p = PlatformConfig::tx1().build();
        let us = p.cycles_to_us(20_000.0);
        assert!((us - 20.0).abs() < 1e-9);
        assert!((p.us_to_cycles(us) - 20_000.0).abs() < 1e-9);
    }

    #[test]
    fn reset_clears_contents_and_stats() {
        let mut p = PlatformConfig::tx1().build();
        p.mem
            .llc_mut()
            .access(LineAddr::new(1), AccessKind::Read, Phase::Unphased);
        p.reset();
        assert_eq!(p.mem.llc().occupancy(), 0);
        assert_eq!(p.mem.llc().stats().total_accesses(), 0);
    }

    #[test]
    fn policy_override_builds() {
        let p = PlatformConfig::tx1().llc_policy(Policy::Lru).build();
        assert_eq!(p.mem.llc().config().policy_ref(), &Policy::Lru);
    }

    #[test]
    fn multi_soc_presets_build_and_order_sensibly() {
        for (cfg, llc_kib, spm_kib) in [
            (PlatformConfig::tx2(), 512, 128),
            (PlatformConfig::xavier_like(), 512, 768),
        ] {
            assert_eq!(cfg.llc.size_bytes(), llc_kib * KIB);
            assert_eq!(cfg.spm.capacity_bytes(), spm_kib * KIB);
            // One bad way at any associativity.
            let ways = cfg.llc.ways();
            assert_eq!(
                cfg.llc.good_capacity_bytes(),
                cfg.llc.size_bytes() / ways * (ways - 1)
            );
            cfg.build();
        }
        // Newer parts clock higher and move more bytes per cycle.
        assert!(PlatformConfig::tx2().clock_ghz > PlatformConfig::tx1().clock_ghz);
        assert!(
            PlatformConfig::xavier_like().cost.dram.bytes_per_cycle()
                > PlatformConfig::tx2().cost.dram.bytes_per_cycle()
        );
    }

    #[test]
    fn generic_preset_matches_requested_geometry() {
        let cfg = PlatformConfig::generic(128, 4, 64);
        assert_eq!(cfg.llc.size_bytes(), 128 * KIB);
        assert_eq!(cfg.llc.ways(), 4);
        assert_eq!(cfg.spm.capacity_bytes(), 64 * KIB);
        assert_eq!(cfg.llc.good_capacity_bytes(), 96 * KIB);
        cfg.build();
    }
}
