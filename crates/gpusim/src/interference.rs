//! Event-driven CPU co-runner interference engine.
//!
//! The paper's evaluation models interference as "the membomb is on or
//! off" — one scalar. Real co-runner mixes are richer: CIAO (Zhang et
//! al.) shows cache/DRAM interference between concurrent clients is
//! phase-dependent and workload-shaped, and "Observing the Invisible"
//! (Tarapore et al.) argues for inspecting cache state under live
//! contention. This module therefore models CPU co-runners as **actors**
//! with memory-access profiles ([`CorunnerProfile`]): each actor issues
//! demand against the shared DRAM bus, time-varying for bursty profiles,
//! and cache-thrashing actors additionally pollute the shared LLC through
//! the ordinary replacement machinery.
//!
//! The interference a GPU phase feels is **derived from the concurrent
//! demand of the mix** ([`InterferenceEngine::contention_at`]), not from a
//! fixed multiplier: the aggregate demand (in saturating-stream units) is
//! handed to [`prem_memsim::Contention`], whose pressure normalization
//! guarantees that the paper's preset — three membomb cores — reproduces
//! the calibrated TX1 degradation bit-for-bit.
//!
//! Determinism: the engine owns a seeded RNG used once, at construction,
//! to draw burst phase offsets; pollution walks fixed address regions with
//! per-actor cursors. Two engines built from the same `(mix, seed)` pair
//! behave identically, and appending an actor never perturbs the offsets
//! of the actors before it.

use prem_memsim::rng::Rng;
use prem_memsim::{AccessKind, Cache, Contention, LineAddr, Phase};

/// Memory-access profile of one CPU co-runner actor.
///
/// Demand is expressed in saturating-stream units: 1.0 means the actor
/// alone would keep the DRAM controller busy back-to-back.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum CorunnerProfile {
    /// The paper's memory bomb: pointer-chasing over a DRAM-sized buffer,
    /// fully saturating (demand 1.0), uncached — no LLC footprint.
    Membomb,
    /// A STREAM-like kernel: bandwidth-heavy but with arithmetic between
    /// loads (demand 0.6), streaming through the LLC without reuse.
    Stream,
    /// A working set slightly larger than the shared LLC, walked
    /// repeatedly: moderate bus demand (0.35) but continuous LLC
    /// pollution through the replacement machinery.
    CacheThrash,
    /// On/off memory bomb: saturating for `duty × period_cycles`, idle
    /// for the rest of each period. The burst phase offset is drawn per
    /// actor from the engine seed.
    Bursty {
        /// Fraction of each period spent bursting, in `[0, 1]`.
        duty: f64,
        /// Burst period in GPU cycles (must be positive).
        period_cycles: f64,
    },
    /// A compute-bound co-runner: occupies a core, touches no memory.
    Idle,
}

/// LLC lines a cache-thrashing actor touches per 1000 cycles of window.
const THRASH_LINES_PER_KCYCLE: f64 = 8.0;

/// Lines in one thrasher's working set (512 KiB at 128-byte lines —
/// larger than any preset LLC, so the walk never settles).
const THRASH_WORKING_SET_LINES: u64 = 4096;

/// Base line address of co-runner working sets: far above both kernel
/// data (0x1000_0000) and the unmanaged-noise region (0x0F00_0000).
const THRASH_BASE_LINE: u64 = 0x3000_0000;

/// Line-address stride between two thrashers' working sets.
const THRASH_REGION_STRIDE: u64 = 0x10_0000;

impl CorunnerProfile {
    /// Short stable name used in tables, CSV cells and seed keys.
    pub fn name(&self) -> &'static str {
        match self {
            CorunnerProfile::Membomb => "membomb",
            CorunnerProfile::Stream => "stream",
            CorunnerProfile::CacheThrash => "cache_thrash",
            CorunnerProfile::Bursty { .. } => "bursty",
            CorunnerProfile::Idle => "idle",
        }
    }

    /// Demand while actively issuing (saturating-stream units).
    pub fn peak_demand(&self) -> f64 {
        match self {
            CorunnerProfile::Membomb => 1.0,
            CorunnerProfile::Stream => 0.6,
            CorunnerProfile::CacheThrash => 0.35,
            CorunnerProfile::Bursty { .. } => 1.0,
            CorunnerProfile::Idle => 0.0,
        }
    }

    /// Long-run average demand (duty-weighted for bursty profiles).
    pub fn mean_demand(&self) -> f64 {
        match self {
            CorunnerProfile::Bursty { duty, .. } => duty.clamp(0.0, 1.0),
            _ => self.peak_demand(),
        }
    }

    /// Whether the profile's demand varies over time.
    pub fn is_time_varying(&self) -> bool {
        match self {
            CorunnerProfile::Bursty { duty, .. } => {
                let duty = duty.clamp(0.0, 1.0);
                duty > 0.0 && duty < 1.0
            }
            _ => false,
        }
    }

    /// Whether the profile pollutes the shared LLC.
    pub fn pollutes_llc(&self) -> bool {
        matches!(self, CorunnerProfile::CacheThrash)
    }

    /// Demand at `cycle`, given this actor's burst phase `offset`.
    fn demand_at(&self, cycle: f64, offset: f64) -> f64 {
        match self {
            CorunnerProfile::Bursty {
                duty,
                period_cycles,
            } => {
                let duty = duty.clamp(0.0, 1.0);
                let phase = (cycle + offset).rem_euclid(*period_cycles);
                if phase < duty * period_cycles {
                    1.0
                } else {
                    0.0
                }
            }
            _ => self.peak_demand(),
        }
    }

    /// Validates profile parameters.
    ///
    /// # Errors
    ///
    /// Returns a message for a non-positive or non-finite burst period.
    pub fn validate(&self) -> Result<(), String> {
        if let CorunnerProfile::Bursty { period_cycles, .. } = self {
            if !period_cycles.is_finite() || *period_cycles <= 0.0 {
                return Err(format!(
                    "bursty period must be positive, got {period_cycles}"
                ));
            }
        }
        Ok(())
    }
}

/// Per-actor mutable state of a cache-thrashing co-runner.
#[derive(Clone, Debug, Default)]
struct ThrashState {
    /// Next position in the actor's working-set walk.
    cursor: u64,
    /// Fractional accesses carried between pollution windows.
    carry: f64,
}

/// The co-runner mix as a running simulation actor set.
///
/// Built per execution from `(mix, seed)`; owns all mutable co-runner
/// state so concurrent cells of a scenario matrix never share anything.
#[derive(Clone, Debug)]
pub struct InterferenceEngine {
    profiles: Vec<CorunnerProfile>,
    /// Burst phase offset per actor (0 for non-bursty profiles).
    offsets: Vec<f64>,
    /// Thrash walk state per actor (empty state for non-thrashers).
    thrash: Vec<ThrashState>,
    /// Total demand when no profile is time-varying.
    static_contention: Option<Contention>,
    /// Total LLC lines injected so far.
    polluted_lines: u64,
}

impl InterferenceEngine {
    /// Builds the engine for `profiles`, drawing burst offsets from
    /// `seed`.
    ///
    /// # Panics
    ///
    /// Panics on an invalid profile (see [`CorunnerProfile::validate`]);
    /// mixes are static experiment inputs, so failing fast beats
    /// threading errors through every run.
    pub fn new(profiles: &[CorunnerProfile], seed: u64) -> Self {
        let mut rng = Rng::seed_from_u64(seed ^ 0x1f3a_9d4c_c0de_b0b5);
        let mut offsets = Vec::with_capacity(profiles.len());
        for p in profiles {
            if let Err(e) = p.validate() {
                panic!("invalid co-runner profile: {e}");
            }
            // Only bursty actors draw, so appending an actor never
            // re-phases the ones before it.
            offsets.push(match p {
                CorunnerProfile::Bursty { period_cycles, .. } if p.is_time_varying() => {
                    rng.next_f64() * period_cycles
                }
                _ => 0.0,
            });
        }
        let static_contention = if profiles.iter().any(|p| p.is_time_varying()) {
            None
        } else {
            Some(Contention::from_demand(
                profiles.iter().map(|p| p.mean_demand()).sum(),
            ))
        };
        InterferenceEngine {
            thrash: vec![ThrashState::default(); profiles.len()],
            profiles: profiles.to_vec(),
            offsets,
            static_contention,
            polluted_lines: 0,
        }
    }

    /// The profiles this engine simulates.
    pub fn profiles(&self) -> &[CorunnerProfile] {
        &self.profiles
    }

    /// Whether the mix produces any interference at all (bus demand or
    /// LLC pollution).
    pub fn is_idle(&self) -> bool {
        self.profiles
            .iter()
            .all(|p| p.mean_demand() == 0.0 && !p.pollutes_llc())
    }

    /// Whether any actor of the mix pollutes the LLC.
    pub fn has_polluters(&self) -> bool {
        self.profiles.iter().any(|p| p.pollutes_llc())
    }

    /// Aggregate co-runner demand at `cycle` (saturating-stream units).
    pub fn demand_at(&self, cycle: f64) -> f64 {
        self.profiles
            .iter()
            .zip(&self.offsets)
            .map(|(p, &off)| p.demand_at(cycle, off))
            .sum()
    }

    /// Bus contention felt by the victim at `cycle`.
    pub fn contention_at(&self, cycle: f64) -> Contention {
        Contention::from_demand(self.demand_at(cycle))
    }

    /// The mix's constant contention, if no actor is time-varying. The
    /// presets resolve here: the empty mix to [`Contention::Isolated`],
    /// three membombs to exactly [`Contention::membomb`].
    pub fn static_contention(&self) -> Option<Contention> {
        self.static_contention
    }

    /// Long-run mean contention (duty-weighted) — used for bandwidth
    /// ledgers over windows much longer than any burst period.
    pub fn mean_contention(&self) -> Contention {
        Contention::from_demand(self.profiles.iter().map(|p| p.mean_demand()).sum())
    }

    /// Injects the LLC traffic the mix's cache-thrashing actors generate
    /// over a `window_cycles`-long concurrent window. Fractional accesses
    /// carry over, so many short windows pollute exactly as much as one
    /// long window. No-op for mixes without thrashers.
    pub fn pollute(&mut self, llc: &mut Cache, window_cycles: f64) {
        self.pollute_traced(llc, window_cycles, &mut prem_memsim::NullSink);
    }

    /// [`InterferenceEngine::pollute`] with instrumentation: every
    /// injected co-runner fill reports its outcome to `sink`, so captured
    /// traces carry the foreign traffic interleaved at the position it
    /// really hit the LLC. With [`prem_memsim::NullSink`] this is exactly
    /// [`InterferenceEngine::pollute`].
    pub fn pollute_traced<S: prem_memsim::TraceSink>(
        &mut self,
        llc: &mut Cache,
        window_cycles: f64,
        sink: &mut S,
    ) {
        if window_cycles <= 0.0 {
            return;
        }
        for (i, p) in self.profiles.iter().enumerate() {
            if !p.pollutes_llc() {
                continue;
            }
            let st = &mut self.thrash[i];
            let exact = st.carry + THRASH_LINES_PER_KCYCLE * window_cycles / 1000.0;
            let whole = exact.floor();
            st.carry = exact - whole;
            let base = THRASH_BASE_LINE + i as u64 * THRASH_REGION_STRIDE;
            for _ in 0..whole as u64 {
                let line = base + st.cursor % THRASH_WORKING_SET_LINES;
                st.cursor = st.cursor.wrapping_add(1);
                llc.access_traced(LineAddr::new(line), AccessKind::Read, Phase::Corunner, sink);
                self.polluted_lines += 1;
            }
        }
    }

    /// Total LLC lines injected by thrashers so far.
    pub fn polluted_lines(&self) -> u64 {
        self.polluted_lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prem_memsim::{CacheConfig, KIB};

    #[test]
    fn presets_resolve_to_the_calibration_points() {
        let iso = InterferenceEngine::new(&[], 1);
        assert_eq!(iso.static_contention(), Some(Contention::Isolated));
        assert!(iso.is_idle());

        let interference = InterferenceEngine::new(&[CorunnerProfile::Membomb; 3], 1);
        assert_eq!(
            interference.static_contention(),
            Some(Contention::membomb())
        );
    }

    #[test]
    fn demand_sums_over_actors() {
        let e = InterferenceEngine::new(
            &[
                CorunnerProfile::Membomb,
                CorunnerProfile::Stream,
                CorunnerProfile::Idle,
            ],
            7,
        );
        assert!((e.demand_at(0.0) - 1.6).abs() < 1e-12);
        assert_eq!(e.static_contention(), Some(Contention::from_demand(1.6)));
    }

    #[test]
    fn bursty_toggles_with_its_duty_cycle() {
        let p = CorunnerProfile::Bursty {
            duty: 0.25,
            period_cycles: 1000.0,
        };
        let e = InterferenceEngine::new(&[p], 42);
        assert!(e.static_contention().is_none());
        // Demand over one period averages out to the duty cycle.
        let samples = 4000;
        let on = (0..samples)
            .filter(|i| e.demand_at(*i as f64) > 0.0)
            .count();
        let duty = on as f64 / samples as f64;
        assert!((duty - 0.25).abs() < 0.05, "duty {duty}");
        // Degenerate duties are static.
        for duty in [0.0, 1.0] {
            let e = InterferenceEngine::new(
                &[CorunnerProfile::Bursty {
                    duty,
                    period_cycles: 1000.0,
                }],
                42,
            );
            assert_eq!(e.static_contention(), Some(Contention::from_demand(duty)));
        }
    }

    #[test]
    fn same_seed_same_behavior_and_appending_preserves_prefix() {
        let mix = [
            CorunnerProfile::Bursty {
                duty: 0.5,
                period_cycles: 512.0,
            },
            CorunnerProfile::Bursty {
                duty: 0.5,
                period_cycles: 512.0,
            },
        ];
        let a = InterferenceEngine::new(&mix, 9);
        let b = InterferenceEngine::new(&mix, 9);
        for t in 0..2048 {
            assert_eq!(a.demand_at(t as f64), b.demand_at(t as f64));
        }
        // Appending an actor must not re-phase the existing ones.
        let mut longer = mix.to_vec();
        longer.push(CorunnerProfile::Membomb);
        let c = InterferenceEngine::new(&longer, 9);
        for t in 0..2048 {
            assert_eq!(c.demand_at(t as f64), a.demand_at(t as f64) + 1.0);
        }
    }

    #[test]
    fn adding_an_actor_never_lowers_demand() {
        let base = vec![CorunnerProfile::Stream, CorunnerProfile::CacheThrash];
        let a = InterferenceEngine::new(&base, 3);
        for extra in [
            CorunnerProfile::Membomb,
            CorunnerProfile::Stream,
            CorunnerProfile::CacheThrash,
            CorunnerProfile::Idle,
            CorunnerProfile::Bursty {
                duty: 0.3,
                period_cycles: 700.0,
            },
        ] {
            let mut longer = base.clone();
            longer.push(extra);
            let b = InterferenceEngine::new(&longer, 3);
            for t in 0..4096 {
                let t = t as f64;
                assert!(b.demand_at(t) >= a.demand_at(t) - 1e-12);
            }
        }
    }

    #[test]
    fn thrashers_pollute_deterministically_and_membombs_do_not() {
        let cfg = CacheConfig::new(64 * KIB, 4, 128);
        let mut llc = Cache::new(cfg.clone());
        let mut e = InterferenceEngine::new(&[CorunnerProfile::Membomb; 3], 5);
        e.pollute(&mut llc, 1_000_000.0);
        assert_eq!(e.polluted_lines(), 0);
        assert_eq!(llc.stats().corunner.total(), 0);

        let mut e = InterferenceEngine::new(&[CorunnerProfile::CacheThrash; 2], 5);
        let mut llc2 = Cache::new(cfg);
        e.pollute(&mut llc2, 10_000.0);
        // 8 lines/kcycle × 10 kcycles × 2 actors.
        assert_eq!(e.polluted_lines(), 160);
        assert_eq!(llc2.stats().corunner.total(), 160);
        assert_eq!(llc2.stats().total_accesses(), 0);
    }

    #[test]
    fn pollution_carry_makes_windows_splittable() {
        let cfg = CacheConfig::new(64 * KIB, 4, 128);
        let mut one = InterferenceEngine::new(&[CorunnerProfile::CacheThrash], 5);
        let mut llc_a = Cache::new(cfg.clone());
        one.pollute(&mut llc_a, 10_000.0);
        let mut many = InterferenceEngine::new(&[CorunnerProfile::CacheThrash], 5);
        let mut llc_b = Cache::new(cfg);
        for _ in 0..100 {
            many.pollute(&mut llc_b, 100.0);
        }
        assert_eq!(one.polluted_lines(), many.polluted_lines());
    }

    #[test]
    #[should_panic(expected = "invalid co-runner profile")]
    fn invalid_burst_period_rejected() {
        InterferenceEngine::new(
            &[CorunnerProfile::Bursty {
                duty: 0.5,
                period_cycles: 0.0,
            }],
            1,
        );
    }
}
