//! Execution-cost model.
//!
//! Timing is throughput-oriented: a GPU hides memory latency behind many
//! outstanding warp accesses, so latency terms are divided by a configurable
//! memory-level-parallelism factor (`mlp`), while DRAM serialization
//! (bandwidth) is charged in full — bandwidth is the hard floor for bulk
//! transfers like PREM M-phases. All costs are in GPU cycles; the platform
//! converts to microseconds with its clock.

use prem_memsim::{Contention, DramConfig, HitLevel};

/// Cost-model parameters (cycles at the GPU clock).
#[derive(Clone, Debug, PartialEq)]
pub struct CostModel {
    /// Cycles per warp-wide arithmetic instruction.
    pub alu_cpi: f64,
    /// Issue cost of any memory instruction.
    pub issue_cycles: f64,
    /// L1 hit latency.
    pub l1_hit_cycles: f64,
    /// LLC hit latency.
    pub llc_hit_cycles: f64,
    /// Scratchpad access latency.
    pub spm_cycles: f64,
    /// Memory-level parallelism: outstanding accesses that overlap latency.
    pub mlp: f64,
    /// Memory-level parallelism of explicit copy loops (SPM DMA-in/out).
    /// Copies are load-to-store dependent and register-bound, so they
    /// overlap far fewer misses than fire-and-forget prefetch streams.
    pub copy_mlp: f64,
    /// Cost of a software prefetch that hits (tag probe only, no data
    /// consumption — the paper's "negligible" repeated-prefetch cost, §IV-A).
    pub prefetch_hit_cycles: f64,
    /// DRAM timing.
    pub dram: DramConfig,
    /// Line size charged for DRAM transfers (bytes).
    pub line_bytes: usize,
}

impl CostModel {
    /// TX1-like defaults at 1 GHz (see DESIGN.md §4).
    pub fn tx1() -> Self {
        CostModel {
            alu_cpi: 0.5,
            issue_cycles: 2.0,
            l1_hit_cycles: 28.0,
            llc_hit_cycles: 220.0,
            spm_cycles: 30.0,
            mlp: 32.0,
            copy_mlp: 6.0,
            prefetch_hit_cycles: 1.0,
            dram: DramConfig::tx1(),
            line_bytes: 128,
        }
    }

    /// TX2-like (Pascal) defaults: the wider LPDDR4 bus of
    /// [`DramConfig::tx2`], slightly deeper LLC pipeline in cycles at the
    /// higher clock; everything else inherits the TX1 calibration.
    pub fn tx2() -> Self {
        CostModel {
            llc_hit_cycles: 240.0,
            dram: DramConfig::tx2(),
            ..CostModel::tx1()
        }
    }

    /// Xavier-like (Volta) defaults: LPDDR4x timing from
    /// [`DramConfig::xavier_like`] and twice the memory-level parallelism
    /// (8 SMs keep many more warps in flight than the TX1's 2).
    pub fn xavier_like() -> Self {
        CostModel {
            llc_hit_cycles: 260.0,
            mlp: 64.0,
            copy_mlp: 8.0,
            dram: DramConfig::xavier_like(),
            ..CostModel::tx1()
        }
    }

    /// Cost of one demand access served at `level` under `contention`.
    pub fn access_cost(&self, level: HitLevel, contention: Contention) -> f64 {
        match level {
            HitLevel::L1 => self.issue_cycles + self.l1_hit_cycles / self.mlp,
            HitLevel::Llc => self.issue_cycles + self.llc_hit_cycles / self.mlp,
            HitLevel::Spm => self.issue_cycles + self.spm_cycles / self.mlp,
            HitLevel::Dram => self.dram_line_cost(contention) + self.issue_cycles,
        }
    }

    /// Cost of one prefetch with the given outcome.
    pub fn prefetch_cost(&self, hit: bool, contention: Contention) -> f64 {
        if hit {
            self.prefetch_hit_cycles
        } else {
            // A missing prefetch performs a full line fill.
            self.prefetch_hit_cycles + self.dram_line_cost(contention)
        }
    }

    /// Cost of one DRAM line fill on the cached path (demand miss or
    /// prefetch miss).
    pub fn dram_line_cost(&self, contention: Contention) -> f64 {
        self.dram.effective_latency(contention) / self.mlp
            + self.dram.serialization(self.line_bytes, contention)
    }

    /// Cost of one explicit copy-loop line transfer (SPM DMA path): the
    /// dependent load/store chain exposes more of the DRAM latency.
    pub fn copy_line_cost(&self, contention: Contention) -> f64 {
        self.dram.effective_latency(contention) / self.copy_mlp
            + self.dram.serialization(self.line_bytes, contention)
    }

    /// Cost of `n` arithmetic warp instructions.
    pub fn alu_cost(&self, n: u64) -> f64 {
        n as f64 * self.alu_cpi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_levels_are_ordered() {
        let m = CostModel::tx1();
        let c = Contention::Isolated;
        let spm = m.access_cost(HitLevel::Spm, c);
        let l1 = m.access_cost(HitLevel::L1, c);
        let llc = m.access_cost(HitLevel::Llc, c);
        let dram = m.access_cost(HitLevel::Dram, c);
        assert!(spm < llc && l1 < llc && llc < dram);
    }

    #[test]
    fn interference_only_hurts_dram() {
        let m = CostModel::tx1();
        let iso = Contention::Isolated;
        let bomb = Contention::membomb();
        assert_eq!(
            m.access_cost(HitLevel::Llc, iso),
            m.access_cost(HitLevel::Llc, bomb)
        );
        assert!(m.access_cost(HitLevel::Dram, bomb) > m.access_cost(HitLevel::Dram, iso));
    }

    #[test]
    fn repeated_prefetch_hit_is_cheap() {
        let m = CostModel::tx1();
        let hit = m.prefetch_cost(true, Contention::Isolated);
        let miss = m.prefetch_cost(false, Contention::Isolated);
        assert!(hit * 10.0 < miss, "hit {hit} vs miss {miss}");
    }

    #[test]
    fn bandwidth_not_hidden_by_mlp() {
        // The serialization term must appear undivided in the DRAM cost.
        let m = CostModel::tx1();
        let ser = m.dram.serialization(m.line_bytes, Contention::Isolated);
        assert!(m.dram_line_cost(Contention::Isolated) >= ser);
    }
}
