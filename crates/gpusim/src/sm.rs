//! The streaming-multiprocessor executor: runs an op stream against the
//! memory system and accounts cycles.

use std::error::Error;
use std::fmt;

use prem_memsim::{
    AccessKind, Contention, HitLevel, MemSystem, NullSink, Phase, SpmError, TraceSink,
};

use crate::cost::CostModel;
use crate::interference::InterferenceEngine;
use crate::op::{Op, OpStream};

/// Execution failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// The scratchpad rejected an access or staging operation; this means a
    /// PREM tiling is broken (footprint not staged, or over capacity).
    Spm(SpmError),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Spm(e) => write!(f, "scratchpad execution failed: {e}"),
        }
    }
}

impl Error for ExecError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExecError::Spm(e) => Some(e),
        }
    }
}

impl From<SpmError> for ExecError {
    fn from(e: SpmError) -> Self {
        ExecError::Spm(e)
    }
}

/// Per-level access counters observed while running one stream.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct LevelCounts {
    /// Accesses served by L1.
    pub l1: u64,
    /// Accesses served by the LLC.
    pub llc: u64,
    /// Accesses served by the scratchpad.
    pub spm: u64,
    /// Accesses that reached DRAM (cache misses and direct transfers).
    pub dram: u64,
}

impl LevelCounts {
    /// Total accesses.
    pub fn total(&self) -> u64 {
        self.l1 + self.llc + self.spm + self.dram
    }
}

/// Outcome of running one op stream.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct RunOutcome {
    /// Cycles consumed.
    pub cycles: f64,
    /// Where accesses were served.
    pub levels: LevelCounts,
    /// Prefetches that hit / missed.
    pub prefetch_hits: u64,
    /// Prefetch misses (each one performed a DRAM fill).
    pub prefetch_misses: u64,
}

impl RunOutcome {
    /// Accumulates another outcome (e.g. across intervals).
    pub fn merge(&mut self, other: &RunOutcome) {
        self.cycles += other.cycles;
        self.levels.l1 += other.levels.l1;
        self.levels.llc += other.levels.llc;
        self.levels.spm += other.levels.spm;
        self.levels.dram += other.levels.dram;
        self.prefetch_hits += other.prefetch_hits;
        self.prefetch_misses += other.prefetch_misses;
    }
}

/// Per-level op costs for one constant contention level.
///
/// Every field is produced by the corresponding [`CostModel`] method, so
/// charging from the table is bit-identical to recomputing per op — the
/// same operands flow through the same IEEE operations — while hoisting
/// the divisions (and the DRAM effective-latency evaluation) out of the
/// hot loop, where they otherwise execute once per access.
#[derive(Copy, Clone, Debug)]
struct CostTable {
    l1: f64,
    llc: f64,
    spm: f64,
    dram: f64,
    prefetch_hit: f64,
    prefetch_miss: f64,
    copy: f64,
    alu_cpi: f64,
}

impl CostTable {
    fn new(cost: &CostModel, contention: Contention) -> Self {
        CostTable {
            l1: cost.access_cost(HitLevel::L1, contention),
            llc: cost.access_cost(HitLevel::Llc, contention),
            spm: cost.access_cost(HitLevel::Spm, contention),
            dram: cost.access_cost(HitLevel::Dram, contention),
            prefetch_hit: cost.prefetch_cost(true, contention),
            prefetch_miss: cost.prefetch_cost(false, contention),
            copy: cost.issue_cycles + cost.copy_line_cost(contention),
            alu_cpi: cost.alu_cpi,
        }
    }
}

/// Source of per-op costs inside [`SmExecutor::run_inner`].
///
/// Monomorphizing the executor loop over this trait gives the constant-
/// contention path a branch-free table lookup per op while the
/// time-varying path keeps querying the interference engine at each op's
/// issue time — without a dynamic dispatch per op on either path.
trait Coster {
    fn access(&mut self, level: HitLevel, elapsed: f64) -> f64;
    fn prefetch(&mut self, hit: bool, elapsed: f64) -> f64;
    fn copy(&mut self, elapsed: f64) -> f64;
    fn alu(&mut self, n: u64) -> f64;
}

/// Constant-contention coster: all costs come from one [`CostTable`].
struct ConstCoster {
    t: CostTable,
}

impl Coster for ConstCoster {
    #[inline]
    fn access(&mut self, level: HitLevel, _elapsed: f64) -> f64 {
        match level {
            HitLevel::L1 => self.t.l1,
            HitLevel::Llc => self.t.llc,
            HitLevel::Spm => self.t.spm,
            HitLevel::Dram => self.t.dram,
        }
    }

    #[inline]
    fn prefetch(&mut self, hit: bool, _elapsed: f64) -> f64 {
        if hit {
            self.t.prefetch_hit
        } else {
            self.t.prefetch_miss
        }
    }

    #[inline]
    fn copy(&mut self, _elapsed: f64) -> f64 {
        self.t.copy
    }

    #[inline]
    fn alu(&mut self, n: u64) -> f64 {
        n as f64 * self.t.alu_cpi
    }
}

/// Dual coster: charges the live-contention cost while accumulating, per
/// op in issue order, the cost the same op would have under a second
/// contention level. The secondary accumulator reproduces — bit-exactly —
/// the `cycles` a separate run of the same stream under the secondary
/// contention would report, because the trajectory (and hence the level
/// sequence) is contention-independent and both sides add the same
/// per-level constants in the same order from 0.0.
struct DualCoster {
    live: ConstCoster,
    second: ConstCoster,
    second_cycles: f64,
}

impl Coster for DualCoster {
    #[inline]
    fn access(&mut self, level: HitLevel, elapsed: f64) -> f64 {
        self.second_cycles += self.second.access(level, elapsed);
        self.live.access(level, elapsed)
    }

    #[inline]
    fn prefetch(&mut self, hit: bool, elapsed: f64) -> f64 {
        self.second_cycles += self.second.prefetch(hit, elapsed);
        self.live.prefetch(hit, elapsed)
    }

    #[inline]
    fn copy(&mut self, elapsed: f64) -> f64 {
        self.second_cycles += self.second.copy(elapsed);
        self.live.copy(elapsed)
    }

    #[inline]
    fn alu(&mut self, n: u64) -> f64 {
        self.second_cycles += self.second.alu(n);
        self.live.alu(n)
    }
}

/// Time-varying coster: evaluates the interference engine's contention at
/// each memory op's issue time, exactly as the event-driven path always
/// has. Compute ops never consulted contention (their cost ignores it),
/// so skipping the engine query for them is observationally identical —
/// [`InterferenceEngine::contention_at`] is a pure function of time.
struct VaryingCoster<'a> {
    cost: &'a CostModel,
    engine: &'a InterferenceEngine,
    start_cycle: f64,
}

impl VaryingCoster<'_> {
    #[inline]
    fn at(&self, elapsed: f64) -> Contention {
        self.engine.contention_at(self.start_cycle + elapsed)
    }
}

impl Coster for VaryingCoster<'_> {
    #[inline]
    fn access(&mut self, level: HitLevel, elapsed: f64) -> f64 {
        self.cost.access_cost(level, self.at(elapsed))
    }

    #[inline]
    fn prefetch(&mut self, hit: bool, elapsed: f64) -> f64 {
        self.cost.prefetch_cost(hit, self.at(elapsed))
    }

    #[inline]
    fn copy(&mut self, elapsed: f64) -> f64 {
        self.cost.issue_cycles + self.cost.copy_line_cost(self.at(elapsed))
    }

    #[inline]
    fn alu(&mut self, n: u64) -> f64 {
        self.cost.alu_cost(n)
    }
}

/// Executes op streams on one SM against a [`MemSystem`].
#[derive(Debug)]
pub struct SmExecutor<'a> {
    mem: &'a mut MemSystem,
    cost: &'a CostModel,
}

impl<'a> SmExecutor<'a> {
    /// Creates an executor borrowing the memory system and cost model.
    pub fn new(mem: &'a mut MemSystem, cost: &'a CostModel) -> Self {
        SmExecutor { mem, cost }
    }

    /// Runs `stream`, attributing cache accesses to `phase` and charging
    /// DRAM-level costs under `contention`.
    ///
    /// # Errors
    ///
    /// [`ExecError::Spm`] when a scratchpad op touches unstaged data — a
    /// broken PREM tiling.
    pub fn run(
        &mut self,
        stream: &OpStream,
        phase: Phase,
        contention: Contention,
    ) -> Result<RunOutcome, ExecError> {
        self.run_traced(stream, phase, contention, 0.0, &mut NullSink)
    }

    /// [`SmExecutor::run`] with instrumentation: every op issue, LLC
    /// access outcome and direct DRAM transfer is reported to `sink`,
    /// with op-issue timestamps measured from schedule time
    /// `start_cycle`. With [`NullSink`] this monomorphizes to exactly
    /// [`SmExecutor::run`].
    ///
    /// # Errors
    ///
    /// [`ExecError::Spm`] exactly as for [`SmExecutor::run`].
    pub fn run_traced<S: TraceSink>(
        &mut self,
        stream: &OpStream,
        phase: Phase,
        contention: Contention,
        start_cycle: f64,
        sink: &mut S,
    ) -> Result<RunOutcome, ExecError> {
        let mut coster = ConstCoster {
            t: CostTable::new(self.cost, contention),
        };
        self.run_inner(stream, phase, &mut coster, start_cycle, sink)
    }

    /// [`SmExecutor::run_traced`] under `contention`, additionally
    /// returning the cycles the same stream would have cost under
    /// `second` — accumulated per op in issue order, so the returned
    /// value is bit-identical to a separate [`SmExecutor::run`] of the
    /// stream under `second` (the trajectory does not depend on
    /// contention). This is how a timed run self-profiles: one walk
    /// yields both the live cycles and the isolated cycles a profiling
    /// pass would have measured.
    ///
    /// # Errors
    ///
    /// [`ExecError::Spm`] exactly as for [`SmExecutor::run`].
    pub fn run_dual_traced<S: TraceSink>(
        &mut self,
        stream: &OpStream,
        phase: Phase,
        contention: Contention,
        second: Contention,
        start_cycle: f64,
        sink: &mut S,
    ) -> Result<(RunOutcome, f64), ExecError> {
        let mut coster = DualCoster {
            live: ConstCoster {
                t: CostTable::new(self.cost, contention),
            },
            second: ConstCoster {
                t: CostTable::new(self.cost, second),
            },
            second_cycles: 0.0,
        };
        let out = self.run_inner(stream, phase, &mut coster, start_cycle, sink)?;
        Ok((out, coster.second_cycles))
    }

    /// Runs `stream` under the time-varying contention of `engine`,
    /// starting at schedule time `start_cycle`.
    ///
    /// Each op is charged the contention the co-runner mix generates at
    /// the op's own issue time (`start_cycle` + cycles consumed so far) —
    /// the event-driven path. Mixes without time-varying actors take the
    /// constant fast path, which is bit-identical to
    /// [`SmExecutor::run`] with [`InterferenceEngine::static_contention`].
    ///
    /// # Errors
    ///
    /// [`ExecError::Spm`] exactly as for [`SmExecutor::run`].
    pub fn run_under(
        &mut self,
        stream: &OpStream,
        phase: Phase,
        engine: &InterferenceEngine,
        start_cycle: f64,
    ) -> Result<RunOutcome, ExecError> {
        self.run_under_traced(stream, phase, engine, start_cycle, &mut NullSink)
    }

    /// [`SmExecutor::run_under`] with instrumentation (see
    /// [`SmExecutor::run_traced`]).
    ///
    /// # Errors
    ///
    /// [`ExecError::Spm`] exactly as for [`SmExecutor::run`].
    pub fn run_under_traced<S: TraceSink>(
        &mut self,
        stream: &OpStream,
        phase: Phase,
        engine: &InterferenceEngine,
        start_cycle: f64,
        sink: &mut S,
    ) -> Result<RunOutcome, ExecError> {
        match engine.static_contention() {
            Some(contention) => self.run_traced(stream, phase, contention, start_cycle, sink),
            None => {
                let mut coster = VaryingCoster {
                    cost: self.cost,
                    engine,
                    start_cycle,
                };
                self.run_inner(stream, phase, &mut coster, start_cycle, sink)
            }
        }
    }

    fn run_inner<S: TraceSink, C: Coster>(
        &mut self,
        stream: &OpStream,
        phase: Phase,
        coster: &mut C,
        start_cycle: f64,
        sink: &mut S,
    ) -> Result<RunOutcome, ExecError> {
        let mut out = RunOutcome::default();
        for op in stream {
            sink.on_op_issue(start_cycle + out.cycles);
            match *op {
                Op::CachedLoad(line) => {
                    let level = self
                        .mem
                        .access_cached_traced(line, AccessKind::Read, phase, sink);
                    self.count(&mut out, level);
                    out.cycles += coster.access(level, out.cycles);
                }
                Op::CachedStore(line) => {
                    let level = self
                        .mem
                        .access_cached_traced(line, AccessKind::Write, phase, sink);
                    self.count(&mut out, level);
                    out.cycles += coster.access(level, out.cycles);
                }
                Op::Prefetch(line) => {
                    let level =
                        self.mem
                            .access_cached_traced(line, AccessKind::Prefetch, phase, sink);
                    let hit = level != HitLevel::Dram;
                    if hit {
                        out.prefetch_hits += 1;
                    } else {
                        out.prefetch_misses += 1;
                        out.levels.dram += 1;
                    }
                    out.cycles += coster.prefetch(hit, out.cycles);
                }
                Op::SpmLoad(line) | Op::SpmStore(line) => {
                    let level = self.mem.access_spm(line)?;
                    self.count(&mut out, level);
                    out.cycles += coster.access(level, out.cycles);
                }
                Op::DramLoad(line) => {
                    // Direct copy-loop transfer into the SPM: stage the line.
                    self.mem.spm_mut().stage(line)?;
                    sink.on_dram_transfer(line, false);
                    out.levels.dram += 1;
                    out.cycles += coster.copy(out.cycles);
                }
                Op::DramStore(line) => {
                    sink.on_dram_transfer(line, true);
                    out.levels.dram += 1;
                    out.cycles += coster.copy(out.cycles);
                }
                Op::Alu(n) | Op::TranslAddr(n) => {
                    sink.on_compute(n as u64);
                    out.cycles += coster.alu(n as u64);
                }
            }
        }
        Ok(out)
    }

    fn count(&self, out: &mut RunOutcome, level: HitLevel) {
        match level {
            HitLevel::L1 => out.levels.l1 += 1,
            HitLevel::Llc => out.levels.llc += 1,
            HitLevel::Spm => out.levels.spm += 1,
            HitLevel::Dram => out.levels.dram += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Op;
    use prem_memsim::{Cache, CacheConfig, LineAddr, Spm, SpmConfig};

    fn mem() -> MemSystem {
        MemSystem::new(
            Cache::new(CacheConfig::new(1024, 2, 64)),
            Spm::new(SpmConfig::new(256, 64)),
        )
    }

    fn l(n: u64) -> LineAddr {
        LineAddr::new(n)
    }

    #[test]
    fn cached_load_miss_then_hit_costs_less() {
        let mut m = mem();
        let cost = CostModel::tx1();
        let mut ex = SmExecutor::new(&mut m, &cost);
        let s: OpStream = vec![Op::CachedLoad(l(0))].into_iter().collect();
        let first = ex.run(&s, Phase::Unphased, Contention::Isolated).unwrap();
        let second = ex.run(&s, Phase::Unphased, Contention::Isolated).unwrap();
        assert!(second.cycles < first.cycles);
        assert_eq!(first.levels.dram, 1);
        assert_eq!(second.levels.llc, 1);
    }

    #[test]
    fn prefetch_repeat_is_cheap_after_fill() {
        let mut m = mem();
        let cost = CostModel::tx1();
        let mut ex = SmExecutor::new(&mut m, &cost);
        let s: OpStream = vec![Op::Prefetch(l(4))].into_iter().collect();
        let miss = ex.run(&s, Phase::MPhase, Contention::Isolated).unwrap();
        let hit = ex.run(&s, Phase::MPhase, Contention::Isolated).unwrap();
        assert_eq!(miss.prefetch_misses, 1);
        assert_eq!(hit.prefetch_hits, 1);
        assert!(hit.cycles * 5.0 < miss.cycles);
    }

    #[test]
    fn spm_access_requires_staging() {
        let mut m = mem();
        let cost = CostModel::tx1();
        let mut ex = SmExecutor::new(&mut m, &cost);
        let bad: OpStream = vec![Op::SpmLoad(l(1))].into_iter().collect();
        assert!(ex.run(&bad, Phase::CPhase, Contention::Isolated).is_err());
        let good: OpStream = vec![Op::DramLoad(l(1)), Op::SpmLoad(l(1))]
            .into_iter()
            .collect();
        let out = ex.run(&good, Phase::CPhase, Contention::Isolated).unwrap();
        assert_eq!(out.levels.spm, 1);
        assert_eq!(out.levels.dram, 1);
    }

    #[test]
    fn interference_slows_misses_only() {
        let cost = CostModel::tx1();
        let s: OpStream = (0..8).map(|i| Op::CachedLoad(l(i))).collect();

        let mut m1 = mem();
        let iso = SmExecutor::new(&mut m1, &cost)
            .run(&s, Phase::Unphased, Contention::Isolated)
            .unwrap();
        let mut m2 = mem();
        let bomb = SmExecutor::new(&mut m2, &cost)
            .run(&s, Phase::Unphased, Contention::membomb())
            .unwrap();
        assert!(bomb.cycles > iso.cycles * 1.5);

        // All-hit streams are insensitive.
        let hit_iso = SmExecutor::new(&mut m1, &cost)
            .run(&s, Phase::Unphased, Contention::Isolated)
            .unwrap();
        let hit_bomb = SmExecutor::new(&mut m2, &cost)
            .run(&s, Phase::Unphased, Contention::membomb())
            .unwrap();
        assert!((hit_iso.cycles - hit_bomb.cycles).abs() < 1e-9);
    }

    #[test]
    fn run_under_static_mix_matches_plain_run() {
        use crate::interference::{CorunnerProfile, InterferenceEngine};
        let cost = CostModel::tx1();
        let s: OpStream = (0..16).map(|i| Op::CachedLoad(l(i * 4))).collect();
        let engine = InterferenceEngine::new(&[CorunnerProfile::Membomb; 3], 1);
        let mut m1 = mem();
        let under = SmExecutor::new(&mut m1, &cost)
            .run_under(&s, Phase::Unphased, &engine, 0.0)
            .unwrap();
        let mut m2 = mem();
        let plain = SmExecutor::new(&mut m2, &cost)
            .run(&s, Phase::Unphased, Contention::membomb())
            .unwrap();
        assert_eq!(under, plain);
    }

    #[test]
    fn run_under_bursty_lands_between_idle_and_saturated() {
        use crate::interference::{CorunnerProfile, InterferenceEngine};
        let cost = CostModel::tx1();
        // All-miss stream (distinct sets, cold cache) so every op feels DRAM.
        let s: OpStream = (0..64).map(|i| Op::CachedLoad(l(i))).collect();
        let bursty = InterferenceEngine::new(
            &[CorunnerProfile::Bursty {
                duty: 0.5,
                period_cycles: 10_000.0,
            }; 3],
            7,
        );
        let mut m = mem();
        let mid = SmExecutor::new(&mut m, &cost)
            .run_under(&s, Phase::Unphased, &bursty, 0.0)
            .unwrap();
        let mut m_iso = mem();
        let iso = SmExecutor::new(&mut m_iso, &cost)
            .run(&s, Phase::Unphased, Contention::Isolated)
            .unwrap();
        let mut m_sat = mem();
        let sat = SmExecutor::new(&mut m_sat, &cost)
            .run(&s, Phase::Unphased, Contention::membomb())
            .unwrap();
        assert!(mid.cycles >= iso.cycles && mid.cycles <= sat.cycles);
        // With 3 half-duty bombs some window must actually burst.
        assert!(mid.cycles > iso.cycles);
    }

    #[test]
    fn alu_and_transl_are_pure_compute() {
        let mut m = mem();
        let cost = CostModel::tx1();
        let mut ex = SmExecutor::new(&mut m, &cost);
        let s: OpStream = vec![Op::Alu(10), Op::TranslAddr(6)].into_iter().collect();
        let out = ex.run(&s, Phase::CPhase, Contention::membomb()).unwrap();
        assert_eq!(out.levels.total(), 0);
        assert!((out.cycles - 16.0 * cost.alu_cpi).abs() < 1e-9);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = RunOutcome {
            cycles: 1.0,
            ..Default::default()
        };
        let b = RunOutcome {
            cycles: 2.0,
            prefetch_hits: 3,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.cycles, 3.0);
        assert_eq!(a.prefetch_hits, 3);
    }
}
