//! GPU micro-operation streams.
//!
//! Kernels are represented as streams of warp-level micro-ops at cache-line
//! granularity: one `CachedLoad` stands for a coalesced 32-lane warp load
//! covering one 128-byte line, one `Alu(n)` for `n` warp-wide arithmetic
//! instructions. This abstraction keeps the simulator fast while preserving
//! exactly what the paper's analysis needs: the sequence of line fills seen
//! by the cache, and instruction-count differences between the SPM and cache
//! code paths (paper Fig 2).

use prem_memsim::LineAddr;

/// One warp-level micro-operation.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Op {
    /// Coalesced global load through the cache hierarchy.
    CachedLoad(LineAddr),
    /// Coalesced global store through the cache hierarchy (write-allocate).
    CachedStore(LineAddr),
    /// Software prefetch of one line into the LLC (the paper's M-phase op).
    Prefetch(LineAddr),
    /// Load served by the scratchpad.
    SpmLoad(LineAddr),
    /// Store served by the scratchpad.
    SpmStore(LineAddr),
    /// Direct DRAM line read bypassing the caches (SPM DMA-in).
    DramLoad(LineAddr),
    /// Direct DRAM line write bypassing the caches (SPM DMA-out).
    DramStore(LineAddr),
    /// `n` warp-wide arithmetic instructions.
    Alu(u32),
    /// `n` warp-wide address-translation instructions (the SPM's
    /// `transl_addr` overhead from paper Fig 2). Counted separately from
    /// [`Op::Alu`] so the code-size comparison can be reported.
    TranslAddr(u32),
}

/// Static instruction counts of a stream (paper Fig 2 comparison).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Cached loads.
    pub cached_loads: u64,
    /// Cached stores.
    pub cached_stores: u64,
    /// Prefetches.
    pub prefetches: u64,
    /// Scratchpad loads.
    pub spm_loads: u64,
    /// Scratchpad stores.
    pub spm_stores: u64,
    /// Direct DRAM reads.
    pub dram_loads: u64,
    /// Direct DRAM writes.
    pub dram_stores: u64,
    /// Arithmetic warp instructions.
    pub alu: u64,
    /// Address-translation warp instructions.
    pub transl: u64,
}

impl OpCounts {
    /// All memory-touching instructions.
    pub fn memory_instructions(&self) -> u64 {
        self.cached_loads
            + self.cached_stores
            + self.prefetches
            + self.spm_loads
            + self.spm_stores
            + self.dram_loads
            + self.dram_stores
    }

    /// Every instruction, including arithmetic.
    pub fn total_instructions(&self) -> u64 {
        self.memory_instructions() + self.alu + self.transl
    }

    /// Data-movement *management* overhead: instructions that exist only to
    /// move or re-address data (everything except demand accesses and real
    /// arithmetic). This is the quantity paper Fig 2 contrasts between the
    /// SPM and cache code.
    pub fn management_instructions(&self) -> u64 {
        self.prefetches + self.spm_stores + self.dram_loads + self.dram_stores + self.transl
    }

    fn add(&mut self, op: &Op) {
        match op {
            Op::CachedLoad(_) => self.cached_loads += 1,
            Op::CachedStore(_) => self.cached_stores += 1,
            Op::Prefetch(_) => self.prefetches += 1,
            Op::SpmLoad(_) => self.spm_loads += 1,
            Op::SpmStore(_) => self.spm_stores += 1,
            Op::DramLoad(_) => self.dram_loads += 1,
            Op::DramStore(_) => self.dram_stores += 1,
            Op::Alu(n) => self.alu += *n as u64,
            Op::TranslAddr(n) => self.transl += *n as u64,
        }
    }
}

/// A sequence of micro-ops (one PREM phase, or a whole baseline kernel).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OpStream {
    ops: Vec<Op>,
}

impl OpStream {
    /// Creates an empty stream.
    pub fn new() -> Self {
        OpStream::default()
    }

    /// Creates a stream with preallocated capacity.
    pub fn with_capacity(n: usize) -> Self {
        OpStream {
            ops: Vec::with_capacity(n),
        }
    }

    /// Appends one op.
    pub fn push(&mut self, op: Op) -> &mut Self {
        self.ops.push(op);
        self
    }

    /// Appends all ops of `other`.
    pub fn extend_from(&mut self, other: &OpStream) -> &mut Self {
        self.ops.extend_from_slice(&other.ops);
        self
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Iterates over the ops.
    pub fn iter(&self) -> std::slice::Iter<'_, Op> {
        self.ops.iter()
    }

    /// Static instruction counts.
    pub fn counts(&self) -> OpCounts {
        let mut c = OpCounts::default();
        for op in &self.ops {
            c.add(op);
        }
        c
    }

    /// The distinct lines touched by memory ops, in first-touch order.
    pub fn touched_lines(&self) -> Vec<LineAddr> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for op in &self.ops {
            let line = match op {
                Op::CachedLoad(l)
                | Op::CachedStore(l)
                | Op::Prefetch(l)
                | Op::SpmLoad(l)
                | Op::SpmStore(l)
                | Op::DramLoad(l)
                | Op::DramStore(l) => Some(*l),
                Op::Alu(_) | Op::TranslAddr(_) => None,
            };
            if let Some(l) = line {
                if seen.insert(l) {
                    out.push(l);
                }
            }
        }
        out
    }
}

impl FromIterator<Op> for OpStream {
    fn from_iter<T: IntoIterator<Item = Op>>(iter: T) -> Self {
        OpStream {
            ops: iter.into_iter().collect(),
        }
    }
}

impl Extend<Op> for OpStream {
    fn extend<T: IntoIterator<Item = Op>>(&mut self, iter: T) {
        self.ops.extend(iter);
    }
}

impl<'a> IntoIterator for &'a OpStream {
    type Item = &'a Op;
    type IntoIter = std::slice::Iter<'a, Op>;
    fn into_iter(self) -> Self::IntoIter {
        self.ops.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(n: u64) -> LineAddr {
        LineAddr::new(n)
    }

    #[test]
    fn counts_are_exact() {
        let s: OpStream = vec![
            Op::CachedLoad(l(0)),
            Op::CachedStore(l(1)),
            Op::Prefetch(l(2)),
            Op::SpmLoad(l(3)),
            Op::SpmStore(l(4)),
            Op::DramLoad(l(5)),
            Op::DramStore(l(6)),
            Op::Alu(3),
            Op::TranslAddr(2),
        ]
        .into_iter()
        .collect();
        let c = s.counts();
        assert_eq!(c.cached_loads, 1);
        assert_eq!(c.cached_stores, 1);
        assert_eq!(c.prefetches, 1);
        assert_eq!(c.spm_loads, 1);
        assert_eq!(c.spm_stores, 1);
        assert_eq!(c.dram_loads, 1);
        assert_eq!(c.dram_stores, 1);
        assert_eq!(c.alu, 3);
        assert_eq!(c.transl, 2);
        assert_eq!(c.memory_instructions(), 7);
        assert_eq!(c.total_instructions(), 12);
    }

    #[test]
    fn management_overhead_reflects_fig2() {
        // SPM copy of one line: DRAM read + SPM write + 2 transl instrs.
        let spm: OpStream = vec![Op::DramLoad(l(0)), Op::SpmStore(l(0)), Op::TranslAddr(2)]
            .into_iter()
            .collect();
        // Cache path: a single prefetch.
        let llc: OpStream = vec![Op::Prefetch(l(0))].into_iter().collect();
        assert!(spm.counts().management_instructions() > llc.counts().management_instructions());
        assert_eq!(llc.counts().management_instructions(), 1);
    }

    #[test]
    fn touched_lines_deduplicates_in_order() {
        let s: OpStream = vec![
            Op::CachedLoad(l(5)),
            Op::Alu(1),
            Op::CachedLoad(l(3)),
            Op::CachedStore(l(5)),
        ]
        .into_iter()
        .collect();
        assert_eq!(s.touched_lines(), vec![l(5), l(3)]);
    }

    #[test]
    fn extend_concatenates() {
        let mut a = OpStream::new();
        a.push(Op::Alu(1));
        let mut b = OpStream::new();
        b.push(Op::Alu(2));
        a.extend_from(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.counts().alu, 3);
    }
}
