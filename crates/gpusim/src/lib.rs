//! # prem-gpusim — GPU SoC execution-timing model
//!
//! Executes warp-level micro-op streams ([`OpStream`]) against the memory
//! hierarchy from [`prem_memsim`], charging cycles from a throughput-oriented
//! [`CostModel`] (latency hidden by memory-level parallelism, bandwidth
//! charged in full). [`PlatformConfig::tx1`] assembles the NVIDIA Jetson
//! TX1-like platform the paper evaluates on.
//!
//! ```
//! use prem_gpusim::{Op, OpStream, PlatformConfig, SmExecutor};
//! use prem_memsim::{Contention, LineAddr, Phase};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut platform = PlatformConfig::tx1().build();
//! let stream: OpStream = (0..64).map(|i| Op::CachedLoad(LineAddr::new(i))).collect();
//! let out = SmExecutor::new(&mut platform.mem, &platform.cost)
//!     .run(&stream, Phase::Unphased, Contention::Isolated)?;
//! assert_eq!(out.levels.dram, 64); // all cold misses
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod cost;
mod cpu;
mod interference;
mod op;
mod platform;
mod sm;

pub use cost::CostModel;
pub use cpu::{CpuConfig, Scenario, INTERFERENCE_MIX};
pub use interference::{CorunnerProfile, InterferenceEngine};
pub use op::{Op, OpCounts, OpStream};
pub use platform::{Platform, PlatformConfig};
pub use sm::{ExecError, LevelCounts, RunOutcome, SmExecutor};
