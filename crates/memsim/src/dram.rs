//! Shared-DRAM timing and contention model.
//!
//! The TX1 shares a single LPDDR4 DRAM between CPU cluster and GPU. The
//! model charges each line transfer a base service latency plus a
//! serialization term from the finite bandwidth, and degrades both terms
//! when a co-runner (the CPU "memory bomb") is active:
//!
//! * serialization: the victim only gets a `1 / (1 + intensity)` share of
//!   bandwidth (fair round-robin arbitration against one aggressor stream);
//! * latency: queuing behind in-flight co-runner requests adds
//!   `intensity × queue_penalty` cycles.
//!
//! `intensity ∈ [0, 1]` is the co-runner's traffic level (1.0 = saturating).
//! The model is deliberately coarse: the paper's argument needs only that
//! unprotected DRAM accesses become substantially slower under interference
//! (measured at up to ~2.5× per-kernel, ~245 % average on the TX1), and the
//! defaults are calibrated to reproduce those aggregates.

/// Memory-traffic contention scenario seen by one access stream.
#[derive(Copy, Clone, PartialEq, Debug, Default)]
pub enum Contention {
    /// The stream has the memory system to itself (e.g. inside a protected
    /// M-phase, or an isolation measurement).
    #[default]
    Isolated,
    /// A co-runner generates DRAM traffic with the given intensity in
    /// `[0, 1]`.
    CoRun {
        /// Aggressor traffic level: 0.0 = idle, 1.0 = bandwidth-saturating.
        intensity: f64,
    },
}

impl Contention {
    /// Full-blast co-runner (the paper's interference scenario).
    pub fn membomb() -> Self {
        Contention::CoRun { intensity: 1.0 }
    }

    /// The aggressor intensity (0.0 when isolated).
    pub fn intensity(self) -> f64 {
        match self {
            Contention::Isolated => 0.0,
            Contention::CoRun { intensity } => intensity.clamp(0.0, 1.0),
        }
    }
}

/// DRAM timing parameters (cycles at the GPU clock).
#[derive(Clone, Debug, PartialEq)]
pub struct DramConfig {
    latency_cycles: f64,
    bytes_per_cycle: f64,
    queue_penalty_cycles: f64,
    bw_degradation: f64,
}

impl DramConfig {
    /// Creates a DRAM timing model.
    ///
    /// * `latency_cycles` — isolated service latency of one request.
    /// * `bytes_per_cycle` — peak bandwidth at the GPU clock.
    /// * `queue_penalty_cycles` — extra latency at aggressor intensity 1.0.
    /// * `bw_degradation` — bandwidth-share factor `k`: the victim stream
    ///   gets a `1 / (1 + k·intensity)` share of the bus. `k > 1` models
    ///   the row-buffer and scheduling unfairness measured on Tegra-class
    ///   memory controllers (Cavicchioli et al., ETFA'17).
    pub fn new(
        latency_cycles: f64,
        bytes_per_cycle: f64,
        queue_penalty_cycles: f64,
        bw_degradation: f64,
    ) -> Self {
        assert!(
            latency_cycles >= 0.0
                && bytes_per_cycle > 0.0
                && queue_penalty_cycles >= 0.0
                && bw_degradation >= 0.0
        );
        DramConfig {
            latency_cycles,
            bytes_per_cycle,
            queue_penalty_cycles,
            bw_degradation,
        }
    }

    /// TX1-like LPDDR4 defaults at a 1 GHz GPU clock: 400-cycle latency,
    /// 12.8 B/cycle (≈12.8 GB/s), and a saturating CPU co-runner that adds
    /// 3200 cycles of queuing and cuts the victim's bandwidth share to 1/3
    /// — calibrated to the ≈245 % average baseline slowdown the paper
    /// reports on the TX1 (§V-B).
    pub fn tx1() -> Self {
        DramConfig::new(400.0, 12.8, 3200.0, 2.0)
    }

    /// TX2-like LPDDR4 defaults at a 1.3 GHz GPU clock: the 128-bit bus
    /// roughly doubles the achievable bandwidth per GPU cycle (≈23 B/cycle
    /// after the same ≈50 % efficiency derating as the TX1 calibration),
    /// with slightly deeper queuing in cycles at the faster clock.
    pub fn tx2() -> Self {
        DramConfig::new(480.0, 23.0, 3200.0, 2.0)
    }

    /// Xavier-like LPDDR4x defaults at a ≈1.4 GHz GPU clock: a 256-bit bus
    /// (≈50 B/cycle derated) and a memory controller with better QoS
    /// isolation, modeled as a lower bandwidth-degradation factor.
    pub fn xavier_like() -> Self {
        DramConfig::new(560.0, 50.0, 3600.0, 1.5)
    }

    /// Isolated service latency (cycles).
    pub fn latency_cycles(&self) -> f64 {
        self.latency_cycles
    }

    /// Peak bandwidth (bytes per cycle).
    pub fn bytes_per_cycle(&self) -> f64 {
        self.bytes_per_cycle
    }

    /// Queue penalty at intensity 1.0 (cycles).
    pub fn queue_penalty_cycles(&self) -> f64 {
        self.queue_penalty_cycles
    }

    /// Effective request latency under `contention` (cycles).
    pub fn effective_latency(&self, contention: Contention) -> f64 {
        self.latency_cycles + contention.intensity() * self.queue_penalty_cycles
    }

    /// Serialization time of one `bytes`-sized transfer under `contention`
    /// (cycles): the transfer only gets a `1 / (1 + k·intensity)` share of
    /// the bus.
    pub fn serialization(&self, bytes: usize, contention: Contention) -> f64 {
        let share = 1.0 / (1.0 + self.bw_degradation * contention.intensity());
        bytes as f64 / (self.bytes_per_cycle * share)
    }
}

/// DRAM traffic counters for one agent.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Lines read from DRAM.
    pub line_reads: u64,
    /// Lines written back to DRAM.
    pub line_writes: u64,
}

impl DramStats {
    /// Total line transfers.
    pub fn total(&self) -> u64 {
        self.line_reads + self.line_writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isolated_has_no_penalty() {
        let d = DramConfig::tx1();
        assert_eq!(d.effective_latency(Contention::Isolated), 400.0);
        let ser = d.serialization(128, Contention::Isolated);
        assert!((ser - 10.0).abs() < 1e-9);
    }

    #[test]
    fn membomb_degrades_bandwidth_and_adds_queueing() {
        let d = DramConfig::tx1();
        assert_eq!(d.effective_latency(Contention::membomb()), 3600.0);
        let ser = d.serialization(128, Contention::membomb());
        assert!((ser - 30.0).abs() < 1e-9); // 1/3 bandwidth share
    }

    #[test]
    fn intensity_is_clamped() {
        let c = Contention::CoRun { intensity: 7.0 };
        assert_eq!(c.intensity(), 1.0);
        let c = Contention::CoRun { intensity: -1.0 };
        assert_eq!(c.intensity(), 0.0);
    }

    #[test]
    fn contention_monotone_in_intensity() {
        let d = DramConfig::tx1();
        let mut prev = 0.0;
        for i in 0..=10 {
            let c = Contention::CoRun {
                intensity: i as f64 / 10.0,
            };
            let cost = d.effective_latency(c) + d.serialization(128, c);
            assert!(cost >= prev);
            prev = cost;
        }
    }

    #[test]
    #[should_panic]
    fn zero_bandwidth_rejected() {
        DramConfig::new(100.0, 0.0, 0.0, 1.0);
    }
}
