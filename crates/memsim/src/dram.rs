//! Shared-DRAM timing, bus arbitration and contention model.
//!
//! The TX1 shares a single LPDDR4 DRAM between CPU cluster and GPU. The
//! model charges each line transfer a base service latency plus a
//! serialization term from the finite bandwidth, and degrades both terms
//! when CPU co-runners are active:
//!
//! * serialization: the victim only gets a `1 / (1 + k·pressure)` share of
//!   bandwidth (fair round-robin arbitration against the aggressor
//!   streams);
//! * latency: queuing behind in-flight co-runner requests adds
//!   `pressure × queue_penalty` cycles.
//!
//! [`Contention`] no longer carries an opaque scalar: it carries the
//! **aggregate demand** of the concurrent co-runner streams, in units of
//! one bandwidth-saturating stream. The *pressure* applied to the victim
//! is that demand normalized by [`CALIBRATED_DEMAND`] — the aggregate
//! demand of the paper's measured interference scenario (three membomb
//! cores on the A57 cluster). Pressure 1.0 therefore reproduces exactly
//! the calibrated degradation, pressure 0.0 the isolated timings, and
//! demand beyond the calibration point keeps degrading the victim
//! (deeper queuing, smaller round-robin share) instead of clamping.
//!
//! The model is deliberately coarse: the paper's argument needs only that
//! unprotected DRAM accesses become substantially slower under interference
//! (measured at up to ~2.5× per-kernel, ~245 % average on the TX1), and the
//! defaults are calibrated to reproduce those aggregates.

/// Aggregate co-runner demand (in saturating-stream units) at which the
/// calibrated `queue_penalty_cycles` / `bw_degradation` parameters apply.
///
/// The paper's interference scenario runs three memory-bomb tasks on the
/// CPU cluster; the TX1 calibration in [`DramConfig::tx1`] reproduces the
/// slowdowns measured under exactly that load.
pub const CALIBRATED_DEMAND: f64 = 3.0;

/// Memory-traffic contention seen by one access stream on the shared bus.
#[derive(Copy, Clone, PartialEq, Debug, Default)]
pub enum Contention {
    /// The stream has the memory system to itself (e.g. inside a protected
    /// M-phase, or an isolation measurement).
    #[default]
    Isolated,
    /// Co-runners are concurrently demanding DRAM bandwidth.
    Demand {
        /// Aggregate co-runner demand in saturating-stream units: 1.0 is
        /// one CPU core issuing back-to-back DRAM requests.
        demand: f64,
    },
}

impl Contention {
    /// The paper's full interference scenario: [`CALIBRATED_DEMAND`] worth
    /// of memory-bomb traffic (three saturating CPU cores).
    pub fn membomb() -> Self {
        Contention::Demand {
            demand: CALIBRATED_DEMAND,
        }
    }

    /// Contention from an aggregate co-runner demand; non-positive demand
    /// normalizes to [`Contention::Isolated`].
    pub fn from_demand(demand: f64) -> Self {
        if demand <= 0.0 {
            Contention::Isolated
        } else {
            Contention::Demand { demand }
        }
    }

    /// The aggregate co-runner demand (0.0 when isolated).
    pub fn demand(self) -> f64 {
        match self {
            Contention::Isolated => 0.0,
            Contention::Demand { demand } => demand.max(0.0),
        }
    }

    /// Interference pressure on the victim stream: demand normalized to
    /// the calibration point. 0.0 = isolated, 1.0 = the paper's measured
    /// interference scenario; values above 1.0 model co-runner mixes
    /// heavier than the calibration load and are deliberately unclamped so
    /// growing a co-runner mix keeps degrading the victim monotonically.
    pub fn pressure(self) -> f64 {
        self.demand() / CALIBRATED_DEMAND
    }
}

/// DRAM timing parameters (cycles at the GPU clock).
#[derive(Clone, Debug, PartialEq)]
pub struct DramConfig {
    latency_cycles: f64,
    bytes_per_cycle: f64,
    queue_penalty_cycles: f64,
    bw_degradation: f64,
}

impl DramConfig {
    /// Creates a DRAM timing model.
    ///
    /// * `latency_cycles` — isolated service latency of one request.
    /// * `bytes_per_cycle` — peak bandwidth at the GPU clock.
    /// * `queue_penalty_cycles` — extra latency at pressure 1.0.
    /// * `bw_degradation` — bandwidth-share factor `k`: the victim stream
    ///   gets a `1 / (1 + k·pressure)` share of the bus. `k > 1` models
    ///   the row-buffer and scheduling unfairness measured on Tegra-class
    ///   memory controllers (Cavicchioli et al., ETFA'17).
    pub fn new(
        latency_cycles: f64,
        bytes_per_cycle: f64,
        queue_penalty_cycles: f64,
        bw_degradation: f64,
    ) -> Self {
        assert!(
            latency_cycles >= 0.0
                && bytes_per_cycle > 0.0
                && queue_penalty_cycles >= 0.0
                && bw_degradation >= 0.0
        );
        DramConfig {
            latency_cycles,
            bytes_per_cycle,
            queue_penalty_cycles,
            bw_degradation,
        }
    }

    /// TX1-like LPDDR4 defaults at a 1 GHz GPU clock: 400-cycle latency,
    /// 12.8 B/cycle (≈12.8 GB/s), and a saturating CPU co-runner mix that
    /// adds 3200 cycles of queuing and cuts the victim's bandwidth share to
    /// 1/3 — calibrated to the ≈245 % average baseline slowdown the paper
    /// reports on the TX1 (§V-B).
    pub fn tx1() -> Self {
        DramConfig::new(400.0, 12.8, 3200.0, 2.0)
    }

    /// TX2-like LPDDR4 defaults at a 1.3 GHz GPU clock: the 128-bit bus
    /// roughly doubles the achievable bandwidth per GPU cycle (≈23 B/cycle
    /// after the same ≈50 % efficiency derating as the TX1 calibration),
    /// with slightly deeper queuing in cycles at the faster clock.
    pub fn tx2() -> Self {
        DramConfig::new(480.0, 23.0, 3200.0, 2.0)
    }

    /// Xavier-like LPDDR4x defaults at a ≈1.4 GHz GPU clock: a 256-bit bus
    /// (≈50 B/cycle derated) and a memory controller with better QoS
    /// isolation, modeled as a lower bandwidth-degradation factor.
    pub fn xavier_like() -> Self {
        DramConfig::new(560.0, 50.0, 3600.0, 1.5)
    }

    /// Isolated service latency (cycles).
    pub fn latency_cycles(&self) -> f64 {
        self.latency_cycles
    }

    /// Peak bandwidth (bytes per cycle).
    pub fn bytes_per_cycle(&self) -> f64 {
        self.bytes_per_cycle
    }

    /// Queue penalty at pressure 1.0 (cycles).
    pub fn queue_penalty_cycles(&self) -> f64 {
        self.queue_penalty_cycles
    }

    /// Round-robin bus share granted to the victim stream under
    /// `contention`: `1 / (1 + k·pressure)`.
    pub fn victim_share(&self, contention: Contention) -> f64 {
        1.0 / (1.0 + self.bw_degradation * contention.pressure())
    }

    /// Effective request latency under `contention` (cycles).
    pub fn effective_latency(&self, contention: Contention) -> f64 {
        self.latency_cycles + contention.pressure() * self.queue_penalty_cycles
    }

    /// Serialization time of one `bytes`-sized transfer under `contention`
    /// (cycles): the transfer only gets the [`DramConfig::victim_share`]
    /// of the bus.
    pub fn serialization(&self, bytes: usize, contention: Contention) -> f64 {
        let share = self.victim_share(contention);
        bytes as f64 / (self.bytes_per_cycle * share)
    }

    /// Accounts one shared-bus window of `cycles` in which the victim
    /// moved `victim_bytes` under `contention`: the co-runner streams
    /// absorb bus capacity up to their demand, bounded by what the victim
    /// left on the table. This is the bandwidth ledger the interference
    /// reports use to show how much traffic the co-runner actors actually
    /// pushed, not just how much they slowed the victim down.
    pub fn account_window(
        &self,
        cycles: f64,
        victim_bytes: f64,
        contention: Contention,
    ) -> BusWindow {
        let capacity = self.bytes_per_cycle * cycles;
        if capacity <= 0.0 {
            return BusWindow::default();
        }
        let victim_util = (victim_bytes / capacity).min(1.0);
        let corunner_util = contention.demand().min(1.0 - victim_util).max(0.0);
        BusWindow {
            cycles,
            victim_bytes,
            corunner_bytes: capacity * corunner_util,
        }
    }
}

/// Byte-level accounting of one shared-bus window (see
/// [`DramConfig::account_window`]).
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct BusWindow {
    /// Window length in cycles.
    pub cycles: f64,
    /// Bytes the victim (GPU) stream moved in the window.
    pub victim_bytes: f64,
    /// Bytes the co-runner streams absorbed in the window.
    pub corunner_bytes: f64,
}

impl BusWindow {
    /// Accumulates another window into this ledger.
    pub fn merge(&mut self, other: &BusWindow) {
        self.cycles += other.cycles;
        self.victim_bytes += other.victim_bytes;
        self.corunner_bytes += other.corunner_bytes;
    }

    /// Mean co-runner throughput over the accounted windows (bytes per
    /// cycle), `0.0` when nothing was accounted.
    pub fn corunner_bytes_per_cycle(&self) -> f64 {
        if self.cycles <= 0.0 {
            0.0
        } else {
            self.corunner_bytes / self.cycles
        }
    }
}

/// DRAM traffic counters for one agent.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Lines read from DRAM.
    pub line_reads: u64,
    /// Lines written back to DRAM.
    pub line_writes: u64,
}

impl DramStats {
    /// Total line transfers.
    pub fn total(&self) -> u64 {
        self.line_reads + self.line_writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isolated_has_no_penalty() {
        let d = DramConfig::tx1();
        assert_eq!(d.effective_latency(Contention::Isolated), 400.0);
        let ser = d.serialization(128, Contention::Isolated);
        assert!((ser - 10.0).abs() < 1e-9);
    }

    #[test]
    fn membomb_degrades_bandwidth_and_adds_queueing() {
        let d = DramConfig::tx1();
        assert_eq!(d.effective_latency(Contention::membomb()), 3600.0);
        let ser = d.serialization(128, Contention::membomb());
        assert!((ser - 30.0).abs() < 1e-9); // 1/3 bandwidth share
    }

    #[test]
    fn membomb_is_the_calibration_point() {
        // Three saturating streams produce pressure exactly 1.0, so the
        // calibrated penalties apply unscaled — the invariant that keeps
        // the paper's interference figures bit-identical.
        assert_eq!(Contention::membomb().demand(), CALIBRATED_DEMAND);
        assert_eq!(Contention::membomb().pressure(), 1.0);
        assert_eq!(
            Contention::from_demand(CALIBRATED_DEMAND),
            Contention::membomb()
        );
    }

    #[test]
    fn demand_is_floored_not_capped() {
        assert_eq!(Contention::from_demand(-1.0), Contention::Isolated);
        assert_eq!(Contention::from_demand(0.0), Contention::Isolated);
        assert_eq!(Contention::Demand { demand: -2.0 }.demand(), 0.0);
        // Demand beyond the calibration point keeps hurting the victim.
        let d = DramConfig::tx1();
        let heavy = Contention::from_demand(6.0);
        assert!(d.effective_latency(heavy) > d.effective_latency(Contention::membomb()));
        assert!(d.victim_share(heavy) < d.victim_share(Contention::membomb()));
    }

    #[test]
    fn contention_monotone_in_demand() {
        let d = DramConfig::tx1();
        let mut prev = 0.0;
        for i in 0..=12 {
            let c = Contention::from_demand(i as f64 / 2.0);
            let cost = d.effective_latency(c) + d.serialization(128, c);
            assert!(cost >= prev);
            prev = cost;
        }
    }

    #[test]
    fn bus_window_accounts_corunner_throughput() {
        let d = DramConfig::tx1();
        // Victim uses 1/4 of the capacity; one saturating co-runner can
        // absorb at most the remaining 3/4.
        let capacity = d.bytes_per_cycle() * 1000.0;
        let w = d.account_window(1000.0, capacity / 4.0, Contention::from_demand(1.0));
        assert!((w.corunner_bytes - capacity * 0.75).abs() < 1e-9);
        // A light co-runner is demand-bound instead.
        let w = d.account_window(1000.0, capacity / 4.0, Contention::from_demand(0.5));
        assert!((w.corunner_bytes - capacity * 0.5).abs() < 1e-9);
        // Isolation moves no co-runner bytes.
        let w = d.account_window(1000.0, capacity / 4.0, Contention::Isolated);
        assert_eq!(w.corunner_bytes, 0.0);
    }

    #[test]
    fn bus_window_merge_and_rates() {
        let mut a = BusWindow {
            cycles: 100.0,
            victim_bytes: 640.0,
            corunner_bytes: 320.0,
        };
        a.merge(&BusWindow {
            cycles: 100.0,
            victim_bytes: 0.0,
            corunner_bytes: 320.0,
        });
        assert_eq!(a.cycles, 200.0);
        assert!((a.corunner_bytes_per_cycle() - 3.2).abs() < 1e-12);
        assert_eq!(BusWindow::default().corunner_bytes_per_cycle(), 0.0);
    }

    #[test]
    #[should_panic]
    fn zero_bandwidth_rejected() {
        DramConfig::new(100.0, 0.0, 0.0, 1.0);
    }
}
