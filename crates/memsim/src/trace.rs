//! The cache-event instrumentation layer: [`TraceSink`].
//!
//! Every component that touches the LLC — the SM executor's cached path,
//! the co-runner interference engine's pollution loop, the PREM executor's
//! interval machinery — offers a `*_traced` variant generic over a
//! [`TraceSink`]. The untraced entry points delegate to those variants with
//! [`NullSink`], whose provided no-op methods inline away entirely: the
//! monomorphized untraced path is byte-for-byte the pre-instrumentation
//! code, so enabling the hooks costs nothing unless a recording sink is
//! actually plugged in.
//!
//! The hooks deliberately carry *mechanism-level* information (the access,
//! its outcome, the displaced victim with owner/alive/dirty attribution)
//! rather than a pre-baked event type: the `prem-trace` crate builds its
//! serializable event model on top of these callbacks without this crate
//! having to know about trace formats.

use crate::addr::LineAddr;
use crate::cache::{AccessKind, AccessOutcome};
use crate::stats::Phase;

/// Receiver of cache-level events during an instrumented run.
///
/// All methods are provided as no-ops so sinks only override what they
/// record. Implementations must not perturb simulation state — sinks are
/// observers; the contract (asserted by golden and property tests) is that
/// a run with any sink attached produces the same `CacheStats`, timings
/// and artifacts as an untraced run.
pub trait TraceSink {
    /// Whether this sink observes individual events. Defaults to `true`;
    /// only [`NullSink`] overrides it to `false`, which licenses executors
    /// to take *event-invisible* shortcuts — accounting provably identical
    /// work (e.g. repeated all-hit prefetch rounds) analytically instead
    /// of simulating it op by op. Recording sinks must leave this `true`
    /// so captures stay complete: a replayed trace needs every access the
    /// run logically performed, not just the ones the live run bothered
    /// to simulate.
    const RECORDS: bool = true;

    /// Whether the sink accepts *deduplicated* delivery of repeated
    /// M-phase passes. Fixed-repetition PREM staging runs the same input
    /// op sequence every round, and outcomes are not part of the hook
    /// payload a sequence-capturing sink stores — so recording each round
    /// is storing the same bytes `r` times. A sink that sets this opts in
    /// to observing only the **first** round of a fixed repetition; the
    /// executor runs the repeats unobserved (which also licenses its
    /// all-hit round shortcut on them). Only set this when every consumer
    /// of the recorded stream knows the round count and reconstructs the
    /// repeats itself; event-faithful sinks (trace capture) must leave it
    /// `false`.
    const DEDUP_M_ROUNDS: bool = false;

    /// One access on the cached path completed with `outcome`. Misses
    /// imply a fill of `line` into `outcome.way`; a displaced victim, if
    /// any, rides along in `outcome.evicted` with owner/alive/dirty
    /// attribution (dirty victims imply a writeback).
    #[inline]
    fn on_access(
        &mut self,
        line: LineAddr,
        kind: AccessKind,
        phase: Phase,
        outcome: &AccessOutcome,
    ) {
        let _ = (line, kind, phase, outcome);
    }

    /// A new PREM interval began (self-eviction epochs advanced).
    #[inline]
    fn on_interval(&mut self) {}

    /// A phase transition at schedule time `cycles`: subsequent accesses
    /// run under `phase`. Carries its own timestamp (like
    /// [`TraceSink::on_op_issue`]) so emitters need no clock-refresh call
    /// ordered before it.
    #[inline]
    fn on_phase(&mut self, phase: Phase, cycles: f64) {
        let _ = (phase, cycles);
    }

    /// The next operation issues at schedule time `cycles` (op-issue
    /// timestamp). Emitted by the executor before each op it charges.
    #[inline]
    fn on_op_issue(&mut self, cycles: f64) {
        let _ = cycles;
    }

    /// A pure-compute op (`n` warp arithmetic instructions) was charged.
    /// Emitted by the executor so replay engines can reproduce the exact
    /// cycle-accumulation sequence of a run, compute ops included.
    #[inline]
    fn on_compute(&mut self, n: u64) {
        let _ = n;
    }

    /// A direct DRAM line transfer bypassing the caches (SPM DMA).
    #[inline]
    fn on_dram_transfer(&mut self, line: LineAddr, write: bool) {
        let _ = (line, write);
    }
}

/// The zero-cost default sink: records nothing.
///
/// Untraced entry points (`Cache::access`, `SmExecutor::run`, `run_prem`)
/// delegate to their traced counterparts with a `NullSink`; the provided
/// no-op methods monomorphize to nothing.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    const RECORDS: bool = false;
}

/// A minimal diagnostic sink counting events by kind — useful in tests
/// and for sizing captures before recording them.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CountingSink {
    /// Accesses observed (hits + misses).
    pub accesses: u64,
    /// Accesses that missed (fills).
    pub fills: u64,
    /// Victims displaced by fills.
    pub evictions: u64,
    /// Dirty victims (writebacks).
    pub writebacks: u64,
    /// Interval boundaries observed.
    pub intervals: u64,
    /// Phase transitions observed.
    pub phases: u64,
    /// Direct DRAM transfers observed.
    pub dram_transfers: u64,
}

impl TraceSink for CountingSink {
    fn on_access(
        &mut self,
        _line: LineAddr,
        _kind: AccessKind,
        _phase: Phase,
        outcome: &AccessOutcome,
    ) {
        self.accesses += 1;
        if !outcome.hit {
            self.fills += 1;
        }
        if let Some(ev) = outcome.evicted {
            self.evictions += 1;
            if ev.dirty {
                self.writebacks += 1;
            }
        }
    }

    fn on_interval(&mut self) {
        self.intervals += 1;
    }

    fn on_phase(&mut self, _phase: Phase, _cycles: f64) {
        self.phases += 1;
    }

    fn on_dram_transfer(&mut self, _line: LineAddr, _write: bool) {
        self.dram_transfers += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{Cache, CacheConfig};

    #[test]
    fn null_sink_observes_nothing_and_changes_nothing() {
        let cfg = CacheConfig::new(512, 2, 64);
        let mut plain = Cache::new(cfg.clone());
        let mut traced = Cache::new(cfg);
        let mut sink = NullSink;
        for i in 0..64u64 {
            let a = plain.access(LineAddr::new(i % 12), AccessKind::Read, Phase::MPhase);
            let b = traced.access_traced(
                LineAddr::new(i % 12),
                AccessKind::Read,
                Phase::MPhase,
                &mut sink,
            );
            assert_eq!(a, b);
        }
        assert_eq!(plain.stats(), traced.stats());
    }

    #[test]
    fn counting_sink_tallies_outcomes() {
        let mut c = Cache::new(CacheConfig::new(512, 2, 64));
        let mut sink = CountingSink::default();
        // Fill set 0 (lines 0, 4), then displace with a dirty-victim miss.
        c.access_traced(
            LineAddr::new(0),
            AccessKind::Write,
            Phase::MPhase,
            &mut sink,
        );
        c.access_traced(LineAddr::new(4), AccessKind::Read, Phase::MPhase, &mut sink);
        c.access_traced(LineAddr::new(8), AccessKind::Read, Phase::CPhase, &mut sink);
        sink.on_interval();
        sink.on_phase(Phase::CPhase, 100.0);
        sink.on_dram_transfer(LineAddr::new(1), true);
        assert_eq!(sink.accesses, 3);
        assert_eq!(sink.fills, 3);
        assert_eq!(sink.evictions, 1);
        assert_eq!(sink.writebacks, 1);
        assert_eq!(sink.intervals, 1);
        assert_eq!(sink.phases, 1);
        assert_eq!(sink.dram_transfers, 1);
    }
}
