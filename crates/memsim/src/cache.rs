//! Set-associative cache simulator with phase-tagged statistics.
//!
//! The model is line-accurate: every access probes the tag array, misses
//! select a victim through the configured [`Policy`] and install the new
//! line. Nothing about timing lives here — latency is charged by the
//! platform cost model in `prem-gpusim` based on the outcomes this module
//! reports.

use crate::addr::LineAddr;
use crate::replacement::{Policy, Replacer};
use crate::rng::Rng;
use crate::stats::{CacheStats, Phase};
use crate::trace::TraceSink;

/// What an access does to the cache contents.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum AccessKind {
    /// Demand load.
    Read,
    /// Demand store (write-allocate, write-back).
    Write,
    /// Software prefetch: fills like a read, data not consumed.
    Prefetch,
}

/// A line displaced by a fill.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Evicted {
    /// The displaced line.
    pub line: LineAddr,
    /// Whether the line was filled during the current interval — an
    /// eviction of such a line is a *self-eviction* in the paper's sense.
    pub alive: bool,
    /// Whether the line was dirty (causes a writeback).
    pub dirty: bool,
    /// Whether the victim was owned by co-runner (foreign) traffic.
    /// Displacing a foreign line is the aggressor's own problem: it is
    /// neither a self-eviction nor pollution damage, whichever phase
    /// caused the fill.
    pub foreign: bool,
}

/// Outcome of a single cache access.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct AccessOutcome {
    /// `true` when the line was already present.
    pub hit: bool,
    /// The victim displaced by the fill, if the access missed in a full set.
    pub evicted: Option<Evicted>,
    /// The way the line resides in after the access.
    pub way: usize,
}

/// Geometry and policy of a cache.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    size_bytes: usize,
    ways: usize,
    line_bytes: usize,
    policy: Policy,
    seed: u64,
    index_hash: bool,
}

impl CacheConfig {
    /// Creates a configuration; validation happens in [`Cache::new`].
    ///
    /// Defaults: LRU policy, seed 0xC0FFEE, modulo set indexing.
    pub fn new(size_bytes: usize, ways: usize, line_bytes: usize) -> Self {
        CacheConfig {
            size_bytes,
            ways,
            line_bytes,
            policy: Policy::Lru,
            seed: 0xC0FFEE,
            index_hash: false,
        }
    }

    /// Enables XOR set-index hashing. NVIDIA L2 caches hash upper address
    /// bits into the set index (observed by Mei et al.), which spreads
    /// power-of-two-strided accesses (e.g. matrix columns) across sets
    /// instead of aliasing them into a few.
    pub fn index_hash(mut self, enable: bool) -> Self {
        self.index_hash = enable;
        self
    }

    /// Whether XOR set-index hashing is enabled.
    pub fn has_index_hash(&self) -> bool {
        self.index_hash
    }

    /// Sets the replacement policy.
    pub fn policy(mut self, policy: Policy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the RNG seed used by randomized policies.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The RNG seed randomized policies draw from (trace headers persist
    /// it so replay can rebuild an identically seeded cache).
    pub fn seed_value(&self) -> u64 {
        self.seed
    }

    /// Total capacity in bytes.
    pub fn size_bytes(&self) -> usize {
        self.size_bytes
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> usize {
        self.line_bytes
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.size_bytes / (self.ways * self.line_bytes)
    }

    /// Total number of lines.
    pub fn lines(&self) -> usize {
        self.size_bytes / self.line_bytes
    }

    /// The configured replacement policy.
    pub fn policy_ref(&self) -> &Policy {
        &self.policy
    }

    /// Set index of `line` under this geometry (modulo or XOR-hashed,
    /// matching [`Cache::set_of`]). Exposed on the config so trace
    /// analyses can reconstruct set residency from a captured header
    /// without instantiating a cache.
    pub fn set_index(&self, line: LineAddr) -> usize {
        let sets = self.sets();
        let raw = line.raw();
        if self.index_hash {
            let bits = sets.trailing_zeros();
            let folded = raw ^ (raw >> bits) ^ (raw >> (2 * bits));
            (folded as usize) & (sets - 1)
        } else {
            (raw as usize) & (sets - 1)
        }
    }

    /// Capacity (bytes) of the "good" ways only — the usable capacity under
    /// the paper's interval-sizing rule (§IV): `size × good_ways / ways`.
    pub fn good_capacity_bytes(&self) -> usize {
        let good = self.policy.good_ways(self.ways).len();
        self.size_bytes / self.ways * good
    }

    /// Validates the geometry/policy combination without building a
    /// cache — the check [`Cache::new`] panics on. Public so boundaries
    /// that deserialize configs from untrusted bytes (the trace format)
    /// can reject corrupt geometry as a recoverable error instead of
    /// panicking downstream.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !self.line_bytes.is_power_of_two() || self.line_bytes == 0 {
            return Err(format!(
                "line size {} must be a power of two",
                self.line_bytes
            ));
        }
        if self.ways == 0 {
            return Err("cache must have at least one way".into());
        }
        if self.size_bytes == 0 || !self.size_bytes.is_multiple_of(self.ways * self.line_bytes) {
            return Err(format!(
                "size {} not divisible into {} ways of {}-byte lines",
                self.size_bytes, self.ways, self.line_bytes
            ));
        }
        let sets = self.sets();
        if !sets.is_power_of_two() {
            return Err(format!("set count {sets} must be a power of two"));
        }
        self.policy.validate(self.ways)
    }
}

/// A set-associative cache.
///
/// ```
/// use prem_memsim::{Cache, CacheConfig, AccessKind, Phase, Policy, LineAddr};
/// let mut c = Cache::new(CacheConfig::new(1024, 2, 64).policy(Policy::Lru));
/// let miss = c.access(LineAddr::new(3), AccessKind::Read, Phase::MPhase);
/// assert!(!miss.hit);
/// let hit = c.access(LineAddr::new(3), AccessKind::Read, Phase::CPhase);
/// assert!(hit.hit);
/// assert_eq!(c.stats().cpmr(), 0.0);
/// ```
#[derive(Clone, Debug)]
pub struct Cache {
    cfg: CacheConfig,
    tags: Vec<LineAddr>,
    valid: Vec<bool>,
    dirty: Vec<bool>,
    /// Whether the line was filled by co-runner (foreign) traffic —
    /// eviction accounting attributes damage by the *victim's* owner.
    foreign: Vec<bool>,
    fill_epoch: Vec<u64>,
    epoch: u64,
    replacer: Replacer,
    rng: Rng,
    stats: CacheStats,
}

impl Cache {
    /// Builds a cache from `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (non-power-of-two geometry or
    /// a policy/way mismatch); configurations are static experiment inputs,
    /// so failing fast is preferable to threading errors through every run.
    pub fn new(cfg: CacheConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid cache config: {e}");
        }
        let slots = cfg.sets() * cfg.ways;
        let replacer = Replacer::new(cfg.policy_ref().clone(), cfg.sets(), cfg.ways);
        let rng = Rng::seed_from_u64(cfg.seed);
        Cache {
            cfg,
            tags: vec![LineAddr::new(0); slots],
            valid: vec![false; slots],
            dirty: vec![false; slots],
            foreign: vec![false; slots],
            fill_epoch: vec![0; slots],
            epoch: 1,
            replacer,
            rng,
            stats: CacheStats::default(),
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Set index for a line.
    pub fn set_of(&self, line: LineAddr) -> usize {
        self.cfg.set_index(line)
    }

    /// The way holding `line`, if resident. Does not perturb any state.
    pub fn way_of(&self, line: LineAddr) -> Option<usize> {
        let set = self.set_of(line);
        let base = set * self.cfg.ways;
        (0..self.cfg.ways).find(|&w| self.valid[base + w] && self.tags[base + w] == line)
    }

    /// Whether `line` is resident. Does not perturb any state.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.way_of(line).is_some()
    }

    /// Number of valid lines currently resident.
    pub fn occupancy(&self) -> usize {
        self.valid.iter().filter(|&&v| v).count()
    }

    /// Performs one access, updating contents, replacement state and
    /// statistics.
    pub fn access(&mut self, line: LineAddr, kind: AccessKind, phase: Phase) -> AccessOutcome {
        let set = self.set_of(line);
        let base = set * self.cfg.ways;
        let counts = self.stats.phase_mut(phase);

        if let Some(way) =
            (0..self.cfg.ways).find(|&w| self.valid[base + w] && self.tags[base + w] == line)
        {
            counts.hits += 1;
            if kind == AccessKind::Write {
                self.dirty[base + way] = true;
            }
            self.replacer.on_access(set, way);
            return AccessOutcome {
                hit: true,
                evicted: None,
                way,
            };
        }

        counts.misses += 1;
        // Prefer an invalid way; otherwise ask the policy for a victim.
        let (way, evicted) = match (0..self.cfg.ways).find(|&w| !self.valid[base + w]) {
            Some(w) => (w, None),
            None => {
                let w = self.replacer.victim(set, &mut self.rng);
                let ev = Evicted {
                    line: self.tags[base + w],
                    alive: self.fill_epoch[base + w] == self.epoch,
                    dirty: self.dirty[base + w],
                    foreign: self.foreign[base + w],
                };
                self.stats.evictions += 1;
                // Displacement damage is attributed by the *victim's*
                // owner: losing an alive GPU line to the interval's own
                // fills is the paper's self-eviction phenomenon, losing it
                // to a co-runner fill is pollution, and a displaced
                // co-runner line is the aggressor's own problem (neither).
                if ev.alive && !ev.foreign {
                    if phase == Phase::Corunner {
                        self.stats.corunner_evictions += 1;
                    } else {
                        self.stats.self_evictions += 1;
                    }
                }
                if ev.dirty {
                    self.stats.writebacks += 1;
                }
                (w, Some(ev))
            }
        };

        self.tags[base + way] = line;
        self.valid[base + way] = true;
        self.dirty[base + way] = kind == AccessKind::Write;
        self.foreign[base + way] = phase == Phase::Corunner;
        self.fill_epoch[base + way] = self.epoch;
        self.replacer.on_fill(set, way);

        AccessOutcome {
            hit: false,
            evicted,
            way,
        }
    }

    /// [`Cache::access`] with instrumentation: the completed outcome is
    /// reported to `sink` ([`TraceSink::on_access`]). With
    /// [`crate::NullSink`] the callback monomorphizes to nothing and this
    /// is exactly [`Cache::access`].
    pub fn access_traced<S: TraceSink>(
        &mut self,
        line: LineAddr,
        kind: AccessKind,
        phase: Phase,
        sink: &mut S,
    ) -> AccessOutcome {
        let outcome = self.access(line, kind, phase);
        sink.on_access(line, kind, phase, &outcome);
        outcome
    }

    /// Marks the start of a new PREM interval: lines filled from now on are
    /// "alive" for self-eviction accounting; previously resident lines are
    /// treated as dead (evicting them is not a self-eviction).
    pub fn begin_interval(&mut self) {
        self.epoch += 1;
    }

    /// Invalidates every line (no writeback accounting).
    pub fn invalidate_all(&mut self) {
        self.valid.iter_mut().for_each(|v| *v = false);
        self.dirty.iter_mut().for_each(|d| *d = false);
        self.foreign.iter_mut().for_each(|f| *f = false);
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Clears statistics (contents are untouched).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Reseeds the victim-selection RNG (for multi-seed experiments).
    pub fn reseed(&mut self, seed: u64) {
        self.rng = Rng::seed_from_u64(seed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_lru() -> Cache {
        // 4 sets × 2 ways × 64B lines = 512 B
        Cache::new(CacheConfig::new(512, 2, 64))
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small_lru();
        let l = LineAddr::new(5);
        assert!(!c.access(l, AccessKind::Read, Phase::Unphased).hit);
        assert!(c.access(l, AccessKind::Read, Phase::Unphased).hit);
        assert_eq!(c.stats().unphased.hits, 1);
        assert_eq!(c.stats().unphased.misses, 1);
    }

    #[test]
    fn set_mapping_is_modulo() {
        let c = small_lru();
        assert_eq!(c.set_of(LineAddr::new(0)), 0);
        assert_eq!(c.set_of(LineAddr::new(5)), 1);
        assert_eq!(c.set_of(LineAddr::new(7)), 3);
    }

    #[test]
    fn fills_use_invalid_ways_first() {
        let mut c = small_lru();
        // Two lines mapping to set 0: lines 0 and 4.
        let a = c.access(LineAddr::new(0), AccessKind::Read, Phase::Unphased);
        let b = c.access(LineAddr::new(4), AccessKind::Read, Phase::Unphased);
        assert!(a.evicted.is_none() && b.evicted.is_none());
        assert_ne!(a.way, b.way);
        assert!(c.contains(LineAddr::new(0)) && c.contains(LineAddr::new(4)));
    }

    #[test]
    fn lru_evicts_oldest_in_set() {
        let mut c = small_lru();
        c.access(LineAddr::new(0), AccessKind::Read, Phase::Unphased);
        c.access(LineAddr::new(4), AccessKind::Read, Phase::Unphased);
        c.access(LineAddr::new(0), AccessKind::Read, Phase::Unphased); // refresh 0
        let out = c.access(LineAddr::new(8), AccessKind::Read, Phase::Unphased);
        let ev = out.evicted.expect("full set must evict");
        assert_eq!(ev.line, LineAddr::new(4));
        assert!(c.contains(LineAddr::new(0)));
        assert!(!c.contains(LineAddr::new(4)));
    }

    #[test]
    fn write_sets_dirty_and_writeback_counted() {
        let mut c = small_lru();
        c.access(LineAddr::new(0), AccessKind::Write, Phase::Unphased);
        c.access(LineAddr::new(4), AccessKind::Read, Phase::Unphased);
        // Evict line 0 (LRU) — it is dirty, so a writeback happens.
        let out = c.access(LineAddr::new(8), AccessKind::Read, Phase::Unphased);
        assert!(out.evicted.expect("evicts").dirty);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn self_eviction_only_within_interval() {
        let mut c = small_lru();
        c.access(LineAddr::new(0), AccessKind::Read, Phase::MPhase);
        c.access(LineAddr::new(4), AccessKind::Read, Phase::MPhase);
        c.begin_interval();
        //

        // Lines 0 and 4 are now "dead"; evicting one is not a self-eviction.
        c.access(LineAddr::new(8), AccessKind::Read, Phase::MPhase);
        assert_eq!(c.stats().self_evictions, 0);
        assert_eq!(c.stats().evictions, 1);
        // Refresh dead line 4 so the alive line 8 becomes the LRU victim:
        // evicting it *is* a self-eviction.
        c.access(LineAddr::new(4), AccessKind::Read, Phase::MPhase);
        let out = c.access(LineAddr::new(12), AccessKind::Read, Phase::MPhase);
        assert_eq!(out.evicted.expect("evicts").line, LineAddr::new(8));
        assert_eq!(c.stats().evictions, 2);
        assert_eq!(c.stats().self_evictions, 1);
    }

    #[test]
    fn corunner_fill_pollutes_without_self_eviction() {
        let mut c = small_lru();
        // The GPU stages two alive lines into set 0...
        c.access(LineAddr::new(0), AccessKind::Read, Phase::MPhase);
        c.access(LineAddr::new(4), AccessKind::Read, Phase::MPhase);
        // ...and a co-runner thrashes the set: the displaced alive line is
        // pollution damage, not a self-eviction, and the co-runner's own
        // miss stays out of the GPU totals.
        c.access(LineAddr::new(8), AccessKind::Read, Phase::Corunner);
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.stats().self_evictions, 0);
        assert_eq!(c.stats().corunner_evictions, 1);
        assert_eq!(c.stats().corunner.misses, 1);
        assert_eq!(c.stats().total_misses(), 2);
    }

    #[test]
    fn evicting_a_corunner_line_is_nobodys_loss() {
        let mut c = small_lru();
        // A co-runner owns both ways of set 0; the GPU then misses twice
        // into the set: displacing the aggressor's (alive) lines is
        // neither a self-eviction nor pollution damage.
        c.access(LineAddr::new(0), AccessKind::Read, Phase::Corunner);
        c.access(LineAddr::new(4), AccessKind::Read, Phase::Corunner);
        c.access(LineAddr::new(8), AccessKind::Read, Phase::MPhase);
        c.access(LineAddr::new(12), AccessKind::Read, Phase::MPhase);
        assert_eq!(c.stats().evictions, 2);
        assert_eq!(c.stats().self_evictions, 0);
        assert_eq!(c.stats().corunner_evictions, 0);
        // A GPU refill of a formerly foreign slot takes ownership back:
        // evicting it now counts as a self-eviction again.
        let out = c.access(LineAddr::new(16), AccessKind::Read, Phase::MPhase);
        assert!(out.evicted.expect("full set").alive);
        assert_eq!(c.stats().self_evictions, 1);
    }

    #[test]
    fn occupancy_bounded_by_capacity() {
        let mut c = small_lru();
        for i in 0..100 {
            c.access(LineAddr::new(i), AccessKind::Read, Phase::Unphased);
        }
        assert_eq!(c.occupancy(), 8); // 4 sets × 2 ways
    }

    #[test]
    fn prefetch_fills_like_read() {
        let mut c = small_lru();
        c.access(LineAddr::new(3), AccessKind::Prefetch, Phase::MPhase);
        assert!(c.contains(LineAddr::new(3)));
        assert!(
            c.access(LineAddr::new(3), AccessKind::Read, Phase::CPhase)
                .hit
        );
        assert_eq!(c.stats().cpmr(), 0.0); // the only miss was in the M-phase
    }

    #[test]
    fn invalidate_all_empties_cache() {
        let mut c = small_lru();
        c.access(LineAddr::new(1), AccessKind::Read, Phase::Unphased);
        c.invalidate_all();
        assert_eq!(c.occupancy(), 0);
        assert!(!c.contains(LineAddr::new(1)));
    }

    #[test]
    fn good_capacity_for_tegra_llc() {
        use crate::addr::KIB;
        let cfg = CacheConfig::new(256 * KIB, 4, 128).policy(Policy::nvidia_tegra());
        assert_eq!(cfg.good_capacity_bytes(), 192 * KIB);
        assert_eq!(cfg.sets(), 512);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let cfg = CacheConfig::new(512, 2, 64).policy(Policy::Random).seed(7);
        let mut a = Cache::new(cfg.clone());
        let mut b = Cache::new(cfg);
        for i in 0..200 {
            let la = a.access(LineAddr::new(i % 16), AccessKind::Read, Phase::Unphased);
            let lb = b.access(LineAddr::new(i % 16), AccessKind::Read, Phase::Unphased);
            assert_eq!(la, lb);
        }
    }

    #[test]
    #[should_panic(expected = "invalid cache config")]
    fn rejects_non_power_of_two_sets() {
        Cache::new(CacheConfig::new(3 * 64 * 2, 2, 64));
    }

    #[test]
    fn index_hash_spreads_strided_lines() {
        // 4 KiB-stride column walk (32-line stride): modulo indexing hits
        // only sets/32 distinct sets; hashing spreads over many more.
        let cfg = CacheConfig::new(256 * crate::addr::KIB, 4, 128);
        let plain = Cache::new(cfg.clone());
        let hashed = Cache::new(cfg.index_hash(true));
        let lines: Vec<LineAddr> = (0..1024u64).map(|k| LineAddr::new(k * 32)).collect();
        let distinct = |c: &Cache| {
            lines
                .iter()
                .map(|&l| c.set_of(l))
                .collect::<std::collections::HashSet<_>>()
                .len()
        };
        assert_eq!(distinct(&plain), 16);
        assert!(distinct(&hashed) > 200, "hashed: {}", distinct(&hashed));
    }

    #[test]
    fn index_hash_is_consistent_for_lookups() {
        let cfg = CacheConfig::new(1024, 2, 64).index_hash(true);
        let mut c = Cache::new(cfg);
        for i in 0..100u64 {
            c.access(LineAddr::new(i * 7), AccessKind::Read, Phase::Unphased);
            assert!(c.contains(LineAddr::new(i * 7)));
        }
    }

    #[test]
    fn way_of_reports_resident_way() {
        let mut c = small_lru();
        let out = c.access(LineAddr::new(9), AccessKind::Read, Phase::Unphased);
        assert_eq!(c.way_of(LineAddr::new(9)), Some(out.way));
        assert_eq!(c.way_of(LineAddr::new(13)), None);
    }
}
