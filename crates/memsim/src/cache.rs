//! Set-associative cache simulator with phase-tagged statistics.
//!
//! The model is line-accurate: every access probes the tag array, misses
//! select a victim through the configured [`Policy`] and install the new
//! line. Nothing about timing lives here — latency is charged by the
//! platform cost model in `prem-gpusim` based on the outcomes this module
//! reports.

use crate::addr::LineAddr;
use crate::replacement::{Policy, Replacer};
use crate::rng::Rng;
use crate::stats::{CacheStats, Phase};
use crate::trace::TraceSink;

/// What an access does to the cache contents.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum AccessKind {
    /// Demand load.
    Read,
    /// Demand store (write-allocate, write-back).
    Write,
    /// Software prefetch: fills like a read, data not consumed.
    Prefetch,
}

/// A line displaced by a fill.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Evicted {
    /// The displaced line.
    pub line: LineAddr,
    /// Whether the line was filled during the current interval — an
    /// eviction of such a line is a *self-eviction* in the paper's sense.
    pub alive: bool,
    /// Whether the line was dirty (causes a writeback).
    pub dirty: bool,
    /// Whether the victim was owned by co-runner (foreign) traffic.
    /// Displacing a foreign line is the aggressor's own problem: it is
    /// neither a self-eviction nor pollution damage, whichever phase
    /// caused the fill.
    pub foreign: bool,
}

/// Outcome of a single cache access.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct AccessOutcome {
    /// `true` when the line was already present.
    pub hit: bool,
    /// The victim displaced by the fill, if the access missed in a full set.
    pub evicted: Option<Evicted>,
    /// The way the line resides in after the access.
    pub way: usize,
}

/// Geometry and policy of a cache.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    size_bytes: usize,
    ways: usize,
    line_bytes: usize,
    policy: Policy,
    seed: u64,
    index_hash: bool,
}

impl CacheConfig {
    /// Creates a configuration; validation happens in [`Cache::new`].
    ///
    /// Defaults: LRU policy, seed 0xC0FFEE, modulo set indexing.
    pub fn new(size_bytes: usize, ways: usize, line_bytes: usize) -> Self {
        CacheConfig {
            size_bytes,
            ways,
            line_bytes,
            policy: Policy::Lru,
            seed: 0xC0FFEE,
            index_hash: false,
        }
    }

    /// Enables XOR set-index hashing. NVIDIA L2 caches hash upper address
    /// bits into the set index (observed by Mei et al.), which spreads
    /// power-of-two-strided accesses (e.g. matrix columns) across sets
    /// instead of aliasing them into a few.
    pub fn index_hash(mut self, enable: bool) -> Self {
        self.index_hash = enable;
        self
    }

    /// Whether XOR set-index hashing is enabled.
    pub fn has_index_hash(&self) -> bool {
        self.index_hash
    }

    /// Sets the replacement policy.
    pub fn policy(mut self, policy: Policy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the RNG seed used by randomized policies.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The RNG seed randomized policies draw from (trace headers persist
    /// it so replay can rebuild an identically seeded cache).
    pub fn seed_value(&self) -> u64 {
        self.seed
    }

    /// Total capacity in bytes.
    pub fn size_bytes(&self) -> usize {
        self.size_bytes
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> usize {
        self.line_bytes
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.size_bytes / (self.ways * self.line_bytes)
    }

    /// Total number of lines.
    pub fn lines(&self) -> usize {
        self.size_bytes / self.line_bytes
    }

    /// The configured replacement policy.
    pub fn policy_ref(&self) -> &Policy {
        &self.policy
    }

    /// Set index of `line` under this geometry (modulo or XOR-hashed,
    /// matching [`Cache::set_of`]). Exposed on the config so trace
    /// analyses can reconstruct set residency from a captured header
    /// without instantiating a cache.
    pub fn set_index(&self, line: LineAddr) -> usize {
        let sets = self.sets();
        let raw = line.raw();
        if self.index_hash {
            let bits = sets.trailing_zeros();
            let folded = raw ^ (raw >> bits) ^ (raw >> (2 * bits));
            (folded as usize) & (sets - 1)
        } else {
            (raw as usize) & (sets - 1)
        }
    }

    /// Capacity (bytes) of the "good" ways only — the usable capacity under
    /// the paper's interval-sizing rule (§IV): `size × good_ways / ways`.
    pub fn good_capacity_bytes(&self) -> usize {
        let good = self.policy.good_ways(self.ways).len();
        self.size_bytes / self.ways * good
    }

    /// Validates the geometry/policy combination without building a
    /// cache — the check [`Cache::new`] panics on. Public so boundaries
    /// that deserialize configs from untrusted bytes (the trace format)
    /// can reject corrupt geometry as a recoverable error instead of
    /// panicking downstream.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !self.line_bytes.is_power_of_two() || self.line_bytes == 0 {
            return Err(format!(
                "line size {} must be a power of two",
                self.line_bytes
            ));
        }
        if self.ways == 0 {
            return Err("cache must have at least one way".into());
        }
        if self.size_bytes == 0 || !self.size_bytes.is_multiple_of(self.ways * self.line_bytes) {
            return Err(format!(
                "size {} not divisible into {} ways of {}-byte lines",
                self.size_bytes, self.ways, self.line_bytes
            ));
        }
        let sets = self.sets();
        if !sets.is_power_of_two() {
            return Err(format!("set count {sets} must be a power of two"));
        }
        self.policy.validate(self.ways)
    }
}

/// Sentinel tag marking an empty slot. Doubles as the validity encoding:
/// a slot is resident exactly when its tag differs from the sentinel, so
/// the hot lookup is a single tag compare with no side-array load. The
/// fill path rejects the sentinel as a real address, keeping the encoding
/// unambiguous (line addresses in this simulator start far below it).
const EMPTY_TAG: u64 = u64::MAX;

/// Packed per-slot metadata bits (one byte per slot).
mod meta {
    /// The line was written since fill (evicting it costs a writeback).
    pub const DIRTY: u8 = 1 << 0;
    /// The line is owned by co-runner (foreign) traffic.
    pub const FOREIGN: u8 = 1 << 1;
    /// The line was filled during the current PREM interval — displacing
    /// it is a self-eviction (or pollution, by the evictor's phase).
    pub const ALIVE: u8 = 1 << 2;
}

/// A set-associative cache.
///
/// Storage is the packed hot-path layout: a sentinel-tagged flat `u64` tag
/// array (validity folded into the tag, see [`EMPTY_TAG`]) plus one
/// metadata byte per slot carrying the dirty/foreign/alive bits. The hit
/// path touches only the tag lane and returns before any miss bookkeeping;
/// [`Replacer`]/[`Rng`] interaction is identical to the unpacked layout,
/// so replay equivalence holds by construction.
///
/// ```
/// use prem_memsim::{Cache, CacheConfig, AccessKind, Phase, Policy, LineAddr};
/// let mut c = Cache::new(CacheConfig::new(1024, 2, 64).policy(Policy::Lru));
/// let miss = c.access(LineAddr::new(3), AccessKind::Read, Phase::MPhase);
/// assert!(!miss.hit);
/// let hit = c.access(LineAddr::new(3), AccessKind::Read, Phase::CPhase);
/// assert!(hit.hit);
/// assert_eq!(c.stats().cpmr(), 0.0);
/// ```
#[derive(Clone, Debug)]
pub struct Cache {
    cfg: CacheConfig,
    /// Raw line addresses, [`EMPTY_TAG`] where the slot is empty.
    tags: Vec<u64>,
    /// Packed [`meta`] bits, slot-parallel with `tags`.
    meta: Vec<u8>,
    replacer: Replacer,
    rng: Rng,
    stats: CacheStats,
}

impl Cache {
    /// Builds a cache from `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (non-power-of-two geometry or
    /// a policy/way mismatch); configurations are static experiment inputs,
    /// so failing fast is preferable to threading errors through every run.
    pub fn new(cfg: CacheConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid cache config: {e}");
        }
        let slots = cfg.sets() * cfg.ways;
        let replacer = Replacer::new(cfg.policy_ref().clone(), cfg.sets(), cfg.ways);
        let rng = Rng::seed_from_u64(cfg.seed);
        Cache {
            cfg,
            tags: vec![EMPTY_TAG; slots],
            meta: vec![0; slots],
            replacer,
            rng,
            stats: CacheStats::default(),
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Set index for a line.
    pub fn set_of(&self, line: LineAddr) -> usize {
        self.cfg.set_index(line)
    }

    /// The single tag-scan used by every lookup ([`Cache::access`],
    /// [`Cache::way_of`], [`Cache::contains`] and the invalid-way probe):
    /// finds the lowest way in the set at `base` whose tag equals `raw`.
    ///
    /// For the small associativities this simulator models (≤ 64 ways) the
    /// scan is branch-light: fold the per-way compares into a bitmask and
    /// take the lowest set bit, so the loop body carries no data-dependent
    /// branch for the predictor to miss on.
    #[inline(always)]
    fn find_way(tags: &[u64], base: usize, ways: usize, raw: u64) -> Option<usize> {
        if ways <= 64 {
            let mut mask = 0u64;
            for w in 0..ways {
                mask |= u64::from(tags[base + w] == raw) << w;
            }
            if mask == 0 {
                None
            } else {
                Some(mask.trailing_zeros() as usize)
            }
        } else {
            (0..ways).find(|&w| tags[base + w] == raw)
        }
    }

    /// The way holding `line`, if resident. Does not perturb any state.
    pub fn way_of(&self, line: LineAddr) -> Option<usize> {
        let raw = line.raw();
        if raw == EMPTY_TAG {
            return None;
        }
        let base = self.set_of(line) * self.cfg.ways;
        Self::find_way(&self.tags, base, self.cfg.ways, raw)
    }

    /// Whether `line` is resident. Does not perturb any state.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.way_of(line).is_some()
    }

    /// Number of valid lines currently resident.
    pub fn occupancy(&self) -> usize {
        self.tags.iter().filter(|&&t| t != EMPTY_TAG).count()
    }

    /// Performs one access, updating contents, replacement state and
    /// statistics.
    ///
    /// # Panics
    ///
    /// Panics on the reserved sentinel address `u64::MAX` (see
    /// [`EMPTY_TAG`]); no modeled address space reaches it.
    pub fn access(&mut self, line: LineAddr, kind: AccessKind, phase: Phase) -> AccessOutcome {
        let raw = line.raw();
        assert_ne!(
            raw, EMPTY_TAG,
            "line address collides with the empty-slot sentinel"
        );
        let set = self.set_of(line);
        let base = set * self.cfg.ways;
        let counts = self.stats.phase_mut(phase);

        if let Some(way) = Self::find_way(&self.tags, base, self.cfg.ways, raw) {
            counts.hits += 1;
            if kind == AccessKind::Write {
                self.meta[base + way] |= meta::DIRTY;
            }
            self.replacer.on_access(set, way);
            return AccessOutcome {
                hit: true,
                evicted: None,
                way,
            };
        }

        counts.misses += 1;
        // Prefer an invalid way; otherwise ask the policy for a victim.
        let (way, evicted) = match Self::find_way(&self.tags, base, self.cfg.ways, EMPTY_TAG) {
            Some(w) => (w, None),
            None => {
                let w = self.replacer.victim(set, &mut self.rng);
                let m = self.meta[base + w];
                let ev = Evicted {
                    line: LineAddr::new(self.tags[base + w]),
                    alive: m & meta::ALIVE != 0,
                    dirty: m & meta::DIRTY != 0,
                    foreign: m & meta::FOREIGN != 0,
                };
                self.stats.evictions += 1;
                // Displacement damage is attributed by the *victim's*
                // owner: losing an alive GPU line to the interval's own
                // fills is the paper's self-eviction phenomenon, losing it
                // to a co-runner fill is pollution, and a displaced
                // co-runner line is the aggressor's own problem (neither).
                if ev.alive && !ev.foreign {
                    if phase == Phase::Corunner {
                        self.stats.corunner_evictions += 1;
                    } else {
                        self.stats.self_evictions += 1;
                    }
                }
                if ev.dirty {
                    self.stats.writebacks += 1;
                }
                (w, Some(ev))
            }
        };

        self.tags[base + way] = raw;
        self.meta[base + way] = meta::ALIVE
            | if kind == AccessKind::Write {
                meta::DIRTY
            } else {
                0
            }
            | if phase == Phase::Corunner {
                meta::FOREIGN
            } else {
                0
            };
        self.replacer.on_fill(set, way);

        AccessOutcome {
            hit: false,
            evicted,
            way,
        }
    }

    /// [`Cache::access`] with instrumentation: the completed outcome is
    /// reported to `sink` ([`TraceSink::on_access`]). With
    /// [`crate::NullSink`] the callback monomorphizes to nothing and this
    /// is exactly [`Cache::access`].
    pub fn access_traced<S: TraceSink>(
        &mut self,
        line: LineAddr,
        kind: AccessKind,
        phase: Phase,
        sink: &mut S,
    ) -> AccessOutcome {
        let outcome = self.access(line, kind, phase);
        sink.on_access(line, kind, phase, &outcome);
        outcome
    }

    /// Credits `hits` additional hit accesses to `phase` without touching
    /// contents, replacement state or the RNG.
    ///
    /// This is the statistics half of the executor's all-hit shortcut: once
    /// a prefetch round completes with zero misses, every further identical
    /// round is provably a pure hit pass whose only statistical effect is
    /// `hits += ops` in the round's phase — the executor accounts those
    /// rounds analytically and settles the ledger here. Callers are
    /// responsible for the proof obligation (the credited accesses must be
    /// guaranteed hits that would change no other observable state).
    pub fn credit_repeated_hits(&mut self, phase: Phase, hits: u64) {
        self.stats.phase_mut(phase).hits += hits;
    }

    /// Marks the start of a new PREM interval: lines filled from now on are
    /// "alive" for self-eviction accounting; previously resident lines are
    /// treated as dead (evicting them is not a self-eviction).
    pub fn begin_interval(&mut self) {
        // One pass over the (small) metadata lane: at TX1 geometry this is
        // 2048 bytes once per interval, noise next to the interval's work.
        self.meta.iter_mut().for_each(|m| *m &= !meta::ALIVE);
    }

    /// Invalidates every line (no writeback accounting).
    pub fn invalidate_all(&mut self) {
        self.tags.iter_mut().for_each(|t| *t = EMPTY_TAG);
        self.meta.iter_mut().for_each(|m| *m = 0);
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Clears statistics (contents are untouched).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Reseeds the victim-selection RNG (for multi-seed experiments).
    pub fn reseed(&mut self, seed: u64) {
        self.rng = Rng::seed_from_u64(seed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_lru() -> Cache {
        // 4 sets × 2 ways × 64B lines = 512 B
        Cache::new(CacheConfig::new(512, 2, 64))
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small_lru();
        let l = LineAddr::new(5);
        assert!(!c.access(l, AccessKind::Read, Phase::Unphased).hit);
        assert!(c.access(l, AccessKind::Read, Phase::Unphased).hit);
        assert_eq!(c.stats().unphased.hits, 1);
        assert_eq!(c.stats().unphased.misses, 1);
    }

    #[test]
    fn set_mapping_is_modulo() {
        let c = small_lru();
        assert_eq!(c.set_of(LineAddr::new(0)), 0);
        assert_eq!(c.set_of(LineAddr::new(5)), 1);
        assert_eq!(c.set_of(LineAddr::new(7)), 3);
    }

    #[test]
    fn fills_use_invalid_ways_first() {
        let mut c = small_lru();
        // Two lines mapping to set 0: lines 0 and 4.
        let a = c.access(LineAddr::new(0), AccessKind::Read, Phase::Unphased);
        let b = c.access(LineAddr::new(4), AccessKind::Read, Phase::Unphased);
        assert!(a.evicted.is_none() && b.evicted.is_none());
        assert_ne!(a.way, b.way);
        assert!(c.contains(LineAddr::new(0)) && c.contains(LineAddr::new(4)));
    }

    #[test]
    fn lru_evicts_oldest_in_set() {
        let mut c = small_lru();
        c.access(LineAddr::new(0), AccessKind::Read, Phase::Unphased);
        c.access(LineAddr::new(4), AccessKind::Read, Phase::Unphased);
        c.access(LineAddr::new(0), AccessKind::Read, Phase::Unphased); // refresh 0
        let out = c.access(LineAddr::new(8), AccessKind::Read, Phase::Unphased);
        let ev = out.evicted.expect("full set must evict");
        assert_eq!(ev.line, LineAddr::new(4));
        assert!(c.contains(LineAddr::new(0)));
        assert!(!c.contains(LineAddr::new(4)));
    }

    #[test]
    fn write_sets_dirty_and_writeback_counted() {
        let mut c = small_lru();
        c.access(LineAddr::new(0), AccessKind::Write, Phase::Unphased);
        c.access(LineAddr::new(4), AccessKind::Read, Phase::Unphased);
        // Evict line 0 (LRU) — it is dirty, so a writeback happens.
        let out = c.access(LineAddr::new(8), AccessKind::Read, Phase::Unphased);
        assert!(out.evicted.expect("evicts").dirty);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn self_eviction_only_within_interval() {
        let mut c = small_lru();
        c.access(LineAddr::new(0), AccessKind::Read, Phase::MPhase);
        c.access(LineAddr::new(4), AccessKind::Read, Phase::MPhase);
        c.begin_interval();
        //

        // Lines 0 and 4 are now "dead"; evicting one is not a self-eviction.
        c.access(LineAddr::new(8), AccessKind::Read, Phase::MPhase);
        assert_eq!(c.stats().self_evictions, 0);
        assert_eq!(c.stats().evictions, 1);
        // Refresh dead line 4 so the alive line 8 becomes the LRU victim:
        // evicting it *is* a self-eviction.
        c.access(LineAddr::new(4), AccessKind::Read, Phase::MPhase);
        let out = c.access(LineAddr::new(12), AccessKind::Read, Phase::MPhase);
        assert_eq!(out.evicted.expect("evicts").line, LineAddr::new(8));
        assert_eq!(c.stats().evictions, 2);
        assert_eq!(c.stats().self_evictions, 1);
    }

    #[test]
    fn corunner_fill_pollutes_without_self_eviction() {
        let mut c = small_lru();
        // The GPU stages two alive lines into set 0...
        c.access(LineAddr::new(0), AccessKind::Read, Phase::MPhase);
        c.access(LineAddr::new(4), AccessKind::Read, Phase::MPhase);
        // ...and a co-runner thrashes the set: the displaced alive line is
        // pollution damage, not a self-eviction, and the co-runner's own
        // miss stays out of the GPU totals.
        c.access(LineAddr::new(8), AccessKind::Read, Phase::Corunner);
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.stats().self_evictions, 0);
        assert_eq!(c.stats().corunner_evictions, 1);
        assert_eq!(c.stats().corunner.misses, 1);
        assert_eq!(c.stats().total_misses(), 2);
    }

    #[test]
    fn evicting_a_corunner_line_is_nobodys_loss() {
        let mut c = small_lru();
        // A co-runner owns both ways of set 0; the GPU then misses twice
        // into the set: displacing the aggressor's (alive) lines is
        // neither a self-eviction nor pollution damage.
        c.access(LineAddr::new(0), AccessKind::Read, Phase::Corunner);
        c.access(LineAddr::new(4), AccessKind::Read, Phase::Corunner);
        c.access(LineAddr::new(8), AccessKind::Read, Phase::MPhase);
        c.access(LineAddr::new(12), AccessKind::Read, Phase::MPhase);
        assert_eq!(c.stats().evictions, 2);
        assert_eq!(c.stats().self_evictions, 0);
        assert_eq!(c.stats().corunner_evictions, 0);
        // A GPU refill of a formerly foreign slot takes ownership back:
        // evicting it now counts as a self-eviction again.
        let out = c.access(LineAddr::new(16), AccessKind::Read, Phase::MPhase);
        assert!(out.evicted.expect("full set").alive);
        assert_eq!(c.stats().self_evictions, 1);
    }

    #[test]
    fn occupancy_bounded_by_capacity() {
        let mut c = small_lru();
        for i in 0..100 {
            c.access(LineAddr::new(i), AccessKind::Read, Phase::Unphased);
        }
        assert_eq!(c.occupancy(), 8); // 4 sets × 2 ways
    }

    #[test]
    fn prefetch_fills_like_read() {
        let mut c = small_lru();
        c.access(LineAddr::new(3), AccessKind::Prefetch, Phase::MPhase);
        assert!(c.contains(LineAddr::new(3)));
        assert!(
            c.access(LineAddr::new(3), AccessKind::Read, Phase::CPhase)
                .hit
        );
        assert_eq!(c.stats().cpmr(), 0.0); // the only miss was in the M-phase
    }

    #[test]
    fn invalidate_all_empties_cache() {
        let mut c = small_lru();
        c.access(LineAddr::new(1), AccessKind::Read, Phase::Unphased);
        c.invalidate_all();
        assert_eq!(c.occupancy(), 0);
        assert!(!c.contains(LineAddr::new(1)));
    }

    #[test]
    fn good_capacity_for_tegra_llc() {
        use crate::addr::KIB;
        let cfg = CacheConfig::new(256 * KIB, 4, 128).policy(Policy::nvidia_tegra());
        assert_eq!(cfg.good_capacity_bytes(), 192 * KIB);
        assert_eq!(cfg.sets(), 512);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let cfg = CacheConfig::new(512, 2, 64).policy(Policy::Random).seed(7);
        let mut a = Cache::new(cfg.clone());
        let mut b = Cache::new(cfg);
        for i in 0..200 {
            let la = a.access(LineAddr::new(i % 16), AccessKind::Read, Phase::Unphased);
            let lb = b.access(LineAddr::new(i % 16), AccessKind::Read, Phase::Unphased);
            assert_eq!(la, lb);
        }
    }

    #[test]
    #[should_panic(expected = "invalid cache config")]
    fn rejects_non_power_of_two_sets() {
        Cache::new(CacheConfig::new(3 * 64 * 2, 2, 64));
    }

    #[test]
    fn index_hash_spreads_strided_lines() {
        // 4 KiB-stride column walk (32-line stride): modulo indexing hits
        // only sets/32 distinct sets; hashing spreads over many more.
        let cfg = CacheConfig::new(256 * crate::addr::KIB, 4, 128);
        let plain = Cache::new(cfg.clone());
        let hashed = Cache::new(cfg.index_hash(true));
        let lines: Vec<LineAddr> = (0..1024u64).map(|k| LineAddr::new(k * 32)).collect();
        let distinct = |c: &Cache| {
            lines
                .iter()
                .map(|&l| c.set_of(l))
                .collect::<std::collections::HashSet<_>>()
                .len()
        };
        assert_eq!(distinct(&plain), 16);
        assert!(distinct(&hashed) > 200, "hashed: {}", distinct(&hashed));
    }

    #[test]
    fn index_hash_is_consistent_for_lookups() {
        let cfg = CacheConfig::new(1024, 2, 64).index_hash(true);
        let mut c = Cache::new(cfg);
        for i in 0..100u64 {
            c.access(LineAddr::new(i * 7), AccessKind::Read, Phase::Unphased);
            assert!(c.contains(LineAddr::new(i * 7)));
        }
    }

    #[test]
    fn way_of_reports_resident_way() {
        let mut c = small_lru();
        let out = c.access(LineAddr::new(9), AccessKind::Read, Phase::Unphased);
        assert_eq!(c.way_of(LineAddr::new(9)), Some(out.way));
        assert_eq!(c.way_of(LineAddr::new(13)), None);
    }
}
