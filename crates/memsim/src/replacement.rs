//! Cache replacement policies.
//!
//! The policy under study is [`Policy::BiasedRandom`]: NVIDIA GPU caches pick
//! eviction victims at random with a *non-uniform* per-way distribution. Mei
//! et al. (TPDS'17, cited as \[13\] by the paper) measured, on a 4-way cache,
//! victim probabilities of (1/6, 1/6, 3/6, 1/6): one "bad" way is selected
//! half of the time. [`Policy::nvidia_tegra`] builds exactly that
//! configuration. LRU/FIFO/PLRU/uniform-random are provided for ablations and
//! for validating the paper's "LRU would be unproblematic" claim.

use crate::rng::Rng;

/// A replacement policy selection for a set-associative cache.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Policy {
    /// Evict the least-recently-used way.
    Lru,
    /// Evict ways in fill order (round-robin).
    Fifo,
    /// Tree pseudo-LRU (requires a power-of-two way count).
    PseudoLru,
    /// Uniform random victim.
    Random,
    /// Random victim with per-way weights (the NVIDIA-like policy).
    ///
    /// `weights[w]` is proportional to the probability that way `w` is chosen
    /// as the victim on a fill into a full set.
    BiasedRandom {
        /// Relative victim-selection weight of each way.
        weights: Vec<u32>,
    },
    /// Random victim among all ways except the most recently used one.
    Nmru,
    /// Static re-reference interval prediction (SRRIP, Jaleel et al.,
    /// ISCA'10) with 2-bit re-reference prediction values: fills insert at
    /// RRPV 2, hits promote to 0, victims are ways at RRPV 3 (aging all
    /// ways until one qualifies). Deterministic and scan-resistant — an
    /// interesting "what if the vendor shipped a smarter policy" ablation.
    Srrip,
}

impl Policy {
    /// The biased-random policy measured on NVIDIA Tegra GPU caches by Mei et
    /// al.: 4 ways with victim weights (1, 1, 3, 1)/6 — way 2 is the "bad
    /// way" chosen with probability 1/2.
    pub fn nvidia_tegra() -> Self {
        Policy::nvidia_like(4)
    }

    /// Generalizes the Mei et al. measurement to an arbitrary associativity:
    /// one "bad" way (at index `ways / 2`) is the victim half of the time,
    /// the remaining probability mass is spread uniformly. For `ways = 4`
    /// this is exactly [`Policy::nvidia_tegra`]'s (1, 1, 3, 1)/6. Used by
    /// the wider-LLC platform presets (TX2- and Xavier-class SoCs), whose
    /// vendors never published replacement details either.
    pub fn nvidia_like(ways: usize) -> Self {
        assert!(ways >= 1, "cache must have at least one way");
        let mut weights = vec![1u32; ways];
        if ways > 1 {
            weights[ways / 2] = (ways - 1) as u32;
        }
        Policy::BiasedRandom { weights }
    }

    /// Human-readable short name (used in reports).
    pub fn name(&self) -> &'static str {
        match self {
            Policy::Lru => "lru",
            Policy::Fifo => "fifo",
            Policy::PseudoLru => "plru",
            Policy::Random => "random",
            Policy::BiasedRandom { .. } => "biased-random",
            Policy::Nmru => "nmru",
            Policy::Srrip => "srrip",
        }
    }

    /// Validates the policy against a way count.
    ///
    /// # Errors
    ///
    /// Returns a message when the policy cannot drive `ways` ways (weight
    /// vector length mismatch, all-zero weights, or non-power-of-two PLRU).
    pub fn validate(&self, ways: usize) -> Result<(), String> {
        match self {
            Policy::BiasedRandom { weights } => {
                if weights.len() != ways {
                    return Err(format!(
                        "biased-random needs {ways} weights, got {}",
                        weights.len()
                    ));
                }
                if weights.iter().all(|&w| w == 0) {
                    return Err("biased-random weights must not all be zero".into());
                }
                Ok(())
            }
            Policy::PseudoLru => {
                if ways.is_power_of_two() {
                    Ok(())
                } else {
                    Err(format!("pseudo-LRU requires power-of-two ways, got {ways}"))
                }
            }
            _ => Ok(()),
        }
    }

    /// Whether victim selection ever consumes the cache RNG.
    ///
    /// LRU, FIFO, tree-PLRU and SRRIP are pure functions of the access
    /// history — reseeding the cache cannot change any outcome — while
    /// the random family (uniform, biased, NMRU's random-except-MRU pick)
    /// draws from the RNG on every eviction from a full set. Seed-
    /// invariance lets replay-derived what-if sweeps share one replay
    /// across a deterministic policy's whole seed axis.
    pub fn seed_sensitive(&self) -> bool {
        match self {
            Policy::Random | Policy::BiasedRandom { .. } | Policy::Nmru => true,
            Policy::Lru | Policy::Fifo | Policy::PseudoLru | Policy::Srrip => false,
        }
    }

    /// Indices of the "good" ways: ways whose victim probability does not
    /// exceed the uniform share. For the Tegra weights (1,1,3,1) these are
    /// ways {0, 1, 3}; for symmetric policies every way is good.
    pub fn good_ways(&self, ways: usize) -> Vec<usize> {
        match self {
            Policy::BiasedRandom { weights } => {
                let total: u64 = weights.iter().map(|&w| w as u64).sum();
                (0..ways)
                    .filter(|&w| (weights[w] as u64) * (ways as u64) <= total)
                    .collect()
            }
            _ => (0..ways).collect(),
        }
    }
}

/// Per-cache replacement state for all sets.
///
/// State is stored in flat arrays indexed by `set * ways + way` so that one
/// allocation serves the whole cache.
///
/// Public because the `prem-trace` replay fast path drives the exact same
/// replacement state machine (and RNG) as [`Cache`](crate::Cache) over a
/// compiled access stream — single-sourcing the policy semantics is what
/// makes replayed statistics bit-exact by construction.
#[derive(Clone, Debug)]
pub struct Replacer {
    policy: Policy,
    ways: usize,
    /// LRU: monotone access stamps. FIFO: fill stamps.
    stamps: Vec<u64>,
    clock: u64,
    /// PLRU: tree bits per set (`ways - 1` bits packed into a u32).
    plru_bits: Vec<u32>,
    /// NMRU: most recently used way per set.
    mru: Vec<u8>,
    /// SRRIP: 2-bit re-reference prediction value per (set, way).
    rrpv: Vec<u8>,
}

impl Replacer {
    /// Builds replacement state for `sets` × `ways`.
    ///
    /// # Panics
    ///
    /// Panics if the policy cannot drive `ways` ways.
    pub fn new(policy: Policy, sets: usize, ways: usize) -> Self {
        policy
            .validate(ways)
            .expect("invalid policy/way combination");
        Replacer {
            policy,
            ways,
            stamps: vec![0; sets * ways],
            clock: 0,
            plru_bits: vec![0; sets],
            mru: vec![0; sets],
            rrpv: vec![3; sets * ways],
        }
    }

    /// Records that `way` of `set` was accessed (hit or just filled).
    #[inline]
    pub fn on_access(&mut self, set: usize, way: usize) {
        self.clock += 1;
        match self.policy {
            Policy::Lru => self.stamps[set * self.ways + way] = self.clock,
            Policy::PseudoLru => self.plru_touch(set, way),
            Policy::Nmru => self.mru[set] = way as u8,
            Policy::Srrip => self.rrpv[set * self.ways + way] = 0,
            Policy::Fifo | Policy::Random | Policy::BiasedRandom { .. } => {}
        }
    }

    /// Records that `way` of `set` was filled with a new line.
    #[inline]
    pub fn on_fill(&mut self, set: usize, way: usize) {
        self.clock += 1;
        match self.policy {
            Policy::Lru => self.stamps[set * self.ways + way] = self.clock,
            Policy::Fifo => self.stamps[set * self.ways + way] = self.clock,
            Policy::PseudoLru => self.plru_touch(set, way),
            Policy::Nmru => self.mru[set] = way as u8,
            Policy::Srrip => self.rrpv[set * self.ways + way] = 2,
            Policy::Random | Policy::BiasedRandom { .. } => {}
        }
    }

    /// Chooses a victim way in a full `set`.
    ///
    /// SRRIP mutates aging state, so this takes `&mut self`.
    #[inline]
    pub fn victim(&mut self, set: usize, rng: &mut Rng) -> usize {
        match &self.policy {
            Policy::Srrip => {
                let base = set * self.ways;
                loop {
                    if let Some(w) = (0..self.ways).find(|&w| self.rrpv[base + w] >= 3) {
                        return w;
                    }
                    for w in 0..self.ways {
                        self.rrpv[base + w] += 1;
                    }
                }
            }
            Policy::Lru | Policy::Fifo => {
                let base = set * self.ways;
                (0..self.ways)
                    .min_by_key(|&w| self.stamps[base + w])
                    .expect("cache has at least one way")
            }
            Policy::PseudoLru => self.plru_victim(set),
            Policy::Random => rng.below(self.ways as u64) as usize,
            Policy::BiasedRandom { weights } => rng.pick_weighted(weights),
            Policy::Nmru => {
                if self.ways == 1 {
                    0
                } else {
                    let mru = self.mru[set] as usize;
                    let pick = rng.below(self.ways as u64 - 1) as usize;
                    if pick >= mru {
                        pick + 1
                    } else {
                        pick
                    }
                }
            }
        }
    }

    /// Tree-PLRU touch: flip the bits on the path to `way` to point away.
    fn plru_touch(&mut self, set: usize, way: usize) {
        let mut node = 0usize; // root of the implicit tree
        let mut lo = 0usize;
        let mut hi = self.ways;
        let bits = &mut self.plru_bits[set];
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if way < mid {
                // went left: make the bit point right
                *bits |= 1 << node;
                node = 2 * node + 1;
                hi = mid;
            } else {
                *bits &= !(1 << node);
                node = 2 * node + 2;
                lo = mid;
            }
        }
    }

    /// Tree-PLRU victim: follow the bits.
    fn plru_victim(&self, set: usize) -> usize {
        let mut node = 0usize;
        let mut lo = 0usize;
        let mut hi = self.ways;
        let bits = self.plru_bits[set];
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if bits & (1 << node) != 0 {
                // bit points right
                node = 2 * node + 2;
                lo = mid;
            } else {
                node = 2 * node + 1;
                hi = mid;
            }
        }
        lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Rng {
        Rng::seed_from_u64(1234)
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut r = Replacer::new(Policy::Lru, 1, 4);
        for w in 0..4 {
            r.on_fill(0, w);
        }
        r.on_access(0, 0); // 1 is now LRU
        assert_eq!(r.victim(0, &mut rng()), 1);
    }

    #[test]
    fn fifo_ignores_hits() {
        let mut r = Replacer::new(Policy::Fifo, 1, 4);
        for w in 0..4 {
            r.on_fill(0, w);
        }
        r.on_access(0, 0); // hit must not save way 0 under FIFO
        assert_eq!(r.victim(0, &mut rng()), 0);
    }

    #[test]
    fn plru_victim_avoids_recent() {
        let mut r = Replacer::new(Policy::PseudoLru, 1, 4);
        for w in 0..4 {
            r.on_fill(0, w);
        }
        // Most recent fill is way 3; PLRU must not pick it.
        assert_ne!(r.victim(0, &mut rng()), 3);
    }

    #[test]
    fn plru_full_rotation_hits_all_ways() {
        // Repeatedly access the victim: PLRU must cycle through all ways.
        let mut r = Replacer::new(Policy::PseudoLru, 1, 8);
        let mut seen = [false; 8];
        let mut g = rng();
        for _ in 0..8 {
            let v = r.victim(0, &mut g);
            seen[v] = true;
            r.on_fill(0, v);
        }
        assert!(seen.iter().all(|&s| s), "seen = {seen:?}");
    }

    #[test]
    fn nmru_never_picks_mru() {
        let mut r = Replacer::new(Policy::Nmru, 1, 4);
        let mut g = rng();
        for w in 0..4 {
            r.on_fill(0, w);
        }
        r.on_access(0, 2);
        for _ in 0..100 {
            assert_ne!(r.victim(0, &mut g), 2);
        }
    }

    #[test]
    fn biased_random_frequency_matches_weights() {
        let mut r = Replacer::new(Policy::nvidia_tegra(), 1, 4);
        let mut g = rng();
        let mut counts = [0u32; 4];
        let n = 60_000;
        for _ in 0..n {
            counts[r.victim(0, &mut g)] += 1;
        }
        let bad = counts[2] as f64 / n as f64;
        assert!((bad - 0.5).abs() < 0.01, "bad-way rate {bad}");
    }

    #[test]
    fn good_ways_for_tegra_policy() {
        assert_eq!(Policy::nvidia_tegra().good_ways(4), vec![0, 1, 3]);
        assert_eq!(Policy::Lru.good_ways(4), vec![0, 1, 2, 3]);
        assert_eq!(Policy::Random.good_ways(2), vec![0, 1]);
    }

    #[test]
    fn nvidia_like_generalizes_tegra() {
        assert_eq!(
            Policy::nvidia_like(4),
            Policy::BiasedRandom {
                weights: vec![1, 1, 3, 1]
            }
        );
        // One bad way at any associativity ≥ 4, picked half of the time.
        // (At 2 ways "half of the time" degenerates to uniform random.)
        for ways in [4usize, 8, 16] {
            let p = Policy::nvidia_like(ways);
            assert!(p.validate(ways).is_ok());
            assert_eq!(p.good_ways(ways).len(), ways - 1, "ways={ways}");
            if let Policy::BiasedRandom { weights } = &p {
                let total: u32 = weights.iter().sum();
                assert_eq!(2 * weights[ways / 2], total, "ways={ways}");
            }
        }
        // Degenerate single-way cache still validates.
        assert!(Policy::nvidia_like(1).validate(1).is_ok());
    }

    #[test]
    fn srrip_evicts_distant_rereference_first() {
        let mut r = Replacer::new(Policy::Srrip, 1, 4);
        let mut g = rng();
        for w in 0..4 {
            r.on_fill(0, w); // all at RRPV 2
        }
        r.on_access(0, 1); // way 1 promoted to RRPV 0
                           // Aging brings ways 0,2,3 to 3 before way 1; victim is the lowest
                           // index among them.
        assert_eq!(r.victim(0, &mut g), 0);
        r.on_fill(0, 0);
        assert_eq!(r.victim(0, &mut g), 2);
    }

    #[test]
    fn srrip_scan_resistant() {
        // A reused line survives a one-shot scan of 3 other lines.
        let mut r = Replacer::new(Policy::Srrip, 1, 4);
        let mut g = rng();
        for w in 0..4 {
            r.on_fill(0, w);
        }
        r.on_access(0, 3); // hot way
        for _ in 0..3 {
            let v = r.victim(0, &mut g);
            assert_ne!(v, 3, "hot way evicted by scan");
            r.on_fill(0, v);
        }
    }

    #[test]
    fn validate_rejects_bad_configs() {
        assert!(Policy::BiasedRandom {
            weights: vec![1, 1]
        }
        .validate(4)
        .is_err());
        assert!(Policy::BiasedRandom {
            weights: vec![0, 0]
        }
        .validate(2)
        .is_err());
        assert!(Policy::PseudoLru.validate(3).is_err());
        assert!(Policy::Lru.validate(3).is_ok());
        assert!(Policy::nvidia_tegra().validate(4).is_ok());
    }
}
