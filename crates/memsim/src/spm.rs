//! Software-managed scratchpad memory (SPM).
//!
//! The SPM is the local store used by the SPM-based PREM state of the art
//! (HePREM, DATE'18). It is explicitly addressed: the M-phase *copies* data
//! in (a DRAM read plus an SPM write per line, plus address-translation
//! instructions — Fig 2 of the paper), and data never disappears until the
//! interval releases it. Capacity on the TX1 is 2 × 48 KiB.

use std::collections::HashSet;
use std::error::Error;
use std::fmt;

use crate::addr::{LineAddr, KIB};

/// Error staging data into the scratchpad.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpmError {
    /// The interval's footprint exceeds the scratchpad capacity.
    CapacityExceeded {
        /// Configured capacity in bytes.
        capacity_bytes: usize,
        /// Bytes the stage would have needed.
        requested_bytes: usize,
    },
    /// A compute-phase access touched a line that was never staged.
    NotStaged {
        /// The missing line.
        line: LineAddr,
    },
}

impl fmt::Display for SpmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpmError::CapacityExceeded {
                capacity_bytes,
                requested_bytes,
            } => write!(
                f,
                "scratchpad capacity exceeded: requested {requested_bytes} of {capacity_bytes} bytes"
            ),
            SpmError::NotStaged { line } => {
                write!(f, "compute access to unstaged scratchpad line {line}")
            }
        }
    }
}

impl Error for SpmError {}

/// Scratchpad geometry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpmConfig {
    capacity_bytes: usize,
    line_bytes: usize,
}

impl SpmConfig {
    /// Creates a scratchpad configuration.
    pub fn new(capacity_bytes: usize, line_bytes: usize) -> Self {
        SpmConfig {
            capacity_bytes,
            line_bytes,
        }
    }

    /// The TX1 configuration: 2 SMs × 48 KiB shared memory, 128-byte lines.
    pub fn tx1() -> Self {
        SpmConfig::new(2 * 48 * KIB, 128)
    }

    /// The TX2 (Pascal GP10B) configuration: 2 SMs × 64 KiB shared memory.
    pub fn tx2() -> Self {
        SpmConfig::new(2 * 64 * KIB, 128)
    }

    /// A Xavier-like (Volta GV10B) configuration: 8 SMs × 96 KiB of shared
    /// memory carved from the combined L1/shared storage.
    pub fn xavier_like() -> Self {
        SpmConfig::new(8 * 96 * KIB, 128)
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Transfer granularity in bytes.
    pub fn line_bytes(&self) -> usize {
        self.line_bytes
    }

    /// Capacity in lines.
    pub fn capacity_lines(&self) -> usize {
        self.capacity_bytes / self.line_bytes
    }
}

/// Scratchpad statistics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SpmStats {
    /// Lines copied in by M-phases.
    pub staged_lines: u64,
    /// Compute-phase accesses served.
    pub accesses: u64,
}

/// A software-managed scratchpad.
///
/// ```
/// use prem_memsim::{Spm, SpmConfig, LineAddr};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut spm = Spm::new(SpmConfig::new(256, 128));
/// spm.stage(LineAddr::new(1))?;
/// spm.stage(LineAddr::new(2))?;
/// assert!(spm.stage(LineAddr::new(3)).is_err()); // over capacity
/// assert!(spm.contains(LineAddr::new(1)));
/// spm.release();
/// assert!(!spm.contains(LineAddr::new(1)));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Spm {
    cfg: SpmConfig,
    resident: HashSet<LineAddr>,
    stats: SpmStats,
}

impl Spm {
    /// Builds an empty scratchpad.
    pub fn new(cfg: SpmConfig) -> Self {
        Spm {
            cfg,
            resident: HashSet::new(),
            stats: SpmStats::default(),
        }
    }

    /// The scratchpad's configuration.
    pub fn config(&self) -> &SpmConfig {
        &self.cfg
    }

    /// Copies `line` into the scratchpad.
    ///
    /// Returns `true` if the line was newly staged, `false` if it was
    /// already resident.
    ///
    /// # Errors
    ///
    /// [`SpmError::CapacityExceeded`] when the scratchpad is full.
    pub fn stage(&mut self, line: LineAddr) -> Result<bool, SpmError> {
        if self.resident.contains(&line) {
            return Ok(false);
        }
        let requested = (self.resident.len() + 1) * self.cfg.line_bytes;
        if requested > self.cfg.capacity_bytes {
            return Err(SpmError::CapacityExceeded {
                capacity_bytes: self.cfg.capacity_bytes,
                requested_bytes: requested,
            });
        }
        self.resident.insert(line);
        self.stats.staged_lines += 1;
        Ok(true)
    }

    /// Serves a compute-phase access to `line`.
    ///
    /// # Errors
    ///
    /// [`SpmError::NotStaged`] if the line was never staged — this indicates
    /// a broken PREM tiling (the M-phase must cover the C-phase footprint).
    pub fn access(&mut self, line: LineAddr) -> Result<(), SpmError> {
        if self.resident.contains(&line) {
            self.stats.accesses += 1;
            Ok(())
        } else {
            Err(SpmError::NotStaged { line })
        }
    }

    /// Whether `line` is resident.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.resident.contains(&line)
    }

    /// Bytes currently occupied.
    pub fn used_bytes(&self) -> usize {
        self.resident.len() * self.cfg.line_bytes
    }

    /// Releases all staged data (end of interval).
    pub fn release(&mut self) {
        self.resident.clear();
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &SpmStats {
        &self.stats
    }

    /// Clears statistics.
    pub fn reset_stats(&mut self) {
        self.stats = SpmStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_within_capacity() {
        let mut spm = Spm::new(SpmConfig::new(512, 128));
        for i in 0..4 {
            assert_eq!(spm.stage(LineAddr::new(i)), Ok(true));
        }
        assert_eq!(spm.used_bytes(), 512);
    }

    #[test]
    fn restage_is_idempotent() {
        let mut spm = Spm::new(SpmConfig::new(512, 128));
        assert_eq!(spm.stage(LineAddr::new(1)), Ok(true));
        assert_eq!(spm.stage(LineAddr::new(1)), Ok(false));
        assert_eq!(spm.used_bytes(), 128);
    }

    #[test]
    fn capacity_overflow_is_error() {
        let mut spm = Spm::new(SpmConfig::new(256, 128));
        spm.stage(LineAddr::new(0)).unwrap();
        spm.stage(LineAddr::new(1)).unwrap();
        let err = spm.stage(LineAddr::new(2)).unwrap_err();
        assert_eq!(
            err,
            SpmError::CapacityExceeded {
                capacity_bytes: 256,
                requested_bytes: 384
            }
        );
    }

    #[test]
    fn access_unstaged_is_error() {
        let mut spm = Spm::new(SpmConfig::tx1());
        assert!(matches!(
            spm.access(LineAddr::new(9)),
            Err(SpmError::NotStaged { .. })
        ));
    }

    #[test]
    fn release_frees_everything() {
        let mut spm = Spm::new(SpmConfig::new(256, 128));
        spm.stage(LineAddr::new(0)).unwrap();
        spm.release();
        assert_eq!(spm.used_bytes(), 0);
        assert_eq!(spm.stage(LineAddr::new(5)), Ok(true));
    }

    #[test]
    fn tx1_capacity_is_96_kib() {
        assert_eq!(SpmConfig::tx1().capacity_bytes(), 96 * KIB);
        assert_eq!(SpmConfig::tx1().capacity_lines(), 768);
    }

    #[test]
    fn stats_track_staging_and_access() {
        let mut spm = Spm::new(SpmConfig::new(512, 128));
        spm.stage(LineAddr::new(0)).unwrap();
        spm.access(LineAddr::new(0)).unwrap();
        spm.access(LineAddr::new(0)).unwrap();
        assert_eq!(spm.stats().staged_lines, 1);
        assert_eq!(spm.stats().accesses, 2);
    }

    #[test]
    fn error_messages_are_lowercase_and_informative() {
        let e = SpmError::NotStaged {
            line: LineAddr::new(4),
        };
        assert!(e.to_string().starts_with("compute access"));
    }
}
