//! # prem-memsim — memory-hierarchy simulation for PREM on GPU SoCs
//!
//! Line-accurate simulation of the memory components of a heterogeneous SoC
//! in the NVIDIA Tegra TX1 class, as needed to reproduce Forsberg et al.,
//! *"Taming Data Caches for Predictable Execution on GPU-based SoCs"*
//! (DATE 2019):
//!
//! * [`Cache`] — set-associative caches with pluggable replacement
//!   ([`Policy`]), including the **biased-random** victim selection measured
//!   on NVIDIA GPUs by Mei et al. ([`Policy::nvidia_tegra`]), with
//!   phase-tagged statistics ([`CacheStats`]) and the paper's CPMR metric
//!   ([`CacheStats::cpmr`]).
//! * [`Spm`] — the software-managed scratchpad used by the SPM-based PREM
//!   state of the art.
//! * [`DramConfig`] / [`Contention`] — shared-DRAM timing with a co-runner
//!   interference model.
//! * [`MemSystem`] — the composed GPU-visible hierarchy.
//! * [`TraceSink`] — the zero-cost cache-event instrumentation layer the
//!   `prem-trace` capture/replay subsystem plugs into.
//!
//! Everything is deterministic: randomized policies draw from an internal
//! xoshiro256\*\* generator ([`rng::Rng`]) seeded per component.
//!
//! ```
//! use prem_memsim::{Cache, CacheConfig, Policy, AccessKind, Phase, LineAddr, KIB};
//!
//! // The TX1 LLC: 256 KiB, 4-way, 128 B lines, biased-random replacement.
//! let cfg = CacheConfig::new(256 * KIB, 4, 128).policy(Policy::nvidia_tegra());
//! assert_eq!(cfg.good_capacity_bytes(), 192 * KIB); // the paper's usable size
//! let mut llc = Cache::new(cfg);
//! llc.access(LineAddr::new(42), AccessKind::Prefetch, Phase::MPhase);
//! assert!(llc.contains(LineAddr::new(42)));
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod addr;
mod cache;
mod dram;
mod hierarchy;
mod replacement;
pub mod rng;
mod spm;
mod stats;
pub mod trace;

pub use addr::{lines_covering, Addr, LineAddr, KIB, MIB};
pub use cache::{AccessKind, AccessOutcome, Cache, CacheConfig, Evicted};
pub use dram::{BusWindow, Contention, DramConfig, DramStats, CALIBRATED_DEMAND};
pub use hierarchy::{HitLevel, MemSystem};
pub use replacement::{Policy, Replacer};
pub use spm::{Spm, SpmConfig, SpmError, SpmStats};
pub use stats::{AccessCounts, CacheStats, Phase};
pub use trace::{CountingSink, NullSink, TraceSink};
