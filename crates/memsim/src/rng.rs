//! Deterministic pseudo-random number generation.
//!
//! Experiments must be bit-reproducible for a given seed, and the biased
//! random replacement policy needs weighted sampling with a stable stream.
//! Rather than pin an external crate's stream semantics, the workspace ships
//! this small, audited implementation of SplitMix64 (seeding) and
//! xoshiro256\*\* (generation) — the de-facto standard non-cryptographic
//! generators.

/// SplitMix64 stream, used to expand a 64-bit seed into generator state.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a stream seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit value of the stream.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256\*\* generator: fast, 256-bit state, passes BigCrush.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed (expanded via SplitMix64).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Rng {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Returns the next 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Lemire's nearly-divisionless method with rejection for exactness.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Picks an index in `[0, weights.len())` with probability proportional
    /// to `weights[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    #[inline]
    pub fn pick_weighted(&mut self, weights: &[u32]) -> usize {
        let total: u64 = weights.iter().map(|&w| w as u64).sum();
        assert!(total > 0, "weights must not sum to zero");
        let mut x = self.below(total);
        for (i, &w) in weights.iter().enumerate() {
            let w = w as u64;
            if x < w {
                return i;
            }
            x -= w;
        }
        unreachable!("weighted pick out of range")
    }

    /// Bernoulli draw with probability `p` of `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = Rng::seed_from_u64(7);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.below(7) as usize;
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn weighted_pick_matches_weights() {
        // Weights (1,1,3,1)/6: index 2 should be picked ~50% of the time.
        let mut rng = Rng::seed_from_u64(9);
        let weights = [1u32, 1, 3, 1];
        let mut counts = [0u32; 4];
        let n = 60_000;
        for _ in 0..n {
            counts[rng.pick_weighted(&weights)] += 1;
        }
        let frac2 = counts[2] as f64 / n as f64;
        assert!((frac2 - 0.5).abs() < 0.01, "bad-way fraction {frac2}");
        for i in [0usize, 1, 3] {
            let f = counts[i] as f64 / n as f64;
            assert!((f - 1.0 / 6.0).abs() < 0.01, "way {i} fraction {f}");
        }
    }

    #[test]
    fn weighted_pick_skips_zero_weights() {
        let mut rng = Rng::seed_from_u64(11);
        for _ in 0..100 {
            let i = rng.pick_weighted(&[0, 5, 0, 5]);
            assert!(i == 1 || i == 3);
        }
    }

    #[test]
    #[should_panic]
    fn weighted_pick_rejects_all_zero() {
        Rng::seed_from_u64(0).pick_weighted(&[0, 0]);
    }

    #[test]
    fn chance_estimates_probability() {
        let mut rng = Rng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| rng.chance(0.25)).count();
        let p = hits as f64 / 100_000.0;
        assert!((p - 0.25).abs() < 0.01);
    }
}
