//! Access statistics, tagged by PREM phase.
//!
//! The paper's central metric is the **compute-phase miss ratio (CPMR)**:
//! the fraction of all cache misses that occur in the C-phase (where they are
//! exposed to memory interference) rather than the M-phase (where they are
//! protected by the DRAM token). See [`CacheStats::cpmr`].

/// The PREM phase an access is attributed to.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub enum Phase {
    /// Memory phase: data staging under the exclusive DRAM token.
    MPhase,
    /// Compute phase: computation on local data, DRAM owned by the CPU.
    CPhase,
    /// Accesses outside a PREM schedule (e.g. the unmodified baseline).
    #[default]
    Unphased,
    /// Foreign traffic injected by a CPU co-runner actor (LLC pollution).
    /// Tracked separately so GPU-attributed totals — and the CPMR — never
    /// count the aggressor's own hits and misses.
    Corunner,
}

/// Hit/miss counters for one phase.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct AccessCounts {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed (and triggered a fill).
    pub misses: u64,
}

impl AccessCounts {
    /// Total number of accesses.
    pub fn total(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio over this phase's accesses, `0.0` when empty.
    pub fn miss_ratio(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.misses as f64 / self.total() as f64
        }
    }
}

/// Statistics collected by a [`Cache`](crate::Cache).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// M-phase accesses.
    pub m_phase: AccessCounts,
    /// C-phase accesses.
    pub c_phase: AccessCounts,
    /// Accesses outside a PREM schedule.
    pub unphased: AccessCounts,
    /// Co-runner (foreign) accesses. Excluded from the GPU-attributed
    /// totals and from the CPMR denominator.
    pub corunner: AccessCounts,
    /// Lines evicted to make room for a fill.
    pub evictions: u64,
    /// Evictions of a line that was filled during the *current interval*
    /// (i.e. "alive" data the interval still intends to use) — the paper's
    /// self-eviction phenomenon. Evictions *caused by* co-runner fills are
    /// not self-evictions; they count as `corunner_evictions`.
    pub self_evictions: u64,
    /// Alive GPU lines displaced by a co-runner fill — pollution damage,
    /// distinct from the self-inflicted kind above.
    pub corunner_evictions: u64,
    /// Dirty lines written back on eviction.
    pub writebacks: u64,
}

impl CacheStats {
    /// Counters for `phase`.
    pub fn phase(&self, phase: Phase) -> &AccessCounts {
        match phase {
            Phase::MPhase => &self.m_phase,
            Phase::CPhase => &self.c_phase,
            Phase::Unphased => &self.unphased,
            Phase::Corunner => &self.corunner,
        }
    }

    pub(crate) fn phase_mut(&mut self, phase: Phase) -> &mut AccessCounts {
        match phase {
            Phase::MPhase => &mut self.m_phase,
            Phase::CPhase => &mut self.c_phase,
            Phase::Unphased => &mut self.unphased,
            Phase::Corunner => &mut self.corunner,
        }
    }

    /// Total GPU-attributed misses (M, C and unphased; co-runner misses
    /// are the aggressor's own problem and live in
    /// [`CacheStats::corunner`]).
    pub fn total_misses(&self) -> u64 {
        self.m_phase.misses + self.c_phase.misses + self.unphased.misses
    }

    /// Total GPU-attributed accesses (M, C and unphased).
    pub fn total_accesses(&self) -> u64 {
        self.m_phase.total() + self.c_phase.total() + self.unphased.total()
    }

    /// Compute-phase miss ratio: C-phase misses over total misses
    /// (paper §III, "Self-eviction"). `0.0` when there are no misses at all.
    pub fn cpmr(&self) -> f64 {
        let total = self.total_misses();
        if total == 0 {
            0.0
        } else {
            self.c_phase.misses as f64 / total as f64
        }
    }

    /// Adds `other`'s counters into `self`.
    pub fn merge(&mut self, other: &CacheStats) {
        self.m_phase.hits += other.m_phase.hits;
        self.m_phase.misses += other.m_phase.misses;
        self.c_phase.hits += other.c_phase.hits;
        self.c_phase.misses += other.c_phase.misses;
        self.unphased.hits += other.unphased.hits;
        self.unphased.misses += other.unphased.misses;
        self.corunner.hits += other.corunner.hits;
        self.corunner.misses += other.corunner.misses;
        self.evictions += other.evictions;
        self.self_evictions += other.self_evictions;
        self.corunner_evictions += other.corunner_evictions;
        self.writebacks += other.writebacks;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpmr_zero_when_no_misses() {
        let s = CacheStats::default();
        assert_eq!(s.cpmr(), 0.0);
    }

    #[test]
    fn cpmr_counts_only_c_misses() {
        let mut s = CacheStats::default();
        s.m_phase.misses = 90;
        s.c_phase.misses = 10;
        assert!((s.cpmr() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn miss_ratio_empty_is_zero() {
        assert_eq!(AccessCounts::default().miss_ratio(), 0.0);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = CacheStats::default();
        a.c_phase.hits = 1;
        a.evictions = 2;
        let mut b = CacheStats::default();
        b.c_phase.hits = 3;
        b.evictions = 4;
        b.self_evictions = 5;
        a.merge(&b);
        assert_eq!(a.c_phase.hits, 4);
        assert_eq!(a.evictions, 6);
        assert_eq!(a.self_evictions, 5);
    }

    #[test]
    fn corunner_traffic_stays_out_of_gpu_totals_and_cpmr() {
        let mut s = CacheStats::default();
        s.c_phase.misses = 5;
        s.m_phase.misses = 5;
        s.corunner.misses = 1000;
        s.corunner.hits = 1000;
        assert_eq!(s.total_misses(), 10);
        assert_eq!(s.total_accesses(), 10);
        assert!((s.cpmr() - 0.5).abs() < 1e-12);
        assert_eq!(s.phase(Phase::Corunner).misses, 1000);
    }

    #[test]
    fn phase_accessors_route_correctly() {
        let mut s = CacheStats::default();
        s.phase_mut(Phase::MPhase).hits = 7;
        assert_eq!(s.phase(Phase::MPhase).hits, 7);
        assert_eq!(s.phase(Phase::CPhase).hits, 0);
    }
}
