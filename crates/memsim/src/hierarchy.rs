//! Composition of the GPU-side memory system: optional L1, the LLC, the
//! scratchpad, and the path to DRAM.
//!
//! [`MemSystem::access_cached`] models the cached path (L1 → LLC → DRAM,
//! fill-on-miss at every level); [`MemSystem::access_spm`] models the
//! explicitly managed scratchpad path. The returned [`HitLevel`] tells the
//! cost model where the access was served from.

use crate::addr::LineAddr;
use crate::cache::{AccessKind, Cache};
use crate::spm::{Spm, SpmError};
use crate::stats::Phase;
use crate::trace::TraceSink;

/// The memory level that served an access.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum HitLevel {
    /// Served by the (optional) GPU L1.
    L1,
    /// Served by the last-level cache.
    Llc,
    /// Served by the scratchpad.
    Spm,
    /// Missed all caches; a DRAM line transfer happened.
    Dram,
}

/// The GPU-visible memory system.
#[derive(Clone, Debug)]
pub struct MemSystem {
    l1: Option<Cache>,
    llc: Cache,
    spm: Spm,
}

impl MemSystem {
    /// Builds a memory system with an LLC and a scratchpad (no L1).
    pub fn new(llc: Cache, spm: Spm) -> Self {
        MemSystem { l1: None, llc, spm }
    }

    /// Adds a private L1 in front of the LLC.
    pub fn with_l1(mut self, l1: Cache) -> Self {
        assert_eq!(
            l1.config().line_bytes(),
            self.llc.config().line_bytes(),
            "L1 and LLC must share a line size"
        );
        self.l1 = Some(l1);
        self
    }

    /// One access on the cached path. Misses fill every probed level.
    pub fn access_cached(&mut self, line: LineAddr, kind: AccessKind, phase: Phase) -> HitLevel {
        self.access_cached_traced(line, kind, phase, &mut crate::trace::NullSink)
    }

    /// [`MemSystem::access_cached`] with LLC instrumentation: the LLC
    /// access (if the request reaches the LLC at all — an L1 hit is served
    /// upstream and emits nothing) reports its outcome to `sink`. Traces
    /// are defined at LLC granularity: that is the shared level whose
    /// behavior the paper's analysis — and the replay engine — reason
    /// about.
    pub fn access_cached_traced<S: TraceSink>(
        &mut self,
        line: LineAddr,
        kind: AccessKind,
        phase: Phase,
        sink: &mut S,
    ) -> HitLevel {
        if let Some(l1) = &mut self.l1 {
            if l1.access(line, kind, phase).hit {
                return HitLevel::L1;
            }
        }
        if self.llc.access_traced(line, kind, phase, sink).hit {
            HitLevel::Llc
        } else {
            HitLevel::Dram
        }
    }

    /// One access on the scratchpad path.
    ///
    /// # Errors
    ///
    /// Propagates [`SpmError::NotStaged`] if the PREM tiling failed to cover
    /// this line.
    pub fn access_spm(&mut self, line: LineAddr) -> Result<HitLevel, SpmError> {
        self.spm.access(line)?;
        Ok(HitLevel::Spm)
    }

    /// The LLC.
    pub fn llc(&self) -> &Cache {
        &self.llc
    }

    /// The LLC, mutable.
    pub fn llc_mut(&mut self) -> &mut Cache {
        &mut self.llc
    }

    /// The L1, if configured.
    pub fn l1(&self) -> Option<&Cache> {
        self.l1.as_ref()
    }

    /// The L1, mutable, if configured.
    pub fn l1_mut(&mut self) -> Option<&mut Cache> {
        self.l1.as_mut()
    }

    /// The scratchpad.
    pub fn spm(&self) -> &Spm {
        &self.spm
    }

    /// The scratchpad, mutable.
    pub fn spm_mut(&mut self) -> &mut Spm {
        &mut self.spm
    }

    /// Marks an interval boundary on all components (self-eviction epochs,
    /// scratchpad release).
    pub fn begin_interval(&mut self) {
        if let Some(l1) = &mut self.l1 {
            l1.begin_interval();
        }
        self.llc.begin_interval();
        self.spm.release();
    }

    /// Clears statistics on all components (contents untouched).
    pub fn reset_stats(&mut self) {
        if let Some(l1) = &mut self.l1 {
            l1.reset_stats();
        }
        self.llc.reset_stats();
        self.spm.reset_stats();
    }

    /// Invalidates all cache contents and releases the scratchpad.
    pub fn cold_reset(&mut self) {
        if let Some(l1) = &mut self.l1 {
            l1.invalidate_all();
        }
        self.llc.invalidate_all();
        self.spm.release();
    }

    /// Reseeds all randomized components.
    pub fn reseed(&mut self, seed: u64) {
        if let Some(l1) = &mut self.l1 {
            l1.reseed(seed ^ 0x11);
        }
        self.llc.reseed(seed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheConfig;
    use crate::spm::SpmConfig;

    fn sys() -> MemSystem {
        let llc = Cache::new(CacheConfig::new(1024, 2, 64));
        MemSystem::new(llc, Spm::new(SpmConfig::new(256, 64)))
    }

    #[test]
    fn miss_goes_to_dram_then_hits_llc() {
        let mut m = sys();
        assert_eq!(
            m.access_cached(LineAddr::new(7), AccessKind::Read, Phase::MPhase),
            HitLevel::Dram
        );
        assert_eq!(
            m.access_cached(LineAddr::new(7), AccessKind::Read, Phase::CPhase),
            HitLevel::Llc
        );
    }

    #[test]
    fn l1_front_serves_repeats() {
        let l1 = Cache::new(CacheConfig::new(256, 2, 64));
        let mut m = sys().with_l1(l1);
        assert_eq!(
            m.access_cached(LineAddr::new(3), AccessKind::Read, Phase::Unphased),
            HitLevel::Dram
        );
        assert_eq!(
            m.access_cached(LineAddr::new(3), AccessKind::Read, Phase::Unphased),
            HitLevel::L1
        );
    }

    #[test]
    fn l1_miss_llc_hit() {
        let l1 = Cache::new(CacheConfig::new(128, 1, 64)); // 2 sets, tiny
        let mut m = sys().with_l1(l1);
        m.access_cached(LineAddr::new(0), AccessKind::Read, Phase::Unphased);
        // Evict line 0 from L1 (same set, direct-mapped) but not from LLC.
        m.access_cached(LineAddr::new(2), AccessKind::Read, Phase::Unphased);
        assert_eq!(
            m.access_cached(LineAddr::new(0), AccessKind::Read, Phase::Unphased),
            HitLevel::Llc
        );
    }

    #[test]
    fn spm_path_requires_staging() {
        let mut m = sys();
        assert!(m.access_spm(LineAddr::new(1)).is_err());
        m.spm_mut().stage(LineAddr::new(1)).unwrap();
        assert_eq!(m.access_spm(LineAddr::new(1)), Ok(HitLevel::Spm));
    }

    #[test]
    fn begin_interval_releases_spm() {
        let mut m = sys();
        m.spm_mut().stage(LineAddr::new(1)).unwrap();
        m.begin_interval();
        assert!(!m.spm().contains(LineAddr::new(1)));
    }

    #[test]
    fn cold_reset_empties_caches() {
        let mut m = sys();
        m.access_cached(LineAddr::new(5), AccessKind::Read, Phase::Unphased);
        m.cold_reset();
        assert_eq!(
            m.access_cached(LineAddr::new(5), AccessKind::Read, Phase::Unphased),
            HitLevel::Dram
        );
    }

    #[test]
    #[should_panic(expected = "line size")]
    fn l1_line_size_mismatch_panics() {
        let l1 = Cache::new(CacheConfig::new(256, 2, 128));
        let _ = sys().with_l1(l1);
    }
}
