//! Physical addresses and cache-line addresses.
//!
//! The simulator works on a flat 64-bit physical address space. Data is moved
//! between memories at cache-line granularity, so most of the workspace deals
//! in [`LineAddr`] values; [`Addr`] exists for byte-accurate address
//! arithmetic when laying out data sets.

use std::fmt;

/// One kibibyte in bytes.
pub const KIB: usize = 1024;
/// One mebibyte in bytes.
pub const MIB: usize = 1024 * KIB;

/// A byte address in the simulated physical address space.
///
/// ```
/// use prem_memsim::Addr;
/// let a = Addr::new(0x1000);
/// assert_eq!(a.offset(0x20).raw(), 0x1020);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Addr(u64);

impl Addr {
    /// Creates an address from its raw byte value.
    pub fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// The raw byte address.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// The address `bytes` past `self`.
    pub fn offset(self, bytes: u64) -> Self {
        Addr(self.0 + bytes)
    }

    /// The cache line containing this address, for lines of `line_bytes`
    /// bytes.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `line_bytes` is not a power of two.
    pub fn line(self, line_bytes: usize) -> LineAddr {
        debug_assert!(line_bytes.is_power_of_two());
        LineAddr(self.0 >> line_bytes.trailing_zeros())
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

/// A cache-line address: a byte address divided by the line size.
///
/// Line addresses are what caches, scratchpads and the DRAM model operate
/// on. They are line-size-agnostic; the component that produced them defines
/// the granularity (the whole platform uses a single line size).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Creates a line address from its raw line number.
    pub fn new(raw: u64) -> Self {
        LineAddr(raw)
    }

    /// The raw line number.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// The first byte address of this line for the given line size.
    pub fn addr(self, line_bytes: usize) -> Addr {
        Addr(self.0 << line_bytes.trailing_zeros())
    }

    /// The line `n` lines past this one.
    pub fn offset(self, n: u64) -> Self {
        LineAddr(self.0 + n)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

impl From<u64> for LineAddr {
    fn from(raw: u64) -> Self {
        LineAddr(raw)
    }
}

/// Iterator over the lines covering the byte range `[start, start + len)`.
///
/// ```
/// use prem_memsim::{Addr, lines_covering};
/// let lines: Vec<_> = lines_covering(Addr::new(100), 100, 128).collect();
/// assert_eq!(lines.len(), 2); // bytes 100..200 touch lines 0 and 1
/// ```
pub fn lines_covering(start: Addr, len: u64, line_bytes: usize) -> impl Iterator<Item = LineAddr> {
    let first = start.line(line_bytes).raw();
    let last = if len == 0 {
        first
    } else {
        start.offset(len - 1).line(line_bytes).raw() + 1
    };
    (first..last.max(first)).map(LineAddr::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_line_roundtrip() {
        let a = Addr::new(0x12345);
        let l = a.line(128);
        assert_eq!(l.raw(), 0x12345 >> 7);
        assert_eq!(l.addr(128).raw(), (0x12345 >> 7) << 7);
    }

    #[test]
    fn line_offset_advances() {
        let l = LineAddr::new(10);
        assert_eq!(l.offset(5).raw(), 15);
    }

    #[test]
    fn lines_covering_exact_line() {
        let v: Vec<_> = lines_covering(Addr::new(256), 128, 128).collect();
        assert_eq!(v, vec![LineAddr::new(2)]);
    }

    #[test]
    fn lines_covering_straddles() {
        let v: Vec<_> = lines_covering(Addr::new(100), 100, 128).collect();
        assert_eq!(v, vec![LineAddr::new(0), LineAddr::new(1)]);
    }

    #[test]
    fn lines_covering_empty() {
        let v: Vec<_> = lines_covering(Addr::new(0), 0, 128).collect();
        assert!(v.is_empty());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Addr::new(255).to_string(), "0xff");
        assert_eq!(LineAddr::new(255).to_string(), "L0xff");
    }
}
