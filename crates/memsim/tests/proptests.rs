//! Property-based tests for the cache and scratchpad invariants.

use proptest::prelude::*;
use proptest::strategy::ValueTree;

use prem_memsim::{AccessKind, Cache, CacheConfig, LineAddr, Phase, Policy, Spm, SpmConfig};

/// An arbitrary small cache geometry (sets and ways powers of two).
fn cache_geometry() -> impl Strategy<Value = (usize, usize, usize)> {
    // (sets_log2 in 1..=5, ways in {1,2,4,8}, line in {32,64,128})
    (
        1u32..=5,
        prop::sample::select(vec![1usize, 2, 4, 8]),
        prop::sample::select(vec![32usize, 64, 128]),
    )
        .prop_map(|(s, w, l)| ((1usize << s) * w * l, w, l))
}

fn any_policy(ways: usize) -> impl Strategy<Value = Policy> {
    let mut choices = vec![Policy::Lru, Policy::Fifo, Policy::Random, Policy::Nmru];
    if ways.is_power_of_two() {
        choices.push(Policy::PseudoLru);
    }
    choices.push(Policy::BiasedRandom {
        weights: (0..ways)
            .map(|i| if i == ways / 2 { 3 } else { 1 })
            .collect(),
    });
    prop::sample::select(choices)
}

proptest! {
    /// Occupancy never exceeds capacity, for any policy and access pattern.
    #[test]
    fn occupancy_bounded((size, ways, line) in cache_geometry(),
                         seed in any::<u64>(),
                         lines in prop::collection::vec(0u64..4096, 1..400)) {
        let policy_strategy = any_policy(ways);
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let policy = policy_strategy.new_tree(&mut runner).unwrap().current();
        let mut c = Cache::new(CacheConfig::new(size, ways, line).policy(policy).seed(seed));
        let capacity = c.config().lines();
        for l in lines {
            c.access(LineAddr::new(l), AccessKind::Read, Phase::Unphased);
            prop_assert!(c.occupancy() <= capacity);
        }
    }

    /// An access to a line just accessed always hits (every policy retains
    /// the most recent fill at least until the next fill).
    #[test]
    fn immediate_reaccess_hits((size, ways, line) in cache_geometry(),
                               seed in any::<u64>(),
                               lines in prop::collection::vec(0u64..4096, 1..200)) {
        let mut c = Cache::new(CacheConfig::new(size, ways, line)
            .policy(Policy::nvidia_tegra_for(ways)).seed(seed));
        for l in lines {
            c.access(LineAddr::new(l), AccessKind::Read, Phase::Unphased);
            prop_assert!(c.contains(LineAddr::new(l)));
        }
    }

    /// With LRU and a footprint that fits the cache, a second pass never
    /// misses — the paper's "LRU would be no problem" claim (§III).
    #[test]
    fn lru_second_pass_hits((size, ways, line) in cache_geometry(),
                            start in 0u64..1000) {
        let mut c = Cache::new(CacheConfig::new(size, ways, line).policy(Policy::Lru));
        let n = c.config().lines() as u64;
        for l in 0..n {
            c.access(LineAddr::new(start + l), AccessKind::Read, Phase::MPhase);
        }
        c.reset_stats();
        for l in 0..n {
            let out = c.access(LineAddr::new(start + l), AccessKind::Read, Phase::CPhase);
            prop_assert!(out.hit, "line {l} of {n} missed under LRU");
        }
        prop_assert_eq!(c.stats().cpmr(), 0.0);
    }

    /// Hits never change occupancy; misses grow it by at most one line.
    #[test]
    fn occupancy_changes_only_on_miss((size, ways, line) in cache_geometry(),
                                      lines in prop::collection::vec(0u64..512, 1..200)) {
        let mut c = Cache::new(CacheConfig::new(size, ways, line).policy(Policy::Fifo));
        for l in lines {
            let before = c.occupancy();
            let out = c.access(LineAddr::new(l), AccessKind::Read, Phase::Unphased);
            let after = c.occupancy();
            if out.hit {
                prop_assert_eq!(before, after);
            } else {
                prop_assert!(after == before + 1 || (after == before && out.evicted.is_some()));
            }
        }
    }

    /// Eviction accounting: every reported eviction removes exactly the
    /// reported line.
    #[test]
    fn evicted_line_is_gone((size, ways, line) in cache_geometry(),
                            seed in any::<u64>(),
                            lines in prop::collection::vec(0u64..256, 1..200)) {
        let mut c = Cache::new(CacheConfig::new(size, ways, line)
            .policy(Policy::Random).seed(seed));
        for l in lines {
            let out = c.access(LineAddr::new(l), AccessKind::Read, Phase::Unphased);
            if let Some(ev) = out.evicted {
                // The evicted line is no longer resident (unless it was the
                // same line re-filled, which cannot happen: we evict only on
                // miss).
                prop_assert!(!c.contains(ev.line));
            }
        }
    }

    /// Scratchpad staging never exceeds capacity and never loses lines
    /// until released.
    #[test]
    fn spm_capacity_and_retention(cap_lines in 1usize..64,
                                  lines in prop::collection::vec(0u64..128, 1..100)) {
        let mut spm = Spm::new(SpmConfig::new(cap_lines * 128, 128));
        let mut staged = std::collections::HashSet::new();
        for l in lines {
            match spm.stage(LineAddr::new(l)) {
                Ok(_) => { staged.insert(l); }
                Err(_) => prop_assert!(staged.len() == cap_lines && !staged.contains(&l)),
            }
            prop_assert!(spm.used_bytes() <= cap_lines * 128);
        }
        for &l in &staged {
            prop_assert!(spm.contains(LineAddr::new(l)));
        }
    }
}

/// Helper: a biased policy sized for arbitrary way counts (way `ways/2` bad).
trait TegraForWays {
    fn nvidia_tegra_for(ways: usize) -> Policy;
}

impl TegraForWays for Policy {
    fn nvidia_tegra_for(ways: usize) -> Policy {
        Policy::BiasedRandom {
            weights: (0..ways)
                .map(|i| if i == ways / 2 { 3 } else { 1 })
                .collect(),
        }
    }
}
