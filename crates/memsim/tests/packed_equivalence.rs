//! Packed-layout equivalence: the sentinel-tagged `Cache` against a
//! reference model of the pre-change semantics.
//!
//! The packed hot path (one flat `u64` tag lane + one metadata byte per
//! slot) replaced the original five side arrays (`tags`/`valid`/`dirty`/
//! `foreign`/`fill_epoch`). This suite pins that the representation
//! change is *observationally invisible*: the reference below is the old
//! layout rebuilt verbatim from the public `Replacer`/`Rng` machinery,
//! and arbitrary access streams — every policy, random kinds, phases and
//! interval boundaries — must produce identical outcomes, identical
//! eviction attribution and identical `CacheStats`, access by access.

use proptest::prelude::*;
use proptest::strategy::ValueTree;

use prem_memsim::rng::Rng;
use prem_memsim::{
    AccessKind, AccessOutcome, Cache, CacheConfig, CacheStats, Evicted, LineAddr, Phase, Policy,
    Replacer,
};

/// The pre-change cache: separate `valid`/`dirty`/`foreign` side arrays
/// and an epoch counter for aliveness, with the exact `Replacer`/`Rng`
/// call sequence and stats-update order of the original implementation.
struct ReferenceCache {
    cfg: CacheConfig,
    tags: Vec<LineAddr>,
    valid: Vec<bool>,
    dirty: Vec<bool>,
    foreign: Vec<bool>,
    fill_epoch: Vec<u64>,
    epoch: u64,
    replacer: Replacer,
    rng: Rng,
    stats: CacheStats,
}

impl ReferenceCache {
    fn new(cfg: CacheConfig) -> Self {
        let slots = cfg.sets() * cfg.ways();
        let replacer = Replacer::new(cfg.policy_ref().clone(), cfg.sets(), cfg.ways());
        let rng = Rng::seed_from_u64(cfg.seed_value());
        ReferenceCache {
            tags: vec![LineAddr::new(0); slots],
            valid: vec![false; slots],
            dirty: vec![false; slots],
            foreign: vec![false; slots],
            fill_epoch: vec![0; slots],
            epoch: 1,
            replacer,
            rng,
            stats: CacheStats::default(),
            cfg,
        }
    }

    fn counts(&mut self, phase: Phase) -> &mut prem_memsim::AccessCounts {
        match phase {
            Phase::MPhase => &mut self.stats.m_phase,
            Phase::CPhase => &mut self.stats.c_phase,
            Phase::Unphased => &mut self.stats.unphased,
            Phase::Corunner => &mut self.stats.corunner,
        }
    }

    fn access(&mut self, line: LineAddr, kind: AccessKind, phase: Phase) -> AccessOutcome {
        let set = self.cfg.set_index(line);
        let base = set * self.cfg.ways();
        let ways = self.cfg.ways();

        if let Some(way) = (0..ways).find(|&w| self.valid[base + w] && self.tags[base + w] == line)
        {
            self.counts(phase).hits += 1;
            if kind == AccessKind::Write {
                self.dirty[base + way] = true;
            }
            self.replacer.on_access(set, way);
            return AccessOutcome {
                hit: true,
                evicted: None,
                way,
            };
        }

        self.counts(phase).misses += 1;
        let (way, evicted) = match (0..ways).find(|&w| !self.valid[base + w]) {
            Some(w) => (w, None),
            None => {
                let w = self.replacer.victim(set, &mut self.rng);
                let ev = Evicted {
                    line: self.tags[base + w],
                    alive: self.fill_epoch[base + w] == self.epoch,
                    dirty: self.dirty[base + w],
                    foreign: self.foreign[base + w],
                };
                self.stats.evictions += 1;
                if ev.alive && !ev.foreign {
                    if phase == Phase::Corunner {
                        self.stats.corunner_evictions += 1;
                    } else {
                        self.stats.self_evictions += 1;
                    }
                }
                if ev.dirty {
                    self.stats.writebacks += 1;
                }
                (w, Some(ev))
            }
        };

        self.tags[base + way] = line;
        self.valid[base + way] = true;
        self.dirty[base + way] = kind == AccessKind::Write;
        self.foreign[base + way] = phase == Phase::Corunner;
        self.fill_epoch[base + way] = self.epoch;
        self.replacer.on_fill(set, way);

        AccessOutcome {
            hit: false,
            evicted,
            way,
        }
    }

    fn begin_interval(&mut self) {
        self.epoch += 1;
    }

    fn way_of(&self, line: LineAddr) -> Option<usize> {
        let base = self.cfg.set_index(line) * self.cfg.ways();
        (0..self.cfg.ways()).find(|&w| self.valid[base + w] && self.tags[base + w] == line)
    }

    fn occupancy(&self) -> usize {
        self.valid.iter().filter(|&&v| v).count()
    }
}

/// All seven policies, sized for `ways`.
fn every_policy(ways: usize) -> Vec<Policy> {
    let mut policies = vec![
        Policy::Lru,
        Policy::Fifo,
        Policy::Random,
        Policy::Nmru,
        Policy::Srrip,
        Policy::BiasedRandom {
            weights: (0..ways)
                .map(|i| if i == ways / 2 { 3 } else { 1 })
                .collect(),
        },
    ];
    if ways.is_power_of_two() {
        policies.push(Policy::PseudoLru);
    }
    policies
}

/// One stream event: an access or an interval boundary.
#[derive(Clone, Debug)]
enum Event {
    Access(u64, AccessKind, Phase),
    BeginInterval,
    InvalidateAll,
}

fn event_strategy() -> impl Strategy<Value = Event> {
    let kinds = prop::sample::select(vec![
        AccessKind::Read,
        AccessKind::Write,
        AccessKind::Prefetch,
    ]);
    let phases = prop::sample::select(vec![
        Phase::MPhase,
        Phase::CPhase,
        Phase::Unphased,
        Phase::Corunner,
    ]);
    // ~1/22 interval boundaries, ~1/22 flushes, the rest accesses.
    (0u8..22, 0u64..2048, kinds, phases).prop_map(|(pick, l, k, p)| match pick {
        0 => Event::BeginInterval,
        1 => Event::InvalidateAll,
        _ => Event::Access(l, k, p),
    })
}

fn cache_geometry() -> impl Strategy<Value = (usize, usize, usize)> {
    (
        1u32..=5,
        prop::sample::select(vec![1usize, 2, 3, 4, 8]),
        prop::sample::select(vec![32usize, 64, 128]),
    )
        .prop_map(|(s, w, l)| ((1usize << s) * w * l, w, l))
}

proptest! {
    /// The packed cache and the reference agree on every observable, for
    /// every policy, after every event of an arbitrary stream.
    #[test]
    fn packed_matches_reference_semantics(
        (size, ways, line) in cache_geometry(),
        seed in any::<u64>(),
        hash in any::<bool>(),
        events in prop::collection::vec(event_strategy(), 1..300),
    ) {
        for policy in every_policy(ways) {
            let cfg = CacheConfig::new(size, ways, line)
                .policy(policy)
                .seed(seed)
                .index_hash(hash && (size / (ways * line)) > 1);
            let mut packed = Cache::new(cfg.clone());
            let mut reference = ReferenceCache::new(cfg);
            for event in &events {
                match *event {
                    Event::Access(l, kind, phase) => {
                        let line = LineAddr::new(l);
                        let a = packed.access(line, kind, phase);
                        let b = reference.access(line, kind, phase);
                        prop_assert_eq!(a, b);
                        prop_assert_eq!(packed.way_of(line), reference.way_of(line));
                    }
                    Event::BeginInterval => {
                        packed.begin_interval();
                        reference.begin_interval();
                    }
                    Event::InvalidateAll => {
                        packed.invalidate_all();
                        reference.valid.iter_mut().for_each(|v| *v = false);
                        reference.dirty.iter_mut().for_each(|d| *d = false);
                        reference.foreign.iter_mut().for_each(|f| *f = false);
                    }
                }
                prop_assert_eq!(packed.occupancy(), reference.occupancy());
            }
            prop_assert_eq!(packed.stats(), &reference.stats);
        }
    }

    /// Reseeding mid-stream keeps the two models aligned (the executor
    /// reseeds between the profiling pass and the timed run).
    #[test]
    fn packed_matches_reference_across_reseed(
        (size, ways, line) in cache_geometry(),
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
        lines in prop::collection::vec(0u64..512, 1..200),
    ) {
        let policy_strategy = prop::sample::select(every_policy(ways));
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let policy = policy_strategy.new_tree(&mut runner).unwrap().current();
        let cfg = CacheConfig::new(size, ways, line).policy(policy).seed(seed_a);
        let mut packed = Cache::new(cfg.clone());
        let mut reference = ReferenceCache::new(cfg);
        let half = lines.len() / 2;
        for (i, &l) in lines.iter().enumerate() {
            if i == half {
                packed.reseed(seed_b);
                reference.rng = Rng::seed_from_u64(seed_b);
            }
            let a = packed.access(LineAddr::new(l), AccessKind::Read, Phase::Unphased);
            let b = reference.access(LineAddr::new(l), AccessKind::Read, Phase::Unphased);
            prop_assert_eq!(a, b);
        }
        prop_assert_eq!(packed.stats(), &reference.stats);
    }
}
