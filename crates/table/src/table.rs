//! Plain-text tables with CSV export.

use std::fmt;

/// A column-aligned text table.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count.
    pub fn push_row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Renders as CSV (title omitted).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&csv_line(&self.headers));
        for row in &self.rows {
            out.push_str(&csv_line(row));
        }
        out
    }

    /// All rows (for assertions in tests).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }
}

fn csv_line(cells: &[String]) -> String {
    let mut line = cells
        .iter()
        .map(|c| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.clone()
            }
        })
        .collect::<Vec<_>>()
        .join(",");
    line.push('\n');
    line
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, c) in cells.iter().enumerate() {
                write!(f, "{:>w$}  ", c, w = widths[i])?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float with 3 decimal places.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float as a percentage with 1 decimal place.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["a", "bbbb"]);
        t.push_row(vec!["1".into(), "2".into()]);
        let s = t.to_string();
        assert!(s.contains("== demo =="));
        assert!(s.contains("bbbb"));
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("x", &["k", "v"]);
        t.push_row(vec!["a,b".into(), "plain".into()]);
        assert_eq!(t.to_csv(), "k,v\n\"a,b\",plain\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        Table::new("x", &["a"]).push_row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(pct(0.157), "15.7%");
    }
}
