//! Aggregation across experiment seeds.

/// Summary statistics of one metric across seeds.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct Stats {
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum observed.
    pub min: f64,
    /// Maximum observed.
    pub max: f64,
    /// Number of samples.
    pub n: usize,
}

impl Stats {
    /// Computes statistics over samples.
    pub fn of(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Stats::default();
        }
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Stats { mean, min, max, n }
    }

    /// Half-spread `(max - min) / 2` — a cheap dispersion indicator.
    pub fn spread(&self) -> f64 {
        (self.max - self.min) / 2.0
    }
}

/// Runs `f` once per seed and aggregates the returned metric.
pub fn over_seeds(seeds: &[u64], mut f: impl FnMut(u64) -> f64) -> Stats {
    let samples: Vec<f64> = seeds.iter().map(|&s| f(s)).collect();
    Stats::of(&samples)
}

/// Geometric mean of a sequence of ratios (NaN for an empty sequence).
/// Values must be positive — zeros or negatives poison the result with
/// `-inf`/NaN, as there is no meaningful geomean for them.
pub fn geomean(vals: impl Iterator<Item = f64>) -> f64 {
    let (sum, n) = vals.fold((0.0, 0usize), |(s, n), v| (s + v.ln(), n + 1));
    if n == 0 {
        f64::NAN
    } else {
        (sum / n as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_samples() {
        let s = Stats::of(&[1.0, 2.0, 3.0]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.n, 3);
        assert_eq!(s.spread(), 1.0);
    }

    #[test]
    fn empty_is_default() {
        assert_eq!(Stats::of(&[]), Stats::default());
    }

    #[test]
    fn over_seeds_runs_each() {
        let s = over_seeds(&[1, 2, 3], |seed| seed as f64);
        assert_eq!(s.mean, 2.0);
    }

    #[test]
    fn geomean_of_ratios() {
        let g = geomean([2.0, 8.0].into_iter());
        assert!((g - 4.0).abs() < 1e-12);
        assert!(geomean(std::iter::empty()).is_nan());
    }
}
