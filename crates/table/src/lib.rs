//! # prem-table — tables, CSV export and seed statistics
//!
//! The rendering primitives every layer above the simulator shares:
//! [`Table`] (column-aligned text with CSV export), the [`f3`]/[`pct`]
//! cell formatters, and the seed-aggregation helpers ([`Stats`],
//! [`over_seeds`], [`geomean`]).
//!
//! This crate sits *below* both `prem-harness` and `prem-report` on
//! purpose: the harness renders matrix artifacts and the report renders
//! figure artifacts, and since the report builds its figures on the
//! harness's run-plan layer, the shared formatting has to live underneath
//! the two rather than in either. It has no dependencies and no simulator
//! knowledge.

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod stats;
pub mod table;

pub use stats::{geomean, over_seeds, Stats};
pub use table::{f3, pct, Table};
