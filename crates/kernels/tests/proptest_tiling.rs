//! Property tests: every kernel's PREM tiling is legal (covered, sized) and
//! semantics-preserving for arbitrary problem sizes and interval sizes.

use proptest::prelude::*;

use prem_kernels::{
    Atax, Bicg, Conv2d, Gemm, Gemver, Gesummv, Jacobi2d, Kernel, Mvt, Syrk, LINE_BYTES,
};
use prem_memsim::KIB;

/// Dimensions: multiples of 32 in a laptop-testable range.
fn dim() -> impl Strategy<Value = usize> {
    (2usize..=6).prop_map(|k| k * 32)
}

/// Interval sizes from small to LLC-scale.
fn t_bytes() -> impl Strategy<Value = usize> {
    (8usize..=192).prop_map(|k| k * KIB)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn bicg_tiling_always_verifies(n in dim(), m in dim(), t in t_bytes()) {
        let k = Bicg::new(n, m);
        let t = t.max(k.min_interval_bytes());
        k.verify(t).unwrap();
    }

    #[test]
    fn atax_tiling_always_verifies(n in dim(), m in dim(), t in t_bytes()) {
        let k = Atax::new(n, m);
        let t = t.max(k.min_interval_bytes());
        k.verify(t).unwrap();
    }

    #[test]
    fn mvt_tiling_always_verifies(n in dim(), t in t_bytes()) {
        let k = Mvt::new(n);
        let t = t.max(k.min_interval_bytes());
        k.verify(t).unwrap();
    }

    #[test]
    fn gesummv_tiling_always_verifies(n in dim(), t in t_bytes()) {
        let k = Gesummv::new(n);
        let t = t.max(k.min_interval_bytes());
        k.verify(t).unwrap();
    }

    #[test]
    fn gemm_tiling_always_verifies(ni in dim(), nj in dim(), nk in dim(), t in t_bytes()) {
        let k = Gemm::new(ni, nj, nk);
        let t = t.max(k.min_interval_bytes());
        k.verify(t).unwrap();
    }

    #[test]
    fn syrk_tiling_always_verifies(n in dim(), m in dim(), t in t_bytes()) {
        let k = Syrk::new(n, m);
        let t = t.max(k.min_interval_bytes());
        k.verify(t).unwrap();
    }

    #[test]
    fn conv2d_tiling_always_verifies(n in dim(), t in t_bytes()) {
        let k = Conv2d::new(n);
        let t = t.max(k.min_interval_bytes());
        k.verify(t).unwrap();
    }

    #[test]
    fn jacobi2d_tiling_always_verifies(n in dim(), steps in 1usize..4, t in t_bytes()) {
        let k = Jacobi2d::new(n, steps);
        let t = t.max(k.min_interval_bytes());
        k.verify(t).unwrap();
    }

    #[test]
    fn gemver_tiling_always_verifies(n in dim(), t in t_bytes()) {
        let k = Gemver::new(n);
        let t = t.max(k.min_interval_bytes());
        k.verify(t).unwrap();
    }

    /// Footprint bytes never exceed T, for any kernel in the family.
    #[test]
    fn footprints_bounded(n in dim(), t in t_bytes()) {
        let k = Bicg::new(n, n);
        let t = t.max(k.min_interval_bytes());
        for iv in k.intervals(t).unwrap() {
            prop_assert!(iv.footprint_bytes(LINE_BYTES) <= t);
        }
    }

    /// Total compute accesses are invariant under the tiling: every tiled
    /// access stream has as many matrix-line reads as the T-independent
    /// iteration space dictates.
    #[test]
    fn access_volume_invariant(n in dim(), ta in t_bytes(), tb in t_bytes()) {
        let k = Gesummv::new(n);
        let ta = ta.max(k.min_interval_bytes());
        let tb = tb.max(k.min_interval_bytes());
        let count = |t: usize| -> usize {
            k.intervals(t).unwrap().iter().map(|iv| iv.c_accesses.len()).sum()
        };
        prop_assert_eq!(count(ta), count(tb));
    }
}
