//! `gesummv` — scalar, vector and matrix multiplication (PolyBench-ACC):
//! `y = α·A·x + β·B·x`.
//!
//! Two matrices are streamed per row, doubling the per-row footprint
//! relative to `bicg`/`atax`.

use prem_core::IntervalSpec;

use crate::data::{init_buffer, ArrayDesc, Layout, ELEM_BYTES};
use crate::stream::IntervalBuilder;
use crate::{check_coverage, compare_results, Kernel, KernelError, VerifyError, LINE_BYTES};

const ALPHA: f32 = 1.5;
const BETA: f32 = 1.2;
const ALU_PER_CHUNK: u64 = 6;
const ALU_PER_ROW: u64 = 4;

/// The `gesummv` kernel model.
#[derive(Clone, Debug)]
pub struct Gesummv {
    n: usize,
    a: ArrayDesc,
    b: ArrayDesc,
    x: ArrayDesc,
    y: ArrayDesc,
    tmp: ArrayDesc,
}

impl Gesummv {
    /// Creates a `gesummv` instance over `n × n` matrices.
    ///
    /// # Panics
    ///
    /// Panics unless `n` is a multiple of 32.
    pub fn new(n: usize) -> Self {
        let mut layout = Layout::new(LINE_BYTES);
        let a = layout.alloc("A", n, n);
        let b = layout.alloc("B", n, n);
        let x = layout.alloc_vec("x", n);
        let y = layout.alloc_vec("y", n);
        let tmp = layout.alloc_vec("tmp", n);
        Gesummv { n, a, b, x, y, tmp }
    }

    fn row_blocks(&self, t_bytes: usize) -> Result<Vec<(usize, usize)>, KernelError> {
        let min = self.min_interval_bytes();
        if t_bytes < min {
            return Err(KernelError::IntervalTooSmall {
                kernel: self.name(),
                t_bytes,
                min_bytes: min,
            });
        }
        let fixed = self.x.bytes() + 4 * LINE_BYTES;
        let per_row = 2 * self.n * ELEM_BYTES + 2 * ELEM_BYTES;
        let rows = prem_core::rows_per_interval(t_bytes, fixed, per_row).max(1);
        Ok((0..self.n)
            .step_by(rows)
            .map(|i0| (i0, (i0 + rows).min(self.n)))
            .collect())
    }

    fn compute(&self, blocks: &[(usize, usize)]) -> Vec<f32> {
        let a = init_buffer(&self.a, 1);
        let b = init_buffer(&self.b, 2);
        let x = init_buffer(&self.x, 3);
        let mut y = vec![0.0f32; self.n];
        for &(i0, i1) in blocks {
            for i in i0..i1 {
                let mut t = 0.0f32;
                let mut yy = 0.0f32;
                for j in 0..self.n {
                    t += a[i * self.n + j] * x[j];
                    yy += b[i * self.n + j] * x[j];
                }
                y[i] = ALPHA * t + BETA * yy;
            }
        }
        y
    }
}

impl Kernel for Gesummv {
    fn name(&self) -> &'static str {
        "gesummv"
    }

    fn dims(&self) -> String {
        format!("{}x{}", self.n, self.n)
    }

    fn id_dims(&self) -> Vec<usize> {
        vec![self.n]
    }

    fn dataset_bytes(&self) -> usize {
        self.a.bytes() + self.b.bytes() + self.x.bytes() + self.y.bytes() + self.tmp.bytes()
    }

    fn min_interval_bytes(&self) -> usize {
        self.x.bytes() + 2 * self.n * ELEM_BYTES + 8 * LINE_BYTES
    }

    fn intervals(&self, t_bytes: usize) -> Result<Vec<IntervalSpec>, KernelError> {
        let epl = self.a.elems_per_line();
        let chunks = self.n / epl;
        let mut out = Vec::new();
        for (i0, i1) in self.row_blocks(t_bytes)? {
            let mut b = IntervalBuilder::new();
            b.stage_flat(&self.x, 0, self.n);
            b.stage_flat(&self.y, i0, i1);
            b.stage_flat(&self.tmp, i0, i1);
            for i in i0..i1 {
                b.stage_row(&self.a, i, 0, self.n);
                b.stage_row(&self.b, i, 0, self.n);
            }
            for i in i0..i1 {
                for c in 0..chunks {
                    let c0 = c * epl;
                    b.read(self.a.line(i, c0));
                    b.read(self.b.line(i, c0));
                    b.read(self.x.line(0, c0));
                    b.alu(ALU_PER_CHUNK);
                }
                b.write(self.tmp.line(0, i));
                b.write(self.y.line(0, i));
                b.alu(ALU_PER_ROW);
            }
            out.push(b.build());
        }
        Ok(out)
    }

    fn verify(&self, t_bytes: usize) -> Result<(), VerifyError> {
        check_coverage(&self.intervals(t_bytes)?, t_bytes)?;
        let reference = self.compute(&[(0, self.n)]);
        let tiled = self.compute(&self.row_blocks(t_bytes)?);
        compare_results(self.name(), &reference, &tiled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prem_memsim::KIB;

    #[test]
    fn tiling_verified() {
        let k = Gesummv::new(128);
        for t in [8 * KIB, 32 * KIB, 96 * KIB] {
            k.verify(t).unwrap();
        }
    }

    #[test]
    fn per_row_footprint_is_two_matrix_rows() {
        let k = Gesummv::new(128);
        // Twice the per-row bytes of a single-matrix kernel means fewer rows
        // per interval than bicg at the same T.
        let g = k.intervals(16 * KIB).unwrap().len();
        let b = crate::Bicg::new(128, 128)
            .intervals(16 * KIB)
            .unwrap()
            .len();
        assert!(g > b, "gesummv {g} intervals vs bicg {b}");
    }
}
