//! Chained matrix-multiplication kernels: `2mm` and `3mm` (PolyBench-ACC).
//!
//! Each pass is a blocked `gemm`; intermediates live in DRAM between
//! passes, so every pass is separately PREM-tiled.

use prem_core::IntervalSpec;

use crate::data::{init_buffer, ArrayDesc, Layout};
use crate::matmul::{mm_block_dims, mm_blocks, mm_compute, mm_interval, MmBlock, ALPHA, BETA};
use crate::{check_coverage, compare_results, Kernel, KernelError, VerifyError, LINE_BYTES};

/// The `2mm` kernel model: `D = α·A·B·C + β·D` via `tmp = α·A·B`,
/// `D = tmp·C + β·D`.
#[derive(Clone, Debug)]
pub struct TwoMm {
    n: usize,
    a: ArrayDesc,
    b: ArrayDesc,
    tmp: ArrayDesc,
    c: ArrayDesc,
    d: ArrayDesc,
}

impl TwoMm {
    /// Creates a square `2mm` of size `n`.
    ///
    /// # Panics
    ///
    /// Panics unless `n` is a multiple of 32.
    pub fn new(n: usize) -> Self {
        let mut layout = Layout::new(LINE_BYTES);
        let a = layout.alloc("A", n, n);
        let b = layout.alloc("B", n, n);
        let tmp = layout.alloc("tmp", n, n);
        let c = layout.alloc("C", n, n);
        let d = layout.alloc("D", n, n);
        TwoMm { n, a, b, tmp, c, d }
    }

    fn blocks(&self, t_bytes: usize) -> Result<Vec<MmBlock>, KernelError> {
        let dims = mm_block_dims("2mm", t_bytes, self.n, self.n, self.n, 1, 1)?;
        Ok(mm_blocks(self.n, self.n, self.n, dims))
    }
}

impl Kernel for TwoMm {
    fn name(&self) -> &'static str {
        "2mm"
    }

    fn dims(&self) -> String {
        format!("{n}x{n} (2 products)", n = self.n)
    }

    fn id_dims(&self) -> Vec<usize> {
        vec![self.n]
    }

    fn dataset_bytes(&self) -> usize {
        5 * self.a.bytes()
    }

    fn min_interval_bytes(&self) -> usize {
        crate::data::ELEM_BYTES * (32 * 32 + 64 + 1) + LINE_BYTES
    }

    fn intervals(&self, t_bytes: usize) -> Result<Vec<IntervalSpec>, KernelError> {
        let blocks = self.blocks(t_bytes)?;
        let mut out: Vec<IntervalSpec> = blocks
            .iter()
            .map(|blk| mm_interval(&self.a, &self.b, &self.tmp, blk))
            .collect();
        out.extend(
            blocks
                .iter()
                .map(|blk| mm_interval(&self.tmp, &self.c, &self.d, blk)),
        );
        Ok(out)
    }

    fn verify(&self, t_bytes: usize) -> Result<(), VerifyError> {
        check_coverage(&self.intervals(t_bytes)?, t_bytes)?;
        let a = init_buffer(&self.a, 1);
        let b = init_buffer(&self.b, 2);
        let c = init_buffer(&self.c, 3);
        let whole = mm_blocks(self.n, self.n, self.n, (self.n, self.n, self.n));
        let run = |blocks: &[MmBlock]| {
            let mut tmp = vec![0.0f32; self.n * self.n];
            let mut d = init_buffer(&self.d, 4);
            mm_compute(&a, &b, &mut tmp, self.n, self.n, ALPHA, 0.0, blocks);
            mm_compute(&tmp, &c, &mut d, self.n, self.n, 1.0, BETA, blocks);
            d
        };
        compare_results(self.name(), &run(&whole), &run(&self.blocks(t_bytes)?))
    }
}

/// The `3mm` kernel model: `G = (A·B)·(C·D)`.
#[derive(Clone, Debug)]
pub struct ThreeMm {
    n: usize,
    a: ArrayDesc,
    b: ArrayDesc,
    c: ArrayDesc,
    d: ArrayDesc,
    e: ArrayDesc,
    f: ArrayDesc,
    g: ArrayDesc,
}

impl ThreeMm {
    /// Creates a square `3mm` of size `n`.
    ///
    /// # Panics
    ///
    /// Panics unless `n` is a multiple of 32.
    pub fn new(n: usize) -> Self {
        let mut layout = Layout::new(LINE_BYTES);
        let a = layout.alloc("A", n, n);
        let b = layout.alloc("B", n, n);
        let c = layout.alloc("C", n, n);
        let d = layout.alloc("D", n, n);
        let e = layout.alloc("E", n, n);
        let f = layout.alloc("F", n, n);
        let g = layout.alloc("G", n, n);
        ThreeMm {
            n,
            a,
            b,
            c,
            d,
            e,
            f,
            g,
        }
    }

    fn blocks(&self, t_bytes: usize) -> Result<Vec<MmBlock>, KernelError> {
        let dims = mm_block_dims("3mm", t_bytes, self.n, self.n, self.n, 1, 1)?;
        Ok(mm_blocks(self.n, self.n, self.n, dims))
    }
}

impl Kernel for ThreeMm {
    fn name(&self) -> &'static str {
        "3mm"
    }

    fn dims(&self) -> String {
        format!("{n}x{n} (3 products)", n = self.n)
    }

    fn id_dims(&self) -> Vec<usize> {
        vec![self.n]
    }

    fn dataset_bytes(&self) -> usize {
        7 * self.a.bytes()
    }

    fn min_interval_bytes(&self) -> usize {
        crate::data::ELEM_BYTES * (32 * 32 + 64 + 1) + LINE_BYTES
    }

    fn intervals(&self, t_bytes: usize) -> Result<Vec<IntervalSpec>, KernelError> {
        let blocks = self.blocks(t_bytes)?;
        let mut out: Vec<IntervalSpec> = blocks
            .iter()
            .map(|blk| mm_interval(&self.a, &self.b, &self.e, blk))
            .collect();
        out.extend(
            blocks
                .iter()
                .map(|blk| mm_interval(&self.c, &self.d, &self.f, blk)),
        );
        out.extend(
            blocks
                .iter()
                .map(|blk| mm_interval(&self.e, &self.f, &self.g, blk)),
        );
        Ok(out)
    }

    fn verify(&self, t_bytes: usize) -> Result<(), VerifyError> {
        check_coverage(&self.intervals(t_bytes)?, t_bytes)?;
        let a = init_buffer(&self.a, 1);
        let b = init_buffer(&self.b, 2);
        let c = init_buffer(&self.c, 3);
        let d = init_buffer(&self.d, 4);
        let whole = mm_blocks(self.n, self.n, self.n, (self.n, self.n, self.n));
        let run = |blocks: &[MmBlock]| {
            let mut e = vec![0.0f32; self.n * self.n];
            let mut f = vec![0.0f32; self.n * self.n];
            let mut g = vec![0.0f32; self.n * self.n];
            mm_compute(&a, &b, &mut e, self.n, self.n, 1.0, 0.0, blocks);
            mm_compute(&c, &d, &mut f, self.n, self.n, 1.0, 0.0, blocks);
            mm_compute(&e, &f, &mut g, self.n, self.n, 1.0, 0.0, blocks);
            g
        };
        compare_results(self.name(), &run(&whole), &run(&self.blocks(t_bytes)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prem_memsim::KIB;

    #[test]
    fn two_mm_verified() {
        TwoMm::new(64).verify(16 * KIB).unwrap();
    }

    #[test]
    fn three_mm_verified() {
        ThreeMm::new(64).verify(16 * KIB).unwrap();
    }

    #[test]
    fn pass_counts_scale() {
        let two = TwoMm::new(64).intervals(16 * KIB).unwrap().len();
        let three = ThreeMm::new(64).intervals(16 * KIB).unwrap().len();
        assert_eq!(three % 3, 0);
        assert_eq!(two % 2, 0);
        assert_eq!(three / 3, two / 2);
    }
}
