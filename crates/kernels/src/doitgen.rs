//! `doitgen` — multiresolution analysis kernel (PolyBench-ACC):
//! `sum[q][p] = Σ_s A[r][q][s] · C4[s][p]`, then `A[r][q][p] = sum[q][p]`,
//! for every `r`.
//!
//! Structurally a batch of `nr` small matrix products against a shared
//! `C4`, plus a copy-back pass per batch element.

use prem_core::IntervalSpec;

use crate::data::{init_buffer, ArrayDesc, Layout, ELEM_BYTES};
use crate::matmul::{mm_block_dims, mm_blocks, MmBlock};
use crate::stream::IntervalBuilder;
use crate::{check_coverage, compare_results, Kernel, KernelError, VerifyError, LINE_BYTES};

/// The `doitgen` kernel model.
#[derive(Clone, Debug)]
pub struct Doitgen {
    nr: usize,
    nq: usize,
    np: usize,
    /// `A` flattened as `nr` stacked `nq × np` matrices.
    a: ArrayDesc,
    c4: ArrayDesc,
    sum: ArrayDesc,
}

impl Doitgen {
    /// Creates a `doitgen` of shape `(nr, nq, np)` (with `ns == np`).
    ///
    /// # Panics
    ///
    /// Panics unless `nq` and `np` are multiples of 32.
    pub fn new(nr: usize, nq: usize, np: usize) -> Self {
        let mut layout = Layout::new(LINE_BYTES);
        let a = layout.alloc("A", nr * nq, np);
        let c4 = layout.alloc("C4", np, np);
        let sum = layout.alloc("sum", nq, np);
        Doitgen {
            nr,
            nq,
            np,
            a,
            c4,
            sum,
        }
    }

    fn blocks(&self, t_bytes: usize) -> Result<Vec<MmBlock>, KernelError> {
        let dims = mm_block_dims("doitgen", t_bytes, self.nq, self.np, self.np, 1, 1)?;
        Ok(mm_blocks(self.nq, self.np, self.np, dims))
    }

    /// Row index into the flattened `A` for `(r, q)`.
    fn a_row(&self, r: usize, q: usize) -> usize {
        r * self.nq + q
    }

    fn compute(&self, blocks: &[MmBlock]) -> Vec<f32> {
        let mut a = init_buffer(&self.a, 1);
        let c4 = init_buffer(&self.c4, 2);
        let mut out = Vec::with_capacity(self.nr * self.nq * self.np);
        for r in 0..self.nr {
            let mut sum = vec![0.0f32; self.nq * self.np];
            for blk in blocks {
                for q in blk.i0..blk.i1 {
                    for p in blk.j0..blk.j1 {
                        let mut acc = sum[q * self.np + p];
                        for s in blk.k0..blk.k1 {
                            acc += a[(self.a_row(r, q)) * self.np + s] * c4[s * self.np + p];
                        }
                        sum[q * self.np + p] = acc;
                    }
                }
            }
            for q in 0..self.nq {
                for p in 0..self.np {
                    a[(self.a_row(r, q)) * self.np + p] = sum[q * self.np + p];
                }
            }
            out.extend_from_slice(&sum);
        }
        out
    }
}

impl Kernel for Doitgen {
    fn name(&self) -> &'static str {
        "doitgen"
    }

    fn dims(&self) -> String {
        format!("{}x{}x{}", self.nr, self.nq, self.np)
    }

    fn id_dims(&self) -> Vec<usize> {
        vec![self.nr, self.nq, self.np]
    }

    fn dataset_bytes(&self) -> usize {
        self.a.bytes() + self.c4.bytes() + self.sum.bytes()
    }

    fn min_interval_bytes(&self) -> usize {
        ELEM_BYTES * (32 * 32 + 64 + 1) + 4 * LINE_BYTES
    }

    fn intervals(&self, t_bytes: usize) -> Result<Vec<IntervalSpec>, KernelError> {
        let blocks = self.blocks(t_bytes)?;
        // Copy-back rows per interval: two row slices (sum read, A write).
        let copy_rows =
            prem_core::rows_per_interval(t_bytes, 2 * LINE_BYTES, 2 * self.np * ELEM_BYTES)
                .max(1)
                .min(self.nq);
        let mut out = Vec::new();
        for r in 0..self.nr {
            for blk in &blocks {
                let mut b = IntervalBuilder::new();
                for q in blk.i0..blk.i1 {
                    b.stage_row(&self.a, self.a_row(r, q), blk.k0, blk.k1);
                }
                for s in blk.k0..blk.k1 {
                    b.stage_row(&self.c4, s, blk.j0, blk.j1);
                }
                for q in blk.i0..blk.i1 {
                    b.stage_row(&self.sum, q, blk.j0, blk.j1);
                }
                for q in blk.i0..blk.i1 {
                    b.read_row(&self.a, self.a_row(r, q), blk.k0, blk.k1);
                }
                for s in blk.k0..blk.k1 {
                    b.read_row(&self.c4, s, blk.j0, blk.j1);
                }
                for q in blk.i0..blk.i1 {
                    b.read_row(&self.sum, q, blk.j0, blk.j1);
                    b.write_row(&self.sum, q, blk.j0, blk.j1);
                }
                let fmas =
                    (blk.i1 - blk.i0) as u64 * (blk.j1 - blk.j0) as u64 * (blk.k1 - blk.k0) as u64;
                b.alu(fmas / 32 + 4);
                out.push(b.build());
            }
            // Copy-back pass: A[r] <- sum.
            for q0 in (0..self.nq).step_by(copy_rows) {
                let q1 = (q0 + copy_rows).min(self.nq);
                let mut b = IntervalBuilder::new();
                for q in q0..q1 {
                    b.stage_row(&self.sum, q, 0, self.np);
                    b.stage_row(&self.a, self.a_row(r, q), 0, self.np);
                }
                for q in q0..q1 {
                    b.read_row(&self.sum, q, 0, self.np);
                    b.write_row(&self.a, self.a_row(r, q), 0, self.np);
                }
                b.alu((q1 - q0) as u64);
                out.push(b.build());
            }
        }
        Ok(out)
    }

    fn verify(&self, t_bytes: usize) -> Result<(), VerifyError> {
        check_coverage(&self.intervals(t_bytes)?, t_bytes)?;
        let whole = mm_blocks(self.nq, self.np, self.np, (self.nq, self.np, self.np));
        compare_results(
            self.name(),
            &self.compute(&whole),
            &self.compute(&self.blocks(t_bytes)?),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prem_memsim::KIB;

    #[test]
    fn tiling_verified() {
        let k = Doitgen::new(4, 32, 32);
        for t in [8 * KIB, 32 * KIB] {
            k.verify(t).unwrap();
        }
    }

    #[test]
    fn interval_count_scales_with_batches() {
        let k4 = Doitgen::new(4, 32, 32).intervals(16 * KIB).unwrap().len();
        let k8 = Doitgen::new(8, 32, 32).intervals(16 * KIB).unwrap().len();
        assert_eq!(k8, 2 * k4);
    }
}
