//! Blocked matrix-multiplication kernels: `gemm`, `syrk`, `syr2k`.
//!
//! All three share one tiling scheme: 3-D blocks `(i, j, k)` whose staged
//! footprint (operand slices + the output block) fits the interval size
//! `T`. Output blocks are re-staged for every `k` block — a prefetch hit on
//! the LLC path, but a full copy in/out on the SPM path, which is exactly
//! the structural disadvantage of small software-managed stores the paper
//! discusses.

use prem_core::IntervalSpec;

use crate::data::{init_buffer, ArrayDesc, Layout, ELEM_BYTES};
use crate::stream::IntervalBuilder;
use crate::{check_coverage, compare_results, Kernel, KernelError, VerifyError, LINE_BYTES};

pub(crate) const ALPHA: f32 = 1.5;
pub(crate) const BETA: f32 = 1.2;

/// One 3-D tile.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub(crate) struct MmBlock {
    pub i0: usize,
    pub i1: usize,
    pub j0: usize,
    pub j1: usize,
    pub k0: usize,
    pub k1: usize,
}

/// Picks block dimensions `(ib, jb, kb)` such that the footprint
/// `wa·ib·kb + wb·kb·jb + ib·jb` elements fits `t_bytes`. `jb`/`kb` are
/// line-aligned (32 or 64 elements); `ib` takes the remaining budget.
pub(crate) fn mm_block_dims(
    kernel: &'static str,
    t_bytes: usize,
    ni: usize,
    nj: usize,
    nk: usize,
    wa: usize,
    wb: usize,
) -> Result<(usize, usize, usize), KernelError> {
    let budget = t_bytes / ELEM_BYTES;
    for cols in [64usize, 32] {
        let jb = cols.min(nj);
        let kb = cols.min(nk);
        let fixed = wb * kb * jb;
        let per_i = wa * kb + jb;
        if budget > fixed + per_i {
            let ib = ((budget - fixed) / per_i).min(ni).max(1);
            // Re-check exactly (ib >= 1 may overshoot for tiny budgets).
            if wa * ib * kb + fixed + ib * jb <= budget {
                return Ok((ib, jb, kb));
            }
        }
    }
    Err(KernelError::IntervalTooSmall {
        kernel,
        t_bytes,
        min_bytes: ELEM_BYTES * (wb * 32 * 32 + (wa * 32 + 32) + 1),
    })
}

/// Enumerates tiles in `(i, j, k)` order.
pub(crate) fn mm_blocks(
    ni: usize,
    nj: usize,
    nk: usize,
    (ib, jb, kb): (usize, usize, usize),
) -> Vec<MmBlock> {
    let mut out = Vec::new();
    for i0 in (0..ni).step_by(ib) {
        for j0 in (0..nj).step_by(jb) {
            for k0 in (0..nk).step_by(kb) {
                out.push(MmBlock {
                    i0,
                    i1: (i0 + ib).min(ni),
                    j0,
                    j1: (j0 + jb).min(nj),
                    k0,
                    k1: (k0 + kb).min(nk),
                });
            }
        }
    }
    out
}

/// Builds the interval for one `c += a·b` tile (`gemm`-shaped operands).
pub(crate) fn mm_interval(
    a: &ArrayDesc,
    b: &ArrayDesc,
    c: &ArrayDesc,
    blk: &MmBlock,
) -> IntervalSpec {
    let mut ib = IntervalBuilder::new();
    for i in blk.i0..blk.i1 {
        ib.stage_row(a, i, blk.k0, blk.k1);
    }
    for k in blk.k0..blk.k1 {
        ib.stage_row(b, k, blk.j0, blk.j1);
    }
    for i in blk.i0..blk.i1 {
        ib.stage_row(c, i, blk.j0, blk.j1);
    }
    // Compute: stream operand tiles, then read-modify-write the C tile.
    for i in blk.i0..blk.i1 {
        ib.read_row(a, i, blk.k0, blk.k1);
    }
    for k in blk.k0..blk.k1 {
        ib.read_row(b, k, blk.j0, blk.j1);
    }
    for i in blk.i0..blk.i1 {
        ib.read_row(c, i, blk.j0, blk.j1);
        ib.write_row(c, i, blk.j0, blk.j1);
    }
    let fmas = (blk.i1 - blk.i0) as u64 * (blk.j1 - blk.j0) as u64 * (blk.k1 - blk.k0) as u64;
    ib.alu(fmas / 32 + 4);
    ib.build()
}

/// Blockwise `c = alpha·a·b + beta·c` (functional model; `beta` applied on
/// each tile's first `k` block, matching the reference order).
#[allow(clippy::too_many_arguments)]
pub(crate) fn mm_compute(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    nj: usize,
    nk: usize,
    alpha: f32,
    beta: f32,
    blocks: &[MmBlock],
) {
    for blk in blocks {
        for i in blk.i0..blk.i1 {
            for j in blk.j0..blk.j1 {
                let mut acc = if blk.k0 == 0 {
                    c[i * nj + j] * beta
                } else {
                    c[i * nj + j]
                };
                for k in blk.k0..blk.k1 {
                    acc += alpha * a[i * nk + k] * b[k * nj + j];
                }
                c[i * nj + j] = acc;
            }
        }
    }
}

/// The `gemm` kernel model: `C = α·A·B + β·C`.
#[derive(Clone, Debug)]
pub struct Gemm {
    ni: usize,
    nj: usize,
    nk: usize,
    a: ArrayDesc,
    b: ArrayDesc,
    c: ArrayDesc,
}

impl Gemm {
    /// Creates a `gemm` over `(ni × nk) · (nk × nj)`.
    ///
    /// # Panics
    ///
    /// Panics unless `nj` and `nk` are multiples of 32.
    pub fn new(ni: usize, nj: usize, nk: usize) -> Self {
        let mut layout = Layout::new(LINE_BYTES);
        let a = layout.alloc("A", ni, nk);
        let b = layout.alloc("B", nk, nj);
        let c = layout.alloc("C", ni, nj);
        Gemm {
            ni,
            nj,
            nk,
            a,
            b,
            c,
        }
    }

    fn blocks(&self, t_bytes: usize) -> Result<Vec<MmBlock>, KernelError> {
        let dims = mm_block_dims("gemm", t_bytes, self.ni, self.nj, self.nk, 1, 1)?;
        Ok(mm_blocks(self.ni, self.nj, self.nk, dims))
    }
}

impl Kernel for Gemm {
    fn name(&self) -> &'static str {
        "gemm"
    }

    fn dims(&self) -> String {
        format!("{}x{}x{}", self.ni, self.nj, self.nk)
    }

    fn id_dims(&self) -> Vec<usize> {
        vec![self.ni, self.nj, self.nk]
    }

    fn dataset_bytes(&self) -> usize {
        self.a.bytes() + self.b.bytes() + self.c.bytes()
    }

    fn min_interval_bytes(&self) -> usize {
        ELEM_BYTES * (32 * 32 + 64 + 1) + LINE_BYTES
    }

    fn intervals(&self, t_bytes: usize) -> Result<Vec<IntervalSpec>, KernelError> {
        Ok(self
            .blocks(t_bytes)?
            .iter()
            .map(|blk| mm_interval(&self.a, &self.b, &self.c, blk))
            .collect())
    }

    fn verify(&self, t_bytes: usize) -> Result<(), VerifyError> {
        check_coverage(&self.intervals(t_bytes)?, t_bytes)?;
        let a = init_buffer(&self.a, 1);
        let b = init_buffer(&self.b, 2);
        let mut reference = init_buffer(&self.c, 3);
        let whole = mm_blocks(self.ni, self.nj, self.nk, (self.ni, self.nj, self.nk));
        mm_compute(
            &a,
            &b,
            &mut reference,
            self.nj,
            self.nk,
            ALPHA,
            BETA,
            &whole,
        );
        let mut tiled = init_buffer(&self.c, 3);
        mm_compute(
            &a,
            &b,
            &mut tiled,
            self.nj,
            self.nk,
            ALPHA,
            BETA,
            &self.blocks(t_bytes)?,
        );
        compare_results(self.name(), &reference, &tiled)
    }
}

/// The `syrk` kernel model: `C = α·A·Aᵀ + β·C`.
#[derive(Clone, Debug)]
pub struct Syrk {
    n: usize,
    m: usize,
    a: ArrayDesc,
    c: ArrayDesc,
}

impl Syrk {
    /// Creates a `syrk` over an `n × m` operand (`C` is `n × n`).
    ///
    /// # Panics
    ///
    /// Panics unless `n` and `m` are multiples of 32.
    pub fn new(n: usize, m: usize) -> Self {
        let mut layout = Layout::new(LINE_BYTES);
        let a = layout.alloc("A", n, m);
        let c = layout.alloc("C", n, n);
        Syrk { n, m, a, c }
    }

    fn blocks(&self, t_bytes: usize) -> Result<Vec<MmBlock>, KernelError> {
        let dims = mm_block_dims("syrk", t_bytes, self.n, self.n, self.m, 1, 1)?;
        Ok(mm_blocks(self.n, self.n, self.m, dims))
    }

    fn compute(&self, blocks: &[MmBlock]) -> Vec<f32> {
        let a = init_buffer(&self.a, 1);
        let mut c = init_buffer(&self.c, 2);
        for blk in blocks {
            for i in blk.i0..blk.i1 {
                for j in blk.j0..blk.j1 {
                    let mut acc = if blk.k0 == 0 {
                        c[i * self.n + j] * BETA
                    } else {
                        c[i * self.n + j]
                    };
                    for k in blk.k0..blk.k1 {
                        acc += ALPHA * a[i * self.m + k] * a[j * self.m + k];
                    }
                    c[i * self.n + j] = acc;
                }
            }
        }
        c
    }
}

impl Kernel for Syrk {
    fn name(&self) -> &'static str {
        "syrk"
    }

    fn dims(&self) -> String {
        format!("{}x{}", self.n, self.m)
    }

    fn id_dims(&self) -> Vec<usize> {
        vec![self.n, self.m]
    }

    fn dataset_bytes(&self) -> usize {
        self.a.bytes() + self.c.bytes()
    }

    fn min_interval_bytes(&self) -> usize {
        ELEM_BYTES * (32 * 32 + 64 + 1) + LINE_BYTES
    }

    fn intervals(&self, t_bytes: usize) -> Result<Vec<IntervalSpec>, KernelError> {
        let mut out = Vec::new();
        for blk in self.blocks(t_bytes)? {
            let mut b = IntervalBuilder::new();
            for i in blk.i0..blk.i1 {
                b.stage_row(&self.a, i, blk.k0, blk.k1);
            }
            for j in blk.j0..blk.j1 {
                b.stage_row(&self.a, j, blk.k0, blk.k1);
            }
            for i in blk.i0..blk.i1 {
                b.stage_row(&self.c, i, blk.j0, blk.j1);
            }
            for i in blk.i0..blk.i1 {
                b.read_row(&self.a, i, blk.k0, blk.k1);
            }
            for j in blk.j0..blk.j1 {
                b.read_row(&self.a, j, blk.k0, blk.k1);
            }
            for i in blk.i0..blk.i1 {
                b.read_row(&self.c, i, blk.j0, blk.j1);
                b.write_row(&self.c, i, blk.j0, blk.j1);
            }
            let fmas =
                (blk.i1 - blk.i0) as u64 * (blk.j1 - blk.j0) as u64 * (blk.k1 - blk.k0) as u64;
            b.alu(fmas / 32 + 4);
            out.push(b.build());
        }
        Ok(out)
    }

    fn verify(&self, t_bytes: usize) -> Result<(), VerifyError> {
        check_coverage(&self.intervals(t_bytes)?, t_bytes)?;
        let whole = mm_blocks(self.n, self.n, self.m, (self.n, self.n, self.m));
        compare_results(
            self.name(),
            &self.compute(&whole),
            &self.compute(&self.blocks(t_bytes)?),
        )
    }
}

/// The `syr2k` kernel model: `C = α·A·Bᵀ + α·B·Aᵀ + β·C`.
#[derive(Clone, Debug)]
pub struct Syr2k {
    n: usize,
    m: usize,
    a: ArrayDesc,
    b: ArrayDesc,
    c: ArrayDesc,
}

impl Syr2k {
    /// Creates a `syr2k` over `n × m` operands (`C` is `n × n`).
    ///
    /// # Panics
    ///
    /// Panics unless `n` and `m` are multiples of 32.
    pub fn new(n: usize, m: usize) -> Self {
        let mut layout = Layout::new(LINE_BYTES);
        let a = layout.alloc("A", n, m);
        let b = layout.alloc("B", n, m);
        let c = layout.alloc("C", n, n);
        Syr2k { n, m, a, b, c }
    }

    fn blocks(&self, t_bytes: usize) -> Result<Vec<MmBlock>, KernelError> {
        let dims = mm_block_dims("syr2k", t_bytes, self.n, self.n, self.m, 2, 2)?;
        Ok(mm_blocks(self.n, self.n, self.m, dims))
    }

    fn compute(&self, blocks: &[MmBlock]) -> Vec<f32> {
        let a = init_buffer(&self.a, 1);
        let b = init_buffer(&self.b, 2);
        let mut c = init_buffer(&self.c, 3);
        for blk in blocks {
            for i in blk.i0..blk.i1 {
                for j in blk.j0..blk.j1 {
                    let mut acc = if blk.k0 == 0 {
                        c[i * self.n + j] * BETA
                    } else {
                        c[i * self.n + j]
                    };
                    for k in blk.k0..blk.k1 {
                        acc += ALPHA * a[i * self.m + k] * b[j * self.m + k];
                        acc += ALPHA * b[i * self.m + k] * a[j * self.m + k];
                    }
                    c[i * self.n + j] = acc;
                }
            }
        }
        c
    }
}

impl Kernel for Syr2k {
    fn name(&self) -> &'static str {
        "syr2k"
    }

    fn dims(&self) -> String {
        format!("{}x{}", self.n, self.m)
    }

    fn id_dims(&self) -> Vec<usize> {
        vec![self.n, self.m]
    }

    fn dataset_bytes(&self) -> usize {
        self.a.bytes() + self.b.bytes() + self.c.bytes()
    }

    fn min_interval_bytes(&self) -> usize {
        ELEM_BYTES * (2 * 32 * 32 + 3 * 32 + 1) + LINE_BYTES
    }

    fn intervals(&self, t_bytes: usize) -> Result<Vec<IntervalSpec>, KernelError> {
        let mut out = Vec::new();
        for blk in self.blocks(t_bytes)? {
            let mut ib = IntervalBuilder::new();
            for m in [&self.a, &self.b] {
                for i in blk.i0..blk.i1 {
                    ib.stage_row(m, i, blk.k0, blk.k1);
                }
                for j in blk.j0..blk.j1 {
                    ib.stage_row(m, j, blk.k0, blk.k1);
                }
            }
            for i in blk.i0..blk.i1 {
                ib.stage_row(&self.c, i, blk.j0, blk.j1);
            }
            for m in [&self.a, &self.b] {
                for i in blk.i0..blk.i1 {
                    ib.read_row(m, i, blk.k0, blk.k1);
                }
                for j in blk.j0..blk.j1 {
                    ib.read_row(m, j, blk.k0, blk.k1);
                }
            }
            for i in blk.i0..blk.i1 {
                ib.read_row(&self.c, i, blk.j0, blk.j1);
                ib.write_row(&self.c, i, blk.j0, blk.j1);
            }
            let fmas =
                2 * (blk.i1 - blk.i0) as u64 * (blk.j1 - blk.j0) as u64 * (blk.k1 - blk.k0) as u64;
            ib.alu(fmas / 32 + 4);
            out.push(ib.build());
        }
        Ok(out)
    }

    fn verify(&self, t_bytes: usize) -> Result<(), VerifyError> {
        check_coverage(&self.intervals(t_bytes)?, t_bytes)?;
        let whole = mm_blocks(self.n, self.n, self.m, (self.n, self.n, self.m));
        compare_results(
            self.name(),
            &self.compute(&whole),
            &self.compute(&self.blocks(t_bytes)?),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prem_memsim::KIB;

    #[test]
    fn gemm_tiling_verified() {
        let k = Gemm::new(96, 96, 96);
        for t in [8 * KIB, 32 * KIB, 64 * KIB] {
            k.verify(t).unwrap();
        }
    }

    #[test]
    fn syrk_tiling_verified() {
        let k = Syrk::new(96, 64);
        k.verify(16 * KIB).unwrap();
    }

    #[test]
    fn syr2k_tiling_verified() {
        let k = Syr2k::new(64, 64);
        k.verify(16 * KIB).unwrap();
    }

    #[test]
    fn block_dims_respect_budget() {
        let (ib, jb, kb) = mm_block_dims("gemm", 32 * KIB, 512, 512, 512, 1, 1).unwrap();
        assert!(ELEM_BYTES * (ib * kb + kb * jb + ib * jb) <= 32 * KIB);
        assert!(ib >= 1);
    }

    #[test]
    fn block_dims_too_small_is_error() {
        assert!(matches!(
            mm_block_dims("gemm", 512, 512, 512, 512, 1, 1),
            Err(KernelError::IntervalTooSmall { .. })
        ));
    }

    #[test]
    fn blocks_cover_iteration_space() {
        let blocks = mm_blocks(100, 64, 64, (30, 32, 32));
        let i_cov: usize = blocks
            .iter()
            .filter(|b| b.j0 == 0 && b.k0 == 0)
            .map(|b| b.i1 - b.i0)
            .sum();
        assert_eq!(i_cov, 100);
    }

    #[test]
    fn gemm_footprints_fit() {
        let k = Gemm::new(128, 128, 128);
        for iv in k.intervals(16 * KIB).unwrap() {
            assert!(iv.footprint_bytes(LINE_BYTES) <= 16 * KIB);
        }
    }

    #[test]
    fn syrk_diagonal_blocks_share_staged_rows() {
        // When i-block == j-block the footprint deduplicates A rows.
        let k = Syrk::new(64, 64);
        let ivs = k.intervals(64 * KIB).unwrap();
        // Single block: footprint = A(64x64) + C(64x64) = 2 * 16 KiB.
        assert_eq!(ivs.len(), 1);
        assert_eq!(ivs[0].footprint_bytes(LINE_BYTES), 32 * KIB);
    }
}
