//! The evaluation suite: kernel instances at the paper's problem scales.

use crate::{
    Atax, Bicg, Conv2d, Doitgen, Fdtd2d, Gemm, Gemver, Gesummv, Jacobi2d, Kernel, Mvt, Syr2k, Syrk,
    ThreeMm, TwoMm,
};

/// The paper's case-study kernel (`bicg-100`, §III-A): a `bicg` whose data
/// set (~4.2 MiB) spans many intervals at every evaluated `T`.
pub fn case_study_bicg() -> Bicg {
    Bicg::new(1024, 1024)
}

/// The standard evaluation suite (paper §V, Fig 6): PolyBench-ACC kernels
/// for which SPM-based PREM implies large overheads, at sizes that keep
/// every data set several times the LLC capacity.
pub fn standard_suite() -> Vec<Box<dyn Kernel>> {
    vec![
        Box::new(Bicg::new(1024, 1024)),
        Box::new(Atax::new(1024, 1024)),
        Box::new(Mvt::new(1024)),
        Box::new(Gesummv::new(1024)),
        Box::new(Gemm::new(384, 384, 384)),
        Box::new(TwoMm::new(288)),
        Box::new(ThreeMm::new(256)),
        Box::new(Syrk::new(384, 384)),
        Box::new(Syr2k::new(320, 320)),
        Box::new(Doitgen::new(16, 128, 128)),
        Box::new(Conv2d::new(1024)),
        Box::new(Jacobi2d::new(768, 2)),
        Box::new(Gemver::new(1024)),
        Box::new(Fdtd2d::new(640, 2)),
    ]
}

/// A reduced-size suite for fast integration tests.
pub fn suite_small() -> Vec<Box<dyn Kernel>> {
    vec![
        Box::new(Bicg::new(256, 256)),
        Box::new(Atax::new(256, 256)),
        Box::new(Mvt::new(256)),
        Box::new(Gesummv::new(256)),
        Box::new(Gemm::new(128, 128, 128)),
        Box::new(TwoMm::new(96)),
        Box::new(ThreeMm::new(96)),
        Box::new(Syrk::new(128, 128)),
        Box::new(Syr2k::new(96, 96)),
        Box::new(Doitgen::new(4, 64, 64)),
        Box::new(Conv2d::new(256)),
        Box::new(Jacobi2d::new(256, 2)),
        Box::new(Gemver::new(256)),
        Box::new(Fdtd2d::new(224, 2)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use prem_memsim::{KIB, MIB};

    #[test]
    fn suite_has_fourteen_distinct_kernels() {
        let suite = standard_suite();
        assert_eq!(suite.len(), 14);
        let names: std::collections::HashSet<_> = suite.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), 14);
    }

    #[test]
    fn case_study_dataset_spans_many_intervals() {
        let k = case_study_bicg();
        assert!(k.dataset_bytes() > 4 * MIB);
        let ivs = k.intervals(160 * KIB).unwrap();
        assert!(ivs.len() >= 20, "{} intervals", ivs.len());
    }

    #[test]
    fn all_standard_kernels_tile_at_spm_and_llc_sizes() {
        for k in standard_suite() {
            for t in [96 * KIB, 160 * KIB] {
                let ivs = k.intervals(t).unwrap_or_else(|e| panic!("{e}"));
                assert!(!ivs.is_empty(), "{}", k.name());
            }
        }
    }

    #[test]
    fn small_suite_verifies_functionally() {
        for k in suite_small() {
            k.verify(96 * KIB)
                .unwrap_or_else(|e| panic!("{}: {e}", k.name()));
        }
    }

    #[test]
    fn datasets_exceed_llc_capacity() {
        for k in standard_suite() {
            assert!(
                k.dataset_bytes() > 4 * 256 * KIB,
                "{} too small: {} B",
                k.name(),
                k.dataset_bytes()
            );
        }
    }
}
