//! The evaluation suite: kernel instances at the paper's problem scales.
//!
//! Both the paper-scale suite and the reduced test suite come from one
//! generator, [`scaled_suite`], which scales every kernel's base dimensions
//! by a common factor.
//!
//! **Invariant:** every suite member's data set is at least
//! [`DATASET_FLOOR_LLC_MULTIPLE`] × the TX1-class LLC capacity (256 KiB),
//! at *any* scale — otherwise a kernel would fit entirely in cache, steady
//! -state eviction churn would never develop, and the PREM-vs-baseline
//! comparison would be meaningless. [`scaled_suite`] enforces this by
//! growing an undersized kernel until its data set clears the floor. At
//! scale 1.0 (the paper's sizes) every data set additionally exceeds 4 ×
//! the LLC capacity, which `standard_suite`'s tests assert.

use crate::{
    Atax, Bicg, Conv2d, Doitgen, Fdtd2d, Gemm, Gemver, Gesummv, Jacobi2d, Kernel, Mvt, Syr2k, Syrk,
    ThreeMm, TwoMm,
};
use prem_memsim::KIB;

/// Minimum data set size of any suite member, as a multiple of the
/// TX1-class 256 KiB LLC capacity (see the module-level invariant).
pub const DATASET_FLOOR_LLC_MULTIPLE: usize = 1;

/// The LLC capacity the data-set floor is stated against.
const LLC_BYTES: usize = 256 * KIB;

/// The paper's case-study kernel (`bicg-100`, §III-A): a `bicg` whose data
/// set (~4.2 MiB) spans many intervals at every evaluated `T`.
pub fn case_study_bicg() -> Bicg {
    Bicg::new(1024, 1024)
}

/// One suite member: paper-scale base dimensions plus a constructor.
/// Time-stepped kernels (jacobi-2d, fdtd-2d) keep their step count fixed —
/// only spatial dimensions scale.
type Member = (&'static [usize], fn(&[usize]) -> Box<dyn Kernel>);

const MEMBERS: &[Member] = &[
    (&[1024, 1024], |d| Box::new(Bicg::new(d[0], d[1]))),
    (&[1024, 1024], |d| Box::new(Atax::new(d[0], d[1]))),
    (&[1024], |d| Box::new(Mvt::new(d[0]))),
    (&[1024], |d| Box::new(Gesummv::new(d[0]))),
    (&[384, 384, 384], |d| Box::new(Gemm::new(d[0], d[1], d[2]))),
    (&[288], |d| Box::new(TwoMm::new(d[0]))),
    (&[256], |d| Box::new(ThreeMm::new(d[0]))),
    (&[384, 384], |d| Box::new(Syrk::new(d[0], d[1]))),
    (&[320, 320], |d| Box::new(Syr2k::new(d[0], d[1]))),
    (&[16, 128, 128], |d| {
        Box::new(Doitgen::new(d[0], d[1], d[2]))
    }),
    (&[1024], |d| Box::new(Conv2d::new(d[0]))),
    (&[768], |d| Box::new(Jacobi2d::new(d[0], 2))),
    (&[1024], |d| Box::new(Gemver::new(d[0]))),
    (&[640], |d| Box::new(Fdtd2d::new(d[0], 2))),
];

/// Scales one base dimension, quantized so tilings stay block-aligned:
/// large dimensions snap to multiples of 32, small ones (doitgen's outer
/// extent) to multiples of 4.
fn scaled_dim(base: usize, scale: f64) -> usize {
    let step = if base >= 128 { 32 } else { 4 };
    let quanta = (base as f64 * scale / step as f64).round() as usize;
    quanta.max(1) * step
}

/// Instantiates one member at `scale`, growing it (proportionally, in 25 %
/// steps) until its data set clears the capacity floor.
fn member_at_scale(
    base: &[usize],
    scale: f64,
    ctor: fn(&[usize]) -> Box<dyn Kernel>,
) -> Box<dyn Kernel> {
    let floor = DATASET_FLOOR_LLC_MULTIPLE * LLC_BYTES;
    let mut s = scale;
    for _ in 0..64 {
        let dims: Vec<usize> = base.iter().map(|&b| scaled_dim(b, s)).collect();
        let k = ctor(&dims);
        if k.dataset_bytes() >= floor {
            return k;
        }
        s *= 1.25;
    }
    unreachable!("dimension growth failed to reach the data-set floor");
}

/// The evaluation suite with every kernel's spatial dimensions scaled by
/// `scale` (1.0 = the paper's sizes). Dimensions are quantized to keep
/// tilings aligned, and undersized kernels are grown back above the
/// module-level data-set floor, so very small scales saturate rather than
/// produce cache-resident kernels.
///
/// # Panics
///
/// Panics if `scale` is not a positive finite number.
pub fn scaled_suite(scale: f64) -> Vec<Box<dyn Kernel>> {
    assert!(
        scale.is_finite() && scale > 0.0,
        "suite scale must be positive and finite, got {scale}"
    );
    MEMBERS
        .iter()
        .map(|&(base, ctor)| member_at_scale(base, scale, ctor))
        .collect()
}

/// The standard evaluation suite (paper §V, Fig 6): PolyBench-ACC kernels
/// for which SPM-based PREM implies large overheads, at sizes that keep
/// every data set several times the LLC capacity. Equals
/// [`scaled_suite`]`(1.0)`.
pub fn standard_suite() -> Vec<Box<dyn Kernel>> {
    scaled_suite(1.0)
}

/// A reduced-size suite for fast integration tests. Equals
/// [`scaled_suite`]`(0.25)`; the data-set floor keeps every member at
/// least LLC-sized.
pub fn suite_small() -> Vec<Box<dyn Kernel>> {
    scaled_suite(0.25)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prem_memsim::{KIB, MIB};

    #[test]
    fn suite_has_fourteen_distinct_kernels() {
        let suite = standard_suite();
        assert_eq!(suite.len(), 14);
        let names: std::collections::HashSet<_> = suite.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), 14);
    }

    #[test]
    fn case_study_dataset_spans_many_intervals() {
        let k = case_study_bicg();
        assert!(k.dataset_bytes() > 4 * MIB);
        let ivs = k.intervals(160 * KIB).unwrap();
        assert!(ivs.len() >= 20, "{} intervals", ivs.len());
    }

    #[test]
    fn all_standard_kernels_tile_at_spm_and_llc_sizes() {
        for k in standard_suite() {
            for t in [96 * KIB, 160 * KIB] {
                let ivs = k.intervals(t).unwrap_or_else(|e| panic!("{e}"));
                assert!(!ivs.is_empty(), "{}", k.name());
            }
        }
    }

    #[test]
    fn small_suite_verifies_functionally() {
        for k in suite_small() {
            k.verify(96 * KIB)
                .unwrap_or_else(|e| panic!("{}: {e}", k.name()));
        }
    }

    #[test]
    fn datasets_exceed_llc_capacity() {
        for k in standard_suite() {
            assert!(
                k.dataset_bytes() > 4 * 256 * KIB,
                "{} too small: {} B",
                k.name(),
                k.dataset_bytes()
            );
        }
    }

    #[test]
    fn dataset_floor_holds_at_any_scale() {
        for scale in [0.05, 0.25, 0.5, 1.0] {
            for k in scaled_suite(scale) {
                assert!(
                    k.dataset_bytes() >= DATASET_FLOOR_LLC_MULTIPLE * 256 * KIB,
                    "{} at scale {scale}: {} B below the floor",
                    k.name(),
                    k.dataset_bytes()
                );
            }
        }
    }

    #[test]
    fn scale_one_is_the_paper_scale() {
        // The parameterization must not perturb the published sizes.
        let k = &scaled_suite(1.0)[0];
        assert_eq!(k.dims(), Bicg::new(1024, 1024).dims());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_rejected() {
        scaled_suite(0.0);
    }
}
