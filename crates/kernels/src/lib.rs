//! # prem-kernels — PolyBench-ACC kernel models
//!
//! The paper evaluates PREM on kernels from the PolyBench-ACC suite. Each
//! kernel here provides three consistent views derived from one block
//! decomposition:
//!
//! 1. a **PREM tiling** ([`Kernel::intervals`]): store-agnostic
//!    [`IntervalSpec`]s whose footprints respect the interval size `T`;
//! 2. a **functional reference** and a **tiled functional execution**
//!    ([`Kernel::verify`]): proof that the tiling is semantics-preserving;
//! 3. problem metadata for reports.
//!
//! Access streams are line-granular and row-major, mirroring the coalesced
//! access patterns of the CUDA originals; arithmetic is accounted as
//! warp-level instruction counts.
//!
//! ```
//! use prem_kernels::{Bicg, Kernel};
//! use prem_memsim::KIB;
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let bicg = Bicg::new(256, 256);
//! let intervals = bicg.intervals(64 * KIB)?;
//! assert!(intervals.len() > 1);
//! bicg.verify(64 * KIB)?; // coverage + functional equivalence
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arena;
mod atax;
mod bicg;
mod chained;
mod conv2d;
pub mod data;
mod doitgen;
mod fdtd2d;
mod gemver;
mod gesummv;
mod jacobi2d;
mod matmul;
mod mvt;
pub mod registry;
pub mod stream;
mod suite;

use std::error::Error;
use std::fmt;

pub use atax::Atax;
pub use bicg::Bicg;
pub use chained::{ThreeMm, TwoMm};
pub use conv2d::Conv2d;
pub use doitgen::Doitgen;
pub use fdtd2d::Fdtd2d;
pub use gemver::Gemver;
pub use gesummv::Gesummv;
pub use jacobi2d::Jacobi2d;
pub use matmul::{Gemm, Syr2k, Syrk};
pub use mvt::Mvt;
pub use registry::KernelId;
pub use suite::{case_study_bicg, scaled_suite, standard_suite, suite_small};

use prem_core::IntervalSpec;

/// Line size shared by all kernel models (TX1 LLC line).
pub const LINE_BYTES: usize = 128;

/// Failure to tile a kernel at a requested interval size.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KernelError {
    /// `T` is below the kernel's minimum legal interval footprint.
    IntervalTooSmall {
        /// Kernel name.
        kernel: &'static str,
        /// Requested interval size in bytes.
        t_bytes: usize,
        /// Minimum supported interval size in bytes.
        min_bytes: usize,
    },
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::IntervalTooSmall {
                kernel,
                t_bytes,
                min_bytes,
            } => write!(
                f,
                "{kernel}: interval size {t_bytes} B below minimum {min_bytes} B"
            ),
        }
    }
}

impl Error for KernelError {}

/// Failure of a kernel's self-verification.
#[derive(Clone, Debug, PartialEq)]
pub struct VerifyError(String);

impl VerifyError {
    /// Creates a verification error with a message.
    pub fn new(msg: impl Into<String>) -> Self {
        VerifyError(msg.into())
    }
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "kernel verification failed: {}", self.0)
    }
}

impl Error for VerifyError {}

impl From<KernelError> for VerifyError {
    fn from(e: KernelError) -> Self {
        VerifyError(e.to_string())
    }
}

impl From<prem_core::TilingError> for VerifyError {
    fn from(e: prem_core::TilingError) -> Self {
        VerifyError(e.to_string())
    }
}

/// A PREM-tilable kernel model.
///
/// Kernels are immutable descriptions (`Send + Sync`), so one suite can be
/// shared by the scenario-matrix engine's worker threads.
pub trait Kernel: fmt::Debug + Send + Sync {
    /// Kernel name (PolyBench-ACC identifier).
    fn name(&self) -> &'static str;

    /// Human-readable problem dimensions.
    fn dims(&self) -> String;

    /// The constructor dimensions, in declaration order: the numeric
    /// identity a [`KernelId`] carries across the
    /// wire. [`registry::kernel`]`(self.name(), &self.id_dims())` must
    /// rebuild an equivalent instance for every registered kernel.
    fn id_dims(&self) -> Vec<usize>;

    /// Total data-set size in bytes.
    fn dataset_bytes(&self) -> usize;

    /// Smallest interval size this kernel can be tiled for.
    fn min_interval_bytes(&self) -> usize;

    /// Tiles the kernel into PREM intervals with footprints of at most
    /// `t_bytes`.
    ///
    /// # Errors
    ///
    /// [`KernelError::IntervalTooSmall`] when `t_bytes <
    /// min_interval_bytes()`.
    fn intervals(&self, t_bytes: usize) -> Result<Vec<IntervalSpec>, KernelError>;

    /// Verifies the tiling at `t_bytes`: every compute access covered by its
    /// interval's footprint, footprints within `t_bytes`, and the tiled
    /// functional execution bit-identical (within float tolerance) to the
    /// untiled reference.
    ///
    /// # Errors
    ///
    /// [`VerifyError`] describing the first violation found.
    fn verify(&self, t_bytes: usize) -> Result<(), VerifyError>;
}

/// Compares a tiled functional result against the reference.
pub(crate) fn compare_results(
    name: &str,
    reference: &[f32],
    tiled: &[f32],
) -> Result<(), VerifyError> {
    if reference.len() != tiled.len() {
        return Err(VerifyError::new(format!(
            "{name}: result length {} != reference {}",
            tiled.len(),
            reference.len()
        )));
    }
    for (i, (&e, &g)) in reference.iter().zip(tiled).enumerate() {
        let tol = 1e-5f32.max(e.abs() * 1e-5);
        if (e - g).abs() > tol {
            return Err(VerifyError::new(format!(
                "{name}: element {i} differs: reference {e}, tiled {g}"
            )));
        }
    }
    Ok(())
}

/// Shared coverage check used by kernel `verify` implementations.
pub(crate) fn check_coverage(
    intervals: &[IntervalSpec],
    t_bytes: usize,
) -> Result<(), VerifyError> {
    prem_core::check_tiling(intervals, t_bytes, LINE_BYTES)?;
    Ok(())
}
