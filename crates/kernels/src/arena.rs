//! Shared interval arenas: tile once per (kernel identity, dims, T),
//! share the stream everywhere.
//!
//! Tiling a kernel ([`Kernel::intervals`]) materializes its full op
//! stream — for paper-scale problem sizes that is megabytes of
//! [`IntervalSpec`]s, and a merged figure plan requests the *same* tiling
//! hundreds of times: every matrix column shares (kernel, dims, T) across
//! its policy/seed/scenario axes, fig6 sweeps T over a fixed kernel, and
//! every run's profiling pass re-tiles what its timed run just tiled. The
//! arena makes the tiling content-addressed: one build per distinct
//! `(name, id_dims, t_bytes)` while any consumer still holds the result.
//!
//! Entries are held through [`Weak`] references, so an arena never *owns*
//! a stream: the moment the last consumer drops its [`Arc`], the tiling is
//! freed and a later request rebuilds it. This bounds arena memory by what
//! the pool is actively executing (plus whatever callers pin), not by the
//! number of distinct tilings a long process has ever seen — the same
//! bounded-capture discipline the plan layer applies to replay families.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock, Weak};

use prem_core::IntervalSpec;

use crate::{Kernel, KernelError};

/// A tiling's identity: everything [`Kernel::intervals`] depends on.
/// `id_dims` (the constructor dimensions) rather than the display string
/// keys the kernel, mirroring the wire registry's identity rule.
type TilingKey = (&'static str, Vec<usize>, usize);

/// A content-addressed, weakly-held cache of tiled interval streams.
///
/// Most callers want the process-wide [`shared`] instance; separate
/// arenas exist for tests that need isolated lifetime observation.
#[derive(Debug, Default)]
pub struct IntervalArena {
    entries: Mutex<HashMap<TilingKey, Weak<[IntervalSpec]>>>,
}

impl IntervalArena {
    /// An empty arena.
    pub fn new() -> Self {
        IntervalArena::default()
    }

    /// The tiled interval stream of `kernel` at `t_bytes`: served from the
    /// arena when any live [`Arc`] still pins it, rebuilt (and re-shared)
    /// otherwise.
    ///
    /// The build runs outside the arena lock, so concurrent workers are
    /// never serialized behind tiling; two racing builders of the same key
    /// may both tile, in which case one result wins the slot and both are
    /// correct (tiling is deterministic in the key).
    ///
    /// # Errors
    ///
    /// Exactly the [`Kernel::intervals`] error conditions
    /// ([`KernelError::IntervalTooSmall`]).
    pub fn get(
        &self,
        kernel: &dyn Kernel,
        t_bytes: usize,
    ) -> Result<Arc<[IntervalSpec]>, KernelError> {
        let key: TilingKey = (kernel.name(), kernel.id_dims(), t_bytes);
        if let Some(live) = self.lock().get(&key).and_then(Weak::upgrade) {
            return Ok(live);
        }
        let built: Arc<[IntervalSpec]> = kernel.intervals(t_bytes)?.into();
        let mut entries = self.lock();
        // A racing builder may have landed while we tiled — share its
        // stream so every consumer of the key holds the same allocation.
        if let Some(live) = entries.get(&key).and_then(Weak::upgrade) {
            return Ok(live);
        }
        // Opportunistic purge: dead weak entries are reclaimed on the
        // (rare) build path, so the map never grows past the set of
        // distinct tilings plus tombstones of the current build wave.
        entries.retain(|_, w| w.strong_count() > 0);
        entries.insert(key, Arc::downgrade(&built));
        Ok(built)
    }

    /// Number of entries whose stream is still alive (pinned by at least
    /// one consumer-held [`Arc`]).
    pub fn live_entries(&self) -> usize {
        self.lock()
            .values()
            .filter(|w| w.strong_count() > 0)
            .count()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<TilingKey, Weak<[IntervalSpec]>>> {
        self.entries.lock().expect("interval arena poisoned")
    }
}

/// The process-wide arena every plan-layer tiling goes through.
pub fn shared() -> &'static IntervalArena {
    static SHARED: OnceLock<IntervalArena> = OnceLock::new();
    SHARED.get_or_init(IntervalArena::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Bicg;

    #[test]
    fn same_key_shares_one_allocation() {
        let arena = IntervalArena::new();
        let k = Bicg::new(128, 128);
        let a = arena.get(&k, 32 * 1024).expect("tile");
        let b = arena.get(&k, 32 * 1024).expect("tile");
        assert!(Arc::ptr_eq(&a, &b), "one build serves every holder");
        assert_eq!(arena.live_entries(), 1);
        // An equivalent but distinct kernel instance is the same identity.
        let k2 = Bicg::new(128, 128);
        let c = arena.get(&k2, 32 * 1024).expect("tile");
        assert!(Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn distinct_dims_or_t_do_not_alias() {
        let arena = IntervalArena::new();
        let k = Bicg::new(128, 128);
        let other = Bicg::new(192, 160);
        let a = arena.get(&k, 32 * 1024).expect("tile");
        let b = arena.get(&other, 32 * 1024).expect("tile");
        let c = arena.get(&k, 64 * 1024).expect("tile");
        assert!(!Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(arena.live_entries(), 3);
    }

    #[test]
    fn dropped_streams_are_rebuilt_not_leaked() {
        let arena = IntervalArena::new();
        let k = Bicg::new(128, 128);
        let first = arena.get(&k, 32 * 1024).expect("tile");
        let contents = first.len();
        drop(first);
        assert_eq!(arena.live_entries(), 0, "weak entries die with holders");
        let again = arena.get(&k, 32 * 1024).expect("tile");
        assert_eq!(again.len(), contents, "rebuild is deterministic");
        assert_eq!(arena.live_entries(), 1);
    }

    #[test]
    fn tiling_errors_pass_through() {
        let arena = IntervalArena::new();
        let k = Bicg::new(128, 128);
        assert!(arena.get(&k, 1).is_err(), "too-small T still errors");
    }
}
