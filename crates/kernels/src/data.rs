//! Data-set layout: arrays placed in the simulated physical address space.
//!
//! Arrays are allocated contiguously (line-aligned, one guard line apart),
//! matching how a CUDA allocator lays out `cudaMalloc` regions. Rows and
//! columns are required to be multiples of one line worth of elements so
//! that row slices map exactly onto cache lines — the same restriction the
//! paper's PREM compiler places on tile boundaries.

use prem_memsim::{lines_covering, Addr, LineAddr};

/// A dense row-major array of `f32` in simulated memory.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArrayDesc {
    name: &'static str,
    rows: usize,
    cols: usize,
    base: Addr,
    line_bytes: usize,
}

/// Element size of every array (`f32`, as in PolyBench-ACC's GPU codes).
pub const ELEM_BYTES: usize = 4;

impl ArrayDesc {
    /// The array's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (1 for row vectors).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total size in bytes.
    pub fn bytes(&self) -> usize {
        self.rows * self.cols * ELEM_BYTES
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// Whether the array is empty (never true for allocated arrays).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Byte address of element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) when out of bounds.
    pub fn addr(&self, r: usize, c: usize) -> Addr {
        debug_assert!(r < self.rows && c < self.cols, "{}[{r}][{c}]", self.name);
        self.base.offset(((r * self.cols + c) * ELEM_BYTES) as u64)
    }

    /// The cache line containing element `(r, c)`.
    pub fn line(&self, r: usize, c: usize) -> LineAddr {
        self.addr(r, c).line(self.line_bytes)
    }

    /// Lines covering the row slice `A[r][c0..c1]`.
    pub fn row_slice_lines(&self, r: usize, c0: usize, c1: usize) -> Vec<LineAddr> {
        debug_assert!(c0 <= c1 && c1 <= self.cols);
        if c0 == c1 {
            return Vec::new();
        }
        lines_covering(
            self.addr(r, c0),
            ((c1 - c0) * ELEM_BYTES) as u64,
            self.line_bytes,
        )
        .collect()
    }

    /// Lines covering the flat element range `[i0, i1)` (for vectors).
    pub fn flat_slice_lines(&self, i0: usize, i1: usize) -> Vec<LineAddr> {
        debug_assert!(i0 <= i1 && i1 <= self.len());
        if i0 == i1 {
            return Vec::new();
        }
        lines_covering(
            self.base.offset((i0 * ELEM_BYTES) as u64),
            ((i1 - i0) * ELEM_BYTES) as u64,
            self.line_bytes,
        )
        .collect()
    }

    /// All lines of the array.
    pub fn all_lines(&self) -> Vec<LineAddr> {
        self.flat_slice_lines(0, self.len())
    }

    /// Elements per cache line.
    pub fn elems_per_line(&self) -> usize {
        self.line_bytes / ELEM_BYTES
    }
}

/// Sequential allocator for a kernel's data set.
#[derive(Clone, Debug)]
pub struct Layout {
    next: u64,
    line_bytes: usize,
}

impl Layout {
    /// Creates a layout with the given line size, starting at a non-zero
    /// base (as a real heap would).
    pub fn new(line_bytes: usize) -> Self {
        assert!(line_bytes.is_power_of_two());
        Layout {
            next: 0x1000_0000,
            line_bytes,
        }
    }

    /// Line size used by this layout.
    pub fn line_bytes(&self) -> usize {
        self.line_bytes
    }

    /// Allocates a `rows × cols` array.
    ///
    /// # Panics
    ///
    /// Panics unless each row is an exact number of lines (`cols` elements a
    /// multiple of `line_bytes / 4`) or the array is a vector (`rows == 1`).
    pub fn alloc(&mut self, name: &'static str, rows: usize, cols: usize) -> ArrayDesc {
        let epl = self.line_bytes / ELEM_BYTES;
        assert!(
            rows == 1 || cols.is_multiple_of(epl),
            "{name}: {cols} columns not a multiple of {epl} (one line)"
        );
        let base = Addr::new(self.next);
        let bytes = (rows * cols * ELEM_BYTES) as u64;
        // Advance to the next line boundary plus one guard line.
        let lb = self.line_bytes as u64;
        self.next = (self.next + bytes).div_ceil(lb) * lb + lb;
        ArrayDesc {
            name,
            rows,
            cols,
            base,
            line_bytes: self.line_bytes,
        }
    }

    /// Allocates a length-`n` vector.
    pub fn alloc_vec(&mut self, name: &'static str, n: usize) -> ArrayDesc {
        self.alloc(name, 1, n)
    }
}

/// Deterministic PolyBench-style initial value for element `i` of an array
/// distinguished by `salt`.
pub fn init_value(salt: u64, i: usize) -> f32 {
    let v = (i as u64)
        .wrapping_mul(7)
        .wrapping_add(salt.wrapping_mul(13))
        % 31;
    (v as f32 + 1.0) / 31.0
}

/// Materializes the initial contents of an array (for functional
/// references).
pub fn init_buffer(a: &ArrayDesc, salt: u64) -> Vec<f32> {
    (0..a.len()).map(|i| init_value(salt, i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_line_aligned() {
        let mut l = Layout::new(128);
        let a = l.alloc("a", 4, 64);
        // Row 1 starts exactly 2 lines after row 0.
        assert_eq!(a.line(1, 0).raw(), a.line(0, 0).raw() + 2);
        assert_eq!(a.row_slice_lines(0, 0, 64).len(), 2);
    }

    #[test]
    fn arrays_do_not_share_lines() {
        let mut l = Layout::new(128);
        let a = l.alloc("a", 1, 32); // exactly one line
        let b = l.alloc("b", 1, 32);
        assert_ne!(a.line(0, 31), b.line(0, 0));
    }

    #[test]
    fn row_slice_lines_partial() {
        let mut l = Layout::new(128);
        let a = l.alloc("a", 2, 96); // 3 lines per row
        assert_eq!(a.row_slice_lines(1, 32, 64).len(), 1);
        assert_eq!(a.row_slice_lines(1, 0, 96).len(), 3);
        assert!(a.row_slice_lines(0, 5, 5).is_empty());
    }

    #[test]
    fn flat_slice_lines_for_vectors() {
        let mut l = Layout::new(128);
        let v = l.alloc_vec("v", 1024); // 32 lines
        assert_eq!(v.all_lines().len(), 32);
        assert_eq!(v.flat_slice_lines(0, 32).len(), 1);
        assert_eq!(v.flat_slice_lines(16, 48).len(), 2); // straddles
    }

    #[test]
    #[should_panic(expected = "columns")]
    fn misaligned_matrix_rejected() {
        Layout::new(128).alloc("bad", 4, 33);
    }

    #[test]
    fn init_is_deterministic_and_bounded() {
        for i in 0..1000 {
            let v = init_value(3, i);
            assert_eq!(v, init_value(3, i));
            assert!(v > 0.0 && v <= 1.0);
        }
        assert_ne!(init_value(1, 5), init_value(2, 5));
    }
}
