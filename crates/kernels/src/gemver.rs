//! `gemver` — vector multiplication and matrix addition (PolyBench-ACC):
//!
//! ```text
//! Â = A + u1·v1ᵀ + u2·v2ᵀ
//! x = β·Âᵀ·y + z
//! w = α·Â·x
//! ```
//!
//! Three row-major passes over the matrix, the middle one accumulating a
//! transposed product into a resident vector — a mixed-pattern kernel whose
//! matrix is both read *and written*, exercising write-allocate staging.

use prem_core::IntervalSpec;

use crate::data::{init_buffer, ArrayDesc, Layout, ELEM_BYTES};
use crate::stream::IntervalBuilder;
use crate::{check_coverage, compare_results, Kernel, KernelError, VerifyError, LINE_BYTES};

const ALPHA: f32 = 1.5;
const BETA: f32 = 1.2;

/// The `gemver` kernel model.
#[derive(Clone, Debug)]
pub struct Gemver {
    n: usize,
    a: ArrayDesc,
    u1: ArrayDesc,
    v1: ArrayDesc,
    u2: ArrayDesc,
    v2: ArrayDesc,
    w: ArrayDesc,
    x: ArrayDesc,
    y: ArrayDesc,
    z: ArrayDesc,
}

impl Gemver {
    /// Creates a `gemver` over an `n × n` matrix.
    ///
    /// # Panics
    ///
    /// Panics unless `n` is a multiple of 32.
    pub fn new(n: usize) -> Self {
        let mut layout = Layout::new(LINE_BYTES);
        let a = layout.alloc("A", n, n);
        let u1 = layout.alloc_vec("u1", n);
        let v1 = layout.alloc_vec("v1", n);
        let u2 = layout.alloc_vec("u2", n);
        let v2 = layout.alloc_vec("v2", n);
        let w = layout.alloc_vec("w", n);
        let x = layout.alloc_vec("x", n);
        let y = layout.alloc_vec("y", n);
        let z = layout.alloc_vec("z", n);
        Gemver {
            n,
            a,
            u1,
            v1,
            u2,
            v2,
            w,
            x,
            y,
            z,
        }
    }

    fn row_blocks(&self, t_bytes: usize) -> Result<Vec<(usize, usize)>, KernelError> {
        let min = self.min_interval_bytes();
        if t_bytes < min {
            return Err(KernelError::IntervalTooSmall {
                kernel: self.name(),
                t_bytes,
                min_bytes: min,
            });
        }
        // Worst pass footprint: matrix rows + two resident vectors.
        let fixed = 2 * self.n * ELEM_BYTES + 4 * LINE_BYTES;
        let per_row = self.n * ELEM_BYTES + 2 * ELEM_BYTES;
        let rows = prem_core::rows_per_interval(t_bytes, fixed, per_row).max(1);
        Ok((0..self.n)
            .step_by(rows)
            .map(|i0| (i0, (i0 + rows).min(self.n)))
            .collect())
    }

    fn compute(&self, blocks: &[(usize, usize)]) -> Vec<f32> {
        let mut a = init_buffer(&self.a, 1);
        let u1 = init_buffer(&self.u1, 2);
        let v1 = init_buffer(&self.v1, 3);
        let u2 = init_buffer(&self.u2, 4);
        let v2 = init_buffer(&self.v2, 5);
        let y = init_buffer(&self.y, 6);
        let z = init_buffer(&self.z, 7);
        let n = self.n;
        // Pass 1: rank-2 update.
        for &(i0, i1) in blocks {
            for i in i0..i1 {
                for j in 0..n {
                    a[i * n + j] += u1[i] * v1[j] + u2[i] * v2[j];
                }
            }
        }
        // Pass 2: x = beta * A^T y + z (row-major over A, accumulate x).
        let mut x = vec![0.0f32; n];
        for &(i0, i1) in blocks {
            for i in i0..i1 {
                for j in 0..n {
                    x[j] += BETA * a[i * n + j] * y[i];
                }
            }
        }
        for j in 0..n {
            x[j] += z[j];
        }
        // Pass 3: w = alpha * A x.
        let mut w = vec![0.0f32; n];
        for &(i0, i1) in blocks {
            for i in i0..i1 {
                for j in 0..n {
                    w[i] += ALPHA * a[i * n + j] * x[j];
                }
            }
        }
        w
    }
}

impl Kernel for Gemver {
    fn name(&self) -> &'static str {
        "gemver"
    }

    fn dims(&self) -> String {
        format!("{}x{}", self.n, self.n)
    }

    fn id_dims(&self) -> Vec<usize> {
        vec![self.n]
    }

    fn dataset_bytes(&self) -> usize {
        self.a.bytes() + 8 * self.n * ELEM_BYTES
    }

    fn min_interval_bytes(&self) -> usize {
        2 * self.n * ELEM_BYTES + self.n * ELEM_BYTES + 8 * LINE_BYTES
    }

    fn intervals(&self, t_bytes: usize) -> Result<Vec<IntervalSpec>, KernelError> {
        let epl = self.a.elems_per_line();
        let chunks = self.n / epl;
        let blocks = self.row_blocks(t_bytes)?;
        let mut out = Vec::new();

        // Pass 1: Â = A + u1 v1ᵀ + u2 v2ᵀ (A read-modify-write).
        for &(i0, i1) in &blocks {
            let mut b = IntervalBuilder::new();
            b.stage_flat(&self.v1, 0, self.n);
            b.stage_flat(&self.v2, 0, self.n);
            b.stage_flat(&self.u1, i0, i1);
            b.stage_flat(&self.u2, i0, i1);
            for i in i0..i1 {
                b.stage_row(&self.a, i, 0, self.n);
            }
            for i in i0..i1 {
                b.read(self.u1.line(0, i));
                b.read(self.u2.line(0, i));
                for c in 0..chunks {
                    let c0 = c * epl;
                    b.read(self.a.line(i, c0));
                    b.read(self.v1.line(0, c0));
                    b.read(self.v2.line(0, c0));
                    b.write(self.a.line(i, c0));
                    b.alu(6);
                }
            }
            out.push(b.build());
        }
        // Pass 2: x = β Âᵀ y + z, row-major accumulation into resident x.
        for &(i0, i1) in &blocks {
            let mut b = IntervalBuilder::new();
            b.stage_flat(&self.x, 0, self.n);
            b.stage_flat(&self.z, 0, self.n);
            b.stage_flat(&self.y, i0, i1);
            for i in i0..i1 {
                b.stage_row(&self.a, i, 0, self.n);
            }
            for i in i0..i1 {
                b.read(self.y.line(0, i));
                for c in 0..chunks {
                    let c0 = c * epl;
                    b.read(self.a.line(i, c0));
                    b.read(self.x.line(0, c0));
                    b.write(self.x.line(0, c0));
                    b.alu(4);
                }
            }
            // z added once, in the last interval of the pass.
            if i1 == self.n {
                for c in 0..chunks {
                    let c0 = c * epl;
                    b.read(self.z.line(0, c0));
                    b.write(self.x.line(0, c0));
                    b.alu(1);
                }
            }
            out.push(b.build());
        }
        // Pass 3: w = α Â x.
        for &(i0, i1) in &blocks {
            let mut b = IntervalBuilder::new();
            b.stage_flat(&self.x, 0, self.n);
            b.stage_flat(&self.w, i0, i1);
            for i in i0..i1 {
                b.stage_row(&self.a, i, 0, self.n);
            }
            for i in i0..i1 {
                for c in 0..chunks {
                    let c0 = c * epl;
                    b.read(self.a.line(i, c0));
                    b.read(self.x.line(0, c0));
                    b.alu(3);
                }
                b.write(self.w.line(0, i));
            }
            out.push(b.build());
        }
        Ok(out)
    }

    fn verify(&self, t_bytes: usize) -> Result<(), VerifyError> {
        check_coverage(&self.intervals(t_bytes)?, t_bytes)?;
        let reference = self.compute(&[(0, self.n)]);
        let tiled = self.compute(&self.row_blocks(t_bytes)?);
        compare_results(self.name(), &reference, &tiled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prem_memsim::KIB;

    #[test]
    fn tiling_verified() {
        let k = Gemver::new(128);
        for t in [8 * KIB, 32 * KIB, 96 * KIB] {
            k.verify(t).unwrap();
        }
    }

    #[test]
    fn three_passes_per_block() {
        let k = Gemver::new(128);
        let blocks = k.row_blocks(16 * KIB).unwrap().len();
        let ivs = k.intervals(16 * KIB).unwrap().len();
        assert_eq!(ivs, 3 * blocks);
    }

    #[test]
    fn pass1_writes_matrix_lines() {
        let k = Gemver::new(64);
        let ivs = k.intervals(64 * KIB).unwrap();
        // First pass interval writes A lines (rank-2 update).
        let a_line = k.a.line(0, 0);
        assert!(ivs[0].written_lines().contains(&a_line));
    }
}
