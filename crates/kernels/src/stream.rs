//! Builder for one PREM interval's footprint and compute-access stream.

use std::collections::HashSet;

use prem_core::{CAccess, IntervalSpec};
use prem_memsim::LineAddr;

use crate::data::ArrayDesc;

/// Accumulates the staged footprint (deduplicated, first-touch order) and
/// the ordered compute accesses of one interval.
#[derive(Clone, Debug, Default)]
pub struct IntervalBuilder {
    footprint: Vec<LineAddr>,
    staged: HashSet<LineAddr>,
    c_accesses: Vec<CAccess>,
    alu: u64,
}

impl IntervalBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        IntervalBuilder::default()
    }

    /// Stages one line (idempotent).
    pub fn stage(&mut self, line: LineAddr) -> &mut Self {
        if self.staged.insert(line) {
            self.footprint.push(line);
        }
        self
    }

    /// Stages many lines.
    pub fn stage_all<I: IntoIterator<Item = LineAddr>>(&mut self, lines: I) -> &mut Self {
        for l in lines {
            self.stage(l);
        }
        self
    }

    /// Stages the lines of `a[r][c0..c1]`.
    pub fn stage_row(&mut self, a: &ArrayDesc, r: usize, c0: usize, c1: usize) -> &mut Self {
        self.stage_all(a.row_slice_lines(r, c0, c1))
    }

    /// Stages the lines of flat range `a[i0..i1]`.
    pub fn stage_flat(&mut self, a: &ArrayDesc, i0: usize, i1: usize) -> &mut Self {
        self.stage_all(a.flat_slice_lines(i0, i1))
    }

    /// Current footprint size in lines.
    pub fn footprint_lines(&self) -> usize {
        self.footprint.len()
    }

    /// Emits a compute-phase read of one line.
    pub fn read(&mut self, line: LineAddr) -> &mut Self {
        self.c_accesses.push(CAccess::read(line));
        self
    }

    /// Emits a compute-phase write of one line.
    pub fn write(&mut self, line: LineAddr) -> &mut Self {
        self.c_accesses.push(CAccess::write(line));
        self
    }

    /// Emits reads of every line in `a[r][c0..c1]`, in address order.
    pub fn read_row(&mut self, a: &ArrayDesc, r: usize, c0: usize, c1: usize) -> &mut Self {
        for l in a.row_slice_lines(r, c0, c1) {
            self.read(l);
        }
        self
    }

    /// Emits writes of every line in `a[r][c0..c1]`, in address order.
    pub fn write_row(&mut self, a: &ArrayDesc, r: usize, c0: usize, c1: usize) -> &mut Self {
        for l in a.row_slice_lines(r, c0, c1) {
            self.write(l);
        }
        self
    }

    /// Adds warp arithmetic instructions to the compute phase.
    pub fn alu(&mut self, n: u64) -> &mut Self {
        self.alu += n;
        self
    }

    /// Finalizes the interval.
    pub fn build(self) -> IntervalSpec {
        IntervalSpec::new(self.footprint, self.c_accesses, self.alu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Layout;
    use prem_core::check_tiling;

    #[test]
    fn staging_deduplicates_in_order() {
        let mut b = IntervalBuilder::new();
        b.stage(LineAddr::new(2))
            .stage(LineAddr::new(1))
            .stage(LineAddr::new(2));
        let iv = b.build();
        assert_eq!(iv.footprint, vec![LineAddr::new(2), LineAddr::new(1)]);
    }

    #[test]
    fn built_interval_passes_coverage_check() {
        let mut layout = Layout::new(128);
        let a = layout.alloc("a", 4, 64);
        let mut b = IntervalBuilder::new();
        b.stage_row(&a, 0, 0, 64);
        b.read_row(&a, 0, 0, 64);
        b.write_row(&a, 0, 32, 64);
        b.alu(10);
        let iv = b.build();
        assert!(check_tiling(&[iv], 4096, 128).is_ok());
    }

    #[test]
    fn uncovered_read_fails_coverage_check() {
        let mut layout = Layout::new(128);
        let a = layout.alloc("a", 4, 64);
        let mut b = IntervalBuilder::new();
        b.stage_row(&a, 0, 0, 64);
        b.read_row(&a, 1, 0, 64); // row 1 was never staged
        let iv = b.build();
        assert!(check_tiling(&[iv], 4096, 128).is_err());
    }
}
