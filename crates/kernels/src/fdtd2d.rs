//! `fdtd-2d` — 2-D finite-difference time-domain kernel (PolyBench-ACC).
//!
//! Per time step, three coupled field updates:
//!
//! ```text
//! ey[0][j]  = fict[t]
//! ey[i][j] -= 0.5·(hz[i][j] − hz[i−1][j])        i ≥ 1
//! ex[i][j] -= 0.5·(hz[i][j] − hz[i][j−1])        j ≥ 1
//! hz[i][j] -= 0.7·(ex[i][j+1] − ex[i][j] + ey[i+1][j] − ey[i][j])
//! ```
//!
//! Three arrays with different halo directions per pass — the richest
//! staging pattern in the suite.

use prem_core::IntervalSpec;

use crate::data::{init_buffer, ArrayDesc, Layout, ELEM_BYTES};
use crate::stream::IntervalBuilder;
use crate::{check_coverage, compare_results, Kernel, KernelError, VerifyError, LINE_BYTES};

/// The `fdtd-2d` kernel model.
#[derive(Clone, Debug)]
pub struct Fdtd2d {
    n: usize,
    steps: usize,
    ex: ArrayDesc,
    ey: ArrayDesc,
    hz: ArrayDesc,
    fict: ArrayDesc,
}

impl Fdtd2d {
    /// Creates an `fdtd-2d` over `n × n` grids for `steps` time steps.
    ///
    /// # Panics
    ///
    /// Panics unless `n` is a multiple of 32 and `steps ≥ 1`.
    pub fn new(n: usize, steps: usize) -> Self {
        assert!(steps >= 1, "at least one time step");
        let mut layout = Layout::new(LINE_BYTES);
        let ex = layout.alloc("ex", n, n);
        let ey = layout.alloc("ey", n, n);
        let hz = layout.alloc("hz", n, n);
        let fict = layout.alloc_vec("fict", steps.next_multiple_of(32).max(32));
        Fdtd2d {
            n,
            steps,
            ex,
            ey,
            hz,
            fict,
        }
    }

    fn row_blocks(&self, t_bytes: usize) -> Result<Vec<(usize, usize)>, KernelError> {
        let min = self.min_interval_bytes();
        if t_bytes < min {
            return Err(KernelError::IntervalTooSmall {
                kernel: self.name(),
                t_bytes,
                min_bytes: min,
            });
        }
        // Worst pass (hz update): hz rows + ex rows + ey rows with a +1 halo.
        let per_row = 3 * self.n * ELEM_BYTES;
        let fixed = 2 * self.n * ELEM_BYTES + 2 * LINE_BYTES;
        let rows = prem_core::rows_per_interval(t_bytes, fixed, per_row).max(1);
        Ok((0..self.n)
            .step_by(rows)
            .map(|i0| (i0, (i0 + rows).min(self.n)))
            .collect())
    }

    // `t` is the physical time step, not just an index into `fict`.
    #[allow(clippy::needless_range_loop)]
    fn compute(&self, blocks: &[(usize, usize)]) -> Vec<f32> {
        let n = self.n;
        let mut ex = init_buffer(&self.ex, 1);
        let mut ey = init_buffer(&self.ey, 2);
        let mut hz = init_buffer(&self.hz, 3);
        let fict = init_buffer(&self.fict, 4);
        for t in 0..self.steps {
            for &(i0, i1) in blocks {
                for i in i0..i1 {
                    for j in 0..n {
                        if i == 0 {
                            ey[j] = fict[t];
                        } else {
                            ey[i * n + j] -= 0.5 * (hz[i * n + j] - hz[(i - 1) * n + j]);
                        }
                    }
                }
            }
            for &(i0, i1) in blocks {
                for i in i0..i1 {
                    for j in 1..n {
                        ex[i * n + j] -= 0.5 * (hz[i * n + j] - hz[i * n + j - 1]);
                    }
                }
            }
            for &(i0, i1) in blocks {
                for i in i0..i1.min(n - 1) {
                    for j in 0..n - 1 {
                        hz[i * n + j] -= 0.7
                            * (ex[i * n + j + 1] - ex[i * n + j] + ey[(i + 1) * n + j]
                                - ey[i * n + j]);
                    }
                }
            }
        }
        hz
    }
}

impl Kernel for Fdtd2d {
    fn name(&self) -> &'static str {
        "fdtd2d"
    }

    fn dims(&self) -> String {
        format!("{}x{} x{} steps", self.n, self.n, self.steps)
    }

    fn id_dims(&self) -> Vec<usize> {
        vec![self.n, self.steps]
    }

    fn dataset_bytes(&self) -> usize {
        self.ex.bytes() + self.ey.bytes() + self.hz.bytes() + self.fict.bytes()
    }

    fn min_interval_bytes(&self) -> usize {
        5 * self.n * ELEM_BYTES + 6 * LINE_BYTES
    }

    fn intervals(&self, t_bytes: usize) -> Result<Vec<IntervalSpec>, KernelError> {
        let n = self.n;
        let epl = self.ex.elems_per_line();
        let chunks = n / epl;
        let blocks = self.row_blocks(t_bytes)?;
        let mut out = Vec::new();
        for t in 0..self.steps {
            // Pass 1: ey update (needs hz rows i-1..i1).
            for &(i0, i1) in &blocks {
                let mut b = IntervalBuilder::new();
                b.stage_flat(&self.fict, t, t + 1);
                for i in i0..i1 {
                    b.stage_row(&self.ey, i, 0, n);
                    b.stage_row(&self.hz, i, 0, n);
                }
                if i0 > 0 {
                    b.stage_row(&self.hz, i0 - 1, 0, n);
                }
                for i in i0..i1 {
                    for c in 0..chunks {
                        let c0 = c * epl;
                        if i == 0 {
                            b.read(self.fict.line(0, t));
                        } else {
                            b.read(self.hz.line(i, c0));
                            b.read(self.hz.line(i - 1, c0));
                            b.read(self.ey.line(i, c0));
                        }
                        b.write(self.ey.line(i, c0));
                        b.alu(4);
                    }
                }
                out.push(b.build());
            }
            // Pass 2: ex update (hz row-local, left-neighbour in row).
            for &(i0, i1) in &blocks {
                let mut b = IntervalBuilder::new();
                for i in i0..i1 {
                    b.stage_row(&self.ex, i, 0, n);
                    b.stage_row(&self.hz, i, 0, n);
                }
                for i in i0..i1 {
                    for c in 0..chunks {
                        let c0 = c * epl;
                        b.read(self.hz.line(i, c0));
                        b.read(self.ex.line(i, c0));
                        b.write(self.ex.line(i, c0));
                        b.alu(4);
                    }
                }
                out.push(b.build());
            }
            // Pass 3: hz update (needs ex row, ey rows i..i1+1).
            for &(i0, i1) in &blocks {
                let mut b = IntervalBuilder::new();
                for i in i0..i1 {
                    b.stage_row(&self.hz, i, 0, n);
                    b.stage_row(&self.ex, i, 0, n);
                    b.stage_row(&self.ey, i, 0, n);
                }
                if i1 < n {
                    b.stage_row(&self.ey, i1, 0, n);
                }
                for i in i0..i1.min(n - 1) {
                    for c in 0..chunks {
                        let c0 = c * epl;
                        b.read(self.ex.line(i, c0));
                        b.read(self.ey.line(i, c0));
                        b.read(self.ey.line(i + 1, c0));
                        b.read(self.hz.line(i, c0));
                        b.write(self.hz.line(i, c0));
                        b.alu(6);
                    }
                }
                out.push(b.build());
            }
        }
        Ok(out)
    }

    fn verify(&self, t_bytes: usize) -> Result<(), VerifyError> {
        check_coverage(&self.intervals(t_bytes)?, t_bytes)?;
        let reference = self.compute(&[(0, self.n)]);
        let tiled = self.compute(&self.row_blocks(t_bytes)?);
        compare_results(self.name(), &reference, &tiled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prem_memsim::KIB;

    #[test]
    fn tiling_verified() {
        let k = Fdtd2d::new(96, 2);
        for t in [8 * KIB, 32 * KIB] {
            k.verify(t).unwrap();
        }
    }

    #[test]
    fn three_passes_per_step() {
        let k = Fdtd2d::new(96, 2);
        let blocks = k.row_blocks(16 * KIB).unwrap().len();
        let ivs = k.intervals(16 * KIB).unwrap().len();
        assert_eq!(ivs, 2 * 3 * blocks);
    }

    #[test]
    fn min_interval_enforced() {
        let k = Fdtd2d::new(96, 1);
        assert!(k.intervals(512).is_err());
    }
}
