//! `atax` — matrix transpose times matrix-vector product (PolyBench-ACC):
//! `y = Aᵀ (A x)`.
//!
//! Same streaming structure as `bicg`: one row-major sweep over `A`, with
//! `x` and `y` resident and the per-row temporary `tmp` written once.

use prem_core::IntervalSpec;

use crate::data::{init_buffer, ArrayDesc, Layout, ELEM_BYTES};
use crate::stream::IntervalBuilder;
use crate::{check_coverage, compare_results, Kernel, KernelError, VerifyError, LINE_BYTES};

const ALU_PER_CHUNK: u64 = 5;
const ALU_PER_ROW: u64 = 3;

/// The `atax` kernel model.
#[derive(Clone, Debug)]
pub struct Atax {
    n: usize,
    m: usize,
    a: ArrayDesc,
    x: ArrayDesc,
    y: ArrayDesc,
    tmp: ArrayDesc,
}

impl Atax {
    /// Creates an `atax` instance over an `n × m` matrix.
    ///
    /// # Panics
    ///
    /// Panics unless `n` and `m` are multiples of 32.
    pub fn new(n: usize, m: usize) -> Self {
        let mut layout = Layout::new(LINE_BYTES);
        let a = layout.alloc("A", n, m);
        let x = layout.alloc_vec("x", m);
        let y = layout.alloc_vec("y", m);
        let tmp = layout.alloc_vec("tmp", n);
        Atax { n, m, a, x, y, tmp }
    }

    fn row_blocks(&self, t_bytes: usize) -> Result<Vec<(usize, usize)>, KernelError> {
        let min = self.min_interval_bytes();
        if t_bytes < min {
            return Err(KernelError::IntervalTooSmall {
                kernel: self.name(),
                t_bytes,
                min_bytes: min,
            });
        }
        let fixed = self.x.bytes() + self.y.bytes() + 4 * LINE_BYTES;
        let per_row = self.m * ELEM_BYTES + ELEM_BYTES;
        let rows = prem_core::rows_per_interval(t_bytes, fixed, per_row).max(1);
        Ok((0..self.n)
            .step_by(rows)
            .map(|i0| (i0, (i0 + rows).min(self.n)))
            .collect())
    }

    fn reference(&self) -> Vec<f32> {
        let a = init_buffer(&self.a, 1);
        let x = init_buffer(&self.x, 2);
        let mut y = vec![0.0f32; self.m];
        for i in 0..self.n {
            let mut tmp = 0.0f32;
            for j in 0..self.m {
                tmp += a[i * self.m + j] * x[j];
            }
            for j in 0..self.m {
                y[j] += a[i * self.m + j] * tmp;
            }
        }
        y
    }

    fn tiled(&self, t_bytes: usize) -> Result<Vec<f32>, KernelError> {
        let a = init_buffer(&self.a, 1);
        let x = init_buffer(&self.x, 2);
        let mut y = vec![0.0f32; self.m];
        for (i0, i1) in self.row_blocks(t_bytes)? {
            for i in i0..i1 {
                let mut tmp = 0.0f32;
                for j in 0..self.m {
                    tmp += a[i * self.m + j] * x[j];
                }
                for j in 0..self.m {
                    y[j] += a[i * self.m + j] * tmp;
                }
            }
        }
        Ok(y)
    }
}

impl Kernel for Atax {
    fn name(&self) -> &'static str {
        "atax"
    }

    fn dims(&self) -> String {
        format!("{}x{}", self.n, self.m)
    }

    fn id_dims(&self) -> Vec<usize> {
        vec![self.n, self.m]
    }

    fn dataset_bytes(&self) -> usize {
        self.a.bytes() + self.x.bytes() + self.y.bytes() + self.tmp.bytes()
    }

    fn min_interval_bytes(&self) -> usize {
        self.x.bytes() + self.y.bytes() + self.m * ELEM_BYTES + 6 * LINE_BYTES
    }

    fn intervals(&self, t_bytes: usize) -> Result<Vec<IntervalSpec>, KernelError> {
        let epl = self.a.elems_per_line();
        let chunks = self.m / epl;
        let mut out = Vec::new();
        for (i0, i1) in self.row_blocks(t_bytes)? {
            let mut b = IntervalBuilder::new();
            b.stage_flat(&self.x, 0, self.m);
            b.stage_flat(&self.y, 0, self.m);
            b.stage_flat(&self.tmp, i0, i1);
            for i in i0..i1 {
                b.stage_row(&self.a, i, 0, self.m);
            }
            for i in i0..i1 {
                // First sweep: tmp[i] = A[i] · x.
                for c in 0..chunks {
                    let c0 = c * epl;
                    b.read(self.a.line(i, c0));
                    b.read(self.x.line(0, c0));
                    b.alu(ALU_PER_CHUNK);
                }
                b.write(self.tmp.line(0, i));
                // Second sweep: y += A[i] · tmp[i]; rows hit in the LLC.
                for c in 0..chunks {
                    let c0 = c * epl;
                    b.read(self.a.line(i, c0));
                    b.write(self.y.line(0, c0));
                    b.alu(ALU_PER_CHUNK);
                }
                b.alu(ALU_PER_ROW);
            }
            out.push(b.build());
        }
        Ok(out)
    }

    fn verify(&self, t_bytes: usize) -> Result<(), VerifyError> {
        check_coverage(&self.intervals(t_bytes)?, t_bytes)?;
        compare_results(self.name(), &self.reference(), &self.tiled(t_bytes)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prem_memsim::KIB;

    #[test]
    fn tiling_verified() {
        let k = Atax::new(128, 128);
        for t in [8 * KIB, 32 * KIB] {
            k.verify(t).unwrap();
        }
    }

    #[test]
    fn rows_touched_twice_per_interval() {
        let k = Atax::new(64, 64);
        let ivs = k.intervals(8 * KIB).unwrap();
        // Each A line is read twice (two sweeps) in its owning interval.
        let iv = &ivs[0];
        let a_line = k.a.line(0, 0);
        let reads = iv
            .c_accesses
            .iter()
            .filter(|a| a.line == a_line && !a.write)
            .count();
        assert_eq!(reads, 2);
    }

    #[test]
    fn min_interval_enforced() {
        let k = Atax::new(128, 128);
        assert!(k.intervals(k.min_interval_bytes() - 1).is_err());
        assert!(k.intervals(k.min_interval_bytes()).is_ok());
    }
}
