//! The kernel registry: paper kernels by name, reconstructible from a
//! numeric identity.
//!
//! The run-plan layer's `RunRequest` borrows a `&dyn Kernel`, which is
//! perfect in-process and useless across one: a process boundary can only
//! carry *names*. This module closes the loop — every kernel model in the
//! crate registers a constructor under its stable [`Kernel::name`], and a
//! [`KernelId`] (name + [`Kernel::id_dims`] constructor dimensions) is
//! enough to [`instantiate`](KernelId::instantiate) an equivalent instance
//! on the other side. The wire request codec (`prem-harness::wire`) and
//! the `prem-serve` front end are built on exactly this round trip:
//!
//! ```
//! use prem_kernels::{Bicg, Kernel, KernelId};
//!
//! let bicg = Bicg::new(1024, 1024);
//! let id = KernelId::of(&bicg);
//! let back = id.instantiate().expect("bicg is registered");
//! assert_eq!(back.name(), bicg.name());
//! assert_eq!(back.dims(), bicg.dims());
//! ```

use std::fmt;

use crate::{
    Atax, Bicg, Conv2d, Doitgen, Fdtd2d, Gemm, Gemver, Gesummv, Jacobi2d, Kernel, Mvt, Syr2k, Syrk,
    ThreeMm, TwoMm,
};

/// One registry row: the kernel's stable name, its constructor arity, and
/// a constructor from [`Kernel::id_dims`]-shaped dimensions.
type Entry = (&'static str, usize, fn(&[usize]) -> Box<dyn Kernel>);

/// Every kernel model of the crate, by stable name. The arity pins the
/// expected [`Kernel::id_dims`] length so a malformed identity is rejected
/// before a constructor can panic on it.
const REGISTRY: &[Entry] = &[
    ("bicg", 2, |d| Box::new(Bicg::new(d[0], d[1]))),
    ("atax", 2, |d| Box::new(Atax::new(d[0], d[1]))),
    ("mvt", 1, |d| Box::new(Mvt::new(d[0]))),
    ("gesummv", 1, |d| Box::new(Gesummv::new(d[0]))),
    ("gemm", 3, |d| Box::new(Gemm::new(d[0], d[1], d[2]))),
    ("2mm", 1, |d| Box::new(TwoMm::new(d[0]))),
    ("3mm", 1, |d| Box::new(ThreeMm::new(d[0]))),
    ("syrk", 2, |d| Box::new(Syrk::new(d[0], d[1]))),
    ("syr2k", 2, |d| Box::new(Syr2k::new(d[0], d[1]))),
    ("doitgen", 3, |d| Box::new(Doitgen::new(d[0], d[1], d[2]))),
    ("conv2d", 1, |d| Box::new(Conv2d::new(d[0]))),
    ("jacobi2d", 2, |d| Box::new(Jacobi2d::new(d[0], d[1]))),
    ("gemver", 1, |d| Box::new(Gemver::new(d[0]))),
    ("fdtd2d", 2, |d| Box::new(Fdtd2d::new(d[0], d[1]))),
];

/// Instantiates the registered kernel `name` at constructor dimensions
/// `dims`, or `None` when no kernel of that name is registered or `dims`
/// has the wrong arity for it.
///
/// # Panics
///
/// Propagates the constructor's own contract panics (most kernels require
/// dimensions that are multiples of 32) — arity is validated here, value
/// ranges are the constructor's business, exactly as for a hand-built
/// instance.
pub fn kernel(name: &str, dims: &[usize]) -> Option<Box<dyn Kernel>> {
    REGISTRY
        .iter()
        .find(|(n, arity, _)| *n == name && *arity == dims.len())
        .map(|(_, _, ctor)| ctor(dims))
}

/// The registered kernel names, in registry order (the paper suite order).
pub fn kernel_names() -> Vec<&'static str> {
    REGISTRY.iter().map(|(n, _, _)| *n).collect()
}

/// An owned, wire-able kernel identity: stable name plus constructor
/// dimensions. `KernelId::of(k).instantiate()` rebuilds an instance
/// equivalent to `k` for every kernel model in this crate.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct KernelId {
    /// The kernel's stable [`Kernel::name`].
    pub name: String,
    /// The constructor dimensions ([`Kernel::id_dims`]).
    pub dims: Vec<usize>,
}

impl KernelId {
    /// A kernel identity from explicit name and dimensions.
    pub fn new(name: impl Into<String>, dims: Vec<usize>) -> Self {
        KernelId {
            name: name.into(),
            dims,
        }
    }

    /// The identity of an existing kernel instance.
    pub fn of(kernel: &dyn Kernel) -> Self {
        KernelId {
            name: kernel.name().to_string(),
            dims: kernel.id_dims(),
        }
    }

    /// Reconstructs the kernel this identity names, or `None` when the
    /// name is not registered or the dimension count does not match the
    /// registered constructor (see [`kernel`]).
    pub fn instantiate(&self) -> Option<Box<dyn Kernel>> {
        kernel(&self.name, &self.dims)
    }
}

impl fmt::Display for KernelId {
    /// `name:d0xd1x…` — the spelling the wire line format uses.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:", self.name)?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{case_study_bicg, standard_suite, suite_small};

    #[test]
    fn every_suite_kernel_round_trips_through_its_id() {
        let mut all: Vec<Box<dyn Kernel>> = standard_suite();
        all.extend(suite_small());
        all.push(Box::new(case_study_bicg()));
        for k in &all {
            let id = KernelId::of(k.as_ref());
            let back = id
                .instantiate()
                .unwrap_or_else(|| panic!("{} not registered", k.name()));
            assert_eq!(back.name(), k.name());
            assert_eq!(back.dims(), k.dims(), "{}", k.name());
            assert_eq!(back.id_dims(), k.id_dims(), "{}", k.name());
            assert_eq!(back.dataset_bytes(), k.dataset_bytes(), "{}", k.name());
            assert_eq!(
                back.min_interval_bytes(),
                k.min_interval_bytes(),
                "{}",
                k.name()
            );
        }
    }

    #[test]
    fn registry_covers_the_whole_suite_exactly_once() {
        let names = kernel_names();
        assert_eq!(names.len(), 14);
        let unique: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(unique.len(), names.len(), "duplicate registry names");
        for k in standard_suite() {
            assert!(names.contains(&k.name()), "{} missing", k.name());
        }
    }

    #[test]
    fn unknown_name_and_wrong_arity_are_rejected() {
        assert!(kernel("no-such-kernel", &[64]).is_none());
        assert!(kernel("bicg", &[64]).is_none(), "bicg takes two dims");
        assert!(kernel("bicg", &[64, 64, 64]).is_none());
        assert!(KernelId::new("bicg", vec![64]).instantiate().is_none());
    }

    #[test]
    fn display_matches_the_wire_spelling() {
        assert_eq!(KernelId::of(&Bicg::new(128, 64)).to_string(), "bicg:128x64");
        assert_eq!(KernelId::new("mvt", vec![256]).to_string(), "mvt:256");
    }
}
