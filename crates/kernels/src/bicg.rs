//! `bicg` — the BiCG sub-kernel of BiCGStab (PolyBench-ACC), the paper's
//! case-study kernel (§III-A, Figs 3–5).
//!
//! ```text
//! s[j] = Σ_i r[i] · A[i][j]        q[i] = Σ_j A[i][j] · p[j]
//! ```
//!
//! The matrix is streamed once, row-major; `p` and `s` stay resident across
//! the whole run, so the kernel is cache-friendly — exactly why the paper
//! picks it to expose self-eviction rather than capacity effects.

use prem_core::IntervalSpec;

use crate::data::{init_buffer, ArrayDesc, Layout, ELEM_BYTES};
use crate::stream::IntervalBuilder;
use crate::{check_coverage, compare_results, Kernel, KernelError, VerifyError, LINE_BYTES};

/// Warp ALU instructions per matrix line chunk (2 FMA streams + loop code).
const ALU_PER_CHUNK: u64 = 5;
/// Warp ALU instructions of per-row bookkeeping.
const ALU_PER_ROW: u64 = 2;

/// The `bicg` kernel model.
#[derive(Clone, Debug)]
pub struct Bicg {
    n: usize,
    m: usize,
    a: ArrayDesc,
    p: ArrayDesc,
    q: ArrayDesc,
    r: ArrayDesc,
    s: ArrayDesc,
}

impl Bicg {
    /// Creates a `bicg` instance over an `n × m` matrix.
    ///
    /// # Panics
    ///
    /// Panics unless `n` and `m` are multiples of 32 (one line of `f32`).
    pub fn new(n: usize, m: usize) -> Self {
        let mut layout = Layout::new(LINE_BYTES);
        let a = layout.alloc("A", n, m);
        let p = layout.alloc_vec("p", m);
        let q = layout.alloc_vec("q", n);
        let r = layout.alloc_vec("r", n);
        let s = layout.alloc_vec("s", m);
        Bicg {
            n,
            m,
            a,
            p,
            q,
            r,
            s,
        }
    }

    /// Row-block boundaries for interval size `t_bytes`.
    fn row_blocks(&self, t_bytes: usize) -> Result<Vec<(usize, usize)>, KernelError> {
        let min = self.min_interval_bytes();
        if t_bytes < min {
            return Err(KernelError::IntervalTooSmall {
                kernel: self.name(),
                t_bytes,
                min_bytes: min,
            });
        }
        let fixed = self.p.bytes() + self.s.bytes() + 2 * LINE_BYTES;
        let per_row = self.m * ELEM_BYTES + 2 * ELEM_BYTES;
        let rows = prem_core::rows_per_interval(t_bytes, fixed + 2 * LINE_BYTES, per_row).max(1);
        Ok((0..self.n)
            .step_by(rows)
            .map(|i0| (i0, (i0 + rows).min(self.n)))
            .collect())
    }

    fn reference(&self) -> Vec<f32> {
        let a = init_buffer(&self.a, 1);
        let p = init_buffer(&self.p, 2);
        let r = init_buffer(&self.r, 3);
        let mut s = vec![0.0f32; self.m];
        let mut q = vec![0.0f32; self.n];
        for i in 0..self.n {
            for j in 0..self.m {
                s[j] += r[i] * a[i * self.m + j];
                q[i] += a[i * self.m + j] * p[j];
            }
        }
        s.extend_from_slice(&q);
        s
    }

    fn tiled(&self, t_bytes: usize) -> Result<Vec<f32>, KernelError> {
        let a = init_buffer(&self.a, 1);
        let p = init_buffer(&self.p, 2);
        let r = init_buffer(&self.r, 3);
        let mut s = vec![0.0f32; self.m];
        let mut q = vec![0.0f32; self.n];
        for (i0, i1) in self.row_blocks(t_bytes)? {
            for i in i0..i1 {
                for j in 0..self.m {
                    s[j] += r[i] * a[i * self.m + j];
                    q[i] += a[i * self.m + j] * p[j];
                }
            }
        }
        s.extend_from_slice(&q);
        Ok(s)
    }
}

impl Kernel for Bicg {
    fn name(&self) -> &'static str {
        "bicg"
    }

    fn dims(&self) -> String {
        format!("{}x{}", self.n, self.m)
    }

    fn id_dims(&self) -> Vec<usize> {
        vec![self.n, self.m]
    }

    fn dataset_bytes(&self) -> usize {
        self.a.bytes() + self.p.bytes() + self.q.bytes() + self.r.bytes() + self.s.bytes()
    }

    fn min_interval_bytes(&self) -> usize {
        // p + s resident, one matrix row, one line each of q and r, slack.
        self.p.bytes() + self.s.bytes() + self.m * ELEM_BYTES + 6 * LINE_BYTES
    }

    fn intervals(&self, t_bytes: usize) -> Result<Vec<IntervalSpec>, KernelError> {
        let chunks = self.m / self.a.elems_per_line();
        let mut out = Vec::new();
        for (i0, i1) in self.row_blocks(t_bytes)? {
            let mut b = IntervalBuilder::new();
            // Staging: resident vectors, then the streamed rows.
            b.stage_flat(&self.p, 0, self.m);
            b.stage_flat(&self.s, 0, self.m);
            b.stage_flat(&self.r, i0, i1);
            b.stage_flat(&self.q, i0, i1);
            for i in i0..i1 {
                b.stage_row(&self.a, i, 0, self.m);
            }
            // Compute: row-major sweep.
            for i in i0..i1 {
                b.read(self.r.line(0, i));
                for c in 0..chunks {
                    let c0 = c * self.a.elems_per_line();
                    let c1 = c0 + self.a.elems_per_line();
                    b.read(self.a.line(i, c0));
                    b.read(self.p.line(0, c0));
                    b.write(self.s.line(0, c0));
                    debug_assert_eq!(c1 - c0, self.a.elems_per_line());
                    b.alu(ALU_PER_CHUNK);
                }
                b.write(self.q.line(0, i));
                b.alu(ALU_PER_ROW);
            }
            out.push(b.build());
        }
        Ok(out)
    }

    fn verify(&self, t_bytes: usize) -> Result<(), VerifyError> {
        check_coverage(&self.intervals(t_bytes)?, t_bytes)?;
        compare_results(self.name(), &self.reference(), &self.tiled(t_bytes)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prem_memsim::KIB;

    #[test]
    fn tiling_is_verified_at_many_sizes() {
        let k = Bicg::new(128, 128);
        for t in [8 * KIB, 16 * KIB, 32 * KIB, 64 * KIB] {
            k.verify(t).unwrap();
        }
    }

    #[test]
    fn too_small_interval_is_error() {
        let k = Bicg::new(128, 128);
        assert!(matches!(
            k.intervals(1024),
            Err(KernelError::IntervalTooSmall { .. })
        ));
    }

    #[test]
    fn footprints_respect_t() {
        let k = Bicg::new(256, 256);
        let t = 16 * KIB;
        for iv in k.intervals(t).unwrap() {
            assert!(iv.footprint_bytes(LINE_BYTES) <= t);
        }
    }

    #[test]
    fn larger_t_means_fewer_intervals() {
        let k = Bicg::new(256, 256);
        let small = k.intervals(8 * KIB).unwrap().len();
        let large = k.intervals(64 * KIB).unwrap().len();
        assert!(large < small, "{large} !< {small}");
    }

    #[test]
    fn matrix_lines_appear_exactly_once_across_intervals() {
        let k = Bicg::new(128, 128);
        let ivs = k.intervals(16 * KIB).unwrap();
        let mut a_lines = std::collections::HashMap::new();
        let a_first = k.a.line(0, 0).raw();
        let a_last = k.a.line(127, 127).raw();
        for iv in &ivs {
            for l in &iv.footprint {
                if (a_first..=a_last).contains(&l.raw()) {
                    *a_lines.entry(l.raw()).or_insert(0u32) += 1;
                }
            }
        }
        assert_eq!(a_lines.len(), 128 * 128 * 4 / 128);
        assert!(a_lines.values().all(|&c| c == 1));
    }

    #[test]
    fn dims_and_sizes_report() {
        let k = Bicg::new(128, 256);
        assert_eq!(k.dims(), "128x256");
        assert_eq!(k.dataset_bytes(), (128 * 256 + 2 * 256 + 2 * 128) * 4);
    }
}
