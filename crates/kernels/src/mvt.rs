//! `mvt` — matrix-vector product and transpose (PolyBench-ACC):
//! `x1 += A·y1` (row-major pass) then `x2 += Aᵀ·y2` (column pass).
//!
//! The transposed pass walks `A` by columns: a natural tile needs one line
//! per matrix *row*, so its minimum footprint grows with the full column
//! height. This is the kind of kernel for which SPM tiling is forced to be
//! inefficient — part of the paper's motivation for larger local stores.

use prem_core::IntervalSpec;

use crate::data::{init_buffer, ArrayDesc, Layout, ELEM_BYTES};
use crate::stream::IntervalBuilder;
use crate::{check_coverage, compare_results, Kernel, KernelError, VerifyError, LINE_BYTES};

const ALU_PER_CHUNK: u64 = 5;

/// The `mvt` kernel model.
#[derive(Clone, Debug)]
pub struct Mvt {
    n: usize,
    a: ArrayDesc,
    x1: ArrayDesc,
    x2: ArrayDesc,
    y1: ArrayDesc,
    y2: ArrayDesc,
}

/// Tiling plan for `mvt`: row blocks for pass 1 and (column-block,
/// row-block) tiles for pass 2.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Plan {
    pass1: Vec<(usize, usize)>,
    /// (col0, col1, row0, row1) tiles, column-major over blocks.
    pass2: Vec<(usize, usize, usize, usize)>,
}

impl Mvt {
    /// Creates an `mvt` instance over an `n × n` matrix.
    ///
    /// # Panics
    ///
    /// Panics unless `n` is a multiple of 32.
    pub fn new(n: usize) -> Self {
        let mut layout = Layout::new(LINE_BYTES);
        let a = layout.alloc("A", n, n);
        let x1 = layout.alloc_vec("x1", n);
        let x2 = layout.alloc_vec("x2", n);
        let y1 = layout.alloc_vec("y1", n);
        let y2 = layout.alloc_vec("y2", n);
        Mvt {
            n,
            a,
            x1,
            x2,
            y1,
            y2,
        }
    }

    fn plan(&self, t_bytes: usize) -> Result<Plan, KernelError> {
        let min = self.min_interval_bytes();
        if t_bytes < min {
            return Err(KernelError::IntervalTooSmall {
                kernel: self.name(),
                t_bytes,
                min_bytes: min,
            });
        }
        // Pass 1: y1 resident + row block of A + x1 slice.
        let fixed1 = self.y1.bytes() + 4 * LINE_BYTES;
        let per_row = self.n * ELEM_BYTES + ELEM_BYTES;
        let rows = prem_core::rows_per_interval(t_bytes, fixed1, per_row).max(1);
        let pass1 = (0..self.n)
            .step_by(rows)
            .map(|i0| (i0, (i0 + rows).min(self.n)))
            .collect();

        // Pass 2: column block one line wide; row blocks sized to fit.
        let epl = LINE_BYTES / ELEM_BYTES;
        let fixed2 = 2 * LINE_BYTES; // the x2 slice plus slack
        let per_a_row = LINE_BYTES + ELEM_BYTES; // one A line + one y2 element
        let hb = prem_core::rows_per_interval(t_bytes, fixed2, per_a_row)
            .max(1)
            .min(self.n);
        let mut pass2 = Vec::new();
        for j0 in (0..self.n).step_by(epl) {
            for k0 in (0..self.n).step_by(hb) {
                pass2.push((j0, j0 + epl, k0, (k0 + hb).min(self.n)));
            }
        }
        Ok(Plan { pass1, pass2 })
    }

    fn compute(&self, plan: &Plan) -> Vec<f32> {
        let a = init_buffer(&self.a, 1);
        let y1 = init_buffer(&self.y1, 2);
        let y2 = init_buffer(&self.y2, 3);
        let mut x1 = init_buffer(&self.x1, 4);
        let mut x2 = init_buffer(&self.x2, 5);
        for &(i0, i1) in &plan.pass1 {
            for i in i0..i1 {
                for j in 0..self.n {
                    x1[i] += a[i * self.n + j] * y1[j];
                }
            }
        }
        for &(j0, j1, k0, k1) in &plan.pass2 {
            for i in j0..j1 {
                for k in k0..k1 {
                    x2[i] += a[k * self.n + i] * y2[k];
                }
            }
        }
        x1.extend_from_slice(&x2);
        x1
    }
}

impl Kernel for Mvt {
    fn name(&self) -> &'static str {
        "mvt"
    }

    fn dims(&self) -> String {
        format!("{}x{}", self.n, self.n)
    }

    fn id_dims(&self) -> Vec<usize> {
        vec![self.n]
    }

    fn dataset_bytes(&self) -> usize {
        self.a.bytes() + self.x1.bytes() + self.x2.bytes() + self.y1.bytes() + self.y2.bytes()
    }

    fn min_interval_bytes(&self) -> usize {
        // Pass 1 needs y1 + one row; pass 2 needs one line per a handful of
        // rows. Pass 1 dominates.
        self.y1.bytes() + self.n * ELEM_BYTES + 6 * LINE_BYTES
    }

    fn intervals(&self, t_bytes: usize) -> Result<Vec<IntervalSpec>, KernelError> {
        let plan = self.plan(t_bytes)?;
        let epl = self.a.elems_per_line();
        let chunks = self.n / epl;
        let mut out = Vec::new();

        for &(i0, i1) in &plan.pass1 {
            let mut b = IntervalBuilder::new();
            b.stage_flat(&self.y1, 0, self.n);
            b.stage_flat(&self.x1, i0, i1);
            for i in i0..i1 {
                b.stage_row(&self.a, i, 0, self.n);
            }
            for i in i0..i1 {
                b.read(self.x1.line(0, i));
                for c in 0..chunks {
                    let c0 = c * epl;
                    b.read(self.a.line(i, c0));
                    b.read(self.y1.line(0, c0));
                    b.alu(ALU_PER_CHUNK);
                }
                b.write(self.x1.line(0, i));
            }
            out.push(b.build());
        }

        for &(j0, _j1, k0, k1) in &plan.pass2 {
            let mut b = IntervalBuilder::new();
            b.stage_flat(&self.x2, j0, j0 + epl);
            b.stage_flat(&self.y2, k0, k1);
            for k in k0..k1 {
                b.stage_row(&self.a, k, j0, j0 + epl);
            }
            b.read(self.x2.line(0, j0));
            for k in k0..k1 {
                if k % epl == 0 || k == k0 {
                    b.read(self.y2.line(0, k));
                }
                b.read(self.a.line(k, j0));
                b.alu(2);
            }
            b.write(self.x2.line(0, j0));
            out.push(b.build());
        }
        Ok(out)
    }

    fn verify(&self, t_bytes: usize) -> Result<(), VerifyError> {
        let plan = self.plan(t_bytes)?;
        check_coverage(&self.intervals(t_bytes)?, t_bytes)?;
        let reference = self.compute(&Plan {
            pass1: vec![(0, self.n)],
            pass2: (0..self.n / (LINE_BYTES / ELEM_BYTES))
                .map(|c| {
                    let j0 = c * (LINE_BYTES / ELEM_BYTES);
                    (j0, j0 + LINE_BYTES / ELEM_BYTES, 0, self.n)
                })
                .collect(),
        });
        compare_results(self.name(), &reference, &self.compute(&plan))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prem_memsim::KIB;

    #[test]
    fn tiling_verified() {
        let k = Mvt::new(128);
        for t in [4 * KIB, 16 * KIB, 64 * KIB] {
            k.verify(t).unwrap();
        }
    }

    #[test]
    fn pass2_tiles_cover_all_columns() {
        let k = Mvt::new(128);
        let plan = k.plan(16 * KIB).unwrap();
        let cols: usize = plan
            .pass2
            .iter()
            .filter(|&&(_, _, k0, _)| k0 == 0)
            .map(|&(j0, j1, _, _)| j1 - j0)
            .sum();
        assert_eq!(cols, 128);
    }

    #[test]
    fn small_t_splits_columns_into_row_blocks() {
        let k = Mvt::new(128);
        // At 4 KiB each column block must be split into several row blocks.
        let plan = k.plan(4 * KIB).unwrap();
        let blocks_for_col0 = plan.pass2.iter().filter(|&&(j0, ..)| j0 == 0).count();
        assert!(blocks_for_col0 > 1);
    }
}
