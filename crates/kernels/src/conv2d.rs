//! `convolution-2d` — 3×3 stencil (PolyBench-ACC).
//!
//! The first kernel family whose PREM tiling needs *halos*: a row block
//! `[i0, i1)` of the output needs input rows `[i0-1, i1+1)`, so adjacent
//! intervals overlap by two matrix rows. On the LLC path the halo rows of
//! the next interval usually still sit in the cache — repeated prefetches
//! of them are cheap hits — while the SPM must re-copy them.

use prem_core::IntervalSpec;

use crate::data::{init_buffer, ArrayDesc, Layout, ELEM_BYTES};
use crate::stream::IntervalBuilder;
use crate::{check_coverage, compare_results, Kernel, KernelError, VerifyError, LINE_BYTES};

/// Stencil coefficients (PolyBench's constants).
const C: [[f32; 3]; 3] = [[0.2, -0.3, 0.4], [0.5, 0.6, -0.7], [-0.8, -0.9, 0.10]];

const ALU_PER_CHUNK: u64 = 11; // 9 MACs + addressing per output line

/// The `convolution-2d` kernel model.
#[derive(Clone, Debug)]
pub struct Conv2d {
    n: usize,
    a: ArrayDesc,
    b: ArrayDesc,
}

impl Conv2d {
    /// Creates a 3×3 convolution over an `n × n` image.
    ///
    /// # Panics
    ///
    /// Panics unless `n` is a multiple of 32.
    pub fn new(n: usize) -> Self {
        let mut layout = Layout::new(LINE_BYTES);
        let a = layout.alloc("A", n, n);
        let b = layout.alloc("B", n, n);
        Conv2d { n, a, b }
    }

    /// Output row blocks (interior rows `1..n-1` only).
    fn row_blocks(&self, t_bytes: usize) -> Result<Vec<(usize, usize)>, KernelError> {
        let min = self.min_interval_bytes();
        if t_bytes < min {
            return Err(KernelError::IntervalTooSmall {
                kernel: self.name(),
                t_bytes,
                min_bytes: min,
            });
        }
        // Each output row adds one A row + one B row; the halo adds two A
        // rows per interval.
        let per_row = 2 * self.n * ELEM_BYTES;
        let fixed = 2 * self.n * ELEM_BYTES + 2 * LINE_BYTES;
        let rows = prem_core::rows_per_interval(t_bytes, fixed, per_row).max(1);
        Ok((1..self.n - 1)
            .step_by(rows)
            .map(|i0| (i0, (i0 + rows).min(self.n - 1)))
            .collect())
    }

    fn compute(&self, blocks: &[(usize, usize)]) -> Vec<f32> {
        let a = init_buffer(&self.a, 1);
        let mut b = vec![0.0f32; self.n * self.n];
        for &(i0, i1) in blocks {
            for i in i0..i1 {
                for j in 1..self.n - 1 {
                    let mut acc = 0.0f32;
                    for (di, row) in C.iter().enumerate() {
                        for (dj, &c) in row.iter().enumerate() {
                            acc += c * a[(i + di - 1) * self.n + (j + dj - 1)];
                        }
                    }
                    b[i * self.n + j] = acc;
                }
            }
        }
        b
    }
}

impl Kernel for Conv2d {
    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn dims(&self) -> String {
        format!("{}x{} (3x3)", self.n, self.n)
    }

    fn id_dims(&self) -> Vec<usize> {
        vec![self.n]
    }

    fn dataset_bytes(&self) -> usize {
        self.a.bytes() + self.b.bytes()
    }

    fn min_interval_bytes(&self) -> usize {
        // Three input rows (halo) + one output row + slack.
        4 * self.n * ELEM_BYTES + 4 * LINE_BYTES
    }

    fn intervals(&self, t_bytes: usize) -> Result<Vec<IntervalSpec>, KernelError> {
        let epl = self.a.elems_per_line();
        let chunks = self.n / epl;
        let mut out = Vec::new();
        for (i0, i1) in self.row_blocks(t_bytes)? {
            let mut bld = IntervalBuilder::new();
            // Halo staging: input rows [i0-1, i1+1).
            for i in (i0 - 1)..(i1 + 1) {
                bld.stage_row(&self.a, i, 0, self.n);
            }
            for i in i0..i1 {
                bld.stage_row(&self.b, i, 0, self.n);
            }
            for i in i0..i1 {
                for c in 0..chunks {
                    let c0 = c * epl;
                    bld.read(self.a.line(i - 1, c0));
                    bld.read(self.a.line(i, c0));
                    bld.read(self.a.line(i + 1, c0));
                    bld.write(self.b.line(i, c0));
                    bld.alu(ALU_PER_CHUNK);
                }
            }
            out.push(bld.build());
        }
        Ok(out)
    }

    fn verify(&self, t_bytes: usize) -> Result<(), VerifyError> {
        check_coverage(&self.intervals(t_bytes)?, t_bytes)?;
        let reference = self.compute(&[(1, self.n - 1)]);
        let tiled = self.compute(&self.row_blocks(t_bytes)?);
        compare_results(self.name(), &reference, &tiled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prem_memsim::KIB;

    #[test]
    fn tiling_verified() {
        let k = Conv2d::new(128);
        for t in [8 * KIB, 32 * KIB] {
            k.verify(t).unwrap();
        }
    }

    #[test]
    fn halo_rows_overlap_between_intervals() {
        let k = Conv2d::new(128);
        let ivs = k.intervals(8 * KIB).unwrap();
        assert!(ivs.len() > 1);
        // The last input row of interval 0 reappears in interval 1's
        // footprint (halo).
        let shared: Vec<_> = ivs[0]
            .footprint
            .iter()
            .filter(|l| ivs[1].footprint.contains(l))
            .collect();
        assert!(!shared.is_empty(), "no halo overlap");
    }

    #[test]
    fn boundary_rows_untouched() {
        let k = Conv2d::new(64);
        let out = k.compute(&[(1, 63)]);
        for j in 0..64 {
            assert_eq!(out[j], 0.0); // row 0 never written
            assert_eq!(out[63 * 64 + j], 0.0); // last row never written
        }
    }
}
