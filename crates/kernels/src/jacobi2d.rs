//! `jacobi-2d` — iterative 5-point stencil (PolyBench-ACC).
//!
//! Each sweep reads grid `A` and writes grid `B`, then the roles swap.
//! PREM-tiled like `conv2d` (row blocks with one-row halos), but the
//! iteration dimension multiplies the interval count — a long-running
//! periodic workload, the kind real-time systems actually schedule.

use prem_core::IntervalSpec;

use crate::data::{init_buffer, ArrayDesc, Layout, ELEM_BYTES};
use crate::stream::IntervalBuilder;
use crate::{check_coverage, compare_results, Kernel, KernelError, VerifyError, LINE_BYTES};

const ALU_PER_CHUNK: u64 = 7; // 4 adds + scale + addressing per line

/// The `jacobi-2d` kernel model.
#[derive(Clone, Debug)]
pub struct Jacobi2d {
    n: usize,
    steps: usize,
    a: ArrayDesc,
    b: ArrayDesc,
}

impl Jacobi2d {
    /// Creates a `steps`-sweep Jacobi relaxation on an `n × n` grid.
    ///
    /// # Panics
    ///
    /// Panics unless `n` is a multiple of 32 and `steps ≥ 1`.
    pub fn new(n: usize, steps: usize) -> Self {
        assert!(steps >= 1, "at least one sweep");
        let mut layout = Layout::new(LINE_BYTES);
        let a = layout.alloc("A", n, n);
        let b = layout.alloc("B", n, n);
        Jacobi2d { n, steps, a, b }
    }

    fn row_blocks(&self, t_bytes: usize) -> Result<Vec<(usize, usize)>, KernelError> {
        let min = self.min_interval_bytes();
        if t_bytes < min {
            return Err(KernelError::IntervalTooSmall {
                kernel: self.name(),
                t_bytes,
                min_bytes: min,
            });
        }
        let per_row = 2 * self.n * ELEM_BYTES;
        let fixed = 2 * self.n * ELEM_BYTES + 2 * LINE_BYTES;
        let rows = prem_core::rows_per_interval(t_bytes, fixed, per_row).max(1);
        Ok((1..self.n - 1)
            .step_by(rows)
            .map(|i0| (i0, (i0 + rows).min(self.n - 1)))
            .collect())
    }

    fn compute(&self, blocks: &[(usize, usize)]) -> Vec<f32> {
        let mut src = init_buffer(&self.a, 1);
        let mut dst = init_buffer(&self.b, 2);
        for _ in 0..self.steps {
            for &(i0, i1) in blocks {
                for i in i0..i1 {
                    for j in 1..self.n - 1 {
                        dst[i * self.n + j] = 0.2
                            * (src[i * self.n + j]
                                + src[i * self.n + j - 1]
                                + src[i * self.n + j + 1]
                                + src[(i - 1) * self.n + j]
                                + src[(i + 1) * self.n + j]);
                    }
                }
            }
            std::mem::swap(&mut src, &mut dst);
        }
        src
    }
}

impl Kernel for Jacobi2d {
    fn name(&self) -> &'static str {
        "jacobi2d"
    }

    fn dims(&self) -> String {
        format!("{}x{} x{} sweeps", self.n, self.n, self.steps)
    }

    fn id_dims(&self) -> Vec<usize> {
        vec![self.n, self.steps]
    }

    fn dataset_bytes(&self) -> usize {
        self.a.bytes() + self.b.bytes()
    }

    fn min_interval_bytes(&self) -> usize {
        4 * self.n * ELEM_BYTES + 4 * LINE_BYTES
    }

    fn intervals(&self, t_bytes: usize) -> Result<Vec<IntervalSpec>, KernelError> {
        let epl = self.a.elems_per_line();
        let chunks = self.n / epl;
        let blocks = self.row_blocks(t_bytes)?;
        let mut out = Vec::new();
        for step in 0..self.steps {
            // Grids swap roles every sweep.
            let (src, dst) = if step % 2 == 0 {
                (&self.a, &self.b)
            } else {
                (&self.b, &self.a)
            };
            for &(i0, i1) in &blocks {
                let mut bld = IntervalBuilder::new();
                for i in (i0 - 1)..(i1 + 1) {
                    bld.stage_row(src, i, 0, self.n);
                }
                for i in i0..i1 {
                    bld.stage_row(dst, i, 0, self.n);
                }
                for i in i0..i1 {
                    for c in 0..chunks {
                        let c0 = c * epl;
                        bld.read(src.line(i - 1, c0));
                        bld.read(src.line(i, c0));
                        bld.read(src.line(i + 1, c0));
                        bld.write(dst.line(i, c0));
                        bld.alu(ALU_PER_CHUNK);
                    }
                }
                out.push(bld.build());
            }
        }
        Ok(out)
    }

    fn verify(&self, t_bytes: usize) -> Result<(), VerifyError> {
        check_coverage(&self.intervals(t_bytes)?, t_bytes)?;
        let reference = self.compute(&[(1, self.n - 1)]);
        let tiled = self.compute(&self.row_blocks(t_bytes)?);
        compare_results(self.name(), &reference, &tiled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prem_memsim::KIB;

    #[test]
    fn tiling_verified() {
        let k = Jacobi2d::new(128, 2);
        for t in [8 * KIB, 32 * KIB] {
            k.verify(t).unwrap();
        }
    }

    #[test]
    fn interval_count_scales_with_sweeps() {
        let one = Jacobi2d::new(128, 1).intervals(16 * KIB).unwrap().len();
        let three = Jacobi2d::new(128, 3).intervals(16 * KIB).unwrap().len();
        assert_eq!(three, 3 * one);
    }

    #[test]
    fn sweeps_alternate_grids() {
        let k = Jacobi2d::new(64, 2);
        let ivs = k.intervals(64 * KIB).unwrap();
        assert_eq!(ivs.len(), 2);
        // Sweep 0 writes B; sweep 1 writes A: written lines must differ.
        let w0 = ivs[0].written_lines();
        let w1 = ivs[1].written_lines();
        assert!(w0.iter().all(|l| !w1.contains(l)));
    }

    #[test]
    fn single_sweep_matches_manual_stencil() {
        let k = Jacobi2d::new(64, 1);
        let out = k.compute(&[(1, 63)]);
        let a = init_buffer(&k.a, 1);
        let n = 64;
        let expect =
            0.2 * (a[5 * n + 5] + a[5 * n + 4] + a[5 * n + 6] + a[4 * n + 5] + a[6 * n + 5]);
        assert!((out[5 * n + 5] - expect).abs() < 1e-6);
    }
}
