//! Beyond the paper: the co-runner interference sweep.
//!
//! The paper evaluates two points of the interference space — no CPU
//! traffic, and three saturating membombs. The event-driven co-runner
//! engine opens the space in between and beyond: this artifact sweeps the
//! co-runner **count** (0–6) for each access profile and reports how the
//! PREM schedule and the unprotected baseline degrade, per profile.
//!
//! Expected shape (and what the acceptance tests assert): makespans and
//! baseline times grow monotonically with the co-runner count; the CPMR
//! stays flat for bus-only profiles (membomb, stream, bursty — they
//! cannot touch the LLC) and grows for `cache_thrash`, whose pollution
//! evicts staged lines before the compute phase consumes them.

use std::ops::Add;

use prem_core::{
    profile_phases, run_baseline, run_prem_with_profile, LocalStore, NoiseModel, PrefetchStrategy,
    PremConfig,
};
use prem_gpusim::{CorunnerProfile, PlatformConfig, Scenario};
use prem_kernels::Kernel;

use crate::table::{f3, pct};
use crate::Table;

/// The profiles the sweep fans over, in output order.
pub fn sweep_profiles() -> Vec<CorunnerProfile> {
    vec![
        CorunnerProfile::Membomb,
        CorunnerProfile::Stream,
        CorunnerProfile::CacheThrash,
        CorunnerProfile::Bursty {
            duty: 0.5,
            period_cycles: 80_000.0,
        },
    ]
}

/// One sweep point: `n` co-runners of `profile` against one kernel.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepRow {
    /// Profile name.
    pub profile: &'static str,
    /// Co-runner count.
    pub n: usize,
    /// Aggregate mean demand of the mix (saturating-stream units).
    pub demand: f64,
    /// PREM schedule makespan (µs).
    pub prem_us: f64,
    /// Compute-phase miss ratio of the PREM run.
    pub cpmr: f64,
    /// Static WCET envelope (µs) — scenario-independent by construction.
    pub envelope_us: f64,
    /// Budget violations (µs).
    pub violation_us: f64,
    /// Unprotected baseline time (µs).
    pub baseline_us: f64,
    /// Mean co-runner bus throughput over the C-phase slots (bytes per
    /// GPU cycle).
    pub corunner_bpc: f64,
    /// LLC lines injected by thrashing co-runners during the PREM run.
    pub polluted_lines: u64,
}

/// Runs the sweep: counts `0..=max_corunners` of every
/// [`sweep_profiles`] entry on the TX1 platform.
pub fn interference_sweep(
    kernel: &dyn Kernel,
    t: usize,
    r: u32,
    seed: u64,
    max_corunners: usize,
) -> Vec<SweepRow> {
    let intervals = kernel
        .intervals(t)
        .unwrap_or_else(|e| panic!("{}: {e}", kernel.name()));
    let prem_cfg = PremConfig {
        store: LocalStore::Llc {
            prefetch: PrefetchStrategy::Repeated { r },
        },
        ..PremConfig::llc_tamed()
    }
    .with_seed(seed)
    .with_noise(NoiseModel::tx1());

    // One hoisted profiling pass for the whole sweep: profiling is
    // isolated and therefore independent of the co-runner mix, so every
    // (profile, count) point shares the same (m_wcet, c_wcet) — the sweep
    // used to pay the pass 4 × (max_corunners + 1) times for identical
    // results.
    let profiled = {
        let mut platform = PlatformConfig::tx1().llc_seed(seed).build();
        profile_phases(&mut platform, &intervals, &prem_cfg).expect("LLC PREM cannot fail")
    };

    let mut rows = Vec::new();
    for profile in sweep_profiles() {
        for n in 0..=max_corunners {
            let mix = vec![profile; n];
            // fold, not sum: the empty mix must print 0.000, not -0.000.
            let demand = mix.iter().map(|p| p.mean_demand()).fold(0.0, f64::add);
            let cfg = PlatformConfig::tx1()
                .llc_seed(seed)
                .with_corunners(mix.clone());
            let mut platform = cfg.build();
            let prem = run_prem_with_profile(
                &mut platform,
                &intervals,
                &prem_cfg,
                Scenario::Corunners,
                Some(profiled),
            )
            .expect("LLC PREM cannot fail");
            let mut base_platform = cfg.build();
            let base = run_baseline(
                &mut base_platform,
                &intervals,
                seed,
                Scenario::Corunners,
                NoiseModel::tx1(),
            )
            .expect("baseline cannot fail");
            rows.push(SweepRow {
                profile: profile.name(),
                n,
                demand,
                prem_us: platform.cycles_to_us(prem.makespan_cycles),
                cpmr: prem.cpmr,
                envelope_us: platform.cycles_to_us(prem.budget_envelope_cycles),
                violation_us: platform.cycles_to_us(prem.budget_violation_cycles),
                baseline_us: platform.cycles_to_us(base.cycles),
                corunner_bpc: prem.bus.corunner_bytes_per_cycle(),
                polluted_lines: prem.polluted_lines,
            });
        }
    }
    rows
}

/// Renders sweep rows as the `interference_sweep` table.
pub fn sweep_table(rows: &[SweepRow], kernel_name: &str, t_kib: usize, r: u32) -> Table {
    let mut t = Table::new(
        format!(
            "Interference sweep: {kernel_name}, LLC-PREM (R={r}, T={t_kib}K) \
             vs unprotected baseline, co-runner count 0-6 per profile"
        ),
        &[
            "profile", "n", "demand", "prem-us", "cpmr", "wcet-us", "viol-us", "base-us",
            "co-B/cyc", "pollute",
        ],
    );
    for row in rows {
        t.push_row(vec![
            row.profile.to_string(),
            row.n.to_string(),
            f3(row.demand),
            f3(row.prem_us),
            pct(row.cpmr),
            f3(row.envelope_us),
            f3(row.violation_us),
            f3(row.baseline_us),
            f3(row.corunner_bpc),
            row.polluted_lines.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use prem_kernels::Bicg;
    use prem_memsim::KIB;

    fn rows() -> Vec<SweepRow> {
        interference_sweep(&Bicg::new(128, 128), 32 * KIB, 8, 11, 3)
    }

    #[test]
    fn sweep_covers_profiles_times_counts() {
        let rows = rows();
        assert_eq!(rows.len(), sweep_profiles().len() * 4);
        // Count 0 of every profile is the same isolated measurement.
        let zeros: Vec<&SweepRow> = rows.iter().filter(|r| r.n == 0).collect();
        for z in &zeros {
            assert_eq!(z.demand, 0.0);
            assert_eq!(z.prem_us, zeros[0].prem_us);
            assert_eq!(z.baseline_us, zeros[0].baseline_us);
        }
    }

    #[test]
    fn curves_are_monotone_in_corunner_count() {
        let rows = rows();
        for profile in sweep_profiles() {
            let curve: Vec<&SweepRow> = rows
                .iter()
                .filter(|r| r.profile == profile.name())
                .collect();
            for pair in curve.windows(2) {
                assert!(
                    pair[1].prem_us >= pair[0].prem_us - 1e-9,
                    "{}: prem not monotone at n={}",
                    profile.name(),
                    pair[1].n
                );
                assert!(
                    pair[1].baseline_us >= pair[0].baseline_us - 1e-9,
                    "{}: baseline not monotone at n={}",
                    profile.name(),
                    pair[1].n
                );
                assert!(
                    pair[1].cpmr >= pair[0].cpmr - 1e-9,
                    "{}: cpmr not monotone at n={}",
                    profile.name(),
                    pair[1].n
                );
            }
        }
    }

    #[test]
    fn only_thrashers_pollute() {
        for row in rows() {
            if row.profile == "cache_thrash" && row.n > 0 {
                assert!(row.polluted_lines > 0, "thrashers must pollute");
            } else {
                assert_eq!(row.polluted_lines, 0, "{} must not pollute", row.profile);
            }
        }
    }

    #[test]
    fn table_renders_all_rows() {
        let rows = rows();
        let t = sweep_table(&rows, "bicg", 32, 8);
        assert_eq!(t.len(), rows.len());
        assert!(t.to_csv().starts_with("profile,n,demand"));
    }
}
