//! Validation of the replacement-policy premise: the Mei et al. cache
//! dissection run against the simulated TX1 LLC.

use prem_dissect::{dissect_tx1_llc, DissectReport};

use crate::table::{pct, Table};

/// Runs the dissection and renders it.
pub fn mei(trials: usize, seed: u64) -> (DissectReport, Table) {
    let rep = dissect_tx1_llc(trials, seed);
    let mut t = Table::new(
        "Mei et al. [13] dissection of the simulated TX1 LLC",
        &["property", "value"],
    );
    t.push_row(vec!["line size".into(), format!("{} B", rep.line_bytes)]);
    t.push_row(vec![
        "capacity".into(),
        format!("{} KiB", rep.capacity_bytes / 1024),
    ]);
    t.push_row(vec!["associativity".into(), format!("{}-way", rep.ways)]);
    t.push_row(vec![
        "policy class".into(),
        format!("{:?}", rep.policy_class),
    ]);
    for (w, p) in rep.victim_distribution.iter().enumerate() {
        t.push_row(vec![format!("victim p(way {w})"), pct(*p)]);
    }
    t.push_row(vec!["good ways".into(), format!("{:?}", rep.good_ways)]);
    (rep, t)
}
