//! Figures 3 and 5: execution-time breakdown of the case-study kernel on
//! SPM, LLC and without PREM (baseline), across interval sizes `T`.
//!
//! Fig 3 uses a single prefetch pass (R = 1) and shows the LLC's
//! vulnerability to self-eviction under interference; Fig 5 repeats the
//! experiment with the tamed configuration (R = 8). All values are
//! normalized to the baseline's isolated execution time.

use prem_gpusim::Scenario;
use prem_harness::{Direct, RunRequest, RunSource};
use prem_kernels::Kernel;
use prem_memsim::KIB;

use crate::chart::{stacked_bars, Bar};
use crate::common::{
    base_request, feasible_spm_kib, llc_request, spm_request, t_sweep_llc, t_sweep_spm, Harness,
};
use crate::stats::Stats;
use crate::table::{f3, pct, Table};

/// One configuration's breakdown, normalized to the baseline in isolation.
#[derive(Clone, Debug, PartialEq)]
pub struct BreakdownRow {
    /// Configuration label (`spm-48K`, `llc-160K`, `baseline`).
    pub label: String,
    /// Interval size in KiB (`None` for the baseline).
    pub t_kib: Option<usize>,
    /// M-phase work share.
    pub m_work: f64,
    /// C-phase work share.
    pub c_work: f64,
    /// Idle share (budget padding, Fig 1 (d)).
    pub idle: f64,
    /// Synchronization share (token exchanges).
    pub sync: f64,
    /// Isolated schedule length (work + idle + sync).
    pub total_iso: f64,
    /// Budgeted WCET envelope (the schedulability guarantee).
    pub budget_env: f64,
    /// Measured schedule length under interference.
    pub with_intf: f64,
    /// Compute-phase miss ratio in isolation.
    pub cpmr: f64,
}

/// Breakdown figure (paper Fig 3 for R = 1, Fig 5 for R = 8).
#[derive(Clone, Debug, PartialEq)]
pub struct Fig35 {
    /// Prefetch repetition factor used on the LLC rows.
    pub r: u32,
    /// Kernel name.
    pub kernel: String,
    /// One row per configuration.
    pub rows: Vec<BreakdownRow>,
}

impl Fig35 {
    /// The row for a configuration label, if present.
    pub fn row(&self, label: &str) -> Option<&BreakdownRow> {
        self.rows.iter().find(|r| r.label == label)
    }

    /// Renders the figure as a table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            format!(
                "Fig {}: {} execution breakdown (R={}), relative to baseline in isolation",
                if self.r == 1 { 3 } else { 5 },
                self.kernel,
                self.r
            ),
            &[
                "config",
                "m-work",
                "c-work",
                "idle",
                "sync",
                "total-iso",
                "budget",
                "with-intf",
                "cpmr",
            ],
        );
        for r in &self.rows {
            t.push_row(vec![
                r.label.clone(),
                f3(r.m_work),
                f3(r.c_work),
                f3(r.idle),
                f3(r.sync),
                f3(r.total_iso),
                if r.budget_env.is_nan() {
                    "-".into()
                } else {
                    f3(r.budget_env)
                },
                f3(r.with_intf),
                if r.cpmr.is_nan() {
                    "-".into()
                } else {
                    pct(r.cpmr)
                },
            ]);
        }
        t
    }

    /// Renders the figure as stacked ASCII bars (m/c work = `#`, idle = `.`,
    /// sync = `s`).
    pub fn chart(&self) -> String {
        let bars: Vec<Bar> = self
            .rows
            .iter()
            .map(|r| {
                Bar::new(
                    r.label.clone(),
                    vec![('#', r.m_work + r.c_work), ('.', r.idle), ('s', r.sync)],
                )
            })
            .collect();
        stacked_bars(
            &format!("{} breakdown (R={})", self.kernel, self.r),
            &bars,
            60,
            &[('#', "work"), ('.', "idle"), ('s', "sync")],
        )
    }
}

/// The LLC interval sizes of `t_llc_kib` this kernel can be tiled at.
fn feasible_llc(kernel: &dyn Kernel, t_llc_kib: &[usize]) -> Vec<usize> {
    t_llc_kib
        .iter()
        .copied()
        .filter(|&t| t * KIB >= kernel.min_interval_bytes())
        .collect()
}

/// Produces Fig 3 (naive single prefetch pass).
pub fn fig3(kernel: &dyn Kernel, harness: &Harness) -> Fig35 {
    fig3_with(kernel, harness, &Direct)
}

/// [`fig3`] rendered from `source` (plan builder: [`fig3_requests`]).
pub fn fig3_with(kernel: &dyn Kernel, harness: &Harness, source: &impl RunSource) -> Fig35 {
    fig35_with(kernel, harness, 1, &t_sweep_spm(), &t_sweep_llc(), source)
}

/// The runs [`fig3`] consumes, as a plan.
pub fn fig3_requests<'k>(kernel: &'k dyn Kernel, harness: &Harness) -> Vec<RunRequest<'k>> {
    fig35_requests(kernel, harness, 1, &t_sweep_spm(), &t_sweep_llc())
}

/// Produces Fig 5 (tamed: R = 8).
pub fn fig5(kernel: &dyn Kernel, harness: &Harness) -> Fig35 {
    fig5_with(kernel, harness, &Direct)
}

/// [`fig5`] rendered from `source` (plan builder: [`fig5_requests`]).
pub fn fig5_with(kernel: &dyn Kernel, harness: &Harness, source: &impl RunSource) -> Fig35 {
    fig35_with(kernel, harness, 8, &t_sweep_spm(), &t_sweep_llc(), source)
}

/// The runs [`fig5`] consumes, as a plan.
pub fn fig5_requests<'k>(kernel: &'k dyn Kernel, harness: &Harness) -> Vec<RunRequest<'k>> {
    fig35_requests(kernel, harness, 8, &t_sweep_spm(), &t_sweep_llc())
}

/// The runs of the breakdown figure with explicit sweeps: both baseline
/// scenarios, every feasible SPM interval size and every feasible LLC
/// interval size, each in isolation and under interference, seed-expanded.
pub fn fig35_requests<'k>(
    kernel: &'k dyn Kernel,
    harness: &Harness,
    r: u32,
    t_spm_kib: &[usize],
    t_llc_kib: &[usize],
) -> Vec<RunRequest<'k>> {
    let mut reqs = Vec::new();
    for scen in [Scenario::Isolation, Scenario::Interference] {
        reqs.extend(harness.requests(|s| base_request(kernel, s, scen)));
        for &t in &feasible_spm_kib(kernel, t_spm_kib) {
            reqs.extend(harness.requests(|s| spm_request(kernel, t * KIB, s, scen)));
        }
        for &t in &feasible_llc(kernel, t_llc_kib) {
            reqs.extend(harness.requests(|s| llc_request(kernel, t * KIB, r, s, scen)));
        }
    }
    reqs
}

/// Produces the breakdown figure with explicit sweeps.
pub fn fig35(
    kernel: &dyn Kernel,
    harness: &Harness,
    r: u32,
    t_spm_kib: &[usize],
    t_llc_kib: &[usize],
) -> Fig35 {
    fig35_with(kernel, harness, r, t_spm_kib, t_llc_kib, &Direct)
}

/// [`fig35`] rendered from `source`: consumes exactly the runs
/// [`fig35_requests`] enumerates.
pub fn fig35_with(
    kernel: &dyn Kernel,
    harness: &Harness,
    r: u32,
    t_spm_kib: &[usize],
    t_llc_kib: &[usize],
    source: &impl RunSource,
) -> Fig35 {
    let base_iso = Stats::of(
        &harness
            .seeds
            .iter()
            .map(|&s| {
                source
                    .output(&base_request(kernel, s, Scenario::Isolation))
                    .baseline()
                    .cycles
            })
            .collect::<Vec<_>>(),
    )
    .mean;
    let base_intf = Stats::of(
        &harness
            .seeds
            .iter()
            .map(|&s| {
                source
                    .output(&base_request(kernel, s, Scenario::Interference))
                    .baseline()
                    .cycles
            })
            .collect::<Vec<_>>(),
    )
    .mean;

    let mut rows = Vec::new();
    for t in feasible_spm_kib(kernel, t_spm_kib) {
        let t_bytes = t * KIB;
        let mut row = config_row(
            kernel,
            harness,
            format!("spm-{t}K"),
            Some(t),
            base_iso,
            |k, seed, scen| source.output(&spm_request(k, t_bytes, seed, scen)).prem(),
        );
        // The CPMR is a cache metric; on the SPM path the only LLC traffic
        // is unmanaged noise, so the ratio is not meaningful.
        row.cpmr = f64::NAN;
        rows.push(row);
    }
    for t in feasible_llc(kernel, t_llc_kib) {
        let t_bytes = t * KIB;
        rows.push(config_row(
            kernel,
            harness,
            format!("llc-{t}K"),
            Some(t),
            base_iso,
            |k, seed, scen| {
                source
                    .output(&llc_request(k, t_bytes, r, seed, scen))
                    .prem()
            },
        ));
    }
    rows.push(BreakdownRow {
        label: "baseline".into(),
        t_kib: None,
        m_work: 0.0,
        c_work: 1.0,
        idle: 0.0,
        sync: 0.0,
        total_iso: 1.0,
        budget_env: f64::NAN,
        with_intf: base_intf / base_iso,
        cpmr: f64::NAN,
    });

    Fig35 {
        r,
        kernel: kernel.name().to_string(),
        rows,
    }
}

fn config_row(
    kernel: &dyn Kernel,
    harness: &Harness,
    label: String,
    t_kib: Option<usize>,
    base_iso: f64,
    run: impl Fn(&dyn Kernel, u64, Scenario) -> prem_core::PremRun,
) -> BreakdownRow {
    let mut m_work = Vec::new();
    let mut c_work = Vec::new();
    let mut idle = Vec::new();
    let mut sync = Vec::new();
    let mut total = Vec::new();
    let mut budget = Vec::new();
    let mut cpmr = Vec::new();
    let mut intf = Vec::new();
    for &seed in &harness.seeds {
        let iso = run(kernel, seed, Scenario::Isolation);
        m_work.push(iso.breakdown.m_work);
        c_work.push(iso.breakdown.c_work);
        idle.push(iso.breakdown.idle);
        sync.push(iso.breakdown.sync);
        total.push(iso.makespan_cycles);
        budget.push(iso.budget_envelope_cycles);
        cpmr.push(iso.cpmr);
        intf.push(run(kernel, seed, Scenario::Interference).makespan_cycles);
    }
    BreakdownRow {
        label,
        t_kib,
        m_work: Stats::of(&m_work).mean / base_iso,
        c_work: Stats::of(&c_work).mean / base_iso,
        idle: Stats::of(&idle).mean / base_iso,
        sync: Stats::of(&sync).mean / base_iso,
        total_iso: Stats::of(&total).mean / base_iso,
        budget_env: Stats::of(&budget).mean / base_iso,
        with_intf: Stats::of(&intf).mean / base_iso,
        cpmr: Stats::of(&cpmr).mean,
    }
}
