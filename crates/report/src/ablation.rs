//! Ablation studies beyond the paper's figures.
//!
//! * [`policy_ablation`] — how much of the taming benefit is specific to the
//!   biased-random policy: CPMR and interference sensitivity for LRU, FIFO,
//!   PLRU, uniform-random and biased-random LLCs at the same `T`.
//! * [`msg_ablation`] — how the SPM/LLC gap scales with the minimum
//!   synchronization granularity (the sync fabric's quality).
//! * [`adaptive_ablation`] — fixed `R` repetition versus the adaptive
//!   `UntilResident` strategy.

use prem_core::{run_prem, sensitivity, LocalStore, PrefetchStrategy, PremConfig, SyncConfig};
use prem_gpusim::{PlatformConfig, Scenario};
use prem_kernels::Kernel;
use prem_memsim::Policy;

use crate::common::Harness;
use crate::stats::over_seeds;
use crate::table::{f3, pct, Table};

/// One policy's behaviour under PREM.
#[derive(Clone, Debug, PartialEq)]
pub struct PolicyRow {
    /// Policy name.
    pub policy: String,
    /// Prefetch repetition factor.
    pub r: u32,
    /// Mean CPMR in isolation.
    pub cpmr: f64,
    /// Interference sensitivity of the schedule.
    pub sensitivity: f64,
}

/// Runs the replacement-policy ablation at interval size `t_bytes`.
pub fn policy_ablation(
    kernel: &dyn Kernel,
    harness: &Harness,
    t_bytes: usize,
    rs: &[u32],
) -> Vec<PolicyRow> {
    let policies: Vec<(&str, Policy)> = vec![
        ("biased-random", Policy::nvidia_tegra()),
        ("random", Policy::Random),
        ("lru", Policy::Lru),
        ("fifo", Policy::Fifo),
        ("plru", Policy::PseudoLru),
        ("srrip", Policy::Srrip),
    ];
    let intervals = kernel
        .intervals(t_bytes)
        .unwrap_or_else(|e| panic!("{}: {e}", kernel.name()));
    let mut rows = Vec::new();
    for (name, policy) in policies {
        for &r in rs {
            let cfg = PremConfig {
                store: LocalStore::Llc {
                    prefetch: PrefetchStrategy::Repeated { r },
                },
                ..PremConfig::llc_tamed()
            };
            let cpmr = over_seeds(&harness.seeds, |seed| {
                let mut p = PlatformConfig::tx1()
                    .llc_policy(policy.clone())
                    .llc_seed(seed)
                    .build();
                run_prem(
                    &mut p,
                    &intervals,
                    &cfg.clone().with_seed(seed),
                    Scenario::Isolation,
                )
                .expect("llc prem cannot fail")
                .cpmr
            })
            .mean;
            let sens = over_seeds(&harness.seeds, |seed| {
                let mut p = PlatformConfig::tx1()
                    .llc_policy(policy.clone())
                    .llc_seed(seed)
                    .build();
                let cfg = cfg.clone().with_seed(seed);
                let iso = run_prem(&mut p, &intervals, &cfg, Scenario::Isolation)
                    .expect("llc prem cannot fail")
                    .makespan_cycles;
                let intf = run_prem(&mut p, &intervals, &cfg, Scenario::Interference)
                    .expect("llc prem cannot fail")
                    .makespan_cycles;
                sensitivity(iso, intf)
            })
            .mean;
            rows.push(PolicyRow {
                policy: name.to_string(),
                r,
                cpmr,
                sensitivity: sens,
            });
        }
    }
    rows
}

/// Renders the policy ablation.
pub fn policy_table(rows: &[PolicyRow], t_kib: usize) -> Table {
    let mut t = Table::new(
        format!("Ablation: LLC replacement policy under PREM (T={t_kib}K)"),
        &["policy", "R", "cpmr", "sensitivity"],
    );
    for r in rows {
        t.push_row(vec![
            r.policy.clone(),
            r.r.to_string(),
            pct(r.cpmr),
            pct(r.sensitivity),
        ]);
    }
    t
}

/// One MSG setting's SPM-vs-LLC outcome.
#[derive(Clone, Debug, PartialEq)]
pub struct MsgRow {
    /// Minimum synchronization granularity (µs).
    pub msg_us: f64,
    /// SPM makespan / LLC makespan (isolation).
    pub spm_over_llc: f64,
}

/// Sweeps the MSG: with a fast sync fabric the SPM's small-phase penalty
/// shrinks — quantifying how much of the LLC win is sync-granularity.
pub fn msg_ablation(
    kernel: &dyn Kernel,
    harness: &Harness,
    t_spm: usize,
    t_llc: usize,
    msgs_us: &[f64],
) -> Vec<MsgRow> {
    let spm_ivs = kernel.intervals(t_spm).expect("spm tiling");
    let llc_ivs = kernel.intervals(t_llc).expect("llc tiling");
    msgs_us
        .iter()
        .map(|&msg_us| {
            let sync = SyncConfig {
                msg_us,
                ..SyncConfig::tx1()
            };
            let spm = over_seeds(&harness.seeds, |seed| {
                let mut p = PlatformConfig::tx1().llc_seed(seed).build();
                let cfg = PremConfig {
                    sync,
                    ..PremConfig::spm()
                }
                .with_seed(seed);
                run_prem(&mut p, &spm_ivs, &cfg, Scenario::Isolation)
                    .expect("spm run")
                    .makespan_cycles
            })
            .mean;
            let llc = over_seeds(&harness.seeds, |seed| {
                let mut p = PlatformConfig::tx1().llc_seed(seed).build();
                let cfg = PremConfig {
                    sync,
                    ..PremConfig::llc_tamed()
                }
                .with_seed(seed);
                run_prem(&mut p, &llc_ivs, &cfg, Scenario::Isolation)
                    .expect("llc run")
                    .makespan_cycles
            })
            .mean;
            MsgRow {
                msg_us,
                spm_over_llc: spm / llc,
            }
        })
        .collect()
}

/// Renders the MSG ablation.
pub fn msg_table(rows: &[MsgRow], t_spm_kib: usize, t_llc_kib: usize) -> Table {
    let mut t = Table::new(
        format!("Ablation: sync granularity (SPM T={t_spm_kib}K vs LLC T={t_llc_kib}K)"),
        &["msg-us", "spm/llc"],
    );
    for r in rows {
        t.push_row(vec![format!("{:.0}", r.msg_us), f3(r.spm_over_llc)]);
    }
    t
}

/// One bad-way-weight setting's outcome.
#[derive(Clone, Debug, PartialEq)]
pub struct BiasRow {
    /// Victim weight of the bad way (others weigh 1 each).
    pub bad_weight: u32,
    /// Resulting bad-way victim probability.
    pub bad_probability: f64,
    /// CPMR at R = 1.
    pub cpmr_r1: f64,
    /// CPMR at R = 8.
    pub cpmr_r8: f64,
}

/// Sweeps the bad way's victim weight: from uniform (weight 1 ⇒ p = 1/4) to
/// far worse than the TX1's measured 3 (p = 1/2). Shows that the taming
/// recipe is robust to how biased the policy actually is.
pub fn bias_ablation(
    kernel: &dyn Kernel,
    harness: &Harness,
    t_bytes: usize,
    weights: &[u32],
) -> Vec<BiasRow> {
    let intervals = kernel
        .intervals(t_bytes)
        .unwrap_or_else(|e| panic!("{}: {e}", kernel.name()));
    weights
        .iter()
        .map(|&w| {
            let policy = Policy::BiasedRandom {
                weights: vec![1, 1, w, 1],
            };
            let cpmr_at = |r: u32| {
                over_seeds(&harness.seeds, |seed| {
                    let mut p = PlatformConfig::tx1()
                        .llc_policy(policy.clone())
                        .llc_seed(seed)
                        .build();
                    let cfg = PremConfig {
                        store: LocalStore::Llc {
                            prefetch: PrefetchStrategy::Repeated { r },
                        },
                        ..PremConfig::llc_tamed()
                    }
                    .with_seed(seed);
                    run_prem(&mut p, &intervals, &cfg, Scenario::Isolation)
                        .expect("llc prem cannot fail")
                        .cpmr
                })
                .mean
            };
            BiasRow {
                bad_weight: w,
                bad_probability: w as f64 / (w as f64 + 3.0),
                cpmr_r1: cpmr_at(1),
                cpmr_r8: cpmr_at(8),
            }
        })
        .collect()
}

/// Renders the bias ablation.
pub fn bias_table(rows: &[BiasRow], t_kib: usize) -> Table {
    let mut t = Table::new(
        format!("Ablation: bad-way victim weight (T={t_kib}K)"),
        &["bad-weight", "p(bad)", "cpmr R=1", "cpmr R=8"],
    );
    for r in rows {
        t.push_row(vec![
            r.bad_weight.to_string(),
            pct(r.bad_probability),
            pct(r.cpmr_r1),
            pct(r.cpmr_r8),
        ]);
    }
    t
}

/// Fixed-R versus adaptive prefetching at one interval size.
#[derive(Clone, Debug, PartialEq)]
pub struct AdaptiveRow {
    /// Strategy label.
    pub strategy: String,
    /// Mean CPMR.
    pub cpmr: f64,
    /// Mean M-phase prefetch rounds actually used.
    pub rounds: f64,
    /// Isolated makespan relative to the fixed R=8 configuration.
    pub makespan_rel_r8: f64,
}

/// Compares `Repeated{r}` against `UntilResident`.
pub fn adaptive_ablation(
    kernel: &dyn Kernel,
    harness: &Harness,
    t_bytes: usize,
) -> Vec<AdaptiveRow> {
    let intervals = kernel.intervals(t_bytes).expect("tiling");
    let strategies = vec![
        ("fixed R=1".to_string(), PrefetchStrategy::Repeated { r: 1 }),
        ("fixed R=4".to_string(), PrefetchStrategy::Repeated { r: 4 }),
        ("fixed R=8".to_string(), PrefetchStrategy::Repeated { r: 8 }),
        (
            "until-resident (max 16)".to_string(),
            PrefetchStrategy::UntilResident { max_rounds: 16 },
        ),
    ];
    let run = |strategy: PrefetchStrategy, seed: u64| {
        let mut p = PlatformConfig::tx1().llc_seed(seed).build();
        let cfg = PremConfig {
            store: LocalStore::Llc { prefetch: strategy },
            ..PremConfig::llc_tamed()
        }
        .with_seed(seed);
        run_prem(&mut p, &intervals, &cfg, Scenario::Isolation).expect("llc run")
    };
    let r8 = over_seeds(&harness.seeds, |s| {
        run(PrefetchStrategy::Repeated { r: 8 }, s).makespan_cycles
    })
    .mean;
    strategies
        .into_iter()
        .map(|(label, strategy)| {
            let cpmr = over_seeds(&harness.seeds, |s| run(strategy, s).cpmr).mean;
            let rounds =
                over_seeds(&harness.seeds, |s| run(strategy, s).max_rounds_used as f64).mean;
            let mk = over_seeds(&harness.seeds, |s| run(strategy, s).makespan_cycles).mean;
            AdaptiveRow {
                strategy: label,
                cpmr,
                rounds,
                makespan_rel_r8: mk / r8,
            }
        })
        .collect()
}

/// Renders the adaptive-prefetch ablation.
pub fn adaptive_table(rows: &[AdaptiveRow], t_kib: usize) -> Table {
    let mut t = Table::new(
        format!("Ablation: prefetch strategies (T={t_kib}K)"),
        &["strategy", "cpmr", "max-rounds", "makespan/R8"],
    );
    for r in rows {
        t.push_row(vec![
            r.strategy.clone(),
            pct(r.cpmr),
            format!("{:.1}", r.rounds),
            f3(r.makespan_rel_r8),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use prem_kernels::Bicg;
    use prem_memsim::KIB;

    #[test]
    fn lru_has_zero_cpmr() {
        let k = Bicg::new(128, 128);
        let rows = policy_ablation(&k, &Harness::quick(), 24 * KIB, &[1]);
        let lru = rows.iter().find(|r| r.policy == "lru").unwrap();
        assert_eq!(lru.cpmr, 0.0);
    }

    #[test]
    fn biased_random_improves_with_r() {
        let k = Bicg::new(128, 128);
        let rows = policy_ablation(&k, &Harness::quick(), 24 * KIB, &[1, 8]);
        let r1 = rows
            .iter()
            .find(|r| r.policy == "biased-random" && r.r == 1)
            .unwrap();
        let r8 = rows
            .iter()
            .find(|r| r.policy == "biased-random" && r.r == 8)
            .unwrap();
        assert!(r8.cpmr <= r1.cpmr);
    }
}
