//! Figure 2: data-movement code complexity — instruction counts of one
//! representative interval under the SPM and cache strategies.
//!
//! The paper's qualitative claim: SPM management needs explicit copy loops
//! plus `transl_addr` arithmetic on every access, while the cache needs only
//! a prefetch per line in the M-phase and *zero* added instructions in the
//! C-phase.

use prem_core::LocalStore;
use prem_gpusim::OpCounts;
use prem_kernels::Kernel;

use crate::table::Table;

/// Instruction counts of one interval under one strategy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fig2Row {
    /// Strategy label.
    pub store: String,
    /// M-phase instructions (one staging pass × repetitions).
    pub m_instructions: u64,
    /// C-phase instructions.
    pub c_instructions: u64,
    /// Data-movement *management* instructions across both phases.
    pub management: u64,
}

/// The code-complexity comparison.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fig2 {
    /// Kernel name.
    pub kernel: String,
    /// Interval index examined (always 0) footprint, in lines.
    pub footprint_lines: usize,
    /// One row per strategy.
    pub rows: Vec<Fig2Row>,
}

impl Fig2 {
    /// The row for a strategy label.
    pub fn row(&self, store: &str) -> Option<&Fig2Row> {
        self.rows.iter().find(|r| r.store == store)
    }

    /// Renders as a table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            format!(
                "Fig 2: data-movement code, one {} interval ({} lines staged)",
                self.kernel, self.footprint_lines
            ),
            &["store", "m-instr", "c-instr", "management-instr"],
        );
        for r in &self.rows {
            t.push_row(vec![
                r.store.clone(),
                r.m_instructions.to_string(),
                r.c_instructions.to_string(),
                r.management.to_string(),
            ]);
        }
        t
    }
}

/// Compares strategies on the first interval of `kernel` at size `t_bytes`.
///
/// # Panics
///
/// Panics if the kernel cannot be tiled at `t_bytes`.
pub fn fig2(kernel: &dyn Kernel, t_bytes: usize) -> Fig2 {
    let intervals = kernel
        .intervals(t_bytes)
        .unwrap_or_else(|e| panic!("{}: {e}", kernel.name()));
    let iv = &intervals[0];
    let strategies: Vec<(&str, LocalStore, u64)> = vec![
        ("spm", LocalStore::spm_default(), 1),
        ("llc (R=1)", LocalStore::llc_naive(), 1),
        ("llc (R=8)", LocalStore::llc_tamed(), 8),
    ];
    let rows = strategies
        .into_iter()
        .map(|(name, store, passes)| {
            let m: OpCounts = store.m_phase_pass(iv).counts();
            let c: OpCounts = store.c_phase(iv).counts();
            Fig2Row {
                store: name.to_string(),
                m_instructions: m.total_instructions() * passes,
                c_instructions: c.total_instructions(),
                management: m.management_instructions() * passes + c.transl,
            }
        })
        .collect();
    Fig2 {
        kernel: kernel.name().to_string(),
        footprint_lines: iv.footprint.len(),
        rows,
    }
}
