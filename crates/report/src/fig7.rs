//! Figure 7: average sensitivity to memory interference as a function of
//! the interval size `T`, against the unprotected baseline.
//!
//! Expected shape (paper §V-B): ~3 % for T ≤ 128 KiB, ~5 % at 160 KiB,
//! ~15 % at 192 KiB (the good-way capacity edge) — versus ~245 % for the
//! baseline.

use prem_core::sensitivity;
use prem_gpusim::Scenario;
use prem_harness::{Direct, RunRequest, RunSource};
use prem_kernels::Kernel;
use prem_memsim::KIB;

use crate::common::{base_request, llc_request, Harness};
use crate::stats::over_seeds;
use crate::table::{pct, Table};

/// Average interference sensitivity per interval size.
#[derive(Clone, Debug, PartialEq)]
pub struct Fig7 {
    /// Prefetch repetition factor used.
    pub r: u32,
    /// Interval sizes (KiB).
    pub t_kib: Vec<usize>,
    /// Mean PREM-LLC sensitivity per interval size.
    pub prem_sensitivity: Vec<f64>,
    /// Mean baseline sensitivity.
    pub baseline_sensitivity: f64,
}

impl Fig7 {
    /// The sensitivity at a given interval size.
    pub fn at(&self, t_kib: usize) -> Option<f64> {
        let i = self.t_kib.iter().position(|&t| t == t_kib)?;
        Some(self.prem_sensitivity[i])
    }

    /// Renders as a table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            format!(
                "Fig 7: average sensitivity to interference (LLC R={})",
                self.r
            ),
            &["config", "sensitivity"],
        );
        for (i, &tk) in self.t_kib.iter().enumerate() {
            t.push_row(vec![format!("llc-{tk}K"), pct(self.prem_sensitivity[i])]);
        }
        t.push_row(vec!["baseline".into(), pct(self.baseline_sensitivity)]);
        t
    }
}

/// The interval sizes of Fig 7.
pub fn fig7_t_sweep() -> Vec<usize> {
    vec![64, 96, 128, 160, 192]
}

/// Measures Fig 7 over a kernel suite.
pub fn fig7(suite: &[Box<dyn Kernel>], harness: &Harness, r: u32) -> Fig7 {
    fig7_with(suite, harness, r, &Direct)
}

/// [`fig7`] rendered from `source` (plan builder: [`fig7_requests`]).
pub fn fig7_with(
    suite: &[Box<dyn Kernel>],
    harness: &Harness,
    r: u32,
    source: &impl RunSource,
) -> Fig7 {
    fig7_with_sweep_from(suite, harness, r, &fig7_t_sweep(), source)
}

/// The runs [`fig7`] consumes, as a plan.
pub fn fig7_requests<'k>(
    suite: &'k [Box<dyn Kernel>],
    harness: &Harness,
    r: u32,
) -> Vec<RunRequest<'k>> {
    fig7_sweep_requests(suite, harness, r, &fig7_t_sweep())
}

/// The runs of the explicit-sweep sensitivity figure, as a plan: every
/// (kernel, interval size) LLC point and every kernel's baseline, each in
/// both scenarios, seed-expanded.
pub fn fig7_sweep_requests<'k>(
    suite: &'k [Box<dyn Kernel>],
    harness: &Harness,
    r: u32,
    t_kib: &[usize],
) -> Vec<RunRequest<'k>> {
    let mut reqs = Vec::new();
    for scen in [Scenario::Isolation, Scenario::Interference] {
        for &tk in t_kib {
            for k in suite {
                let t = (tk * KIB).max(k.min_interval_bytes());
                reqs.extend(harness.requests(|s| llc_request(k.as_ref(), t, r, s, scen)));
            }
        }
        for k in suite {
            reqs.extend(harness.requests(|s| base_request(k.as_ref(), s, scen)));
        }
    }
    reqs
}

/// Measures Fig 7 with an explicit interval-size sweep.
pub fn fig7_with_sweep(
    suite: &[Box<dyn Kernel>],
    harness: &Harness,
    r: u32,
    t_kib: &[usize],
) -> Fig7 {
    fig7_with_sweep_from(suite, harness, r, t_kib, &Direct)
}

/// [`fig7_with_sweep`] rendered from `source`: consumes exactly the runs
/// [`fig7_sweep_requests`] enumerates.
pub fn fig7_with_sweep_from(
    suite: &[Box<dyn Kernel>],
    harness: &Harness,
    r: u32,
    t_kib: &[usize],
    source: &impl RunSource,
) -> Fig7 {
    let mut prem_sensitivity = Vec::new();
    for &tk in t_kib {
        let mut sens = Vec::new();
        for k in suite {
            let t = (tk * KIB).max(k.min_interval_bytes());
            let iso = over_seeds(&harness.seeds, |s| {
                source
                    .output(&llc_request(k.as_ref(), t, r, s, Scenario::Isolation))
                    .prem()
                    .makespan_cycles
            })
            .mean;
            let intf = over_seeds(&harness.seeds, |s| {
                source
                    .output(&llc_request(k.as_ref(), t, r, s, Scenario::Interference))
                    .prem()
                    .makespan_cycles
            })
            .mean;
            sens.push(sensitivity(iso, intf));
        }
        prem_sensitivity.push(sens.iter().sum::<f64>() / sens.len() as f64);
    }

    let mut base_sens = Vec::new();
    for k in suite {
        let iso = over_seeds(&harness.seeds, |s| {
            source
                .output(&base_request(k.as_ref(), s, Scenario::Isolation))
                .baseline()
                .cycles
        })
        .mean;
        let intf = over_seeds(&harness.seeds, |s| {
            source
                .output(&base_request(k.as_ref(), s, Scenario::Interference))
                .baseline()
                .cycles
        })
        .mean;
        base_sens.push(sensitivity(iso, intf));
    }

    Fig7 {
        r,
        t_kib: t_kib.to_vec(),
        prem_sensitivity,
        baseline_sensitivity: base_sens.iter().sum::<f64>() / base_sens.len().max(1) as f64,
    }
}
