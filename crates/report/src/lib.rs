//! # prem-report — experiment harness regenerating the paper's artifacts
//!
//! One module per figure of the paper, each producing structured results
//! (for assertions) plus [`Table`]/chart renderings (for humans):
//!
//! * [`fig2`] — SPM vs cache data-movement instruction counts (paper Fig 2)
//! * [`fig3`] / [`fig5`] — bicg execution-time breakdown, naive (R=1) and
//!   tamed (R=8) prefetching (paper Figs 3 and 5)
//! * [`fig4`] — CPMR over the (R, T) grid (paper Fig 4)
//! * [`fig6`] — per-kernel fair co-scheduling results (paper Fig 6)
//! * [`fig7`] — average interference sensitivity vs T (paper Fig 7)
//! * [`mei`] — cache-dissection validation of the replacement-policy
//!   premise (Mei et al., the paper's ref. \[13\])
//! * [`ablation`] — replacement-policy and MSG ablations (beyond the paper)
//! * [`interference`] — co-runner count/profile sweep on the event-driven
//!   interference engine (beyond the paper)
//! * [`whatif`] — LLC replacement-policy what-if sweep rendered through
//!   the plan layer's replay-backed derivation families (beyond the paper)
//! * [`obs`] — phase-timing breakdown of one invocation, rendered from a
//!   `prem-obs` metrics snapshot (beyond the paper)
//!
//! Since the run-plan refactor the simulator-heavy figures (3/4/5/6/7) are
//! **plan builders + renderers**: a `*_requests` function enumerates the
//! figure's canonical [`RunRequest`](prem_harness::RunRequest)s and a
//! `*_with` twin renders the figure from any
//! [`RunSource`](prem_harness::RunSource). The classic entry points
//! (`fig3(kernel, harness)`, …) execute through the direct source and stay
//! byte-identical; the `figures` binary merges all requested figures into
//! one deduplicated plan on a
//! [`PlanExecutor`](prem_harness::PlanExecutor), so cross-figure
//! duplicates execute once.

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ablation;
pub mod chart;
pub mod common;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig6;
pub mod fig7;
pub mod interference;
pub mod mei;
pub mod obs;
pub mod whatif;
// Tables and seed statistics moved down into `prem-table` (the run-plan
// layer renders matrix artifacts with them too); re-exported here so every
// pre-refactor `prem_report::table::…` / `prem_report::stats::…` path
// keeps resolving.
pub use prem_table::{stats, table};

pub use chart::{stacked_bars, Bar};
pub use common::{
    base_request, llc_platform_config, llc_prem_config, llc_request, run_base, run_llc, run_spm,
    spm_request, Harness, DEFAULT_SEEDS, T_BASE,
};
pub use stats::{geomean, over_seeds, Stats};
pub use table::Table;

/// Re-export: Fig 5 is Fig 3 with the tamed prefetch (R = 8).
pub use fig3::{fig5, Fig35};
