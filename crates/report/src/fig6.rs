//! Figure 6: per-kernel results under fair co-scheduling — the SPM state of
//! the art (at its best feasible T), the tamed LLC (T = 160 KiB, R = 8) and
//! the unprotected baseline, in isolation and under interference.
//!
//! Headline aggregates reproduced from paper §V-A: the LLC outperforms the
//! SPM by ~2× on average; under interference the LLC beats the baseline by
//! ~10 % on average and by >200 % in the best case.

use prem_gpusim::Scenario;
use prem_kernels::Kernel;
use prem_memsim::KIB;

use crate::common::{run_base, run_llc, run_spm, t_sweep_spm, Harness};
use crate::stats::{geomean, over_seeds};
use crate::table::{f3, Table};

/// One kernel's normalized results (all relative to its baseline in
/// isolation).
#[derive(Clone, Debug, PartialEq)]
pub struct Fig6Row {
    /// Kernel name.
    pub kernel: String,
    /// Best feasible SPM interval size (KiB).
    pub spm_t_kib: usize,
    /// SPM-PREM in isolation.
    pub spm_iso: f64,
    /// SPM-PREM under interference.
    pub spm_intf: f64,
    /// LLC-PREM in isolation.
    pub llc_iso: f64,
    /// LLC-PREM under interference.
    pub llc_intf: f64,
    /// Baseline under interference.
    pub base_intf: f64,
}

/// The per-kernel evaluation figure.
#[derive(Clone, Debug, PartialEq)]
pub struct Fig6 {
    /// LLC interval size used (KiB).
    pub t_llc_kib: usize,
    /// Prefetch repetition factor used.
    pub r: u32,
    /// One row per kernel.
    pub rows: Vec<Fig6Row>,
}

impl Fig6 {
    /// Geometric-mean ratio SPM / LLC under interference (paper: ≈ 2).
    pub fn avg_spm_over_llc(&self) -> f64 {
        geomean(self.rows.iter().map(|r| r.spm_intf / r.llc_intf))
    }

    /// Geometric-mean ratio baseline / LLC under interference (paper:
    /// ≈ 1.1).
    pub fn avg_base_over_llc_intf(&self) -> f64 {
        geomean(self.rows.iter().map(|r| r.base_intf / r.llc_intf))
    }

    /// Best-case ratio baseline / LLC under interference (paper: ≈ 3.15,
    /// i.e. a 215 % WCET improvement).
    pub fn best_base_over_llc_intf(&self) -> f64 {
        self.rows
            .iter()
            .map(|r| r.base_intf / r.llc_intf)
            .fold(0.0, f64::max)
    }

    /// Renders as a table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            format!(
                "Fig 6: per-kernel results, fair co-scheduling (LLC T={}K R={}), relative to baseline-isolation",
                self.t_llc_kib, self.r
            ),
            &[
                "kernel", "spm-T", "spm-iso", "spm-intf", "llc-iso", "llc-intf", "base-intf",
            ],
        );
        for r in &self.rows {
            t.push_row(vec![
                r.kernel.clone(),
                format!("{}K", r.spm_t_kib),
                f3(r.spm_iso),
                f3(r.spm_intf),
                f3(r.llc_iso),
                f3(r.llc_intf),
                f3(r.base_intf),
            ]);
        }
        t.push_row(vec![
            "geomean".into(),
            String::new(),
            String::new(),
            f3(self.avg_spm_over_llc()),
            String::new(),
            f3(self.avg_base_over_llc_intf()),
            f3(self.best_base_over_llc_intf()),
        ]);
        t
    }
}

/// Runs the per-kernel evaluation.
pub fn fig6(suite: &[Box<dyn Kernel>], harness: &Harness, t_llc_kib: usize, r: u32) -> Fig6 {
    let rows = suite
        .iter()
        .map(|k| fig6_row(k.as_ref(), harness, t_llc_kib, r))
        .collect();
    Fig6 { t_llc_kib, r, rows }
}

fn fig6_row(kernel: &dyn Kernel, harness: &Harness, t_llc_kib: usize, r: u32) -> Fig6Row {
    let base_iso = over_seeds(&harness.seeds, |s| {
        run_base(kernel, s, Scenario::Isolation).cycles
    })
    .mean;
    let base_intf = over_seeds(&harness.seeds, |s| {
        run_base(kernel, s, Scenario::Interference).cycles
    })
    .mean;

    // Best feasible SPM interval size by isolated makespan.
    let spm_capacity = 96 * KIB;
    let candidates: Vec<usize> = t_sweep_spm()
        .into_iter()
        .filter(|t| {
            let b = t * KIB;
            b >= kernel.min_interval_bytes() && b <= spm_capacity
        })
        .collect();
    assert!(
        !candidates.is_empty(),
        "{}: no feasible SPM interval size",
        kernel.name()
    );
    let (spm_t, spm_iso) = candidates
        .iter()
        .map(|&t| {
            let iso = over_seeds(&harness.seeds, |s| {
                run_spm(kernel, t * KIB, s, Scenario::Isolation).makespan_cycles
            })
            .mean;
            (t, iso)
        })
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("candidates nonempty");
    let spm_intf = over_seeds(&harness.seeds, |s| {
        run_spm(kernel, spm_t * KIB, s, Scenario::Interference).makespan_cycles
    })
    .mean;

    let t_llc = (t_llc_kib * KIB).max(kernel.min_interval_bytes());
    let llc_iso = over_seeds(&harness.seeds, |s| {
        run_llc(kernel, t_llc, r, s, Scenario::Isolation).makespan_cycles
    })
    .mean;
    let llc_intf = over_seeds(&harness.seeds, |s| {
        run_llc(kernel, t_llc, r, s, Scenario::Interference).makespan_cycles
    })
    .mean;

    Fig6Row {
        kernel: kernel.name().to_string(),
        spm_t_kib: spm_t,
        spm_iso: spm_iso / base_iso,
        spm_intf: spm_intf / base_iso,
        llc_iso: llc_iso / base_iso,
        llc_intf: llc_intf / base_iso,
        base_intf: base_intf / base_iso,
    }
}
