//! Figure 6: per-kernel results under fair co-scheduling — the SPM state of
//! the art (at its best feasible T), the tamed LLC (T = 160 KiB, R = 8) and
//! the unprotected baseline, in isolation and under interference.
//!
//! Headline aggregates reproduced from paper §V-A: the LLC outperforms the
//! SPM by ~2× on average; under interference the LLC beats the baseline by
//! ~10 % on average and by >200 % in the best case.

use prem_gpusim::Scenario;
use prem_harness::{Direct, RunRequest, RunSource};
use prem_kernels::Kernel;
use prem_memsim::KIB;

use crate::common::{
    base_request, feasible_spm_kib, llc_request, spm_request, t_sweep_spm, Harness,
};
use crate::stats::{geomean, over_seeds};
use crate::table::{f3, Table};

/// One kernel's normalized results (all relative to its baseline in
/// isolation).
#[derive(Clone, Debug, PartialEq)]
pub struct Fig6Row {
    /// Kernel name.
    pub kernel: String,
    /// Best feasible SPM interval size (KiB).
    pub spm_t_kib: usize,
    /// SPM-PREM in isolation.
    pub spm_iso: f64,
    /// SPM-PREM under interference.
    pub spm_intf: f64,
    /// LLC-PREM in isolation.
    pub llc_iso: f64,
    /// LLC-PREM under interference.
    pub llc_intf: f64,
    /// Baseline under interference.
    pub base_intf: f64,
}

/// The per-kernel evaluation figure.
#[derive(Clone, Debug, PartialEq)]
pub struct Fig6 {
    /// LLC interval size used (KiB).
    pub t_llc_kib: usize,
    /// Prefetch repetition factor used.
    pub r: u32,
    /// One row per kernel.
    pub rows: Vec<Fig6Row>,
}

impl Fig6 {
    /// Geometric-mean ratio SPM / LLC under interference (paper: ≈ 2).
    pub fn avg_spm_over_llc(&self) -> f64 {
        geomean(self.rows.iter().map(|r| r.spm_intf / r.llc_intf))
    }

    /// Geometric-mean ratio baseline / LLC under interference (paper:
    /// ≈ 1.1).
    pub fn avg_base_over_llc_intf(&self) -> f64 {
        geomean(self.rows.iter().map(|r| r.base_intf / r.llc_intf))
    }

    /// Best-case ratio baseline / LLC under interference (paper: ≈ 3.15,
    /// i.e. a 215 % WCET improvement).
    pub fn best_base_over_llc_intf(&self) -> f64 {
        self.rows
            .iter()
            .map(|r| r.base_intf / r.llc_intf)
            .fold(0.0, f64::max)
    }

    /// Renders as a table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            format!(
                "Fig 6: per-kernel results, fair co-scheduling (LLC T={}K R={}), relative to baseline-isolation",
                self.t_llc_kib, self.r
            ),
            &[
                "kernel", "spm-T", "spm-iso", "spm-intf", "llc-iso", "llc-intf", "base-intf",
            ],
        );
        for r in &self.rows {
            t.push_row(vec![
                r.kernel.clone(),
                format!("{}K", r.spm_t_kib),
                f3(r.spm_iso),
                f3(r.spm_intf),
                f3(r.llc_iso),
                f3(r.llc_intf),
                f3(r.base_intf),
            ]);
        }
        t.push_row(vec![
            "geomean".into(),
            String::new(),
            String::new(),
            f3(self.avg_spm_over_llc()),
            String::new(),
            f3(self.avg_base_over_llc_intf()),
            f3(self.best_base_over_llc_intf()),
        ]);
        t
    }
}

/// Runs the per-kernel evaluation.
pub fn fig6(suite: &[Box<dyn Kernel>], harness: &Harness, t_llc_kib: usize, r: u32) -> Fig6 {
    fig6_with(suite, harness, t_llc_kib, r, &Direct)
}

/// [`fig6`] rendered from `source`.
///
/// The figure's plan has a data-dependent tail: the SPM row runs under
/// interference only at the kernel's *best* isolated interval size, which
/// is known only after the isolated SPM candidates have executed. Submit
/// [`fig6_requests`] first, then [`fig6_followup_requests`] (computable
/// once the first wave is cached), then render.
pub fn fig6_with(
    suite: &[Box<dyn Kernel>],
    harness: &Harness,
    t_llc_kib: usize,
    r: u32,
    source: &impl RunSource,
) -> Fig6 {
    let rows = suite
        .iter()
        .map(|k| fig6_row(k.as_ref(), harness, t_llc_kib, r, source))
        .collect();
    Fig6 { t_llc_kib, r, rows }
}

/// The unconditional runs of [`fig6`], as a plan: both baseline scenarios,
/// every feasible isolated SPM candidate, and the LLC configuration in
/// both scenarios, per kernel and seed.
pub fn fig6_requests<'k>(
    suite: &'k [Box<dyn Kernel>],
    harness: &Harness,
    t_llc_kib: usize,
    r: u32,
) -> Vec<RunRequest<'k>> {
    let mut reqs = Vec::new();
    for kernel in suite {
        let kernel = kernel.as_ref();
        for scen in [Scenario::Isolation, Scenario::Interference] {
            reqs.extend(harness.requests(|s| base_request(kernel, s, scen)));
        }
        for t in spm_candidates(kernel) {
            reqs.extend(harness.requests(|s| spm_request(kernel, t * KIB, s, Scenario::Isolation)));
        }
        let t_llc = (t_llc_kib * KIB).max(kernel.min_interval_bytes());
        for scen in [Scenario::Isolation, Scenario::Interference] {
            reqs.extend(harness.requests(|s| llc_request(kernel, t_llc, r, s, scen)));
        }
    }
    reqs
}

/// The data-dependent tail of [`fig6`]'s plan: one interference SPM run
/// per kernel at its best isolated interval size. Needs the
/// [`fig6_requests`] wave in `source` (serves it from cache; with a cold
/// source it executes the isolated candidates on the calling thread).
pub fn fig6_followup_requests<'k>(
    suite: &'k [Box<dyn Kernel>],
    harness: &Harness,
    source: &impl RunSource,
) -> Vec<RunRequest<'k>> {
    let mut reqs = Vec::new();
    for kernel in suite {
        let kernel = kernel.as_ref();
        let (spm_t, _) = best_spm_t(kernel, harness, source);
        reqs.extend(
            harness.requests(|s| spm_request(kernel, spm_t * KIB, s, Scenario::Interference)),
        );
    }
    reqs
}

/// The feasible SPM interval-size candidates (KiB) of one kernel — the
/// same predicate fig3/fig5 filter their SPM rows with
/// ([`feasible_spm_kib`]).
///
/// # Panics
///
/// Panics when no sweep entry fits between the kernel's minimum interval
/// and the scratchpad capacity — such a kernel cannot appear in Fig 6.
fn spm_candidates(kernel: &dyn Kernel) -> Vec<usize> {
    let candidates = feasible_spm_kib(kernel, &t_sweep_spm());
    assert!(
        !candidates.is_empty(),
        "{}: no feasible SPM interval size",
        kernel.name()
    );
    candidates
}

/// Best feasible SPM interval size by isolated makespan, and that
/// makespan's seed mean — shared by the follow-up plan builder and the
/// renderer so the two can never pick different tile sizes.
fn best_spm_t(kernel: &dyn Kernel, harness: &Harness, source: &impl RunSource) -> (usize, f64) {
    spm_candidates(kernel)
        .iter()
        .map(|&t| {
            let iso = over_seeds(&harness.seeds, |s| {
                source
                    .output(&spm_request(kernel, t * KIB, s, Scenario::Isolation))
                    .prem()
                    .makespan_cycles
            })
            .mean;
            (t, iso)
        })
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("candidates nonempty")
}

fn fig6_row(
    kernel: &dyn Kernel,
    harness: &Harness,
    t_llc_kib: usize,
    r: u32,
    source: &impl RunSource,
) -> Fig6Row {
    let base_iso = over_seeds(&harness.seeds, |s| {
        source
            .output(&base_request(kernel, s, Scenario::Isolation))
            .baseline()
            .cycles
    })
    .mean;
    let base_intf = over_seeds(&harness.seeds, |s| {
        source
            .output(&base_request(kernel, s, Scenario::Interference))
            .baseline()
            .cycles
    })
    .mean;

    let (spm_t, spm_iso) = best_spm_t(kernel, harness, source);
    let spm_intf = over_seeds(&harness.seeds, |s| {
        source
            .output(&spm_request(kernel, spm_t * KIB, s, Scenario::Interference))
            .prem()
            .makespan_cycles
    })
    .mean;

    let t_llc = (t_llc_kib * KIB).max(kernel.min_interval_bytes());
    let llc_iso = over_seeds(&harness.seeds, |s| {
        source
            .output(&llc_request(kernel, t_llc, r, s, Scenario::Isolation))
            .prem()
            .makespan_cycles
    })
    .mean;
    let llc_intf = over_seeds(&harness.seeds, |s| {
        source
            .output(&llc_request(kernel, t_llc, r, s, Scenario::Interference))
            .prem()
            .makespan_cycles
    })
    .mean;

    Fig6Row {
        kernel: kernel.name().to_string(),
        spm_t_kib: spm_t,
        spm_iso: spm_iso / base_iso,
        spm_intf: spm_intf / base_iso,
        llc_iso: llc_iso / base_iso,
        llc_intf: llc_intf / base_iso,
        base_intf: base_intf / base_iso,
    }
}
