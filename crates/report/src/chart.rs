//! ASCII stacked-bar charts, for paper-figure-like output in the terminal.

/// One bar: a label and its stacked segments `(glyph, value)`.
#[derive(Clone, Debug, PartialEq)]
pub struct Bar {
    /// Row label.
    pub label: String,
    /// Stacked segments in draw order.
    pub segments: Vec<(char, f64)>,
}

impl Bar {
    /// Creates a bar.
    pub fn new(label: impl Into<String>, segments: Vec<(char, f64)>) -> Self {
        Bar {
            label: label.into(),
            segments,
        }
    }

    /// Total bar length in data units.
    pub fn total(&self) -> f64 {
        self.segments.iter().map(|(_, v)| v).sum()
    }
}

/// Renders bars scaled so the longest bar occupies `width` characters.
/// A legend mapping glyphs to `legend` entries is appended.
pub fn stacked_bars(title: &str, bars: &[Bar], width: usize, legend: &[(char, &str)]) -> String {
    let max = bars.iter().map(Bar::total).fold(0.0f64, f64::max);
    let label_w = bars.iter().map(|b| b.label.len()).max().unwrap_or(0);
    let mut out = format!("-- {title} --\n");
    if max <= 0.0 {
        out.push_str("(no data)\n");
        return out;
    }
    let scale = width as f64 / max;
    for bar in bars {
        out.push_str(&format!("{:<w$} |", bar.label, w = label_w));
        for &(glyph, value) in &bar.segments {
            let n = (value * scale).round() as usize;
            out.extend(std::iter::repeat_n(glyph, n));
        }
        out.push_str(&format!("| {:.3}\n", bar.total()));
    }
    if !legend.is_empty() {
        out.push_str("legend: ");
        out.push_str(
            &legend
                .iter()
                .map(|(g, name)| format!("{g}={name}"))
                .collect::<Vec<_>>()
                .join("  "),
        );
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bars_scale_to_width() {
        let bars = vec![
            Bar::new("a", vec![('#', 1.0)]),
            Bar::new("bb", vec![('#', 0.5), ('.', 0.5)]),
        ];
        let s = stacked_bars("t", &bars, 40, &[('#', "work"), ('.', "idle")]);
        assert!(s.contains("-- t --"));
        assert!(s.contains("legend: #=work  .=idle"));
        // The longest bar renders ~40 glyphs.
        let line = s.lines().find(|l| l.starts_with("a ")).unwrap();
        assert!(line.matches('#').count() >= 39);
    }

    #[test]
    fn empty_data_handled() {
        let s = stacked_bars("t", &[Bar::new("x", vec![])], 10, &[]);
        assert!(s.contains("no data"));
    }
}
