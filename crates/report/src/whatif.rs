//! The LLC replacement-policy what-if sweep (beyond the paper): CPMR,
//! makespan and prefetch hit rate of the case-study kernel under every
//! policy of the full seven-entry what-if axis, seed-averaged.
//!
//! This artifact is the plan layer's flagship **derivation family**: its
//! requests differ only in LLC policy and seed, so a replay-enabled
//! [`PlanExecutor`](prem_harness::PlanExecutor) executes *one* of the 21
//! runs live and derives the other 20 from that run's capture
//! ([`prem_core::RunCapture`]) — which is why the sweep always uses the
//! full seed set, `quick` mode included: the artifact doubles as the CI
//! probe that replay actually engaged (`replayed > 0` on the quick merged
//! plan).

use prem_core::{NoiseModel, RunWork};
use prem_gpusim::Scenario;
use prem_harness::{Direct, MatrixPolicy, MatrixScenario, PlatformSpec, RunRequest, RunSource};
use prem_kernels::Kernel;
use prem_memsim::KIB;

use crate::common::DEFAULT_SEEDS;
use crate::stats::Stats;
use crate::table::{f3, pct, Table};

/// Prefetch repetition factor of the sweep (the paper's tamed R).
pub const WHATIF_R: u32 = 8;

/// One policy's seed-averaged row.
#[derive(Clone, Debug, PartialEq)]
pub struct WhatIfRow {
    /// Policy name (`biased`, `lru`, …).
    pub policy: &'static str,
    /// Mean compute-phase miss ratio across seeds.
    pub cpmr: f64,
    /// Mean makespan (cycles) across seeds.
    pub makespan_cycles: f64,
    /// Makespan relative to the vendor-biased policy.
    pub rel_makespan: f64,
    /// Mean M-phase prefetch hit rate across seeds.
    pub prefetch_hit_rate: f64,
}

/// The rendered what-if sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct WhatIf {
    /// Kernel name.
    pub kernel: String,
    /// Interval size (KiB).
    pub t_kib: usize,
    /// One row per policy, in [`MatrixPolicy::what_if_axis`] order.
    pub rows: Vec<WhatIfRow>,
}

impl WhatIf {
    /// Renders the sweep as a table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            format!(
                "What-if: {} LLC replacement-policy sweep (T={}K, R={}, {} seeds)",
                self.kernel,
                self.t_kib,
                WHATIF_R,
                DEFAULT_SEEDS.len()
            ),
            &["policy", "cpmr", "makespan-Mcyc", "rel-biased", "pf-hit"],
        );
        for r in &self.rows {
            t.push_row(vec![
                r.policy.to_string(),
                pct(r.cpmr),
                f3(r.makespan_cycles / 1e6),
                f3(r.rel_makespan),
                pct(r.prefetch_hit_rate),
            ]);
        }
        t
    }
}

/// The sweep's interval size for `kernel`: the paper's best LLC
/// configuration, floored at the kernel's minimum tileable interval.
fn whatif_t_bytes(kernel: &dyn Kernel) -> usize {
    (160 * KIB).max(kernel.min_interval_bytes())
}

/// The runs the what-if sweep consumes, as a plan: the full policy axis ×
/// the full canonical seed set on the TX1 template, everything else held
/// fixed — exactly one derivation family of 21 requests.
///
/// Deliberately *not* parameterized over [`crate::common::Harness`]: the
/// sweep keeps all of [`DEFAULT_SEEDS`] in `quick` mode so a quick merged
/// plan still contains a multi-member family (the `replayed > 0` CI gate).
pub fn whatif_requests(kernel: &dyn Kernel) -> Vec<RunRequest<'_>> {
    let t_bytes = whatif_t_bytes(kernel);
    let mut reqs = Vec::new();
    for policy in MatrixPolicy::what_if_axis() {
        for &seed in &DEFAULT_SEEDS {
            reqs.push(RunRequest {
                kernel,
                platform: PlatformSpec::tx1().with_policy(policy),
                work: RunWork::PremLlc { r: WHATIF_R },
                t_bytes,
                seed,
                scenario: MatrixScenario::Preset(Scenario::Isolation),
                noise: NoiseModel::tx1(),
            });
        }
    }
    reqs
}

/// Produces the what-if sweep through the direct source.
pub fn whatif(kernel: &dyn Kernel) -> WhatIf {
    whatif_with(kernel, &Direct)
}

/// [`whatif`] rendered from `source`: consumes exactly the runs
/// [`whatif_requests`] enumerates.
pub fn whatif_with(kernel: &dyn Kernel, source: &impl RunSource) -> WhatIf {
    let t_bytes = whatif_t_bytes(kernel);
    let mut rows = Vec::new();
    let mut biased_makespan = f64::NAN;
    for policy in MatrixPolicy::what_if_axis() {
        let mut cpmr = Vec::new();
        let mut makespan = Vec::new();
        let mut hit_rate = Vec::new();
        for &seed in &DEFAULT_SEEDS {
            let run = source
                .output(&RunRequest {
                    kernel,
                    platform: PlatformSpec::tx1().with_policy(policy),
                    work: RunWork::PremLlc { r: WHATIF_R },
                    t_bytes,
                    seed,
                    scenario: MatrixScenario::Preset(Scenario::Isolation),
                    noise: NoiseModel::tx1(),
                })
                .prem();
            cpmr.push(run.cpmr);
            makespan.push(run.makespan_cycles);
            let total = (run.prefetch_hits + run.prefetch_misses) as f64;
            hit_rate.push(if total > 0.0 {
                run.prefetch_hits as f64 / total
            } else {
                0.0
            });
        }
        let makespan_mean = Stats::of(&makespan).mean;
        if policy == MatrixPolicy::VendorBiased {
            biased_makespan = makespan_mean;
        }
        rows.push(WhatIfRow {
            policy: policy.name(),
            cpmr: Stats::of(&cpmr).mean,
            makespan_cycles: makespan_mean,
            rel_makespan: f64::NAN, // filled below, once biased is known
            prefetch_hit_rate: Stats::of(&hit_rate).mean,
        });
    }
    for row in &mut rows {
        row.rel_makespan = row.makespan_cycles / biased_makespan;
    }
    WhatIf {
        kernel: kernel.name().to_string(),
        t_kib: t_bytes / KIB,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prem_kernels::Bicg;

    #[test]
    fn requests_form_one_derivation_family() {
        let k = Bicg::new(128, 128);
        let reqs = whatif_requests(&k);
        assert_eq!(reqs.len(), 7 * DEFAULT_SEEDS.len());
        let base = reqs[0].base_key();
        for r in &reqs {
            assert_eq!(r.base_key(), base, "one family: {}", r.key());
            assert!(r.replay_eligible(), "every member derivable: {}", r.key());
        }
        // Keys are still all distinct (policy/seed live in the key).
        let keys: std::collections::HashSet<String> = reqs.iter().map(|r| r.key()).collect();
        assert_eq!(keys.len(), reqs.len());
    }

    #[test]
    fn replayed_plan_renders_identically_to_direct() {
        use prem_harness::PlanExecutor;
        let k = Bicg::new(96, 96);
        let executor = PlanExecutor::new();
        let summary = executor.execute(&whatif_requests(&k), 2);
        assert_eq!(summary.families, 1);
        assert_eq!(summary.executed, 1, "one live representative");
        assert_eq!(summary.replayed, 7 * DEFAULT_SEEDS.len() - 1);
        assert_eq!(whatif_with(&k, &executor), whatif(&k));
    }

    #[test]
    fn biased_row_is_the_relative_unit() {
        let k = Bicg::new(96, 96);
        let w = whatif(&k);
        let biased = w.rows.iter().find(|r| r.policy == "biased").unwrap();
        assert!((biased.rel_makespan - 1.0).abs() < 1e-12);
        // LRU cannot self-evict within an interval footprint that fits, so
        // its CPMR is no worse than the biased policy's.
        let lru = w.rows.iter().find(|r| r.policy == "lru").unwrap();
        assert!(lru.cpmr <= biased.cpmr + 1e-12);
    }
}
