//! Shared experiment runners: one canonical request builder per
//! (configuration, scenario), with thin direct-execution wrappers.
//!
//! Since the run-plan refactor the three execution modes every figure
//! builds on — tamed/naive LLC-PREM, SPM-PREM and the unprotected
//! baseline — are *request builders* ([`llc_request`], [`spm_request`],
//! [`base_request`]) producing canonical [`RunRequest`]s on the TX1
//! platform with TX1-calibrated noise. The classic runners ([`run_llc`], [`run_spm`],
//! [`run_base`]) are one-request plans executed through the direct source,
//! so a standalone call is byte-identical to the same request served from
//! a merged figure plan's cache.

use prem_core::{BaselineRun, NoiseModel, PremConfig, PremRun, RunWork};
use prem_gpusim::{PlatformConfig, Scenario};
use prem_harness::{Direct, MatrixScenario, PlatformSpec, RunRequest, RunSource};
use prem_kernels::Kernel;
use prem_memsim::KIB;

/// Interval size used for the baseline's (cache-tiled, non-PREM) access
/// stream: the paper's best LLC configuration.
pub const T_BASE: usize = 160 * KIB;

/// The seed set randomized results are averaged over in full-size
/// experiments; [`Harness::quick`] keeps only the first entry. Shared by
/// [`Harness::default`] so the canonical seeds have exactly one source.
pub const DEFAULT_SEEDS: [u64; 3] = [11, 23, 47];

/// Experiment harness parameters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Harness {
    /// Seeds over which randomized results are averaged.
    pub seeds: Vec<u64>,
}

impl Default for Harness {
    fn default() -> Self {
        Harness {
            seeds: DEFAULT_SEEDS.to_vec(),
        }
    }
}

impl Harness {
    /// Single-seed harness for fast tests (the first [`DEFAULT_SEEDS`]
    /// entry).
    pub fn quick() -> Self {
        Harness {
            seeds: vec![DEFAULT_SEEDS[0]],
        }
    }

    /// Seed-expands one request template: the plan-building twin of
    /// [`over_seeds`](crate::stats::over_seeds). Figure plan builders use
    /// this instead of hand-rolling seed loops.
    pub fn requests<'k>(
        &self,
        mut template: impl FnMut(u64) -> RunRequest<'k>,
    ) -> Vec<RunRequest<'k>> {
        self.seeds.iter().map(|&s| template(s)).collect()
    }
}

/// The canonical LLC experiment configuration every runner shares:
/// `Repeated { r }` prefetching on top of [`PremConfig::llc_tamed`], the
/// given seed, TX1-calibrated unmanaged noise. Delegates to the run-plan
/// bridge's [`RunWork::prem_config`], which is the single source of the
/// mode → configuration mapping; the traced twin in `prem-trace` builds on
/// this too.
pub fn llc_prem_config(r: u32, seed: u64) -> PremConfig {
    RunWork::PremLlc { r }
        .prem_config(seed, NoiseModel::tx1())
        .expect("LLC-PREM is a PREM mode")
}

/// The canonical platform of the LLC experiments: the TX1 preset with
/// the LLC seeded per run. Callers layer policy overrides on top before
/// building. The plan layer applies the same construction when resolving
/// the requests the builders below produce.
pub fn llc_platform_config(seed: u64) -> PlatformConfig {
    PlatformConfig::tx1().llc_seed(seed)
}

/// A request on the canonical figure platform (TX1 preset, per-request
/// LLC seed, TX1 noise) — the shared shape of all three builders.
fn tx1_request(
    kernel: &dyn Kernel,
    work: RunWork,
    t_bytes: usize,
    seed: u64,
    scenario: Scenario,
) -> RunRequest<'_> {
    RunRequest {
        kernel,
        platform: PlatformSpec::tx1(),
        work,
        t_bytes,
        seed,
        scenario: MatrixScenario::Preset(scenario),
        noise: NoiseModel::tx1(),
    }
}

/// The canonical LLC-PREM request: `r` prefetch repetitions at interval
/// size `t` bytes.
pub fn llc_request(
    kernel: &dyn Kernel,
    t: usize,
    r: u32,
    seed: u64,
    scenario: Scenario,
) -> RunRequest<'_> {
    tx1_request(kernel, RunWork::PremLlc { r }, t, seed, scenario)
}

/// The canonical SPM-PREM request at interval size `t` bytes (`t` must fit
/// the SPM).
pub fn spm_request(kernel: &dyn Kernel, t: usize, seed: u64, scenario: Scenario) -> RunRequest<'_> {
    tx1_request(kernel, RunWork::PremSpm, t, seed, scenario)
}

/// The canonical unprotected-baseline request (cache-tiled at [`T_BASE`],
/// floored at the kernel's minimum interval).
pub fn base_request(kernel: &dyn Kernel, seed: u64, scenario: Scenario) -> RunRequest<'_> {
    let t = T_BASE.max(kernel.min_interval_bytes());
    tx1_request(kernel, RunWork::Baseline, t, seed, scenario)
}

/// Runs PREM on the LLC with `r` prefetch repetitions at interval size `t`
/// — a one-request plan through the direct source.
///
/// # Panics
///
/// Panics if the kernel cannot be tiled at `t` — experiment configurations
/// are expected to respect `kernel.min_interval_bytes()`.
pub fn run_llc(kernel: &dyn Kernel, t: usize, r: u32, seed: u64, scenario: Scenario) -> PremRun {
    Direct
        .output(&llc_request(kernel, t, r, seed, scenario))
        .prem()
}

/// Runs PREM on the scratchpad at interval size `t` (`t` must fit the SPM).
///
/// # Panics
///
/// Panics if the kernel cannot be tiled at `t` or the tiling exceeds the
/// scratchpad.
pub fn run_spm(kernel: &dyn Kernel, t: usize, seed: u64, scenario: Scenario) -> PremRun {
    Direct
        .output(&spm_request(kernel, t, seed, scenario))
        .prem()
}

/// Runs the unprotected baseline (cache-tiled at [`T_BASE`], no PREM).
pub fn run_base(kernel: &dyn Kernel, seed: u64, scenario: Scenario) -> BaselineRun {
    Direct
        .output(&base_request(kernel, seed, scenario))
        .baseline()
}

/// The interval sizes (KiB) evaluated on the LLC (paper Figs 3–5).
pub fn t_sweep_llc() -> Vec<usize> {
    vec![32, 64, 96, 128, 160, 192, 224, 256]
}

/// The interval sizes (KiB) evaluated on the SPM (bounded by 2 × 48 KiB).
pub fn t_sweep_spm() -> Vec<usize> {
    vec![32, 48, 64, 96]
}

/// The members of an SPM interval-size sweep (KiB) `kernel` can actually
/// run: tileable and within the canonical TX1 scratchpad capacity
/// (sourced from the platform preset, not a literal). fig3/fig5's
/// feasible SPM rows and fig6's candidate set both filter through this,
/// so the two figures can never disagree about which tile sizes exist.
pub fn feasible_spm_kib(kernel: &dyn Kernel, sweep_kib: &[usize]) -> Vec<usize> {
    let capacity = PlatformConfig::tx1().spm.capacity_bytes();
    sweep_kib
        .iter()
        .copied()
        .filter(|&t| {
            let b = t * KIB;
            b >= kernel.min_interval_bytes() && b <= capacity
        })
        .collect()
}

/// The prefetch repetition factors evaluated in Fig 4.
pub fn r_sweep() -> Vec<u32> {
    vec![1, 2, 3, 4, 6, 8, 12, 16]
}

#[cfg(test)]
mod tests {
    use super::*;
    use prem_kernels::Bicg;

    #[test]
    fn runners_produce_consistent_runs() {
        let k = Bicg::new(128, 128);
        let llc = run_llc(&k, 32 * KIB, 8, 1, Scenario::Isolation);
        assert!(llc.makespan_cycles > 0.0);
        let spm = run_spm(&k, 32 * KIB, 1, Scenario::Isolation);
        assert!(spm.makespan_cycles > 0.0);
        let base = run_base(&k, 1, Scenario::Isolation);
        assert!(base.cycles > 0.0);
        // PREM schedules cannot be faster than the raw baseline.
        assert!(llc.makespan_cycles > base.cycles * 0.5);
    }

    #[test]
    fn sweeps_are_sorted_unique() {
        for sweep in [t_sweep_llc(), t_sweep_spm()] {
            let mut sorted = sweep.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sweep, sorted);
        }
    }

    #[test]
    fn requests_helper_expands_the_seed_axis() {
        let k = Bicg::new(128, 128);
        let reqs =
            Harness::default().requests(|s| llc_request(&k, 32 * KIB, 8, s, Scenario::Isolation));
        assert_eq!(reqs.len(), DEFAULT_SEEDS.len());
        let seeds: Vec<u64> = reqs.iter().map(|r| r.seed).collect();
        assert_eq!(seeds, DEFAULT_SEEDS.to_vec());
        assert_eq!(Harness::quick().seeds, vec![DEFAULT_SEEDS[0]]);
    }

    #[test]
    fn wrapper_equals_resolved_request_configuration() {
        // The wrapper path and the hand-built pre-refactor path must agree
        // on the canonical configurations.
        let cfg = llc_prem_config(8, 11);
        assert_eq!(cfg.seed, 11);
        let k = Bicg::new(128, 128);
        let req = base_request(&k, 11, Scenario::Isolation);
        assert_eq!(req.t_bytes, T_BASE.max(k.min_interval_bytes()));
        assert_eq!(
            req.resolved_platform(),
            llc_platform_config(11),
            "plan resolution must reproduce the canonical TX1 platform"
        );
    }
}
