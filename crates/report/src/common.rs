//! Shared experiment runners: one function per (configuration, scenario).

use prem_core::{
    run_baseline, run_prem, BaselineRun, LocalStore, NoiseModel, PrefetchStrategy, PremConfig,
    PremRun,
};
use prem_gpusim::{PlatformConfig, Scenario};
use prem_kernels::Kernel;
use prem_memsim::KIB;

/// Interval size used for the baseline's (cache-tiled, non-PREM) access
/// stream: the paper's best LLC configuration.
pub const T_BASE: usize = 160 * KIB;

/// Experiment harness parameters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Harness {
    /// Seeds over which randomized results are averaged.
    pub seeds: Vec<u64>,
}

impl Default for Harness {
    fn default() -> Self {
        Harness {
            seeds: vec![11, 23, 47],
        }
    }
}

impl Harness {
    /// Single-seed harness for fast tests.
    pub fn quick() -> Self {
        Harness { seeds: vec![11] }
    }
}

/// The canonical LLC experiment configuration every runner shares:
/// `Repeated { r }` prefetching on top of [`PremConfig::llc_tamed`], the
/// given seed, TX1-calibrated unmanaged noise. The traced twin in
/// `prem-trace` builds on this too — keep it the single source.
pub fn llc_prem_config(r: u32, seed: u64) -> PremConfig {
    PremConfig {
        store: LocalStore::Llc {
            prefetch: PrefetchStrategy::Repeated { r },
        },
        ..PremConfig::llc_tamed()
    }
    .with_seed(seed)
    .with_noise(NoiseModel::tx1())
}

/// The canonical platform of the LLC experiments: the TX1 preset with
/// the LLC seeded per run. Callers layer policy overrides on top before
/// building.
pub fn llc_platform_config(seed: u64) -> PlatformConfig {
    PlatformConfig::tx1().llc_seed(seed)
}

/// Runs PREM on the LLC with `r` prefetch repetitions at interval size `t`.
///
/// # Panics
///
/// Panics if the kernel cannot be tiled at `t` — experiment configurations
/// are expected to respect `kernel.min_interval_bytes()`.
pub fn run_llc(kernel: &dyn Kernel, t: usize, r: u32, seed: u64, scenario: Scenario) -> PremRun {
    let intervals = kernel
        .intervals(t)
        .unwrap_or_else(|e| panic!("{}: {e}", kernel.name()));
    let cfg = llc_prem_config(r, seed);
    let mut platform = llc_platform_config(seed).build();
    run_prem(&mut platform, &intervals, &cfg, scenario).expect("llc prem cannot fail")
}

/// Runs PREM on the scratchpad at interval size `t` (`t` must fit the SPM).
///
/// # Panics
///
/// Panics if the kernel cannot be tiled at `t` or the tiling exceeds the
/// scratchpad.
pub fn run_spm(kernel: &dyn Kernel, t: usize, seed: u64, scenario: Scenario) -> PremRun {
    let intervals = kernel
        .intervals(t)
        .unwrap_or_else(|e| panic!("{}: {e}", kernel.name()));
    let cfg = PremConfig::spm()
        .with_seed(seed)
        .with_noise(NoiseModel::tx1());
    let mut platform = PlatformConfig::tx1().llc_seed(seed).build();
    run_prem(&mut platform, &intervals, &cfg, scenario)
        .unwrap_or_else(|e| panic!("{} spm at {t}: {e}", kernel.name()))
}

/// Runs the unprotected baseline (cache-tiled at [`T_BASE`], no PREM).
pub fn run_base(kernel: &dyn Kernel, seed: u64, scenario: Scenario) -> BaselineRun {
    let t = T_BASE.max(kernel.min_interval_bytes());
    let intervals = kernel
        .intervals(t)
        .unwrap_or_else(|e| panic!("{}: {e}", kernel.name()));
    let mut platform = PlatformConfig::tx1().llc_seed(seed).build();
    run_baseline(&mut platform, &intervals, seed, scenario, NoiseModel::tx1())
        .expect("baseline cannot fail")
}

/// The interval sizes (KiB) evaluated on the LLC (paper Figs 3–5).
pub fn t_sweep_llc() -> Vec<usize> {
    vec![32, 64, 96, 128, 160, 192, 224, 256]
}

/// The interval sizes (KiB) evaluated on the SPM (bounded by 2 × 48 KiB).
pub fn t_sweep_spm() -> Vec<usize> {
    vec![32, 48, 64, 96]
}

/// The prefetch repetition factors evaluated in Fig 4.
pub fn r_sweep() -> Vec<u32> {
    vec![1, 2, 3, 4, 6, 8, 12, 16]
}

#[cfg(test)]
mod tests {
    use super::*;
    use prem_kernels::Bicg;

    #[test]
    fn runners_produce_consistent_runs() {
        let k = Bicg::new(128, 128);
        let llc = run_llc(&k, 32 * KIB, 8, 1, Scenario::Isolation);
        assert!(llc.makespan_cycles > 0.0);
        let spm = run_spm(&k, 32 * KIB, 1, Scenario::Isolation);
        assert!(spm.makespan_cycles > 0.0);
        let base = run_base(&k, 1, Scenario::Isolation);
        assert!(base.cycles > 0.0);
        // PREM schedules cannot be faster than the raw baseline.
        assert!(llc.makespan_cycles > base.cycles * 0.5);
    }

    #[test]
    fn sweeps_are_sorted_unique() {
        for sweep in [t_sweep_llc(), t_sweep_spm()] {
            let mut sorted = sweep.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sweep, sorted);
        }
    }
}
