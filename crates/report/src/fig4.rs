//! Figure 4: the compute-phase miss ratio (CPMR) as a function of the
//! prefetch repetition factor `R` and the interval size `T`.
//!
//! Expected shape (paper §IV): CPMR decreases monotonically in `R` towards
//! near-zero, stays low for `T` up to the good-way capacity (192 KiB on the
//! TX1), and rises rapidly beyond it.

use prem_gpusim::Scenario;
use prem_harness::{Direct, RunRequest, RunSource};
use prem_kernels::Kernel;
use prem_memsim::KIB;

use crate::common::{llc_request, r_sweep, t_sweep_llc, Harness};
use crate::stats::over_seeds;
use crate::table::{pct, Table};

/// CPMR grid over `(R, T)`.
#[derive(Clone, Debug, PartialEq)]
pub struct Fig4 {
    /// Repetition factors (rows).
    pub r_values: Vec<u32>,
    /// Interval sizes in KiB (columns).
    pub t_kib: Vec<usize>,
    /// `cpmr[r_index][t_index]`, averaged over seeds.
    pub cpmr: Vec<Vec<f64>>,
}

impl Fig4 {
    /// CPMR at a given `(R, T)`.
    pub fn at(&self, r: u32, t_kib: usize) -> Option<f64> {
        let ri = self.r_values.iter().position(|&x| x == r)?;
        let ti = self.t_kib.iter().position(|&x| x == t_kib)?;
        Some(self.cpmr[ri][ti])
    }

    /// Renders the grid as a table.
    pub fn table(&self) -> Table {
        let mut headers = vec!["R \\ T".to_string()];
        headers.extend(self.t_kib.iter().map(|t| format!("{t}K")));
        let hdr: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut t = Table::new(
            "Fig 4: CPMR vs prefetch repetition R and interval size T",
            &hdr,
        );
        for (ri, &r) in self.r_values.iter().enumerate() {
            let mut row = vec![format!("R={r}")];
            row.extend(self.cpmr[ri].iter().map(|&c| pct(c)));
            t.push_row(row);
        }
        t
    }
}

/// Measures the CPMR grid on `kernel`.
pub fn fig4(kernel: &dyn Kernel, harness: &Harness) -> Fig4 {
    fig4_with_sweeps(kernel, harness, &r_sweep(), &t_sweep_llc())
}

/// [`fig4`] rendered from `source` (plan builder: [`fig4_requests`]).
pub fn fig4_with(kernel: &dyn Kernel, harness: &Harness, source: &impl RunSource) -> Fig4 {
    fig4_with_sweeps_from(kernel, harness, &r_sweep(), &t_sweep_llc(), source)
}

/// The runs [`fig4`] consumes, as a plan: the isolated `(R, T)` grid,
/// seed-expanded. Grid points whose `T` is floored to the same
/// `min_interval_bytes` collapse to one canonical request, so the plan
/// itself dedups what the figure would re-measure.
pub fn fig4_requests<'k>(kernel: &'k dyn Kernel, harness: &Harness) -> Vec<RunRequest<'k>> {
    fig4_sweep_requests(kernel, harness, &r_sweep(), &t_sweep_llc())
}

/// The runs of the explicit-sweep CPMR grid, as a plan.
pub fn fig4_sweep_requests<'k>(
    kernel: &'k dyn Kernel,
    harness: &Harness,
    r_values: &[u32],
    t_kib: &[usize],
) -> Vec<RunRequest<'k>> {
    let min_t = kernel.min_interval_bytes();
    let mut reqs = Vec::new();
    for &r in r_values {
        for &t in t_kib {
            let t_bytes = (t * KIB).max(min_t);
            reqs.extend(
                harness.requests(|s| llc_request(kernel, t_bytes, r, s, Scenario::Isolation)),
            );
        }
    }
    reqs
}

/// Measures the CPMR grid with explicit sweeps (used by tests and smaller
/// benches).
pub fn fig4_with_sweeps(
    kernel: &dyn Kernel,
    harness: &Harness,
    r_values: &[u32],
    t_kib: &[usize],
) -> Fig4 {
    fig4_with_sweeps_from(kernel, harness, r_values, t_kib, &Direct)
}

/// [`fig4_with_sweeps`] rendered from `source`: consumes exactly the runs
/// [`fig4_sweep_requests`] enumerates.
pub fn fig4_with_sweeps_from(
    kernel: &dyn Kernel,
    harness: &Harness,
    r_values: &[u32],
    t_kib: &[usize],
    source: &impl RunSource,
) -> Fig4 {
    let min_t = kernel.min_interval_bytes();
    let cpmr = r_values
        .iter()
        .map(|&r| {
            t_kib
                .iter()
                .map(|&t| {
                    let t_bytes = (t * KIB).max(min_t);
                    over_seeds(&harness.seeds, |seed| {
                        source
                            .output(&llc_request(kernel, t_bytes, r, seed, Scenario::Isolation))
                            .prem()
                            .cpmr
                    })
                    .mean
                })
                .collect()
        })
        .collect();
    Fig4 {
        r_values: r_values.to_vec(),
        t_kib: t_kib.to_vec(),
        cpmr,
    }
}
