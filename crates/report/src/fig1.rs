//! Figure 1: the anatomy of a PREM interval schedule, rendered as an ASCII
//! timeline from a real run — M-phases (`M`), C-phases (`C`), MSG idling
//! (`.`, Fig 1 (d)) and token exchanges (`|`, Fig 1 (a)–(b)).

use prem_core::{PremRun, SyncConfig};

/// Renders the first `max_intervals` intervals of a run as a timeline.
/// `cols_per_us` controls the horizontal scale.
pub fn timeline(
    run: &PremRun,
    sync: &SyncConfig,
    clock_ghz: f64,
    max_intervals: usize,
    cols_per_us: f64,
) -> String {
    let to_cols = |cycles: f64| ((cycles / (clock_ghz * 1000.0)) * cols_per_us).round() as usize;
    let switch_cycles = sync.switch_cost_us() * clock_ghz * 1000.0;
    let mut lane = String::new();
    for (m, c) in run.interval_timings.iter().take(max_intervals) {
        lane.extend(std::iter::repeat_n('M', to_cols(m.work).max(1)));
        lane.extend(std::iter::repeat_n('.', to_cols(m.idle)));
        lane.extend(std::iter::repeat_n('|', to_cols(switch_cycles).max(1)));
        lane.extend(std::iter::repeat_n('C', to_cols(c.work).max(1)));
        lane.extend(std::iter::repeat_n('.', to_cols(c.idle)));
        lane.extend(std::iter::repeat_n('|', to_cols(switch_cycles).max(1)));
    }
    format!(
        "-- PREM interval timeline (first {} of {} intervals) --\nGPU {}\n\
         legend: M=memory phase  C=compute phase  .=MSG idle  |=token exchange\n",
        max_intervals.min(run.interval_timings.len()),
        run.interval_timings.len(),
        lane
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::run_llc;
    use prem_gpusim::Scenario;
    use prem_kernels::Bicg;
    use prem_memsim::KIB;

    #[test]
    fn timeline_renders_phases_and_idling() {
        let k = Bicg::new(128, 128);
        let run = run_llc(&k, 32 * KIB, 8, 1, Scenario::Isolation);
        let s = timeline(&run, &SyncConfig::tx1(), 1.0, 4, 0.5);
        assert!(s.contains('M'));
        assert!(s.contains('C'));
        assert!(s.contains('|'));
        // Small intervals idle up to the MSG.
        assert!(s.contains('.'));
    }
}
