//! The `obs` artifact: a phase-timing breakdown of one `figures`
//! invocation, rendered from a [`prem_obs`] registry snapshot.
//!
//! The executor, store, and front end record latency histograms under
//! well-known names (`plan.expand_ns`, `plan.live_ns`, …); this module
//! turns the snapshot into a human table — one row per phase with
//! count, total, and p50/p95/max — plus a `key=value` counters line.
//! Everything here *reads* the snapshot; nothing in the artifact can
//! influence run outputs, which is what keeps goldens byte-identical
//! with metrics on or off.

use prem_obs::{kv_line, Snapshot};
use prem_table::table::f3;

use crate::Table;

/// The timing histograms the breakdown reports, in display order, with
/// their human row labels. Names absent from the snapshot are skipped,
/// so the table adapts to which layers actually ran.
const PHASES: &[(&str, &str)] = &[
    ("plan.expand_ns", "plan: expand + dedup"),
    ("plan.execute_ns", "plan: execute (whole call)"),
    ("plan.unit_ns", "pool: unit"),
    ("plan.pool_wall_ns", "pool: wall"),
    ("plan.profile_ns", "run: profile pass"),
    ("plan.live_ns", "run: live execute"),
    ("plan.replay_ns", "run: replay derive"),
    ("store.load_ns", "store: segment load"),
    ("store.lock_wait_ns", "store: lock wait"),
    ("store.append_ns", "store: append"),
    ("figures.render_ns", "figures: render"),
];

/// The plan counters echoed under the table, in display order.
const COUNTERS: &[(&str, &str)] = &[
    ("plan.requested", "requested"),
    ("plan.live_runs", "live_runs"),
    ("plan.elided", "elided"),
    ("plan.memory_hits", "memory_hits"),
    ("plan.disk_hits", "disk_hits"),
    ("plan.replayed", "replayed"),
    ("plan.families", "families"),
    ("plan.profile_hits", "profile_hits"),
    ("plan.profile_misses", "profile_misses"),
];

fn ns_to_ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// Renders the phase-timing table: one row per recorded histogram with
/// its sample count, total milliseconds, and p50/p95/max latencies.
pub fn obs_table(snapshot: &Snapshot) -> Table {
    let mut table = Table::new(
        "Phase timings (one invocation; totals overlap across layers)",
        &["phase", "count", "total ms", "p50 ms", "p95 ms", "max ms"],
    );
    for (name, label) in PHASES {
        let Some(hist) = snapshot.hist(name) else {
            continue;
        };
        if hist.count() == 0 {
            continue;
        }
        let total_ms = hist.sum() as f64 / 1e6;
        table.push_row(vec![
            (*label).to_string(),
            hist.count().to_string(),
            f3(total_ms),
            f3(ns_to_ms(hist.p50())),
            f3(ns_to_ms(hist.p95())),
            f3(ns_to_ms(hist.max())),
        ]);
    }
    table
}

/// The `key=value` counters line printed under the table — the plan
/// summary as the registry saw it (all keys present, zero or not).
pub fn obs_counters(snapshot: &Snapshot) -> String {
    kv_line(
        COUNTERS
            .iter()
            .map(|(name, label)| (*label, snapshot.counter(name).unwrap_or(0).to_string())),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use prem_obs::{MetricsSink, Registry};

    #[test]
    fn table_rows_follow_recorded_phases_and_counters_default_to_zero() {
        let registry = Registry::new();
        registry.observe("plan.live_ns", 2_000_000);
        registry.observe("plan.live_ns", 4_000_000);
        registry.observe("figures.render_ns", 1_000_000);
        registry.add("plan.requested", 5);
        let snap = registry.snapshot();

        let table = obs_table(&snap);
        assert_eq!(table.len(), 2, "one row per recorded phase:\n{table}");
        assert_eq!(table.rows()[0][0], "run: live execute");
        assert_eq!(table.rows()[0][1], "2");
        assert_eq!(table.rows()[0][2], "6.000");
        assert_eq!(table.rows()[1][0], "figures: render");

        let counters = obs_counters(&snap);
        assert!(
            counters.starts_with("requested=5 live_runs=0 "),
            "{counters}"
        );
        assert!(counters.ends_with("profile_misses=0"), "{counters}");
    }

    #[test]
    fn empty_snapshot_renders_an_empty_table() {
        let snap = Registry::new().snapshot();
        assert!(obs_table(&snap).is_empty());
        assert_eq!(
            obs_counters(&snap),
            "requested=0 live_runs=0 elided=0 memory_hits=0 disk_hits=0 \
             replayed=0 families=0 profile_hits=0 profile_misses=0"
        );
    }
}
