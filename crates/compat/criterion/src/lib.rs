//! Offline shim for the subset of [criterion](https://crates.io/crates/criterion)
//! this workspace uses.
//!
//! The build environment has no registry access, so the benches compile
//! against this small API-compatible stand-in: wall-clock timing with a
//! fixed sample count, median/mean reporting to stdout, and optional
//! throughput annotation. No statistical analysis, HTML reports, or
//! baselines — the benches stay meaningful as relative numbers and as a
//! compile gate in CI (`cargo bench --no-run`).
//!
//! Supported surface: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`] (with `sample_size`, `throughput`,
//! `bench_function`, `finish`), [`Throughput::Elements`]/[`Throughput::Bytes`],
//! and the [`criterion_group!`]/[`criterion_main!`] macros (both the
//! `name/config/targets` and positional forms). Filters passed on the
//! command line (`cargo bench -- <substring>`) are honored; `--test` runs
//! each benchmark body once.

#![deny(missing_docs)]

use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        let mut test_mode = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                // Flags cargo/criterion conventionally pass; ignore them.
                "--bench" | "--noplot" | "--quiet" | "-q" => {}
                a if a.starts_with('-') => {}
                a => filter = Some(a.to_string()),
            }
        }
        Criterion {
            sample_size: 10,
            filter,
            test_mode,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(
            id,
            self.sample_size,
            None,
            self.filter.as_deref(),
            self.test_mode,
            f,
        );
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = Some(n);
        self
    }

    /// Annotates benches with a per-iteration throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_bench(
            &full,
            self.sample_size.unwrap_or(self.criterion.sample_size),
            self.throughput,
            self.criterion.filter.as_deref(),
            self.criterion.test_mode,
            f,
        );
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Per-iteration throughput annotation.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing harness handed to each benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `sample_size` runs of `routine` (plus one warm-up).
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        std::hint::black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_bench<F>(
    id: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    filter: Option<&str>,
    test_mode: bool,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    if let Some(pat) = filter {
        if !id.contains(pat) {
            return;
        }
    }
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size: if test_mode { 1 } else { sample_size },
    };
    f(&mut bencher);
    if test_mode {
        println!("{id}: ok (test mode)");
        return;
    }
    let mut sorted = bencher.samples.clone();
    sorted.sort();
    if sorted.is_empty() {
        println!("{id}: no samples (b.iter never called)");
        return;
    }
    let median = sorted[sorted.len() / 2];
    let mean: Duration = sorted.iter().sum::<Duration>() / sorted.len() as u32;
    let rate = throughput.map_or(String::new(), |t| match t {
        Throughput::Elements(n) => {
            format!(" ({:.1} Melem/s)", n as f64 / median.as_secs_f64() / 1e6)
        }
        Throughput::Bytes(n) => {
            format!(
                " ({:.1} MiB/s)",
                n as f64 / median.as_secs_f64() / (1 << 20) as f64
            )
        }
    });
    println!(
        "{id}: median {median:.2?}, mean {mean:.2?} over {} samples{rate}",
        sorted.len()
    );
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
