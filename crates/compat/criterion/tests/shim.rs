//! Self-tests for the criterion shim: closures run, groups work, and the
//! `criterion_group!` macro produces a callable function.

use criterion::{criterion_group, Criterion, Throughput};
use std::sync::atomic::{AtomicUsize, Ordering};

static PLAIN_RUNS: AtomicUsize = AtomicUsize::new(0);
static GROUP_RUNS: AtomicUsize = AtomicUsize::new(0);

fn bench_plain(c: &mut Criterion) {
    c.bench_function("plain", |b| {
        b.iter(|| PLAIN_RUNS.fetch_add(1, Ordering::SeqCst))
    });
}

fn bench_grouped(c: &mut Criterion) {
    let mut g = c.benchmark_group("group");
    g.sample_size(3);
    g.throughput(Throughput::Elements(1));
    g.bench_function("inner", |b| {
        b.iter(|| GROUP_RUNS.fetch_add(1, Ordering::SeqCst))
    });
    g.finish();
}

criterion_group! {
    name = shim_benches;
    config = Criterion::default().sample_size(2);
    targets = bench_plain, bench_grouped
}

#[test]
fn group_macro_runs_all_targets() {
    shim_benches();
    // sample_size + 1 warm-up run each.
    assert_eq!(PLAIN_RUNS.load(Ordering::SeqCst), 3);
    assert_eq!(GROUP_RUNS.load(Ordering::SeqCst), 4);
}
