//! Offline shim for the subset of [proptest](https://crates.io/crates/proptest)
//! this workspace uses.
//!
//! The build environment has no registry access, so the property-test suites
//! compile against this small API-compatible stand-in instead of the real
//! crate. It keeps proptest's model — strategies sampled by a seeded runner,
//! assertions that fail the case with a message — but drops shrinking,
//! persistence, and fork support. Every run is deterministic: the runner is
//! seeded from a fixed constant, so failures reproduce exactly.
//!
//! Supported surface:
//!
//! * [`proptest!`] with an optional `#![proptest_config(..)]` header;
//! * [`prop_assert!`] / [`prop_assert_eq!`];
//! * integer range strategies (`0u64..4096`, `1usize..=64`),
//!   [`any`](arbitrary::any), tuples of strategies (arity 1–6),
//!   [`prop_map`](strategy::Strategy::prop_map), [`collection::vec`], and
//!   [`sample::select`];
//! * [`test_runner::TestRunner`] + [`strategy::ValueTree`] for tests that
//!   sample a strategy manually.

#![deny(missing_docs)]

pub mod strategy {
    //! Strategies: composable random-value generators.

    use crate::test_runner::{TestError, TestRng, TestRunner};
    use std::ops::{Range, RangeInclusive};

    /// A generator of values of type [`Strategy::Value`].
    ///
    /// Unlike real proptest there is no shrinking: a strategy only knows how
    /// to produce a value from a [`TestRng`].
    pub trait Strategy {
        /// The type of values this strategy generates.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Samples this strategy once through a [`TestRunner`], wrapping the
        /// result in a degenerate (non-shrinking) [`ValueTree`].
        ///
        /// # Errors
        ///
        /// Never fails in this shim; the `Result` mirrors proptest's API.
        fn new_tree(&self, runner: &mut TestRunner) -> Result<Snapshot<Self::Value>, TestError>
        where
            Self::Value: Clone,
        {
            Ok(Snapshot(self.generate(runner.rng())))
        }
    }

    /// A sampled value; real proptest shrinks these, this shim does not.
    pub trait ValueTree {
        /// The type of the sampled value.
        type Value;

        /// The current (and, here, only) value of the tree.
        fn current(&self) -> Self::Value;
    }

    /// The degenerate [`ValueTree`] returned by [`Strategy::new_tree`].
    #[derive(Clone, Debug)]
    pub struct Snapshot<T: Clone>(pub(crate) T);

    impl<T: Clone> ValueTree for Snapshot<T> {
        type Value = T;

        fn current(&self) -> T {
            self.0.clone()
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! int_strategies {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let lo = self.start as i128;
                    let hi = self.end as i128;
                    assert!(lo < hi, "empty range strategy");
                    let span = (hi - lo) as u128;
                    (lo + (u128::from(rng.next_u64()) % span) as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let lo = *self.start() as i128;
                    let hi = *self.end() as i128;
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u128 + 1;
                    (lo + (u128::from(rng.next_u64()) % span) as i128) as $t
                }
            }

            impl crate::arbitrary::Arbitrary for $t {
                type Strategy = crate::arbitrary::Any<$t>;

                fn arbitrary() -> Self::Strategy {
                    crate::arbitrary::Any(std::marker::PhantomData)
                }
            }

            impl Strategy for crate::arbitrary::Any<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl crate::arbitrary::Arbitrary for bool {
        type Strategy = crate::arbitrary::Any<bool>;

        fn arbitrary() -> Self::Strategy {
            crate::arbitrary::Any(std::marker::PhantomData)
        }
    }

    impl Strategy for crate::arbitrary::Any<bool> {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! tuple_strategies {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod arbitrary {
    //! The [`any`] entry point for "any value of this type" strategies.

    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// The strategy [`any`] returns for this type.
        type Strategy: crate::strategy::Strategy<Value = Self>;

        /// Builds the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// Full-range strategy for a primitive type.
    #[derive(Clone, Copy, Debug)]
    pub struct Any<T>(pub(crate) PhantomData<T>);

    /// Strategy producing any value of `A` (uniform over the full range).
    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A length range for collection strategies.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    /// Strategy for `Vec`s with element strategy `S` and length in a range.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy: elements from `element`, length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo) as u64 + 1;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling strategies over explicit value lists.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy choosing uniformly from a fixed list.
    #[derive(Clone, Debug)]
    pub struct Select<T> {
        items: Vec<T>,
    }

    /// Uniform choice among `items` (which must be non-empty).
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select() needs at least one item");
        Select { items }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = (rng.next_u64() % self.items.len() as u64) as usize;
            self.items[i].clone()
        }
    }
}

pub mod test_runner {
    //! The case runner: configuration, RNG, and failure reporting.

    use std::fmt;

    /// Configuration for a [`proptest!`](crate::proptest) block.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of cases to run per test function.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per test.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; 64 keeps the deterministic
            // suites fast while still sweeping the geometry space.
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed property-test case (produced by `prop_assert!`).
    #[derive(Clone, Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Error type for [`Strategy::new_tree`](crate::strategy::Strategy::new_tree);
    /// never actually produced by this shim.
    #[derive(Clone, Copy, Debug)]
    pub struct TestError;

    /// SplitMix64: tiny, fast, and plenty for test-case generation.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        fn from_seed(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// Drives strategies; every runner is deterministic in this shim.
    #[derive(Clone, Debug)]
    pub struct TestRunner {
        rng: TestRng,
    }

    impl TestRunner {
        /// A runner for the given configuration (fixed seed).
        #[must_use]
        pub fn new(_config: &ProptestConfig) -> Self {
            Self::deterministic()
        }

        /// A runner with a fixed, documented seed.
        #[must_use]
        pub fn deterministic() -> Self {
            TestRunner {
                rng: TestRng::from_seed(0x5EED_CAFE_F00D_D00D),
            }
        }

        /// The runner's RNG.
        pub fn rng(&mut self) -> &mut TestRng {
            &mut self.rng
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Strategy, ValueTree};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (not
/// panicking directly) with an optional formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

/// Declares property tests: each `fn name(bindings in strategies) { body }`
/// becomes a `#[test]` running the body over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut runner = $crate::test_runner::TestRunner::new(&config);
                let strategies = ($($strat,)+);
                for case in 0..config.cases {
                    let ($($pat,)+) =
                        $crate::strategy::Strategy::generate(&strategies, runner.rng());
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!("proptest case {case}/{} failed: {e}", config.cases);
                    }
                }
            }
        )*
    };
}
