//! Self-tests for the proptest shim: the macro must actually drive bodies,
//! strategies must respect their bounds, and failed assertions must fail
//! the surrounding test.

use proptest::prelude::*;
use proptest::strategy::ValueTree;
use std::sync::atomic::{AtomicU32, Ordering};

static CASES_SEEN: AtomicU32 = AtomicU32::new(0);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(17))]

    // No #[test] here: invoked (exactly once) by the checker below so the
    // case counter cannot race a parallel harness run.
    fn body_runs_per_case(_x in 0u64..10) {
        CASES_SEEN.fetch_add(1, Ordering::SeqCst);
    }
}

#[test]
fn configured_case_count_is_respected() {
    body_runs_per_case();
    assert_eq!(CASES_SEEN.load(Ordering::SeqCst), 17);
}

proptest! {
    /// Range strategies stay inside their bounds (exclusive and inclusive).
    #[test]
    fn ranges_in_bounds(a in 5u32..9, b in 10usize..=20, c in -4i64..4) {
        prop_assert!((5..9).contains(&a));
        prop_assert!((10..=20).contains(&b));
        prop_assert!((-4..4).contains(&c));
    }

    /// Collection lengths honor the size range; elements honor theirs.
    #[test]
    fn vec_lengths_in_bounds(v in prop::collection::vec(0u64..100, 3..7)) {
        prop_assert!((3..7).contains(&v.len()), "len {}", v.len());
        for x in v {
            prop_assert!(x < 100);
        }
    }

    /// `select` only yields listed items; `prop_map` applies its function.
    #[test]
    fn select_and_map(x in prop::sample::select(vec![2usize, 4, 8]).prop_map(|v| v * 10)) {
        prop_assert!(x == 20 || x == 40 || x == 80);
    }

    /// Tuple strategies generate componentwise.
    #[test]
    fn tuples_componentwise((a, b, c) in (0u8..4, 100u16..200, prop::sample::select(vec![7i32]))) {
        prop_assert!(a < 4);
        prop_assert!((100..200).contains(&b));
        prop_assert_eq!(c, 7);
    }

    /// A failing prop_assert! fails (panics out of) the test.
    #[test]
    #[should_panic(expected = "three is never four")]
    fn failing_assert_panics(x in 3u32..4) {
        prop_assert!(x == 4, "three is never four");
    }
}

/// Manual sampling through `TestRunner` + `ValueTree` (the API the memsim
/// suite uses to nest a strategy inside a case).
#[test]
fn manual_new_tree_sampling() {
    let strategy = prop::sample::select(vec!["a", "b", "c"]);
    let mut runner = proptest::test_runner::TestRunner::deterministic();
    for _ in 0..50 {
        let v = strategy.new_tree(&mut runner).unwrap().current();
        assert!(["a", "b", "c"].contains(&v));
    }
}

/// Deterministic runners reproduce the same sequence.
#[test]
fn deterministic_runs_repeat() {
    let sample = || {
        let strategy = prop::collection::vec(0u64..1_000_000, 10..=10);
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        strategy.new_tree(&mut runner).unwrap().current()
    };
    assert_eq!(sample(), sample());
}

/// `any::<u64>()` spans well beyond any small range (sanity, not rigor).
#[test]
fn any_u64_spans_widely() {
    let mut runner = proptest::test_runner::TestRunner::deterministic();
    let strategy = any::<u64>();
    let mut seen_large = false;
    for _ in 0..100 {
        let v = strategy.new_tree(&mut runner).unwrap().current();
        if v > u64::MAX / 2 {
            seen_large = true;
        }
    }
    assert!(seen_large, "100 draws never exceeded u64::MAX/2");
}
