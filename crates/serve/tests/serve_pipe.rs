//! End-to-end tests of the `serve` binary over a real pipe.
//!
//! These run the actual binary (`CARGO_BIN_EXE_serve`) the way clients
//! use it: an interleaved request stream from two logical clients piped
//! into stdin, responses read back from stdout, tick metrics from
//! stderr. They pin the service's three load-bearing promises:
//! cross-client dedup through the shared executor (`unique` strictly
//! below the request count), store persistence (a second identical batch
//! in a fresh process is *zero* live runs, all disk hits), and budget
//! enforcement (no tick charges more pool units than `--budget`).

use std::io::Write;
use std::path::PathBuf;
use std::process::{Command, Output, Stdio};

/// The interleaved two-client batch: client A and client B overlap on
/// seeds 1/2 (same canonical keys) and each contributes one private
/// seed. Four distinct keys, one derivation family, eight requests.
fn batch() -> String {
    let mut lines = String::new();
    for (client, seeds) in [("a", [1u64, 2, 3]), ("b", [2, 1, 4])] {
        for seed in seeds {
            lines.push_str(&format!(
                "req {client}{seed} v1 kernel=bicg:128x64 platform=tx1 work=llc-r8 \
                 t=16384 seed={seed} scenario=isolation noise=0x0\n"
            ));
        }
    }
    // A duplicate within the stream (same key as a1) rides for free.
    lines.push_str(
        "req a1-again v1 kernel=bicg:128x64 platform=tx1 work=llc-r8 \
         t=16384 seed=1 scenario=isolation noise=0x0\n",
    );
    lines
}

/// Pipes `input` through the serve binary with `args`, asserting exit 0.
fn run_serve(cache_dir: &PathBuf, args: &[&str], input: &str) -> Output {
    let mut child = Command::new(env!("CARGO_BIN_EXE_serve"))
        .arg("--cache-dir")
        .arg(cache_dir)
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn serve binary");
    child
        .stdin
        .as_mut()
        .expect("child stdin")
        .write_all(input.as_bytes())
        .expect("write request stream");
    let out = child.wait_with_output().expect("wait for serve");
    assert!(
        out.status.success(),
        "serve exited {}:\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

/// Extracts `field=value` integers from a metrics/summary line.
fn field(line: &str, name: &str) -> u64 {
    line.split_whitespace()
        .find_map(|tok| tok.strip_prefix(&format!("{name}=")))
        .unwrap_or_else(|| panic!("no {name}= in: {line}"))
        .parse()
        .unwrap_or_else(|e| panic!("bad {name}= in `{line}`: {e}"))
}

#[test]
fn overlapping_clients_dedup_persist_and_respect_the_budget() {
    let scratch: PathBuf =
        std::env::temp_dir().join(format!("prem-serve-pipe-{}", std::process::id()));
    std::fs::remove_dir_all(&scratch).ok();
    let cache_dir = scratch.join("nested/.runcache");

    // Cold pass: budget 1, the batch plus an explicit flush and quit.
    let input = format!("{}flush\nquit\n", batch());
    let out = run_serve(&cache_dir, &["--budget", "1"], &input);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);

    // Every request got exactly one tagged response.
    let tags: Vec<&str> = stdout
        .lines()
        .filter(|l| l.starts_with("out "))
        .map(|l| l.split_whitespace().nth(1).expect("response tag"))
        .collect();
    let expected = ["a1", "a2", "a3", "b2", "b1", "b4", "a1-again"];
    assert_eq!(tags.len(), expected.len(), "responses:\n{stdout}");
    for tag in expected {
        assert!(tags.contains(&tag), "no response for {tag}:\n{stdout}");
    }
    // Overlapping keys and the one-seed-wildcarded family dedup: nine
    // lines of client traffic, strictly fewer live runs.
    let flush_line = stderr
        .lines()
        .find(|l| l.contains("flush: plan:"))
        .unwrap_or_else(|| panic!("no flush summary:\n{stderr}"));
    let requested = field(flush_line, "requested");
    let unique = field(flush_line, "unique");
    assert_eq!(requested, 7);
    assert!(unique < requested, "no dedup across clients: {flush_line}");
    // Budget enforcement: every tick heartbeat is a key=value line
    // reporting units= and budget= with units ≤ budget.
    let mut ticks = 0;
    for line in stderr.lines().filter(|l| l.starts_with("[serve] tick=")) {
        assert!(
            field(line, "units") <= field(line, "budget"),
            "tick over budget: {line}"
        );
        ticks += 1;
    }
    assert!(ticks >= 1, "no tick metrics in stderr:\n{stderr}");
    // The store persisted something.
    assert!(cache_dir.is_dir(), "cache dir was not created");

    // Warm pass: the identical batch in a fresh process must execute
    // nothing live — every key is a disk hit (EOF drains, no flush).
    // A trailing `stats` exercises the metrics snapshot wire line.
    let input = format!("{}flush\nstats\n", batch());
    let out = run_serve(&cache_dir, &[], &input);
    let stderr = String::from_utf8_lossy(&out.stderr);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let metrics_line = stdout
        .lines()
        .find(|l| l.starts_with("metrics {"))
        .unwrap_or_else(|| panic!("no metrics snapshot line:\n{stdout}"));
    assert!(
        metrics_line.contains("\"plan.live_runs\":0")
            && metrics_line.contains("\"schema\":\"prem-obs/v1\""),
        "warm snapshot: {metrics_line}"
    );
    let final_line = stderr
        .lines()
        .find(|l| l.contains("final: plan:"))
        .unwrap_or_else(|| panic!("no final summary:\n{stderr}"));
    assert_eq!(
        field(final_line, "unique"),
        0,
        "warm batch ran live: {final_line}"
    );
    assert_eq!(
        field(final_line, "replayed"),
        0,
        "warm batch replayed: {final_line}"
    );
    assert!(
        field(final_line, "disk-hits") > 0,
        "warm batch not served from disk: {final_line}"
    );

    std::fs::remove_dir_all(&scratch).ok();
}

#[test]
fn emitted_outputs_decode_and_match_across_duplicate_tags() {
    let scratch: PathBuf =
        std::env::temp_dir().join(format!("prem-serve-emit-{}", std::process::id()));
    std::fs::remove_dir_all(&scratch).ok();
    let cache_dir = scratch.join(".runcache");

    let input = "req x v1 kernel=mvt:128 platform=tx1 work=spm t=16384 seed=5 \
                 scenario=isolation noise=0x0\n\
                 req y v1 kernel=mvt:128 platform=tx1 work=spm t=16384 seed=5 \
                 scenario=isolation noise=0x0\n";
    let out = run_serve(&cache_dir, &["--emit-outputs"], input);
    let stdout = String::from_utf8_lossy(&out.stdout);

    let payloads: Vec<prem_core::RunOutput> = stdout
        .lines()
        .filter(|l| l.starts_with("out "))
        .map(|l| {
            let hex = l
                .split("data=")
                .nth(1)
                .unwrap_or_else(|| panic!("no data= in {l}"));
            prem_core::RunOutput::decode(&prem_serve::from_hex(hex).expect("hex payload"))
                .expect("decodable payload")
        })
        .collect();
    assert_eq!(payloads.len(), 2, "responses:\n{stdout}");
    assert_eq!(payloads[0], payloads[1], "same key, different outputs");

    std::fs::remove_dir_all(&scratch).ok();
}

#[test]
fn malformed_lines_are_session_fatal() {
    let scratch: PathBuf =
        std::env::temp_dir().join(format!("prem-serve-bad-{}", std::process::id()));
    std::fs::remove_dir_all(&scratch).ok();

    for bad in [
        "gibberish\n",
        "req only-a-tag\n",
        "req t v1 kernel=bicg:128x64 platform=pluto work=spm t=16384 seed=1 \
         scenario=isolation noise=0x0\n",
        // Well-formed line, unregistered kernel: rejected at submit.
        "req t v1 kernel=nope:128 platform=tx1 work=spm t=16384 seed=1 \
         scenario=isolation noise=0x0\n",
    ] {
        let mut child = Command::new(env!("CARGO_BIN_EXE_serve"))
            .arg("--cache-dir")
            .arg(scratch.join(".runcache"))
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn serve binary");
        child
            .stdin
            .as_mut()
            .expect("child stdin")
            .write_all(bad.as_bytes())
            .expect("write bad line");
        let out = child.wait_with_output().expect("wait for serve");
        assert!(
            !out.status.success(),
            "serve accepted malformed input: {bad:?}"
        );
    }
    std::fs::remove_dir_all(&scratch).ok();
}
