//! `prem-serve`: a budgeted sweep service over the run-plan layer.
//!
//! The `serve` binary is a long-running front end: it reads
//! newline-delimited sweep requests on stdin, decodes each into an
//! [`OwnedRunRequest`] (the wire form of the plan layer's
//! [`RunRequest`](prem_harness::RunRequest)), and executes everything
//! through one shared
//! [`PlanExecutor`] — typically store-backed, so overlapping clients and
//! repeated batches dedup against each other and against every figure or
//! matrix artifact ever generated into the same cache.
//!
//! Execution is *budgeted*: requests queue, and each scheduler tick
//! dispatches at most `budget` **pool units** — the plan layer's unit of
//! live work, where a derivation family (policy/seed siblings replayed
//! from one captured run) counts once and a cached request counts zero.
//! The selection is free-rider aware:
//! once a family's representative is charged to the tick, every sibling
//! in the queue rides along free, and cached requests are always
//! admitted, so a tick's *dispatch count* can far exceed its unit
//! budget while its *live simulation cost* never does. Per tick the
//! service surfaces queue depth, wait and execution-latency counters
//! ([`TickMetrics`], one machine-parseable `key=value` line), and warns
//! when a tick's wall time blows the configured budget.
//!
//! Every tick also streams into an owned [`prem_obs::Registry`]: the
//! executor and store record through their `*_metered` entry points, and
//! the service layers its own `serve.*` counters (ticks, dispatches,
//! queue depth, tick latency) on top. The `stats` command returns the
//! full snapshot as a `metrics <json>` line alongside the classic
//! counters, and the binary can persist it via `--metrics`.
//!
//! Protocol (one command per line; blank lines and `#` comments
//! ignored):
//!
//! ```text
//! req <tag> v1 kernel=bicg:512x512 platform=tx1 work=llc-r8 t=163840
//!     seed=11 scenario=isolation noise=64x32      (one line on the wire)
//! flush        run budgeted ticks until the queue drains
//! stats        report service counters
//! quit         drain, then exit (EOF behaves the same)
//! ```
//!
//! Responses stream back on stdout as `out <tag> fp=<hex> …` summaries
//! ([`Response::line`]), optionally carrying the full codec-encoded
//! [`RunOutput`] as hex. Malformed input is a hard error — the service
//! refuses the whole session rather than guessing, the same contract as
//! the store and codec layers.

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::{HashSet, VecDeque};
use std::fmt;
use std::io;
use std::time::Instant;

use prem_core::codec::bad_data;
use prem_core::RunOutput;
use prem_harness::{OwnedRunRequest, PlanExecutor, PlanSummary, ResolvedRunRequest, RunSource};
use prem_obs::{kv_line, MetricsSink, Registry};

/// One parsed protocol command (see the crate docs for the grammar).
#[derive(Debug)]
pub enum Command {
    /// `req <tag> <request-line>`: queue a run request under a
    /// client-chosen tag (echoed on the response).
    Request {
        /// The client's correlation tag (no whitespace).
        tag: String,
        /// The decoded request.
        request: OwnedRunRequest,
    },
    /// `flush`: run budgeted ticks until the queue drains.
    Flush,
    /// `stats`: report service counters.
    Stats,
    /// `quit`: drain, then exit.
    Quit,
}

impl Command {
    /// Parses one protocol line. `Ok(None)` for blank lines and `#`
    /// comments; malformed or unknown input is a hard error.
    pub fn parse(line: &str) -> io::Result<Option<Command>> {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            return Ok(None);
        }
        match trimmed {
            "flush" => return Ok(Some(Command::Flush)),
            "stats" => return Ok(Some(Command::Stats)),
            "quit" => return Ok(Some(Command::Quit)),
            _ => {}
        }
        let rest = trimmed
            .strip_prefix("req ")
            .ok_or_else(|| bad_data(&format!("unknown command `{trimmed}`")))?;
        let (tag, request_line) = rest
            .trim_start()
            .split_once(char::is_whitespace)
            .ok_or_else(|| bad_data("req needs `<tag> <request-line>`"))?;
        if tag.is_empty() {
            return Err(bad_data("empty request tag"));
        }
        Ok(Some(Command::Request {
            tag: tag.to_string(),
            request: OwnedRunRequest::from_line(request_line)?,
        }))
    }
}

/// Service configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Pool units a tick may dispatch (≥ 1): live runs plus derivation
    /// families, with cached requests and family siblings free.
    pub budget: usize,
    /// Wall-clock budget per tick in milliseconds; a tick exceeding it
    /// sets [`TickMetrics::over_budget`] (and the metrics line warns).
    /// `None` disables the check.
    pub tick_budget_ms: Option<f64>,
    /// Worker threads the executor may use within one tick.
    pub workers: usize,
}

impl Default for ServeConfig {
    /// Four units per tick, one worker, no wall-clock budget.
    fn default() -> Self {
        ServeConfig {
            budget: 4,
            tick_budget_ms: None,
            workers: 1,
        }
    }
}

/// One queued request with its scheduling coordinates precomputed.
#[derive(Debug)]
struct Job {
    tag: String,
    resolved: ResolvedRunRequest,
    key: String,
    base_key: String,
    fingerprint: u64,
    replay_eligible: bool,
    arrival_tick: u64,
}

/// One response: the request's identity plus its output.
#[derive(Debug)]
pub struct Response {
    /// The client's correlation tag.
    pub tag: String,
    /// The request's canonical content key.
    pub key: String,
    /// The request's stable fingerprint.
    pub fingerprint: u64,
    /// The run's output.
    pub output: RunOutput,
}

impl Response {
    /// The stdout wire line: `out <tag> fp=<hex> kind=… <headline
    /// numbers>`, plus the full codec-encoded output as
    /// `data=<hex>` when `emit_output` is set.
    pub fn line(&self, emit_output: bool) -> String {
        let mut line = format!("out {} fp={:016x}", self.tag, self.fingerprint);
        match &self.output {
            RunOutput::Prem(run) => {
                line.push_str(&format!(
                    " kind=prem makespan_cycles={} cpmr={}",
                    run.makespan_cycles, run.cpmr
                ));
            }
            RunOutput::Baseline(run) => {
                line.push_str(&format!(" kind=base cycles={}", run.cycles));
            }
        }
        if emit_output {
            line.push_str(" data=");
            line.push_str(&to_hex(&self.output.encode()));
        }
        line
    }
}

/// Per-tick scheduling and latency counters, printed (on stderr) by the
/// binary as the service's heartbeat.
#[derive(Clone, Debug)]
pub struct TickMetrics {
    /// Tick sequence number (1-based).
    pub tick: u64,
    /// Requests dispatched this tick (free riders included).
    pub dispatched: usize,
    /// Pool units charged this tick (≤ the configured budget).
    pub units: usize,
    /// The configured unit budget, for display.
    pub budget: usize,
    /// Queue depth entering the tick.
    pub queue_before: usize,
    /// Queue depth leaving the tick.
    pub queue_after: usize,
    /// Longest wait (in ticks) among dispatched requests.
    pub max_wait_ticks: u64,
    /// Tick wall time, milliseconds.
    pub exec_ms: f64,
    /// Whether the tick's wall time blew the configured budget.
    pub over_budget: bool,
    /// The executor's summary for this tick's batch.
    pub summary: PlanSummary,
}

impl fmt::Display for TickMetrics {
    /// One `key=value` heartbeat line via [`prem_obs::kv_line`] — every
    /// field machine-parseable, including the overrun marker
    /// (`WARN=wall-clock-budget`), so log scrapers never regex free
    /// prose.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut pairs = vec![
            ("tick", self.tick.to_string()),
            ("dispatched", self.dispatched.to_string()),
            ("units", self.units.to_string()),
            ("budget", self.budget.to_string()),
            ("queue_before", self.queue_before.to_string()),
            ("queue_after", self.queue_after.to_string()),
            ("wait_max_ticks", self.max_wait_ticks.to_string()),
            ("exec_ms", format!("{:.1}", self.exec_ms)),
            ("requested", self.summary.requested.to_string()),
            ("unique", self.summary.executed.to_string()),
            ("elided", self.summary.elided.to_string()),
            ("cache_hits", self.summary.hits.to_string()),
            ("disk_hits", self.summary.disk_hits.to_string()),
            ("replayed", self.summary.replayed.to_string()),
            ("families", self.summary.families.to_string()),
            ("profile_hits", self.summary.profile_hits.to_string()),
            ("profile_misses", self.summary.profile_misses.to_string()),
        ];
        if self.over_budget {
            pairs.push(("WARN", "wall-clock-budget".to_string()));
        }
        f.write_str(&kv_line(pairs))
    }
}

/// The sweep service: a request queue in front of one shared
/// [`PlanExecutor`], drained in budgeted ticks.
#[derive(Debug)]
pub struct SweepService {
    executor: PlanExecutor,
    config: ServeConfig,
    metrics: Registry,
    pending: VecDeque<Job>,
    tick: u64,
    submitted: usize,
    dispatched: usize,
    totals: PlanSummary,
}

impl SweepService {
    /// A service draining through `executor` under `config`.
    ///
    /// # Panics
    ///
    /// Panics when `config.budget` is zero — a zero-unit tick can never
    /// drain a live request, so the configuration is a bug, not a mode.
    pub fn new(executor: PlanExecutor, config: ServeConfig) -> Self {
        assert!(config.budget >= 1, "tick budget must be at least one unit");
        SweepService {
            executor,
            config,
            metrics: Registry::new(),
            pending: VecDeque::new(),
            tick: 0,
            submitted: 0,
            dispatched: 0,
            totals: PlanSummary::default(),
        }
    }

    /// Queues one request under `tag`. Resolves the kernel through the
    /// registry — an unknown kernel identity is rejected here, before it
    /// can queue.
    pub fn submit(&mut self, tag: impl Into<String>, request: OwnedRunRequest) -> io::Result<()> {
        let resolved = request.resolve()?;
        let (key, base_key, fingerprint, replay_eligible) = {
            let req = resolved.request();
            (
                req.key(),
                req.base_key(),
                req.fingerprint(),
                req.replay_eligible(),
            )
        };
        self.pending.push_back(Job {
            tag: tag.into(),
            resolved,
            key,
            base_key,
            fingerprint,
            replay_eligible,
            arrival_tick: self.tick,
        });
        self.submitted += 1;
        self.metrics.add("serve.submitted", 1);
        Ok(())
    }

    /// Current queue depth.
    pub fn queue_depth(&self) -> usize {
        self.pending.len()
    }

    /// Session-cumulative plan summary over every tick served so far.
    pub fn totals(&self) -> &PlanSummary {
        &self.totals
    }

    /// One service counters line (the first `stats` reply line).
    pub fn stats_line(&self) -> String {
        format!(
            "stats ticks={} submitted={} dispatched={} queue={} {}",
            self.tick,
            self.submitted,
            self.dispatched,
            self.pending.len(),
            self.totals,
        )
    }

    /// The full registry snapshot as a `metrics <json>` wire line (the
    /// second `stats` reply line): every `serve.*`, `plan.*`, and
    /// `store.*` metric the session has touched.
    pub fn metrics_line(&self) -> String {
        format!("metrics {}", self.metrics.snapshot().to_json())
    }

    /// The service's metrics registry (executor, store, and `serve.*`
    /// series) — the binary persists its snapshot under `--metrics`.
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }

    /// Runs one budgeted tick: selects a batch from the queue head —
    /// charging one unit per live run or new derivation family, zero for
    /// cached requests and for siblings of a family already charged to
    /// this tick — executes it through the shared executor, and returns
    /// the tick's metrics and responses (in dispatch order).
    ///
    /// The unit prediction is exact, not approximate: the selection
    /// mirrors the executor's own frontier partition, and the tick
    /// asserts `summary.executed ≤ units` after the fact, so a scheduling
    /// bug fails loudly instead of silently overspending.
    pub fn tick(&mut self) -> (TickMetrics, Vec<Response>) {
        let t0 = Instant::now();
        self.tick += 1;
        let queue_before = self.pending.len();

        let mut selected: Vec<Job> = Vec::new();
        let mut units = 0usize;
        // Keys already admitted this tick (an identical key re-dispatches
        // free: the executor elides it) and base keys with a *live*
        // member charged this tick (an eligible sibling replays free).
        let mut keys: HashSet<String> = HashSet::new();
        let mut live_families: HashSet<String> = HashSet::new();
        let mut rest: VecDeque<Job> = VecDeque::new();
        for job in std::mem::take(&mut self.pending) {
            let free = keys.contains(&job.key)
                || (job.replay_eligible && live_families.contains(&job.base_key))
                || self.executor.cached(&job.key);
            if free || units < self.config.budget {
                if !free {
                    units += 1;
                    if job.replay_eligible {
                        live_families.insert(job.base_key.clone());
                    }
                }
                keys.insert(job.key.clone());
                selected.push(job);
            } else {
                rest.push_back(job);
            }
        }
        self.pending = rest;

        let requests: Vec<_> = selected.iter().map(|j| j.resolved.request()).collect();
        let summary = self
            .executor
            .execute_metered(&requests, self.config.workers, &self.metrics);
        assert!(
            summary.executed <= units,
            "tick scheduled {units} units but the executor ran {} live",
            summary.executed
        );
        let responses: Vec<Response> = selected
            .iter()
            .map(|job| Response {
                tag: job.tag.clone(),
                key: job.key.clone(),
                fingerprint: job.fingerprint,
                output: self.executor.output(&job.resolved.request()),
            })
            .collect();

        let max_wait_ticks = selected
            .iter()
            .map(|j| self.tick - 1 - j.arrival_tick)
            .max()
            .unwrap_or(0);
        self.dispatched += selected.len();
        self.totals += &summary;
        let exec_ms = t0.elapsed().as_secs_f64() * 1000.0;
        self.metrics.add("serve.ticks", 1);
        self.metrics.add("serve.dispatched", selected.len() as u64);
        self.metrics.observe(
            "serve.tick_ns",
            t0.elapsed().as_nanos().min(u64::MAX.into()) as u64,
        );
        self.metrics.observe("serve.wait_ticks", max_wait_ticks);
        self.metrics
            .gauge("serve.queue_depth", self.pending.len() as i64);
        let over_budget = self.config.tick_budget_ms.is_some_and(|b| exec_ms > b);
        if over_budget {
            self.metrics.add("serve.over_budget_ticks", 1);
        }
        let metrics = TickMetrics {
            tick: self.tick,
            dispatched: selected.len(),
            units,
            budget: self.config.budget,
            queue_before,
            queue_after: self.pending.len(),
            max_wait_ticks,
            exec_ms,
            over_budget,
            summary,
        };
        (metrics, responses)
    }

    /// Runs ticks until the queue drains, invoking `on_tick` after each,
    /// and returns the aggregate summary over the drained ticks (the
    /// `flush` barrier).
    pub fn drain(&mut self, mut on_tick: impl FnMut(&TickMetrics, &[Response])) -> PlanSummary {
        let mut agg = PlanSummary::default();
        while !self.pending.is_empty() {
            let (metrics, responses) = self.tick();
            agg += &metrics.summary;
            on_tick(&metrics, &responses);
        }
        agg
    }
}

/// Lowercase hex encoding (for `data=` output payloads).
pub fn to_hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

/// Inverse of [`to_hex`]; odd length or non-hex digits are hard errors.
pub fn from_hex(s: &str) -> io::Result<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return Err(bad_data("odd-length hex payload"));
    }
    (0..s.len())
        .step_by(2)
        .map(|i| {
            u8::from_str_radix(&s[i..i + 2], 16).map_err(|_| bad_data("non-hex payload digit"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use prem_core::{NoiseModel, RunWork};
    use prem_gpusim::Scenario;
    use prem_harness::wire::PlatformId;
    use prem_harness::MatrixScenario;
    use prem_kernels::KernelId;
    use prem_memsim::KIB;

    /// A quick bicg request; `t_kib` and `seed` steer its identity.
    fn request(t_kib: usize, seed: u64) -> OwnedRunRequest {
        OwnedRunRequest {
            kernel: KernelId::new("bicg", vec![128, 64]),
            platform: PlatformId::Tx1,
            policy: None,
            work: RunWork::PremLlc { r: 8 },
            t_bytes: t_kib * KIB,
            seed,
            scenario: MatrixScenario::Preset(Scenario::Isolation),
            noise: NoiseModel::off(),
        }
    }

    fn service(budget: usize) -> SweepService {
        SweepService::new(
            PlanExecutor::new(),
            ServeConfig {
                budget,
                ..ServeConfig::default()
            },
        )
    }

    #[test]
    fn command_grammar_parses_and_rejects() {
        assert!(Command::parse("").unwrap().is_none());
        assert!(Command::parse("# comment").unwrap().is_none());
        assert!(matches!(
            Command::parse("flush").unwrap(),
            Some(Command::Flush)
        ));
        assert!(matches!(
            Command::parse("stats").unwrap(),
            Some(Command::Stats)
        ));
        assert!(matches!(
            Command::parse("quit").unwrap(),
            Some(Command::Quit)
        ));
        let line = format!("req a1 {}", request(16, 1).to_line());
        match Command::parse(&line).unwrap() {
            Some(Command::Request { tag, request: req }) => {
                assert_eq!(tag, "a1");
                assert_eq!(req, request(16, 1));
            }
            other => panic!("parsed {other:?}"),
        }
        for bad in ["nope", "req", "req onlytag", "req t v1 kernel=?:1"] {
            assert!(Command::parse(bad).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn ticks_never_exceed_the_unit_budget() {
        let mut svc = service(2);
        // Five distinct derivation families (t is part of the base key).
        for (i, t) in [16, 24, 32, 40, 48].iter().enumerate() {
            svc.submit(format!("r{i}"), request(*t, 1)).unwrap();
        }
        let mut unit_counts = Vec::new();
        let agg = svc.drain(|m, _| {
            assert!(m.units <= 2, "tick {} used {} units", m.tick, m.units);
            assert_eq!(m.summary.executed, m.units);
            unit_counts.push(m.units);
        });
        assert_eq!(unit_counts, vec![2, 2, 1]);
        assert_eq!(agg.requested, 5);
        assert_eq!(agg.executed, 5);
        assert_eq!(svc.queue_depth(), 0);
    }

    #[test]
    fn family_siblings_ride_the_representative_for_one_unit() {
        let mut svc = service(1);
        // Same base key (seed is wildcarded): one family, three members.
        for seed in [1, 2, 3] {
            svc.submit(format!("s{seed}"), request(16, seed)).unwrap();
        }
        let (metrics, responses) = svc.tick();
        assert_eq!(metrics.dispatched, 3);
        assert_eq!(metrics.units, 1);
        assert_eq!(metrics.summary.executed, 1);
        assert_eq!(metrics.summary.replayed, 2);
        assert_eq!(responses.len(), 3);
        assert_eq!(svc.queue_depth(), 0);
    }

    #[test]
    fn cached_requests_cost_no_units_and_waits_are_counted() {
        let mut svc = service(1);
        svc.submit("a", request(16, 1)).unwrap();
        svc.submit("b", request(24, 1)).unwrap();
        let (first, _) = svc.tick();
        assert_eq!((first.units, first.queue_after), (1, 1));
        // Resubmitting the executed request is free; the queued `b`
        // (waiting one tick by now) takes the tick's single unit.
        svc.submit("a2", request(16, 1)).unwrap();
        let (second, responses) = svc.tick();
        assert_eq!(second.dispatched, 2);
        assert_eq!(second.units, 1);
        assert_eq!(second.summary.hits, 1);
        assert_eq!(second.max_wait_ticks, 1);
        assert!(responses.iter().any(|r| r.tag == "a2"));
    }

    #[test]
    fn wall_clock_budget_overrun_warns() {
        let mut svc = SweepService::new(
            PlanExecutor::new(),
            ServeConfig {
                budget: 1,
                tick_budget_ms: Some(0.0),
                workers: 1,
            },
        );
        svc.submit("a", request(16, 1)).unwrap();
        let (metrics, _) = svc.tick();
        assert!(metrics.over_budget);
        let line = metrics.to_string();
        assert!(line.contains("WARN=wall-clock-budget"), "line: {line}");
        assert!(line.starts_with("tick=1 dispatched=1 units=1 budget=1"));
        assert_eq!(
            svc.metrics().snapshot().counter("serve.over_budget_ticks"),
            Some(1)
        );
    }

    #[test]
    fn registry_snapshot_tracks_service_and_plan_series() {
        let mut svc = service(1);
        // One derivation family, two members: one live run, one replay.
        svc.submit("a", request(16, 1)).unwrap();
        svc.submit("b", request(16, 2)).unwrap();
        let agg = svc.drain(|_, _| {});
        assert_eq!((agg.executed, agg.replayed), (1, 1));
        let snap = svc.metrics().snapshot();
        assert_eq!(snap.counter("serve.ticks"), Some(1));
        assert_eq!(snap.counter("serve.submitted"), Some(2));
        assert_eq!(snap.counter("serve.dispatched"), Some(2));
        assert_eq!(snap.counter("plan.requested"), Some(2));
        assert_eq!(snap.counter("plan.live_runs"), Some(1));
        assert_eq!(snap.counter("plan.replayed"), Some(1));
        assert_eq!(snap.gauge("serve.queue_depth"), Some(0));
        assert!(snap.hist("serve.tick_ns").is_some_and(|h| h.count() == 1));
        assert!(snap.hist("plan.execute_ns").is_some());
        let line = svc.metrics_line();
        assert!(
            line.starts_with("metrics {\"schema\":\"prem-obs/v1\""),
            "line: {line}"
        );
    }

    #[test]
    fn hex_round_trips_and_rejects_garbage() {
        let bytes = vec![0x00, 0xff, 0x7a];
        assert_eq!(to_hex(&bytes), "00ff7a");
        assert_eq!(from_hex("00ff7a").unwrap(), bytes);
        assert!(from_hex("0f0").is_err());
        assert!(from_hex("zz").is_err());
    }

    #[test]
    fn responses_carry_decodable_outputs() {
        let mut svc = service(1);
        svc.submit("a", request(16, 1)).unwrap();
        let (_, responses) = svc.tick();
        let line = responses[0].line(true);
        let hex = line.split("data=").nth(1).expect("data payload");
        let decoded = RunOutput::decode(&from_hex(hex).unwrap()).unwrap();
        assert_eq!(decoded, responses[0].output);
    }

    #[test]
    #[should_panic(expected = "at least one unit")]
    fn zero_budget_is_rejected() {
        let _ = service(0);
    }
}
