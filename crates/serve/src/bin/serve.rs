//! The `serve` binary: a long-running, budgeted sweep service on stdin.
//!
//! ```text
//! serve [--budget N] [--tick-ms MS] [--workers N] [--emit-outputs]
//!       [executor flags: --cache/--no-cache/--cache-dir/--no-replay]
//! ```
//!
//! Reads protocol lines on stdin (see `prem_serve`), streams `out …`
//! responses on stdout, and heartbeats `[serve] tick=… key=value` metric
//! lines on stderr. `stats` replies with the classic counters line plus
//! the full registry snapshot (`metrics <json>`); under `--metrics` the
//! snapshot is also written to `<metrics-dir>/metrics.json` at exit.
//! The executor defaults to the shared persistent cache at
//! `results/.runcache`, so a served sweep deduplicates against every
//! artifact the `figures` binary ever generated — and a second identical
//! batch is pure disk hits, zero live simulation.
//!
//! Malformed input is a hard error: the process prints the offending
//! line and exits nonzero rather than guessing (the codec and store
//! contract). EOF and `quit` both drain the queue before exiting.

use std::io::{self, BufRead, Write};
use std::process::ExitCode;

use prem_harness::{ExecFlags, EXEC_FLAGS_HELP};
use prem_serve::{Command, Response, ServeConfig, SweepService, TickMetrics};

/// The usage listing (the only flag documentation for this binary).
fn usage() -> String {
    format!(
        "serve — budgeted sweep service on stdin (see ARCHITECTURE.md)\n\
         protocol: `req <tag> <request-line>` | flush | stats | quit\n\
         flags:\n\
           --budget <n>        pool units dispatched per tick (default 4)\n\
           --tick-ms <ms>      warn when a tick's wall time exceeds this\n\
           --workers <n>       executor worker threads per tick (default 1)\n\
           --emit-outputs      append data=<hex> full outputs to responses\n\
         executor flags (shared with figures and bench_matrix):\n{EXEC_FLAGS_HELP}\n"
    )
}

/// Parses the binary's own flags from the non-executor arguments.
fn parse_service_flags(rest: Vec<String>) -> Result<(ServeConfig, bool), String> {
    let mut config = ServeConfig::default();
    let mut emit_outputs = false;
    let mut it = rest.into_iter();
    while let Some(a) = it.next() {
        let mut take = |what: &str| it.next().ok_or_else(|| format!("{what} needs a value"));
        match a.as_str() {
            "--budget" => {
                config.budget = take("--budget")?
                    .parse()
                    .map_err(|_| "--budget needs a positive integer".to_string())?;
                if config.budget == 0 {
                    return Err("--budget must be at least 1".into());
                }
            }
            "--tick-ms" => {
                config.tick_budget_ms = Some(
                    take("--tick-ms")?
                        .parse()
                        .map_err(|_| "--tick-ms needs a number".to_string())?,
                );
            }
            "--workers" => {
                config.workers = take("--workers")?
                    .parse()
                    .map_err(|_| "--workers needs a positive integer".to_string())?;
                if config.workers == 0 {
                    return Err("--workers must be at least 1".into());
                }
            }
            "--emit-outputs" => emit_outputs = true,
            "--help" | "-h" => {
                print!("{}", usage());
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok((config, emit_outputs))
}

/// Prints one drained tick: responses to stdout, metrics to stderr.
fn report_tick(metrics: &TickMetrics, responses: &[Response], emit_outputs: bool) {
    let stdout = io::stdout();
    let mut out = stdout.lock();
    for r in responses {
        writeln!(out, "{}", r.line(emit_outputs)).expect("stdout write");
    }
    out.flush().expect("stdout flush");
    eprintln!("[serve] {metrics}");
}

fn main() -> ExitCode {
    let (flags, rest) = match ExecFlags::parse("results/.runcache", std::env::args().skip(1)) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("serve: {e}\n\n{}", usage());
            return ExitCode::from(2);
        }
    };
    let (config, emit_outputs) = match parse_service_flags(rest) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("serve: {e}\n\n{}", usage());
            return ExitCode::from(2);
        }
    };
    let executor = match flags.executor() {
        Ok(executor) => executor,
        Err(e) => {
            eprintln!(
                "serve: cannot open run cache at {}: {e}",
                flags.cache_dir.display()
            );
            return ExitCode::from(1);
        }
    };
    let mut service = SweepService::new(executor, config);

    let stdin = io::stdin();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(line) => line,
            Err(e) => {
                eprintln!("serve: stdin read failed: {e}");
                return ExitCode::from(1);
            }
        };
        let command = match Command::parse(&line) {
            Ok(None) => continue,
            Ok(Some(command)) => command,
            Err(e) => {
                eprintln!("serve: {e}\n  in line: {line}");
                return ExitCode::from(2);
            }
        };
        match command {
            Command::Request { tag, request } => {
                if let Err(e) = service.submit(tag, request) {
                    eprintln!("serve: {e}\n  in line: {line}");
                    return ExitCode::from(2);
                }
            }
            Command::Flush => {
                let agg = service.drain(|m, r| report_tick(m, r, emit_outputs));
                eprintln!("[serve] flush: {agg}");
            }
            Command::Stats => {
                println!("{}", service.stats_line());
                println!("{}", service.metrics_line());
            }
            Command::Quit => break,
        }
    }
    // EOF or quit: drain whatever is still queued, then report the
    // session-cumulative totals (not just the last drain — a stream that
    // already flushed would otherwise report an empty final summary).
    service.drain(|m, r| report_tick(m, r, emit_outputs));
    eprintln!("[serve] final: {}", service.totals());
    eprintln!("[serve] {}", service.stats_line());
    if flags.metrics_enabled() {
        match flags.write_metrics(service.metrics()) {
            Ok(path) => eprintln!("[serve] metrics snapshot: {}", path.display()),
            Err(e) => {
                eprintln!("serve: cannot write metrics snapshot: {e}");
                return ExitCode::from(1);
            }
        }
    }
    ExitCode::SUCCESS
}
