//! The acceptance property of the matrix engine: worker count must not
//! change a single byte of the artifacts.

use prem_harness::{run_matrix, MatrixPlatform, MatrixPolicy, MatrixSpec};
use prem_kernels::Bicg;

/// A small but non-trivial matrix: 2 kernels × 2 platforms × 2 policies ×
/// 2 scenarios × 2 seeds = 32 cells, enough for real work stealing.
fn spec() -> MatrixSpec {
    let mut spec = MatrixSpec::new(vec![
        Box::new(Bicg::new(128, 128)),
        Box::new(Bicg::new(192, 160)),
    ]);
    spec.platforms = vec![MatrixPlatform::tx1(), MatrixPlatform::generic(128, 4, 64)];
    spec.policies = vec![MatrixPolicy::VendorBiased, MatrixPolicy::Lru];
    spec.seeds = vec![11, 23];
    spec
}

#[test]
fn csv_bytes_identical_at_any_worker_count() {
    let sequential = run_matrix(&spec(), 1);
    for workers in [2, 4, 7] {
        let parallel = run_matrix(&spec(), workers);
        assert_eq!(
            sequential.to_csv(),
            parallel.to_csv(),
            "CSV differs at {workers} workers"
        );
        assert_eq!(
            sequential.render(),
            parallel.render(),
            "rendered tables differ at {workers} workers"
        );
    }
}

#[test]
fn cells_are_bitwise_equal_not_just_formatted_equal() {
    let a = run_matrix(&spec(), 1);
    let b = run_matrix(&spec(), 5);
    assert_eq!(a.cells(), b.cells());
}

#[test]
fn biased_policy_is_more_interference_sensitive_than_lru() {
    // A sanity check that the matrix measures what it claims: on the TX1
    // cells, the vendor policy's PREM runs show a CPMR at least as high as
    // LRU's (the taming problem exists), and every isolated run respects
    // its envelope.
    let result = run_matrix(&spec(), 4);
    for c in result.cells() {
        assert!(
            c.violation_us <= c.envelope_us,
            "violation exceeds the envelope itself"
        );
    }
}
