//! Property tests on the owned wire form of run requests.
//!
//! The wire contract has two halves. **Codec identity**: an
//! [`OwnedRunRequest`] must survive encode → decode (binary) and
//! to_line → from_line (text) exactly, and re-encoding the decoded value
//! must reproduce the original bytes. **Identity preservation**: an
//! owned request taken from a borrowed one must resolve back to a
//! request with the same canonical `key()`, `base_key()` and
//! `fingerprint()` — the content-addressed cache, store and replay
//! layers must not be able to tell which side of a pipe a request was
//! born on. Both halves are sampled across the real coordinate space:
//! registered kernels, all platform identities, every policy and work
//! mode, presets and mixes (bursty parameters included), with
//! truncation rejection checked at a case-derived cut point.

use proptest::prelude::*;
use proptest::test_runner::ProptestConfig;

use prem_core::{NoiseModel, RunWork};
use prem_gpusim::{CorunnerProfile, Scenario};
use prem_harness::wire::PlatformId;
use prem_harness::{
    CorunnerMix, MatrixPolicy, MatrixScenario, OwnedRunRequest, PlatformSpec, RunRequest,
};
use prem_kernels::KernelId;
use prem_memsim::KIB;

/// The sampled kernel identities (registered, dimension-valid).
fn kernel_pool() -> Vec<KernelId> {
    vec![
        KernelId::new("bicg", vec![128, 64]),
        KernelId::new("mvt", vec![128]),
        KernelId::new("gemm", vec![96, 64, 32]),
        KernelId::new("jacobi2d", vec![64, 2]),
    ]
}

/// The sampled platform identities.
fn platform_pool() -> Vec<PlatformId> {
    vec![
        PlatformId::Tx1,
        PlatformId::Tx2,
        PlatformId::XavierLike,
        PlatformId::Generic {
            llc_kib: 256,
            ways: 8,
            spm_kib: 64,
        },
    ]
}

/// Builds the sampled scenario: presets, then mixes of growing shape,
/// including one with a parameterized bursty actor.
fn scenario(which: usize, duty_steps: u64) -> MatrixScenario {
    match which {
        0 => MatrixScenario::Preset(Scenario::Isolation),
        1 => MatrixScenario::Preset(Scenario::Interference),
        2 => MatrixScenario::Mix(CorunnerMix::new("0xmembomb", vec![])),
        3 => MatrixScenario::Mix(CorunnerMix::uniform(2, CorunnerProfile::Membomb)),
        4 => MatrixScenario::Mix(CorunnerMix::new(
            "stream-pair",
            vec![CorunnerProfile::Stream, CorunnerProfile::CacheThrash],
        )),
        _ => MatrixScenario::Mix(CorunnerMix::new(
            "1xbursty",
            vec![CorunnerProfile::Bursty {
                duty: duty_steps as f64 / 16.0,
                period_cycles: 500.0 + duty_steps as f64 * 37.5,
            }],
        )),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn wire_forms_roundtrip_and_preserve_identity(
        (kernel, platform) in (
            proptest::sample::select(kernel_pool()),
            proptest::sample::select(platform_pool()),
        ),
        (policy_tag, mode, r) in (0usize..8, 0usize..3, 1u32..9),
        t_kib in proptest::sample::select(vec![16usize, 32, 64]),
        seed in 0u64..1000,
        (scenario_tag, duty_steps) in (0usize..6, 0u64..17),
        noisy in 0usize..2,
    ) {
        let owned = OwnedRunRequest {
            kernel,
            platform,
            policy: policy_tag
                .checked_sub(1)
                .map(|i| MatrixPolicy::what_if_axis()[i]),
            work: match mode {
                0 => RunWork::PremLlc { r },
                1 => RunWork::PremSpm,
                _ => RunWork::Baseline,
            },
            t_bytes: t_kib * KIB,
            seed,
            scenario: scenario(scenario_tag, duty_steps),
            noise: if noisy == 0 {
                NoiseModel::off()
            } else {
                NoiseModel::tx1()
            },
        };

        // Binary codec: decode(encode(x)) == x, and re-encoding is
        // byte-identical (the canonical-form property).
        let bytes = owned.encode();
        let back = OwnedRunRequest::decode(&bytes).expect("decode of untouched bytes");
        prop_assert_eq!(&back, &owned);
        prop_assert_eq!(back.encode(), bytes.clone());

        // Line codec: from_line(to_line(x)) == x.
        let line = owned.to_line();
        let from_line = OwnedRunRequest::from_line(&line)
            .unwrap_or_else(|e| panic!("line `{line}` rejected: {e}"));
        prop_assert_eq!(&from_line, &owned);

        // Truncation at any strict prefix is a hard error; the cut point
        // is case-derived so the sweep covers the whole layout.
        let cut = (seed as usize).wrapping_mul(7919) % bytes.len();
        prop_assert!(
            OwnedRunRequest::decode(&bytes[..cut]).is_err(),
            "truncation at {} of {} decoded successfully", cut, bytes.len()
        );

        // Identity preservation: the borrowed request built by hand from
        // the same coordinates and the resolved owned request agree on
        // key, base key and fingerprint; `of` inverts `resolve`.
        let resolved = owned.clone().resolve().expect("registered kernel");
        let kernel_instance = owned.kernel.instantiate().expect("registered kernel");
        let mut platform_spec =
            PlatformSpec::new(owned.platform.name(), owned.platform.config());
        platform_spec.policy = owned.policy;
        let borrowed = RunRequest {
            kernel: kernel_instance.as_ref(),
            platform: platform_spec,
            work: owned.work,
            t_bytes: owned.t_bytes,
            seed: owned.seed,
            scenario: owned.scenario.clone(),
            noise: owned.noise,
        };
        prop_assert_eq!(resolved.request().key(), borrowed.key());
        prop_assert_eq!(resolved.request().base_key(), borrowed.base_key());
        prop_assert_eq!(resolved.request().fingerprint(), borrowed.fingerprint());
        prop_assert_eq!(&OwnedRunRequest::of(&borrowed).expect("wire-able"), &owned);
    }
}

/// Corruption of the scalar wire fields must not pass unnoticed: a
/// mutated byte either fails decoding or decodes to a *different*
/// request — never silently back to the original.
#[test]
fn flipped_bytes_never_alias_the_original() {
    let owned = OwnedRunRequest {
        kernel: KernelId::new("bicg", vec![128, 64]),
        platform: PlatformId::Tx1,
        policy: Some(MatrixPolicy::Lru),
        work: RunWork::PremLlc { r: 8 },
        t_bytes: 16 * KIB,
        seed: 11,
        scenario: MatrixScenario::Preset(Scenario::Isolation),
        noise: NoiseModel::tx1(),
    };
    let bytes = owned.encode();
    for i in 0..bytes.len() {
        let mut damaged = bytes.clone();
        damaged[i] ^= 0x01;
        if let Ok(back) = OwnedRunRequest::decode(&damaged) {
            assert_ne!(back, owned, "bit flip at {i} decoded to the original");
        }
    }
}
