//! The profile-memo layer's equivalence contracts:
//!
//! * **profile-key boundary** — the profile key wildcards *exactly* the
//!   scenario slot (proptest over the coordinate axes): scenario siblings
//!   share one key, while policy, seed, interval size, noise model, work
//!   mode and kernel identity all separate keys, and the baseline (which
//!   never profiles) has none;
//! * **memo transparency** — a memo-enabled executor produces
//!   bit-identical outputs to a memo-disabled one at any worker count,
//!   and its summary charges exactly one profiling pass per distinct key;
//! * **replay × memo** — the composed fast path (replay families fed by
//!   memoized profiles) still matches direct execution field for field.

use proptest::prelude::*;

use prem_core::{NoiseModel, RunWork};
use prem_gpusim::{CorunnerProfile, Scenario};
use prem_harness::{
    CorunnerMix, Direct, MatrixPolicy, MatrixScenario, PlanExecutor, PlatformSpec, RunRequest,
    RunSource,
};
use prem_kernels::{Bicg, Kernel};
use prem_memsim::KIB;

/// The coordinate space the profile-key proptest draws from. Unlike the
/// replay suite's space this one also varies the noise model: the
/// profiling pass injects noise into the profiled C stream, so noise must
/// *not* be wildcarded (only the scenario is — see
/// [`RunRequest::profile_key`]).
#[derive(Clone, Debug)]
struct Coord {
    policy: Option<MatrixPolicy>,
    work: RunWork,
    t_kib: usize,
    seed: u64,
    scenario_pick: usize,
    noisy: bool,
    small_kernel: bool,
}

fn scenario(pick: usize) -> MatrixScenario {
    match pick {
        0 => MatrixScenario::Preset(Scenario::Isolation),
        1 => MatrixScenario::Preset(Scenario::Interference),
        2 => MatrixScenario::Mix(CorunnerMix::uniform(2, CorunnerProfile::Membomb)),
        _ => MatrixScenario::Mix(CorunnerMix::uniform(1, CorunnerProfile::CacheThrash)),
    }
}

fn coord() -> impl Strategy<Value = Coord> {
    (
        prop::sample::select(vec![
            None,
            Some(MatrixPolicy::VendorBiased),
            Some(MatrixPolicy::Lru),
            Some(MatrixPolicy::Srrip),
        ]),
        prop::sample::select(vec![
            RunWork::PremLlc { r: 4 },
            RunWork::PremLlc { r: 8 },
            RunWork::Baseline,
            RunWork::PremSpm,
        ]),
        prop::sample::select(vec![32usize, 160]),
        prop::sample::select(vec![11u64, 23]),
        0usize..4,
        // Two booleans in one draw: bit 0 = noisy, bit 1 = small kernel.
        0u8..4,
    )
        .prop_map(|(policy, work, t_kib, seed, scenario_pick, bits)| Coord {
            policy,
            work,
            t_kib,
            seed,
            scenario_pick,
            noisy: bits & 1 != 0,
            small_kernel: bits & 2 != 0,
        })
}

fn build<'k>(c: &Coord, small: &'k dyn Kernel, large: &'k dyn Kernel) -> RunRequest<'k> {
    let mut platform = PlatformSpec::tx1();
    if let Some(p) = c.policy {
        platform = platform.with_policy(p);
    }
    RunRequest {
        kernel: if c.small_kernel { small } else { large },
        platform,
        work: c.work,
        t_bytes: c.t_kib * KIB,
        seed: c.seed,
        scenario: scenario(c.scenario_pick),
        noise: if c.noisy {
            NoiseModel::tx1()
        } else {
            NoiseModel::off()
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Profile keys are injective over every coordinate *except* the
    /// scenario: two PREM requests share a profile key exactly when they
    /// agree on policy, seed, work, interval size, noise model and kernel
    /// — scenario siblings always collapse onto one key, and the baseline
    /// never has one. Noise stays key-separating on purpose: the
    /// profiling pass feeds noise into the profiled C stream, so two
    /// noise levels profile different cache trajectories.
    #[test]
    fn profile_key_wildcards_exactly_the_scenario_axis(
        a in coord(),
        b in coord(),
    ) {
        let small = Bicg::new(96, 96);
        let large = Bicg::new(128, 128);
        let ra = build(&a, &small, &large);
        let rb = build(&b, &small, &large);

        prop_assert_eq!(
            ra.profile_key().is_none(),
            matches!(a.work, RunWork::Baseline)
        );
        prop_assert_eq!(
            rb.profile_key().is_none(),
            matches!(b.work, RunWork::Baseline)
        );

        if let (Some(ka), Some(kb)) = (ra.profile_key(), rb.profile_key()) {
            let same = a.policy == b.policy
                && a.work == b.work
                && a.t_kib == b.t_kib
                && a.seed == b.seed
                && a.noisy == b.noisy
                && a.small_kernel == b.small_kernel;
            prop_assert_eq!(ka == kb, same);
        }
    }

    /// Memo transparency over arbitrary plans: whatever the composition,
    /// the memo-enabled executor's outputs are bit-identical to the
    /// memo-disabled executor's, and hits + misses add up to the executed
    /// PREM units.
    #[test]
    fn memoized_plan_is_bit_identical_to_memo_disabled(
        coords in prop::collection::vec(coord(), 1..8),
    ) {
        let small = Bicg::new(96, 96);
        let large = Bicg::new(128, 128);
        let requests: Vec<RunRequest<'_>> =
            coords.iter().map(|c| build(c, &small, &large)).collect();

        let memoized = PlanExecutor::new();
        let summary = memoized.execute(&requests, 2);
        let plain = PlanExecutor::new().without_profile_memo();
        let plain_summary = plain.execute(&requests, 2);

        prop_assert_eq!(plain_summary.profile_hits, 0);
        prop_assert_eq!(plain_summary.profile_misses, 0);
        prop_assert!(summary.profile_misses <= summary.profile_hits + summary.profile_misses);
        for req in &requests {
            prop_assert_eq!(memoized.output(req), plain.output(req));
        }
    }
}

/// A scenario-sibling grid: `policies × seeds × scenarios` PREM cells
/// plus one baseline cell.
fn sibling_grid(kernel: &dyn Kernel) -> Vec<RunRequest<'_>> {
    let mut requests = Vec::new();
    for policy in [MatrixPolicy::VendorBiased, MatrixPolicy::Lru] {
        for seed in [11u64, 23] {
            for pick in 0..3 {
                requests.push(RunRequest {
                    kernel,
                    platform: PlatformSpec::tx1().with_policy(policy),
                    work: RunWork::PremLlc { r: 8 },
                    t_bytes: 32 * KIB,
                    seed,
                    scenario: scenario(pick),
                    noise: NoiseModel::tx1(),
                });
            }
        }
    }
    requests.push(RunRequest {
        kernel,
        platform: PlatformSpec::tx1(),
        work: RunWork::Baseline,
        t_bytes: 32 * KIB,
        seed: 11,
        scenario: MatrixScenario::Preset(Scenario::Isolation),
        noise: NoiseModel::tx1(),
    });
    requests
}

#[test]
fn scenario_siblings_charge_exactly_one_profiling_pass_per_key() {
    // 2 policies × 2 seeds × 3 scenarios = 12 PREM cells over 4 distinct
    // profile keys (the scenario is wildcarded), plus one baseline cell
    // that never profiles. Replay is disabled so every cell executes live
    // and the accounting is per-request; the summary must charge exactly
    // 4 passes however many workers run the plan.
    let k = Bicg::new(96, 96);
    let requests = sibling_grid(&k);

    let reference: Vec<_> = {
        let e = PlanExecutor::new().without_replay().without_profile_memo();
        e.execute(&requests, 1);
        requests.iter().map(|r| e.output(r)).collect()
    };
    for workers in [1, 2, 5] {
        let e = PlanExecutor::new().without_replay();
        let summary = e.execute(&requests, workers);
        assert_eq!(summary.executed, requests.len(), "workers={workers}");
        assert_eq!(summary.profile_misses, 4, "workers={workers}");
        assert_eq!(summary.profile_hits, 8, "workers={workers}");
        for (req, expect) in requests.iter().zip(&reference) {
            assert_eq!(
                &e.output(req),
                expect,
                "memoized output drifted at workers={workers} for {}",
                req.key()
            );
        }
    }
}

#[test]
fn summary_line_reports_profile_counters() {
    let k = Bicg::new(96, 96);
    let e = PlanExecutor::new().without_replay();
    let summary = e.execute(&sibling_grid(&k), 2);
    let line = summary.to_string();
    assert!(line.contains(" profile-hits=8"), "{line}");
    assert!(line.ends_with("profile-misses=4"), "{line}");
}

#[test]
fn replay_with_memo_matches_direct_field_for_field() {
    // The fully-compiled path: a policy × seed column collapses into one
    // replay family *and* its single live representative profiles through
    // the memo. Every derived output must still match a direct,
    // memo-less execution of that exact request — compared field by
    // field, so a drift in any PREM observable names itself.
    let k = Bicg::new(96, 96);
    let mut column = Vec::new();
    for policy in [
        MatrixPolicy::VendorBiased,
        MatrixPolicy::Lru,
        MatrixPolicy::Random,
    ] {
        for seed in [11u64, 23] {
            column.push(RunRequest {
                kernel: &k,
                platform: PlatformSpec::tx1().with_policy(policy),
                work: RunWork::PremLlc { r: 8 },
                t_bytes: 160 * KIB,
                seed,
                scenario: MatrixScenario::Preset(Scenario::Isolation),
                noise: NoiseModel::tx1(),
            });
        }
    }
    let executor = PlanExecutor::new();
    let summary = executor.execute(&column, 2);
    assert_eq!(summary.families, 1);
    assert_eq!(summary.executed, 1, "one live representative");
    assert_eq!(
        summary.profile_misses, 1,
        "the family's one live unit charges one pass"
    );

    for req in &column {
        let replayed = executor.output(req).prem();
        let direct = Direct.output(req).prem();
        assert_eq!(replayed.intervals, direct.intervals, "{}", req.key());
        assert_eq!(replayed.breakdown, direct.breakdown, "{}", req.key());
        assert_eq!(
            replayed.makespan_cycles,
            direct.makespan_cycles,
            "{}",
            req.key()
        );
        assert_eq!(
            replayed.budget_envelope_cycles,
            direct.budget_envelope_cycles,
            "{}",
            req.key()
        );
        assert_eq!(replayed.budgets, direct.budgets, "{}", req.key());
        assert_eq!(replayed.llc, direct.llc, "{}", req.key());
        assert_eq!(replayed.cpmr, direct.cpmr, "{}", req.key());
        assert_eq!(
            replayed.prefetch_hits,
            direct.prefetch_hits,
            "{}",
            req.key()
        );
        assert_eq!(
            replayed.prefetch_misses,
            direct.prefetch_misses,
            "{}",
            req.key()
        );
        assert_eq!(
            replayed.max_rounds_used,
            direct.max_rounds_used,
            "{}",
            req.key()
        );
        assert_eq!(
            replayed.budget_violation_cycles,
            direct.budget_violation_cycles,
            "{}",
            req.key()
        );
        assert_eq!(
            replayed.interval_timings,
            direct.interval_timings,
            "{}",
            req.key()
        );
        assert_eq!(replayed.bus, direct.bus, "{}", req.key());
        assert_eq!(
            replayed.polluted_lines,
            direct.polluted_lines,
            "{}",
            req.key()
        );
    }
}
