//! Property tests on the persistent run store and its payload codec.
//!
//! The store's contract is *identity or loud failure*: an output that
//! goes through encode → disk → decode must come back bit-identical, and
//! any damage to the bytes — truncation anywhere, a flipped bit — must
//! either fail decoding outright or (at the codec layer, which carries no
//! checksum of its own) decode to a *different* value that the store's
//! per-record checksum would have rejected. These properties are sampled
//! over the real coordinate space: every execution mode, a spread of
//! seeds, interval sizes and scenarios.

use std::path::PathBuf;

use proptest::prelude::*;
use proptest::test_runner::ProptestConfig;

use prem_core::{NoiseModel, RunOutput, RunWork};
use prem_gpusim::Scenario;
use prem_harness::{MatrixScenario, PlatformSpec, RunRequest, RunStore};
use prem_kernels::Bicg;
use prem_memsim::KIB;

/// A fresh per-invocation scratch directory under the system temp dir.
fn scratch_dir(tag: &str, case: u64) -> PathBuf {
    std::env::temp_dir().join(format!(
        "prem-store-prop-{}-{tag}-{case}",
        std::process::id()
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn outputs_roundtrip_and_damage_is_detected(
        seed in 0u64..64,
        r in 1u32..9,
        mode in 0usize..3,
        iso in 0usize..2,
        t_kib in proptest::sample::select(vec![16usize, 32, 48]),
    ) {
        let bicg = Bicg::new(64, 64);
        let work = match mode {
            0 => RunWork::PremLlc { r },
            1 => RunWork::PremSpm,
            _ => RunWork::Baseline,
        };
        let req = RunRequest {
            kernel: &bicg,
            platform: PlatformSpec::tx1(),
            work,
            t_bytes: t_kib * KIB,
            seed,
            scenario: MatrixScenario::Preset(if iso == 0 {
                Scenario::Isolation
            } else {
                Scenario::Interference
            }),
            noise: NoiseModel::tx1(),
        };
        let out = req.execute();

        // Codec identity: encode → decode is bit-exact.
        let bytes = out.encode();
        let back = RunOutput::decode(&bytes).expect("decode of untouched bytes");
        prop_assert_eq!(&back, &out);

        // Truncation at any strict prefix is a decode error (the cut
        // point is derived from the case coordinates, so the sweep
        // covers header, body and tail cuts across cases).
        let cut = (seed as usize).wrapping_mul(7919) % bytes.len();
        prop_assert!(
            RunOutput::decode(&bytes[..cut]).is_err(),
            "truncation at {} of {} decoded successfully", cut, bytes.len()
        );

        // A flipped bit can never silently decode back to the original:
        // either the decoder rejects it, or it yields a different value
        // (which the store's per-record payload checksum catches before
        // the codec ever sees it).
        let pos = (seed as usize).wrapping_mul(104729) % bytes.len();
        let mut flipped = bytes.clone();
        flipped[pos] ^= 1 << (seed % 8);
        if let Ok(other) = RunOutput::decode(&flipped) {
            prop_assert!(
                other != out,
                "bit flip at byte {} decoded back to the original", pos
            );
        }

        // Store round-trip across handles: append under the canonical
        // key, reopen (≈ a new process), read back bit-identical.
        let dir = scratch_dir("roundtrip", seed ^ (r as u64) << 32 ^ (mode as u64) << 40);
        std::fs::remove_dir_all(&dir).ok();
        let key = req.key();
        let store = RunStore::open(&dir).expect("open store");
        prop_assert_eq!(store.append([(key.as_str(), &out)]).expect("append"), 1);
        let reopened = RunStore::open(&dir).expect("reopen store");
        prop_assert_eq!(reopened.get(&key).expect("get"), Some(out));
        prop_assert_eq!(reopened.verify().expect("verify").records, 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
