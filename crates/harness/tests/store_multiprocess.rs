//! Two-process shared-store smoke test.
//!
//! The store's multi-process story — per-shard advisory file locks, and
//! append as re-read + merge + atomic rename — is exercised for real
//! here: the test re-invokes its own test binary twice concurrently
//! (filtered to [`writer_role`], activated by the `PREM_STORE_WRITER`
//! env var), each child appending into one shared store directory. Both
//! children write the *same* deterministic run under a shared key (the
//! raced-duplicate path: identical bytes must merge silently) plus one
//! private key each; the parent then verifies every record landed and
//! the store passes a full integrity pass.
//!
//! [`replay_derived_outputs_cross_the_process_boundary`] extends the
//! story to the derivation layer: outputs a replay-enabled executor
//! *derived* (rather than executed) in one process are ordinary disk
//! hits in the next, and still match direct execution.

use std::path::PathBuf;
use std::process::Command;

use prem_core::{NoiseModel, RunOutput, RunWork};
use prem_gpusim::Scenario;
use prem_harness::{
    Direct, MatrixPolicy, MatrixScenario, PlanExecutor, PlatformSpec, RunRequest, RunSource,
    RunStore,
};
use prem_kernels::Bicg;
use prem_memsim::KIB;

/// A small deterministic run; `r` distinguishes writers' private outputs.
fn sample(r: u32) -> (String, RunOutput) {
    let bicg = Bicg::new(64, 64);
    let req = RunRequest {
        kernel: &bicg,
        platform: PlatformSpec::tx1(),
        work: RunWork::PremLlc { r },
        t_bytes: 32 * KIB,
        seed: 11,
        scenario: MatrixScenario::Preset(Scenario::Isolation),
        noise: NoiseModel::tx1(),
    };
    (req.key(), req.execute())
}

/// Child-process body: a no-op under a normal `cargo test` run, a store
/// writer when re-invoked by [`two_processes_share_one_store`].
#[test]
fn writer_role() {
    let Ok(spec) = std::env::var("PREM_STORE_WRITER") else {
        return;
    };
    let (dir, id) = spec.rsplit_once(';').expect("spec is '<dir>;<id>'");
    let id: u32 = id.parse().expect("writer id");
    let store = RunStore::open(dir).expect("child: open shared store");
    let (shared_key, shared_out) = sample(8); // identical in both writers
    let (own_key, own_out) = sample(id); // private per writer
    store
        .append([
            (shared_key.as_str(), &shared_out),
            (own_key.as_str(), &own_out),
        ])
        .expect("child: append");
    assert_eq!(
        store.get(&shared_key).expect("child: get"),
        Some(shared_out)
    );
}

/// A small derivation family: one base key, three policies × two seeds.
fn family(kernel: &Bicg) -> Vec<RunRequest<'_>> {
    let mut reqs = Vec::new();
    for policy in [
        MatrixPolicy::VendorBiased,
        MatrixPolicy::Lru,
        MatrixPolicy::Random,
    ] {
        for seed in [11u64, 23] {
            reqs.push(RunRequest {
                kernel,
                platform: PlatformSpec::tx1().with_policy(policy),
                work: RunWork::PremLlc { r: 8 },
                t_bytes: 32 * KIB,
                seed,
                scenario: MatrixScenario::Preset(Scenario::Isolation),
                noise: NoiseModel::tx1(),
            });
        }
    }
    reqs
}

/// Child-process body for the replay test: executes the derivation family
/// through a store-backed, replay-enabled executor, appending every
/// output — one live, the rest derived — to the shared store.
#[test]
fn replay_writer_role() {
    let Ok(dir) = std::env::var("PREM_STORE_REPLAY_WRITER") else {
        return;
    };
    let kernel = Bicg::new(64, 64);
    let column = family(&kernel);
    let executor = PlanExecutor::new().with_store(RunStore::open(&dir).expect("child: open store"));
    let summary = executor.execute(&column, 2);
    assert_eq!(summary.families, 1, "child: one derivation family");
    assert_eq!(summary.executed, 1, "child: one live representative");
    assert_eq!(summary.replayed, column.len() - 1);
}

#[test]
fn replay_derived_outputs_cross_the_process_boundary() {
    // A replay-derived output appended by one process must be a plain
    // disk hit in another: the store draws no distinction between live
    // and derived records, because they are bit-identical by the replay
    // equivalence contract — which the direct-execution comparison below
    // re-proves across the process boundary.
    if std::env::var("PREM_STORE_WRITER").is_ok()
        || std::env::var("PREM_STORE_REPLAY_WRITER").is_ok()
    {
        return; // we *are* a writer child
    }
    let dir: PathBuf =
        std::env::temp_dir().join(format!("prem-store-replay-proc-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create shared dir");

    let exe = std::env::current_exe().expect("test binary path");
    let status = Command::new(&exe)
        .args(["replay_writer_role", "--exact", "--nocapture"])
        .env("PREM_STORE_REPLAY_WRITER", dir.display().to_string())
        .status()
        .expect("run replay writer child");
    assert!(status.success(), "replay writer child failed: {status}");

    let kernel = Bicg::new(64, 64);
    let column = family(&kernel);
    let reader =
        PlanExecutor::new().with_store(RunStore::open(&dir).expect("parent: reopen store"));
    let summary = reader.execute(&column, 2);
    assert_eq!(
        (summary.executed, summary.replayed, summary.hits),
        (0, 0, 0),
        "parent: the whole family must come off disk"
    );
    assert_eq!(summary.disk_hits, column.len());
    for req in &column {
        assert_eq!(
            reader.output(req),
            Direct.output(req),
            "derived record from the writer process diverged from direct \
             execution for {}",
            req.key()
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn two_processes_share_one_store() {
    if std::env::var("PREM_STORE_WRITER").is_ok() {
        return; // we *are* a writer child; only writer_role works here
    }
    let dir: PathBuf =
        std::env::temp_dir().join(format!("prem-store-multiproc-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create shared dir");

    let exe = std::env::current_exe().expect("test binary path");
    let spawn = |id: u32| {
        Command::new(&exe)
            .args(["writer_role", "--exact", "--nocapture"])
            .env("PREM_STORE_WRITER", format!("{};{id}", dir.display()))
            .spawn()
            .expect("spawn writer child")
    };
    // Both children run concurrently: their appends race on the same
    // segment files and must serialize through the advisory locks.
    let mut children = [spawn(1), spawn(2)];
    for child in &mut children {
        let status = child.wait().expect("wait for writer child");
        assert!(status.success(), "writer child failed: {status}");
    }

    let store = RunStore::open(&dir).expect("parent: open shared store");
    // 3 distinct keys: the shared one (written twice, identical bytes —
    // merged, not duplicated, not conflicting) and one per writer.
    let stats = store.verify().expect("parent: full integrity pass");
    assert_eq!(stats.records, 3, "expected shared + 2 private records");
    let (shared_key, shared_out) = sample(8);
    assert_eq!(store.get(&shared_key).expect("get"), Some(shared_out));
    for id in [1, 2] {
        let (key, out) = sample(id);
        assert_eq!(
            store.get(&key).expect("get"),
            Some(out),
            "writer {id}'s record"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
