//! Two-process shared-store smoke test.
//!
//! The store's multi-process story — per-shard advisory file locks, and
//! append as re-read + merge + atomic rename — is exercised for real
//! here: the test re-invokes its own test binary twice concurrently
//! (filtered to [`writer_role`], activated by the `PREM_STORE_WRITER`
//! env var), each child appending into one shared store directory. Both
//! children write the *same* deterministic run under a shared key (the
//! raced-duplicate path: identical bytes must merge silently) plus one
//! private key each; the parent then verifies every record landed and
//! the store passes a full integrity pass.

use std::path::PathBuf;
use std::process::Command;

use prem_core::{NoiseModel, RunOutput, RunWork};
use prem_gpusim::Scenario;
use prem_harness::{MatrixScenario, PlatformSpec, RunRequest, RunStore};
use prem_kernels::Bicg;
use prem_memsim::KIB;

/// A small deterministic run; `r` distinguishes writers' private outputs.
fn sample(r: u32) -> (String, RunOutput) {
    let bicg = Bicg::new(64, 64);
    let req = RunRequest {
        kernel: &bicg,
        platform: PlatformSpec::tx1(),
        work: RunWork::PremLlc { r },
        t_bytes: 32 * KIB,
        seed: 11,
        scenario: MatrixScenario::Preset(Scenario::Isolation),
        noise: NoiseModel::tx1(),
    };
    (req.key(), req.execute())
}

/// Child-process body: a no-op under a normal `cargo test` run, a store
/// writer when re-invoked by [`two_processes_share_one_store`].
#[test]
fn writer_role() {
    let Ok(spec) = std::env::var("PREM_STORE_WRITER") else {
        return;
    };
    let (dir, id) = spec.rsplit_once(';').expect("spec is '<dir>;<id>'");
    let id: u32 = id.parse().expect("writer id");
    let store = RunStore::open(dir).expect("child: open shared store");
    let (shared_key, shared_out) = sample(8); // identical in both writers
    let (own_key, own_out) = sample(id); // private per writer
    store
        .append([
            (shared_key.as_str(), &shared_out),
            (own_key.as_str(), &own_out),
        ])
        .expect("child: append");
    assert_eq!(
        store.get(&shared_key).expect("child: get"),
        Some(shared_out)
    );
}

#[test]
fn two_processes_share_one_store() {
    if std::env::var("PREM_STORE_WRITER").is_ok() {
        return; // we *are* a writer child; only writer_role works here
    }
    let dir: PathBuf =
        std::env::temp_dir().join(format!("prem-store-multiproc-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create shared dir");

    let exe = std::env::current_exe().expect("test binary path");
    let spawn = |id: u32| {
        Command::new(&exe)
            .args(["writer_role", "--exact", "--nocapture"])
            .env("PREM_STORE_WRITER", format!("{};{id}", dir.display()))
            .spawn()
            .expect("spawn writer child")
    };
    // Both children run concurrently: their appends race on the same
    // segment files and must serialize through the advisory locks.
    let mut children = [spawn(1), spawn(2)];
    for child in &mut children {
        let status = child.wait().expect("wait for writer child");
        assert!(status.success(), "writer child failed: {status}");
    }

    let store = RunStore::open(&dir).expect("parent: open shared store");
    // 3 distinct keys: the shared one (written twice, identical bytes —
    // merged, not duplicated, not conflicting) and one per writer.
    let stats = store.verify().expect("parent: full integrity pass");
    assert_eq!(stats.records, 3, "expected shared + 2 private records");
    let (shared_key, shared_out) = sample(8);
    assert_eq!(store.get(&shared_key).expect("get"), Some(shared_out));
    for id in [1, 2] {
        let (key, out) = sample(id);
        assert_eq!(
            store.get(&key).expect("get"),
            Some(out),
            "writer {id}'s record"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
