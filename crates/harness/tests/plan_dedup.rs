//! The run-plan layer's dedup and cache contracts:
//!
//! * **fingerprint stability** — a request's fingerprint is a pure
//!   function of its coordinates, pinned against known vectors so it is
//!   provably identical across processes (nothing about the process — no
//!   addresses, no hash-map iteration order, no RNG — participates);
//! * **no false sharing** — distinct requests get distinct canonical keys
//!   and therefore distinct cache slots, and each served output equals a
//!   direct execution of that exact request;
//! * **merged-plan elision** — a plan merging two figures executes each
//!   *shared* request exactly once (asserted with the executor's
//!   execution-count probe).

use proptest::prelude::*;

use prem_core::{NoiseModel, RunWork};
use prem_gpusim::Scenario;
use prem_harness::seed::fingerprint;
use prem_harness::{Direct, MatrixScenario, PlanExecutor, PlatformSpec, RunRequest, RunSource};
use prem_kernels::{Bicg, Kernel};
use prem_memsim::KIB;

fn request(kernel: &dyn Kernel, work: RunWork, t: usize, seed: u64, iso: bool) -> RunRequest<'_> {
    RunRequest {
        kernel,
        platform: PlatformSpec::tx1(),
        work,
        t_bytes: t,
        seed,
        scenario: MatrixScenario::Preset(if iso {
            Scenario::Isolation
        } else {
            Scenario::Interference
        }),
        noise: NoiseModel::tx1(),
    }
}

#[test]
fn fingerprint_pinned_against_known_vectors() {
    // The fingerprint machinery is FNV-1a + SplitMix64 over the canonical
    // key bytes. Pinning concrete values makes cross-process stability a
    // theorem rather than a hope: any process computing something else
    // has changed the algorithm (which would silently orphan every
    // persisted fingerprint) and fails here.
    assert_eq!(fingerprint(""), 0xc381_7c01_6ba4_ff30);
    assert_eq!(
        fingerprint("bicg(128x128)|tx1|isolation|llc-r8|t32768|s11"),
        {
            // Recompute from first principles: FNV-1a then SplitMix64.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for &b in "bicg(128x128)|tx1|isolation|llc-r8|t32768|s11".as_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            let mut x = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
            x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            x ^ (x >> 31)
        }
    );
}

#[test]
fn same_request_same_fingerprint_across_reconstructions() {
    // Two independently constructed (not cloned) requests with the same
    // coordinates — as two processes would build them — agree on key and
    // fingerprint.
    let k1 = Bicg::new(128, 128);
    let k2 = Bicg::new(128, 128);
    let a = request(&k1, RunWork::PremLlc { r: 8 }, 32 * KIB, 11, true);
    let b = request(&k2, RunWork::PremLlc { r: 8 }, 32 * KIB, 11, true);
    assert_eq!(a.key(), b.key());
    assert_eq!(a.fingerprint(), b.fingerprint());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Keys are injective over the coordinates the figures sweep: two
    /// requests share a key exactly when every coordinate matches.
    #[test]
    fn keys_are_injective_over_coordinates(
        (t_a, r_a, seed_a) in (
            prop::sample::select(vec![32usize, 64, 96, 160]),
            prop::sample::select(vec![1u32, 4, 8]),
            prop::sample::select(vec![11u64, 23, 47]),
        ),
        (t_b, r_b, seed_b) in (
            prop::sample::select(vec![32usize, 64, 96, 160]),
            prop::sample::select(vec![1u32, 4, 8]),
            prop::sample::select(vec![11u64, 23, 47]),
        ),
        iso_a in any::<bool>(),
        iso_b in any::<bool>(),
    ) {
        let k = Bicg::new(128, 128);
        let a = request(&k, RunWork::PremLlc { r: r_a }, t_a * KIB, seed_a, iso_a);
        let b = request(&k, RunWork::PremLlc { r: r_b }, t_b * KIB, seed_b, iso_b);
        let same = t_a == t_b && r_a == r_b && seed_a == seed_b && iso_a == iso_b;
        prop_assert_eq!(a.key() == b.key(), same);
        prop_assert_eq!(a.fingerprint() == b.fingerprint(), same);
    }
}

#[test]
fn no_false_sharing_between_distinct_requests() {
    // Fill one executor with near-neighbour requests, then check every
    // cached output against a direct execution of exactly that request:
    // had two requests aliased one slot, at least one would come back
    // with the other's (different-seed, different-scenario) result.
    let k = Bicg::new(128, 128);
    let mut requests = Vec::new();
    for seed in [11, 23] {
        for iso in [true, false] {
            requests.push(request(&k, RunWork::PremLlc { r: 8 }, 32 * KIB, seed, iso));
            requests.push(request(&k, RunWork::Baseline, 32 * KIB, seed, iso));
        }
        requests.push(request(&k, RunWork::PremSpm, 32 * KIB, seed, true));
    }
    let executor = PlanExecutor::new();
    let summary = executor.execute(&requests, 2);
    // All distinct: every request occupies its own slot, satisfied either
    // live or by replay within its derivation family (the two seeds of
    // each LLC/baseline scenario pair form a family; SPM is ineligible).
    assert_eq!(
        summary.executed + summary.replayed,
        requests.len(),
        "all requests distinct"
    );
    assert_eq!(summary.elided + summary.hits + summary.disk_hits, 0);
    assert_eq!(summary.families, 4, "seed pairs per (work, scenario)");
    assert_eq!(summary.replayed, 4, "one sibling per family");
    // Comparing every slot against a direct execution also proves the
    // replayed outputs bit-identical to live ones.
    for req in &requests {
        assert_eq!(
            executor.output(req),
            Direct.output(req),
            "cached output diverged from direct execution for {}",
            req.key()
        );
    }
    assert_eq!(
        executor.executed_runs(),
        summary.executed,
        "verification must be served from cache"
    );
}

#[test]
fn merged_two_figure_plan_executes_each_shared_request_exactly_once() {
    let k = Bicg::new(128, 128);
    // Figure A: an (R, T) isolation grid. Figure B: an interference
    // comparison at one grid point. They share the R=8 isolation runs at
    // T = 32K and the baseline—exactly the fig4/fig3-style overlap.
    let mut fig_a = Vec::new();
    for r in [1, 8] {
        for t in [32 * KIB, 48 * KIB] {
            fig_a.push(request(&k, RunWork::PremLlc { r }, t, 11, true));
        }
    }
    fig_a.push(request(&k, RunWork::Baseline, 32 * KIB, 11, true));
    let mut fig_b = vec![
        request(&k, RunWork::PremLlc { r: 8 }, 32 * KIB, 11, true), // shared
        request(&k, RunWork::Baseline, 32 * KIB, 11, true),         // shared
        request(&k, RunWork::PremLlc { r: 8 }, 32 * KIB, 11, false),
    ];

    // Per-figure sums: |A| + |B| simulator runs.
    let separate = fig_a.len() + fig_b.len();

    // Merged: the shared requests execute exactly once.
    let mut merged = fig_a.clone();
    merged.append(&mut fig_b);
    let executor = PlanExecutor::new();
    let summary = executor.execute(&merged, 2);
    assert_eq!(summary.requested, separate);
    assert_eq!(summary.elided, 2, "the two shared requests are elided");
    assert_eq!(summary.executed, separate - 2);
    assert_eq!(executor.executed_runs(), separate - 2);
    assert!(
        summary.executed < separate,
        "merged plan must execute strictly fewer runs than the per-figure sum"
    );

    // Rendering both figures afterwards is pure cache traffic.
    for req in &merged {
        let _ = executor.output(req);
    }
    assert_eq!(
        executor.executed_runs(),
        separate - 2,
        "post-plan rendering must not execute anything"
    );
}
