//! The replay-backed derivation layer's equivalence contracts:
//!
//! * **replay transparency** — a replay-enabled executor produces
//!   bit-identical outputs to a replay-disabled one for *any* plan drawn
//!   from the quick-suite coordinate space (proptest over the axes);
//! * **base-key injectivity** — two requests share a base key exactly
//!   when they agree on every coordinate other than the LLC policy
//!   override and the seed;
//! * **family locality** — a derivation family can never span kernels,
//!   platform templates, scenarios, work modes, interval sizes or noise
//!   models, at any plan composition;
//! * **worker independence** — replayed plans render byte-identical
//!   outputs at any worker count, like every other plan.

use std::collections::HashMap;

use proptest::prelude::*;

use prem_core::{NoiseModel, RunWork};
use prem_gpusim::Scenario;
use prem_harness::{
    Direct, MatrixPolicy, MatrixScenario, PlanExecutor, PlatformSpec, RunRequest, RunSource,
};
use prem_kernels::{Bicg, Kernel};
use prem_memsim::KIB;
use prem_trace::testutil::plan_outputs_replay_vs_live;

/// The coordinate space the proptests draw plans from: a policy override
/// (`None` = template policy), work mode, interval size, seed and
/// scenario, on one of two kernel identities.
#[derive(Clone, Debug)]
struct Coord {
    policy: Option<MatrixPolicy>,
    work: RunWork,
    t_kib: usize,
    seed: u64,
    iso: bool,
    small_kernel: bool,
}

fn coord() -> impl Strategy<Value = Coord> {
    (
        prop::sample::select(vec![
            None,
            Some(MatrixPolicy::VendorBiased),
            Some(MatrixPolicy::Lru),
            Some(MatrixPolicy::Fifo),
            Some(MatrixPolicy::Srrip),
            Some(MatrixPolicy::Random),
        ]),
        prop::sample::select(vec![
            RunWork::PremLlc { r: 4 },
            RunWork::PremLlc { r: 8 },
            RunWork::Baseline,
            RunWork::PremSpm,
        ]),
        prop::sample::select(vec![32usize, 160]),
        prop::sample::select(vec![11u64, 23, 47]),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(policy, work, t_kib, seed, iso, small_kernel)| Coord {
            policy,
            work,
            t_kib,
            seed,
            iso,
            small_kernel,
        })
}

fn build<'k>(c: &Coord, small: &'k dyn Kernel, large: &'k dyn Kernel) -> RunRequest<'k> {
    let mut platform = PlatformSpec::tx1();
    if let Some(p) = c.policy {
        platform = platform.with_policy(p);
    }
    RunRequest {
        kernel: if c.small_kernel { small } else { large },
        platform,
        work: c.work,
        t_bytes: c.t_kib * KIB,
        seed: c.seed,
        scenario: MatrixScenario::Preset(if c.iso {
            Scenario::Isolation
        } else {
            Scenario::Interference
        }),
        noise: NoiseModel::tx1(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole contract: for an arbitrary plan, the replay-enabled
    /// executor serves every request with output bit-identical to the
    /// replay-disabled executor — which the dedup suite already pins to
    /// direct execution. Replay may only change *how many* runs execute
    /// live, never a byte of any output. The shared
    /// [`prem_trace::testutil`] harness checks the plan-shape bookkeeping
    /// on the way.
    #[test]
    fn replayed_plan_is_bit_identical_to_replay_disabled(
        coords in prop::collection::vec(coord(), 1..10),
    ) {
        let small = Bicg::new(96, 96);
        let large = Bicg::new(128, 128);
        let requests: Vec<RunRequest<'_>> =
            coords.iter().map(|c| build(c, &small, &large)).collect();
        let (replayed, live) = plan_outputs_replay_vs_live(&requests, 2);
        prop_assert_eq!(replayed, live);
    }

    /// Base keys are injective over every non-derivable coordinate: two
    /// requests share a base key exactly when they agree on kernel, work,
    /// interval size and scenario — the policy override and the seed (the
    /// derivation axes) never separate base keys.
    #[test]
    fn base_key_wildcards_exactly_the_policy_and_seed_axes(
        a in coord(),
        b in coord(),
    ) {
        let small = Bicg::new(96, 96);
        let large = Bicg::new(128, 128);
        let ra = build(&a, &small, &large);
        let rb = build(&b, &small, &large);
        let same_base = a.work == b.work
            && a.t_kib == b.t_kib
            && a.iso == b.iso
            && a.small_kernel == b.small_kernel;
        prop_assert_eq!(ra.base_key() == rb.base_key(), same_base);
        // The full key additionally separates the derivation axes.
        let same_key = same_base && a.policy == b.policy && a.seed == b.seed;
        prop_assert_eq!(ra.key() == rb.key(), same_key);
    }

    /// Family locality: group any request set by base key and every group
    /// is homogeneous in kernel identity, platform template, scenario,
    /// work and interval size — a derivation family can never reach
    /// across them, whatever plan composition the consumer submits.
    #[test]
    fn families_never_span_kernels_platforms_or_scenarios(
        coords in prop::collection::vec(coord(), 2..24),
    ) {
        let small = Bicg::new(96, 96);
        let large = Bicg::new(128, 128);
        let requests: Vec<RunRequest<'_>> =
            coords.iter().map(|c| build(c, &small, &large)).collect();

        let mut groups: HashMap<String, Vec<&Coord>> = HashMap::new();
        for (req, c) in requests.iter().zip(&coords) {
            groups.entry(req.base_key()).or_default().push(c);
        }
        for members in groups.values() {
            let first = members[0];
            for c in members {
                prop_assert_eq!(c.small_kernel, first.small_kernel);
                prop_assert_eq!(c.work, first.work);
                prop_assert_eq!(c.t_kib, first.t_kib);
                prop_assert_eq!(c.iso, first.iso);
            }
        }
    }
}

#[test]
fn one_family_column_is_replay_satisfied_and_matches_direct() {
    // The flagship shape: a full policy × seed column on otherwise-fixed
    // coordinates is exactly one derivation family — one live
    // representative, every other member derived — and every derived
    // output equals a direct execution of that exact request.
    let k = Bicg::new(96, 96);
    let seeds = [11u64, 23, 47];
    let mut column = Vec::new();
    for policy in MatrixPolicy::what_if_axis() {
        for &seed in &seeds {
            column.push(RunRequest {
                kernel: &k,
                platform: PlatformSpec::tx1().with_policy(policy),
                work: RunWork::PremLlc { r: 8 },
                t_bytes: 160 * KIB,
                seed,
                scenario: MatrixScenario::Preset(Scenario::Isolation),
                noise: NoiseModel::tx1(),
            });
        }
    }
    let executor = PlanExecutor::new();
    let summary = executor.execute(&column, 2);
    assert_eq!(summary.families, 1);
    assert_eq!(summary.executed, 1, "one live representative");
    assert_eq!(summary.replayed, column.len() - 1);
    for req in &column {
        assert_eq!(
            executor.output(req),
            Direct.output(req),
            "derived output diverged from direct execution for {}",
            req.key()
        );
    }
    assert_eq!(
        executor.executed_runs(),
        1,
        "verification must be served from cache"
    );
}

#[test]
fn replayed_plans_are_worker_count_independent() {
    // The executor's determinism contract extends to replay: the same
    // column renders bit-identical outputs at any worker count, wherever
    // wave A and wave B items land.
    let k = Bicg::new(96, 96);
    let mut column = Vec::new();
    for policy in [
        MatrixPolicy::VendorBiased,
        MatrixPolicy::Lru,
        MatrixPolicy::Random,
    ] {
        for seed in [11u64, 23] {
            column.push(RunRequest {
                kernel: &k,
                platform: PlatformSpec::tx1().with_policy(policy),
                work: RunWork::PremLlc { r: 8 },
                t_bytes: 160 * KIB,
                seed,
                scenario: MatrixScenario::Preset(Scenario::Isolation),
                noise: NoiseModel::tx1(),
            });
        }
    }
    let reference: Vec<_> = {
        let e = PlanExecutor::new();
        e.execute(&column, 1);
        column.iter().map(|r| e.output(r)).collect()
    };
    for workers in [2, 3, 7] {
        let e = PlanExecutor::new();
        let summary = e.execute(&column, workers);
        assert_eq!(summary.families, 1, "workers={workers}");
        for (req, expect) in column.iter().zip(&reference) {
            assert_eq!(
                &e.output(req),
                expect,
                "output drifted at workers={workers} for {}",
                req.key()
            );
        }
    }
}
