//! Owned, wire-ready run requests.
//!
//! [`RunRequest`] borrows its kernel, which is
//! the right shape in-process and an impossible one across a process
//! boundary. This module provides the owned form the `prem-serve` front
//! end ships over pipes: an [`OwnedRunRequest`] names its kernel through
//! the [`prem_kernels::registry`] ([`KernelId`]) and its platform through
//! a closed [`PlatformId`] enum, so the request is pure data — two
//! codecs (a versioned varint binary form reusing [`prem_core::codec`],
//! and a human-writable line form) round-trip it byte-identically.
//!
//! The identity contract: resolving an owned request
//! ([`OwnedRunRequest::resolve`]) yields a borrowed request whose
//! [`key()`](crate::plan::RunRequest::key) and
//! [`fingerprint()`](crate::plan::RunRequest::fingerprint) equal those of
//! the borrowed request it was taken from ([`OwnedRunRequest::of`]), so
//! the plan layer's content addressing — cache slots, the persistent
//! store, replay families — is oblivious to which side of a pipe a
//! request was born on.
//!
//! All decode failures are hard `InvalidData`/`UnexpectedEof` errors,
//! never silent defaults, matching the codec and store contracts.

use std::fmt;
use std::io::{self, Read, Write};

use prem_core::codec::{bad_data, read_f64, read_u8, read_varint, write_f64, write_varint};
use prem_core::{NoiseModel, RunWork};
use prem_gpusim::{CorunnerProfile, PlatformConfig, Scenario};
use prem_kernels::{Kernel, KernelId};
use prem_memsim::KIB;

use crate::plan::{PlatformSpec, RunRequest};
use crate::spec::{scenario_name, CorunnerMix, MatrixPolicy, MatrixScenario};

/// Version byte leading every binary-encoded request and the `v1` tag
/// leading every request line. Bump on any layout change.
pub const WIRE_VERSION: u8 = 1;

/// Decode guard: longest accepted name (kernel, platform, mix) on the
/// wire. A length prefix beyond this is corruption, not a long name.
const MAX_NAME: u64 = 256;

/// Decode guard: most constructor dimensions a kernel identity may carry.
const MAX_DIMS: u64 = 16;

/// Decode guard: most co-runner profiles a mix may carry.
const MAX_PROFILES: u64 = 1024;

/// A platform template as pure data: the closed set of named presets plus
/// the generic geometry, exactly the constructions
/// [`MatrixPlatform`](crate::spec::MatrixPlatform) offers.
///
/// The `Display` spelling is the *wire* spelling and is self-contained
/// (`g256k8w64s` carries the scratchpad size); [`PlatformId::name`] is
/// the report/key spelling (`g256k8w`), identical to the
/// `MatrixPlatform` convention so owned requests key like hand-built
/// ones.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum PlatformId {
    /// The paper's TX1 platform ([`PlatformConfig::tx1`]).
    Tx1,
    /// The TX2-like preset ([`PlatformConfig::tx2`]).
    Tx2,
    /// The Xavier-like preset ([`PlatformConfig::xavier_like`]).
    XavierLike,
    /// A synthetic geometry ([`PlatformConfig::generic`]).
    Generic {
        /// LLC capacity in KiB.
        llc_kib: usize,
        /// LLC associativity.
        ways: usize,
        /// Scratchpad capacity in KiB.
        spm_kib: usize,
    },
}

impl PlatformId {
    /// The report/key name — the spelling
    /// [`MatrixPlatform`](crate::spec::MatrixPlatform) uses, so a
    /// resolved owned request keys identically to a hand-built one.
    pub fn name(&self) -> String {
        match self {
            PlatformId::Tx1 => "tx1".into(),
            PlatformId::Tx2 => "tx2".into(),
            PlatformId::XavierLike => "xavier".into(),
            PlatformId::Generic { llc_kib, ways, .. } => format!("g{llc_kib}k{ways}w"),
        }
    }

    /// The platform template this identity names.
    pub fn config(&self) -> PlatformConfig {
        match self {
            PlatformId::Tx1 => PlatformConfig::tx1(),
            PlatformId::Tx2 => PlatformConfig::tx2(),
            PlatformId::XavierLike => PlatformConfig::xavier_like(),
            PlatformId::Generic {
                llc_kib,
                ways,
                spm_kib,
            } => PlatformConfig::generic(*llc_kib, *ways, *spm_kib),
        }
    }

    /// The platform construction recipe for a borrowed request, with the
    /// given policy override.
    pub fn spec(&self, policy: Option<MatrixPolicy>) -> PlatformSpec {
        let mut spec = PlatformSpec::new(self.name(), self.config());
        spec.policy = policy;
        spec
    }

    /// The identity of an existing recipe, or a hard error when the
    /// recipe is not one of the closed constructions this enum can name.
    ///
    /// Names alone are not trusted: the candidate identity's template
    /// must compare equal to the recipe's actual config, so a hand-tuned
    /// config under a preset's name is rejected rather than silently
    /// re-keyed to the preset.
    pub fn of_spec(spec: &PlatformSpec) -> io::Result<PlatformId> {
        let id = match spec.name.as_str() {
            "tx1" => PlatformId::Tx1,
            "tx2" => PlatformId::Tx2,
            "xavier" => PlatformId::XavierLike,
            name => {
                let (llc_kib, ways) = parse_generic_name(name).ok_or_else(|| {
                    bad_data(&format!("platform `{name}` is not a wire-able template"))
                })?;
                PlatformId::Generic {
                    llc_kib,
                    ways,
                    spm_kib: spec.config.spm.capacity_bytes() / KIB,
                }
            }
        };
        if id.config() != spec.config {
            return Err(bad_data(&format!(
                "platform `{}` does not match its named template",
                spec.name
            )));
        }
        Ok(id)
    }

    /// Parses the self-contained wire spelling (see `Display`).
    pub fn parse(s: &str) -> io::Result<PlatformId> {
        match s {
            "tx1" => return Ok(PlatformId::Tx1),
            "tx2" => return Ok(PlatformId::Tx2),
            "xavier" => return Ok(PlatformId::XavierLike),
            _ => {}
        }
        let err = || bad_data(&format!("unknown platform `{s}`"));
        let rest = s.strip_prefix('g').ok_or_else(err)?;
        let (llc, rest) = rest.split_once('k').ok_or_else(err)?;
        let (ways, rest) = rest.split_once('w').ok_or_else(err)?;
        let spm = rest.strip_suffix('s').ok_or_else(err)?;
        Ok(PlatformId::Generic {
            llc_kib: llc.parse().map_err(|_| err())?,
            ways: ways.parse().map_err(|_| err())?,
            spm_kib: spm.parse().map_err(|_| err())?,
        })
    }
}

/// Splits a `g<llc>k<ways>w` report name into its numbers.
fn parse_generic_name(name: &str) -> Option<(usize, usize)> {
    let rest = name.strip_prefix('g')?;
    let (llc, rest) = rest.split_once('k')?;
    let ways = rest.strip_suffix('w')?;
    Some((llc.parse().ok()?, ways.parse().ok()?))
}

impl fmt::Display for PlatformId {
    /// The self-contained wire spelling: preset names, or
    /// `g<llc>k<ways>w<spm>s` for generic geometries (unlike the report
    /// name, this carries the scratchpad size, so it parses back).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformId::Generic {
                llc_kib,
                ways,
                spm_kib,
            } => write!(f, "g{llc_kib}k{ways}w{spm_kib}s"),
            _ => write!(f, "{}", self.name()),
        }
    }
}

/// An owned, codec-able run request: the same seven coordinates as a
/// borrowed [`RunRequest`], with the kernel named through the registry
/// and the platform through [`PlatformId`].
#[derive(Clone, Debug, PartialEq)]
pub struct OwnedRunRequest {
    /// The kernel, by registry identity.
    pub kernel: KernelId,
    /// The platform template, by closed identity.
    pub platform: PlatformId,
    /// Optional LLC replacement-policy override.
    pub policy: Option<MatrixPolicy>,
    /// Execution mode (LLC-PREM / SPM-PREM / baseline).
    pub work: RunWork,
    /// PREM interval size in bytes.
    pub t_bytes: usize,
    /// Seed for every randomized component of the run.
    pub seed: u64,
    /// Contention scenario: a paper preset or a named co-runner mix.
    pub scenario: MatrixScenario,
    /// Unmanaged compute-phase traffic model.
    pub noise: NoiseModel,
}

impl OwnedRunRequest {
    /// The owned form of a borrowed request, or a hard error when the
    /// request cannot round-trip: its kernel is not registered (or its
    /// registered reconstruction disagrees with the instance) or its
    /// platform is not a closed-template construction.
    pub fn of(req: &RunRequest<'_>) -> io::Result<OwnedRunRequest> {
        let kernel = KernelId::of(req.kernel);
        let back = kernel.instantiate().ok_or_else(|| {
            bad_data(&format!("kernel `{}` is not registered", req.kernel.name()))
        })?;
        if back.dims() != req.kernel.dims() {
            return Err(bad_data(&format!(
                "kernel `{kernel}` does not reconstruct its instance"
            )));
        }
        Ok(OwnedRunRequest {
            kernel,
            platform: PlatformId::of_spec(&req.platform)?,
            policy: req.platform.policy,
            work: req.work,
            t_bytes: req.t_bytes,
            seed: req.seed,
            scenario: req.scenario.clone(),
            noise: req.noise,
        })
    }

    /// Instantiates the kernel and pairs it with this request, yielding a
    /// holder that can lend out the borrowed form. Hard error when the
    /// kernel identity is not registered.
    ///
    /// # Panics
    ///
    /// Propagates kernel-constructor contract panics (dimension
    /// multiples), exactly like [`prem_kernels::registry::kernel`].
    pub fn resolve(self) -> io::Result<ResolvedRunRequest> {
        let kernel = self
            .kernel
            .instantiate()
            .ok_or_else(|| bad_data(&format!("kernel `{}` is not registered", self.kernel)))?;
        Ok(ResolvedRunRequest {
            kernel,
            owned: self,
        })
    }

    /// Encodes the request in the versioned binary wire form (varint
    /// layout, [`WIRE_VERSION`] leading byte).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        self.write(&mut out).expect("Vec write is infallible");
        out
    }

    /// Writes the binary wire form to `w`.
    pub fn write<W: Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(&[WIRE_VERSION])?;
        write_str(w, &self.kernel.name)?;
        write_varint(w, self.kernel.dims.len() as u64)?;
        for &d in &self.kernel.dims {
            write_varint(w, d as u64)?;
        }
        match &self.platform {
            PlatformId::Tx1 => w.write_all(&[0])?,
            PlatformId::Tx2 => w.write_all(&[1])?,
            PlatformId::XavierLike => w.write_all(&[2])?,
            PlatformId::Generic {
                llc_kib,
                ways,
                spm_kib,
            } => {
                w.write_all(&[3])?;
                write_varint(w, *llc_kib as u64)?;
                write_varint(w, *ways as u64)?;
                write_varint(w, *spm_kib as u64)?;
            }
        }
        match self.policy {
            None => w.write_all(&[0])?,
            Some(p) => {
                let tag = MatrixPolicy::what_if_axis()
                    .iter()
                    .position(|q| *q == p)
                    .expect("what_if_axis covers every policy") as u8;
                w.write_all(&[tag + 1])?;
            }
        }
        match self.work {
            RunWork::PremLlc { r } => {
                w.write_all(&[0])?;
                write_varint(w, u64::from(r))?;
            }
            RunWork::PremSpm => w.write_all(&[1])?,
            RunWork::Baseline => w.write_all(&[2])?,
        }
        write_varint(w, self.t_bytes as u64)?;
        write_varint(w, self.seed)?;
        match &self.scenario {
            MatrixScenario::Preset(s) => {
                w.write_all(&[0])?;
                let tag = match s {
                    Scenario::Isolation => 0,
                    Scenario::Interference => 1,
                    Scenario::Corunners => 2,
                };
                w.write_all(&[tag])?;
            }
            MatrixScenario::Mix(m) => {
                w.write_all(&[1])?;
                write_str(w, &m.name)?;
                write_varint(w, m.profiles.len() as u64)?;
                for p in &m.profiles {
                    write_profile(w, p)?;
                }
            }
        }
        write_varint(w, u64::from(self.noise.lines))?;
        write_varint(w, u64::from(self.noise.every))
    }

    /// Decodes the binary wire form, requiring exact consumption:
    /// trailing bytes are corruption, not padding. Inverse of
    /// [`OwnedRunRequest::encode`].
    pub fn decode(bytes: &[u8]) -> io::Result<OwnedRunRequest> {
        let mut r = bytes;
        let req = OwnedRunRequest::read(&mut r)?;
        if !r.is_empty() {
            return Err(bad_data(&format!(
                "{} trailing bytes after request",
                r.len()
            )));
        }
        Ok(req)
    }

    /// Reads one binary wire form from `r`.
    pub fn read<R: Read>(r: &mut R) -> io::Result<OwnedRunRequest> {
        let version = read_u8(r)?;
        if version != WIRE_VERSION {
            return Err(bad_data(&format!(
                "wire version {version} (expected {WIRE_VERSION})"
            )));
        }
        let name = read_string(r)?;
        let ndims = read_varint(r)?;
        if ndims > MAX_DIMS {
            return Err(bad_data(&format!("{ndims} kernel dims")));
        }
        let mut dims = Vec::with_capacity(ndims as usize);
        for _ in 0..ndims {
            dims.push(read_usize(r)?);
        }
        let platform = match read_u8(r)? {
            0 => PlatformId::Tx1,
            1 => PlatformId::Tx2,
            2 => PlatformId::XavierLike,
            3 => PlatformId::Generic {
                llc_kib: read_usize(r)?,
                ways: read_usize(r)?,
                spm_kib: read_usize(r)?,
            },
            t => return Err(bad_data(&format!("platform tag {t}"))),
        };
        let policy = match read_u8(r)? {
            0 => None,
            t if (t as usize) <= MatrixPolicy::what_if_axis().len() => {
                Some(MatrixPolicy::what_if_axis()[t as usize - 1])
            }
            t => return Err(bad_data(&format!("policy tag {t}"))),
        };
        let work = match read_u8(r)? {
            0 => {
                let r32 = read_varint(r)?;
                RunWork::PremLlc {
                    r: u32::try_from(r32).map_err(|_| bad_data("prefetch factor overflow"))?,
                }
            }
            1 => RunWork::PremSpm,
            2 => RunWork::Baseline,
            t => return Err(bad_data(&format!("work tag {t}"))),
        };
        let t_bytes = read_usize(r)?;
        let seed = read_varint(r)?;
        let scenario = match read_u8(r)? {
            0 => MatrixScenario::Preset(match read_u8(r)? {
                0 => Scenario::Isolation,
                1 => Scenario::Interference,
                2 => Scenario::Corunners,
                t => return Err(bad_data(&format!("scenario preset tag {t}"))),
            }),
            1 => {
                let name = read_string(r)?;
                let n = read_varint(r)?;
                if n > MAX_PROFILES {
                    return Err(bad_data(&format!("{n} mix profiles")));
                }
                let mut profiles = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    profiles.push(read_profile(r)?);
                }
                MatrixScenario::Mix(CorunnerMix::new(name, profiles))
            }
            t => return Err(bad_data(&format!("scenario tag {t}"))),
        };
        let noise = NoiseModel {
            lines: read_u32(r)?,
            every: read_u32(r)?,
        };
        Ok(OwnedRunRequest {
            kernel: KernelId::new(name, dims),
            platform,
            policy,
            work,
            t_bytes,
            seed,
            scenario,
            noise,
        })
    }

    /// The human-writable line form, e.g.
    /// `v1 kernel=bicg:1024x1024 platform=tx1 policy=lru work=llc-r8
    /// t=163840 seed=11 scenario=isolation noise=64x32` — the grammar the
    /// `prem-serve` protocol carries after its `req <tag>` prefix.
    /// `policy=` is omitted for template-policy requests. Mix names must
    /// avoid whitespace, `:` and `+` (the line form's reserved
    /// separators); conventional sweep names (`2xmembomb`) always do.
    pub fn to_line(&self) -> String {
        let mut line = format!("v{WIRE_VERSION} kernel={}", self.kernel);
        line.push_str(&format!(" platform={}", self.platform));
        if let Some(p) = self.policy {
            line.push_str(&format!(" policy={}", p.name()));
        }
        line.push_str(&format!(" work={}", self.work.key()));
        line.push_str(&format!(" t={} seed={}", self.t_bytes, self.seed));
        let scenario = match &self.scenario {
            MatrixScenario::Preset(s) => scenario_name(*s).to_string(),
            MatrixScenario::Mix(m) => {
                debug_assert!(
                    !m.name.contains([' ', '\t', ':', '+']),
                    "mix name `{}` uses reserved line-format characters",
                    m.name
                );
                let profiles: Vec<String> = m.profiles.iter().map(profile_spelling).collect();
                format!("mix:{}:{}", m.name, profiles.join("+"))
            }
        };
        line.push_str(&format!(" scenario={scenario}"));
        line.push_str(&format!(" noise={}x{}", self.noise.lines, self.noise.every));
        line
    }

    /// Parses the line form. Inverse of [`OwnedRunRequest::to_line`]:
    /// unknown fields, duplicate fields, missing required fields and
    /// malformed values are all hard errors.
    pub fn from_line(line: &str) -> io::Result<OwnedRunRequest> {
        let mut tokens = line.split_whitespace();
        match tokens.next() {
            Some(v) if v == format!("v{WIRE_VERSION}") => {}
            Some(v) => return Err(bad_data(&format!("request line version `{v}`"))),
            None => return Err(bad_data("empty request line")),
        }
        let mut kernel = None;
        let mut platform = None;
        let mut policy = None;
        let mut work = None;
        let mut t_bytes = None;
        let mut seed = None;
        let mut scenario = None;
        let mut noise = None;
        for token in tokens {
            let (field, value) = token
                .split_once('=')
                .ok_or_else(|| bad_data(&format!("token `{token}` is not field=value")))?;
            let slot_taken = match field {
                "kernel" => kernel.replace(parse_kernel(value)?).is_some(),
                "platform" => platform.replace(PlatformId::parse(value)?).is_some(),
                "policy" => policy
                    .replace(
                        MatrixPolicy::from_name(value)
                            .ok_or_else(|| bad_data(&format!("unknown policy `{value}`")))?,
                    )
                    .is_some(),
                "work" => work.replace(parse_work(value)?).is_some(),
                "t" => t_bytes
                    .replace(
                        value
                            .parse::<usize>()
                            .map_err(|_| bad_data(&format!("interval size `{value}`")))?,
                    )
                    .is_some(),
                "seed" => seed
                    .replace(
                        value
                            .parse::<u64>()
                            .map_err(|_| bad_data(&format!("seed `{value}`")))?,
                    )
                    .is_some(),
                "scenario" => scenario.replace(parse_scenario(value)?).is_some(),
                "noise" => noise.replace(parse_noise(value)?).is_some(),
                _ => return Err(bad_data(&format!("unknown field `{field}`"))),
            };
            if slot_taken {
                return Err(bad_data(&format!("duplicate field `{field}`")));
            }
        }
        let missing = |f: &str| bad_data(&format!("missing field `{f}`"));
        Ok(OwnedRunRequest {
            kernel: kernel.ok_or_else(|| missing("kernel"))?,
            platform: platform.ok_or_else(|| missing("platform"))?,
            policy,
            work: work.ok_or_else(|| missing("work"))?,
            t_bytes: t_bytes.ok_or_else(|| missing("t"))?,
            seed: seed.ok_or_else(|| missing("seed"))?,
            scenario: scenario.ok_or_else(|| missing("scenario"))?,
            noise: noise.ok_or_else(|| missing("noise"))?,
        })
    }
}

/// An [`OwnedRunRequest`] with its kernel instantiated: the holder that
/// lends out the borrowed form the plan layer consumes.
#[derive(Debug)]
pub struct ResolvedRunRequest {
    kernel: Box<dyn Kernel>,
    owned: OwnedRunRequest,
}

impl ResolvedRunRequest {
    /// The borrowed request, borrowing this holder's kernel. Its `key()`
    /// and `fingerprint()` equal those of the request the owned form was
    /// taken from.
    pub fn request(&self) -> RunRequest<'_> {
        RunRequest {
            kernel: self.kernel.as_ref(),
            platform: self.owned.platform.spec(self.owned.policy),
            work: self.owned.work,
            t_bytes: self.owned.t_bytes,
            seed: self.owned.seed,
            scenario: self.owned.scenario.clone(),
            noise: self.owned.noise,
        }
    }

    /// The owned form this holder resolved.
    pub fn owned(&self) -> &OwnedRunRequest {
        &self.owned
    }
}

/// Writes a length-prefixed UTF-8 string.
fn write_str<W: Write>(w: &mut W, s: &str) -> io::Result<()> {
    write_varint(w, s.len() as u64)?;
    w.write_all(s.as_bytes())
}

/// Reads a length-prefixed UTF-8 string (bounded by [`MAX_NAME`]).
fn read_string<R: Read>(r: &mut R) -> io::Result<String> {
    let len = read_varint(r)?;
    if len > MAX_NAME {
        return Err(bad_data(&format!("{len}-byte wire name")));
    }
    let mut buf = vec![0u8; len as usize];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|_| bad_data("wire name is not UTF-8"))
}

/// Reads a varint that must fit `usize`.
fn read_usize<R: Read>(r: &mut R) -> io::Result<usize> {
    usize::try_from(read_varint(r)?).map_err(|_| bad_data("value overflows usize"))
}

/// Reads a varint that must fit `u32`.
fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    u32::try_from(read_varint(r)?).map_err(|_| bad_data("value overflows u32"))
}

/// Writes one co-runner profile (tag byte plus `Bursty` parameters).
fn write_profile<W: Write>(w: &mut W, p: &CorunnerProfile) -> io::Result<()> {
    match p {
        CorunnerProfile::Membomb => w.write_all(&[0]),
        CorunnerProfile::Stream => w.write_all(&[1]),
        CorunnerProfile::CacheThrash => w.write_all(&[2]),
        CorunnerProfile::Bursty {
            duty,
            period_cycles,
        } => {
            w.write_all(&[3])?;
            write_f64(w, *duty)?;
            write_f64(w, *period_cycles)
        }
        CorunnerProfile::Idle => w.write_all(&[4]),
    }
}

/// Reads one co-runner profile.
fn read_profile<R: Read>(r: &mut R) -> io::Result<CorunnerProfile> {
    Ok(match read_u8(r)? {
        0 => CorunnerProfile::Membomb,
        1 => CorunnerProfile::Stream,
        2 => CorunnerProfile::CacheThrash,
        3 => CorunnerProfile::Bursty {
            duty: read_f64(r)?,
            period_cycles: read_f64(r)?,
        },
        4 => CorunnerProfile::Idle,
        t => return Err(bad_data(&format!("co-runner profile tag {t}"))),
    })
}

/// The line-form spelling of one profile: its stable name, with `Bursty`
/// carrying its parameters as `bursty(duty,period)`. Rust's shortest
/// round-trip float formatting keeps the text form lossless.
fn profile_spelling(p: &CorunnerProfile) -> String {
    match p {
        CorunnerProfile::Bursty {
            duty,
            period_cycles,
        } => format!("bursty({duty},{period_cycles})"),
        other => other.name().to_string(),
    }
}

/// Parses one line-form profile spelling.
fn parse_profile(s: &str) -> io::Result<CorunnerProfile> {
    match s {
        "membomb" => return Ok(CorunnerProfile::Membomb),
        "stream" => return Ok(CorunnerProfile::Stream),
        "cache_thrash" => return Ok(CorunnerProfile::CacheThrash),
        "idle" => return Ok(CorunnerProfile::Idle),
        _ => {}
    }
    let err = || bad_data(&format!("unknown co-runner profile `{s}`"));
    let args = s
        .strip_prefix("bursty(")
        .and_then(|rest| rest.strip_suffix(')'))
        .ok_or_else(err)?;
    let (duty, period) = args.split_once(',').ok_or_else(err)?;
    Ok(CorunnerProfile::Bursty {
        duty: duty.parse().map_err(|_| err())?,
        period_cycles: period.parse().map_err(|_| err())?,
    })
}

/// Parses `name:d0xd1x…` into a kernel identity (see [`KernelId`]'s
/// `Display`). Registry membership is checked at resolve time, not here.
fn parse_kernel(s: &str) -> io::Result<KernelId> {
    let err = || bad_data(&format!("kernel spelling `{s}`"));
    let (name, dims) = s.split_once(':').ok_or_else(err)?;
    if name.is_empty() || dims.is_empty() {
        return Err(err());
    }
    let dims = dims
        .split('x')
        .map(|d| d.parse::<usize>().map_err(|_| err()))
        .collect::<io::Result<Vec<_>>>()?;
    Ok(KernelId::new(name, dims))
}

/// Parses the [`RunWork::key`] spelling (`llc-r8`, `spm`, `base`).
fn parse_work(s: &str) -> io::Result<RunWork> {
    match s {
        "spm" => return Ok(RunWork::PremSpm),
        "base" => return Ok(RunWork::Baseline),
        _ => {}
    }
    let err = || bad_data(&format!("unknown work mode `{s}`"));
    let r = s.strip_prefix("llc-r").ok_or_else(err)?;
    Ok(RunWork::PremLlc {
        r: r.parse().map_err(|_| err())?,
    })
}

/// Parses a line-form scenario: a preset name or `mix:<name>:<p>+<p>…`
/// (an empty profile list is spelled `mix:<name>:`).
fn parse_scenario(s: &str) -> io::Result<MatrixScenario> {
    match s {
        "isolation" => return Ok(MatrixScenario::Preset(Scenario::Isolation)),
        "interference" => return Ok(MatrixScenario::Preset(Scenario::Interference)),
        "corunners" => return Ok(MatrixScenario::Preset(Scenario::Corunners)),
        _ => {}
    }
    let rest = s
        .strip_prefix("mix:")
        .ok_or_else(|| bad_data(&format!("unknown scenario `{s}`")))?;
    let (name, profiles) = rest
        .split_once(':')
        .ok_or_else(|| bad_data(&format!("mix spelling `{s}`")))?;
    if name.is_empty() {
        return Err(bad_data("empty mix name"));
    }
    let profiles = if profiles.is_empty() {
        Vec::new()
    } else {
        profiles
            .split('+')
            .map(parse_profile)
            .collect::<io::Result<Vec<_>>>()?
    };
    Ok(MatrixScenario::Mix(CorunnerMix::new(name, profiles)))
}

/// Parses `lines x every` noise spelling (`64x32`).
fn parse_noise(s: &str) -> io::Result<NoiseModel> {
    let err = || bad_data(&format!("noise spelling `{s}`"));
    let (lines, every) = s.split_once('x').ok_or_else(err)?;
    Ok(NoiseModel {
        lines: lines.parse().map_err(|_| err())?,
        every: every.parse().map_err(|_| err())?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use prem_kernels::Bicg;

    fn sample() -> OwnedRunRequest {
        OwnedRunRequest {
            kernel: KernelId::new("bicg", vec![128, 64]),
            platform: PlatformId::Tx1,
            policy: Some(MatrixPolicy::Lru),
            work: RunWork::PremLlc { r: 8 },
            t_bytes: 16 * KIB,
            seed: 11,
            scenario: MatrixScenario::Mix(CorunnerMix::new(
                "2xmembomb",
                vec![CorunnerProfile::Membomb; 2],
            )),
            noise: NoiseModel {
                lines: 64,
                every: 32,
            },
        }
    }

    #[test]
    fn binary_and_line_forms_round_trip() {
        let req = sample();
        assert_eq!(OwnedRunRequest::decode(&req.encode()).unwrap(), req);
        assert_eq!(OwnedRunRequest::from_line(&req.to_line()).unwrap(), req);
    }

    #[test]
    fn bursty_parameters_survive_both_forms() {
        let mut req = sample();
        req.scenario = MatrixScenario::Mix(CorunnerMix::new(
            "1xbursty",
            vec![CorunnerProfile::Bursty {
                duty: 0.37,
                period_cycles: 12_500.5,
            }],
        ));
        assert_eq!(OwnedRunRequest::decode(&req.encode()).unwrap(), req);
        assert_eq!(OwnedRunRequest::from_line(&req.to_line()).unwrap(), req);
    }

    #[test]
    fn owned_form_keys_like_the_borrowed_form() {
        let kernel = Bicg::new(128, 64);
        let borrowed = RunRequest {
            kernel: &kernel,
            platform: PlatformSpec::tx1().with_policy(MatrixPolicy::Srrip),
            work: RunWork::PremSpm,
            t_bytes: 16 * KIB,
            seed: 7,
            scenario: MatrixScenario::Preset(Scenario::Isolation),
            noise: NoiseModel::off(),
        };
        let owned = OwnedRunRequest::of(&borrowed).unwrap();
        let resolved = owned.clone().resolve().unwrap();
        assert_eq!(resolved.request().key(), borrowed.key());
        assert_eq!(resolved.request().base_key(), borrowed.base_key());
        assert_eq!(resolved.request().fingerprint(), borrowed.fingerprint());
    }

    #[test]
    fn truncation_and_trailing_bytes_are_hard_errors() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            assert!(
                OwnedRunRequest::decode(&bytes[..cut]).is_err(),
                "truncation at {cut} accepted"
            );
        }
        let mut padded = bytes;
        padded.push(0);
        assert!(OwnedRunRequest::decode(&padded).is_err());
    }

    #[test]
    fn malformed_lines_are_hard_errors() {
        for line in [
            "",
            "v2 kernel=bicg:128x64",
            "v1 kernel=bicg:128x64 platform=tx1 work=spm t=16384 seed=1 scenario=isolation",
            "v1 kernel=bicg:128x64 platform=tx9 work=spm t=16384 seed=1 scenario=isolation noise=0x0",
            "v1 kernel=bicg:128x64 platform=tx1 work=warp t=16384 seed=1 scenario=isolation noise=0x0",
            "v1 kernel=bicg:128x64 platform=tx1 work=spm t=16384 seed=1 scenario=solitude noise=0x0",
            "v1 kernel=bicg:128x64 platform=tx1 work=spm t=16384 seed=1 seed=2 scenario=isolation noise=0x0",
            "v1 kernel=bicg:128x64 platform=tx1 work=spm t=16384 seed=1 scenario=isolation noise=0x0 color=red",
            "v1 kernel=bicg:128x64 platform=tx1 policy=mru work=spm t=16384 seed=1 scenario=isolation noise=0x0",
        ] {
            assert!(OwnedRunRequest::from_line(line).is_err(), "accepted: {line}");
        }
    }

    #[test]
    fn generic_platform_round_trips_with_scratchpad_size() {
        let id = PlatformId::Generic {
            llc_kib: 512,
            ways: 8,
            spm_kib: 64,
        };
        assert_eq!(id.to_string(), "g512k8w64s");
        assert_eq!(PlatformId::parse("g512k8w64s").unwrap(), id);
        assert_eq!(id.name(), "g512k8w");
        let spec = id.spec(None);
        assert_eq!(PlatformId::of_spec(&spec).unwrap(), id);
    }

    #[test]
    fn hand_tuned_config_under_a_preset_name_is_rejected() {
        let mut spec = PlatformSpec::tx1();
        spec.config = PlatformConfig::tx2();
        assert!(PlatformId::of_spec(&spec).is_err());
    }
}
