//! Stable per-cell seed derivation.
//!
//! Every matrix cell derives its RNG seed from a *stable hash of its own
//! coordinates* (kernel, platform, policy, scenario, base seed), never from
//! enumeration order, worker identity, or global state. Two consequences:
//!
//! * results are byte-identical at any worker count (the pool does not
//!   participate in seeding at all);
//! * adding a row to one axis does not shift the seeds of existing cells,
//!   so matrix results stay comparable as the matrix grows.

/// FNV-1a, 64-bit: small, dependency-free, stable across platforms.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// SplitMix64 finalizer: diffuses the structured FNV output so related keys
/// (e.g. `seed 11` vs `seed 12`) land far apart in seed space.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Derives a cell seed from the cell's canonical key string and the base
/// seed of its seed-axis coordinate.
pub fn derive_seed(key: &str, base_seed: u64) -> u64 {
    splitmix64(fnv1a(key.as_bytes()) ^ base_seed)
}

/// Stable content fingerprint of a canonical key string: the same FNV-1a +
/// SplitMix64 machinery as [`derive_seed`], without a base seed. The
/// run-plan layer shards and addresses its result cache with this; like
/// cell seeds, fingerprints are a pure function of the key bytes, so they
/// are identical across processes, platforms and runs.
pub fn fingerprint(key: &str) -> u64 {
    fingerprint_bytes(key.as_bytes())
}

/// [`fingerprint`] over raw bytes — the same FNV-1a + SplitMix64 chain,
/// usable for non-UTF-8 content. The persistent run store checksums its
/// record payloads with this, keeping the whole cache subsystem on one
/// pinned hash.
pub fn fingerprint_bytes(bytes: &[u8]) -> u64 {
    splitmix64(fnv1a(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_across_calls() {
        assert_eq!(
            derive_seed("bicg|tx1|lru|isolation", 11),
            derive_seed("bicg|tx1|lru|isolation", 11)
        );
    }

    #[test]
    fn sensitive_to_every_coordinate() {
        let base = derive_seed("bicg|tx1|lru|isolation", 11);
        assert_ne!(base, derive_seed("bicg|tx1|lru|isolation", 12));
        assert_ne!(base, derive_seed("bicg|tx2|lru|isolation", 11));
        assert_ne!(base, derive_seed("bicg|tx1|lru|interference", 11));
        assert_ne!(base, derive_seed("mvt|tx1|lru|isolation", 11));
    }

    #[test]
    fn fingerprint_is_stable_and_seedless() {
        assert_eq!(
            fingerprint("bicg(128x128)|tx1|llc-r8"),
            fingerprint("bicg(128x128)|tx1|llc-r8")
        );
        assert_ne!(
            fingerprint("bicg(128x128)|tx1|llc-r8"),
            fingerprint("bicg(128x128)|tx1|llc-r1")
        );
        // fingerprint(k) == derive_seed(k, 0) by construction; pinning the
        // equality keeps the two derivations on the same machinery.
        assert_eq!(fingerprint("x"), derive_seed("x", 0));
    }

    #[test]
    fn known_vector_pins_the_hash() {
        // Pins FNV-1a + SplitMix64 so an accidental algorithm change (which
        // would silently re-seed every published matrix) fails loudly.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(splitmix64(0), 0xe220_a839_7b1d_cdaf);
    }
}
