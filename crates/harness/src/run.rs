//! Execution of one matrix cell and of whole matrices.

use prem_core::{run_baseline, run_prem, LocalStore, PrefetchStrategy, PremConfig};
use prem_gpusim::Scenario;

use crate::agg::MatrixResult;
use crate::pool::parallel_map;
use crate::spec::{CellSpec, MatrixScenario, MatrixSpec};

/// Measured outcome of one cell: the PREM-LLC run plus the unprotected
/// baseline under the same platform, seed and scenario (the reference for
/// the WCET-inflation column).
#[derive(Clone, Debug, PartialEq)]
pub struct CellResult {
    /// The coordinates this result belongs to.
    pub cell: CellSpec,
    /// Number of PREM intervals executed.
    pub intervals: usize,
    /// PREM schedule makespan (µs).
    pub makespan_us: f64,
    /// Compute-phase miss ratio of the PREM run.
    pub cpmr: f64,
    /// Static budget envelope — the guaranteed WCET bound (µs).
    pub envelope_us: f64,
    /// Phase work exceeding the static budgets (µs); non-zero means the
    /// schedulability guarantee was violated in this cell.
    pub violation_us: f64,
    /// Unprotected baseline execution time (µs).
    pub baseline_us: f64,
}

/// Runs a single cell. Each call owns its platform and RNG state, so cells
/// are embarrassingly parallel and identical regardless of which worker
/// executes them.
pub fn run_cell(spec: &MatrixSpec, cell: &CellSpec) -> CellResult {
    let kernel = spec.kernels[cell.kernel].as_ref();
    let plat = &spec.platforms[cell.platform];
    let policy = spec.policies[cell.policy];
    let ways = plat.config.llc.ways();

    let intervals = kernel
        .intervals(cell.t_bytes)
        .unwrap_or_else(|e| panic!("{} on {}: {e}", kernel.name(), plat.name));
    // A preset runs as itself; a mix installs its co-runner actors on the
    // platform's CPU and activates them via `Scenario::Corunners`. The
    // actors draw all their randomness from the cell's derived seed, so
    // co-runner traffic is as worker-count-independent as the rest of the
    // cell.
    let (scenario, corunners) = match &cell.scenario {
        MatrixScenario::Preset(s) => (*s, vec![]),
        MatrixScenario::Mix(m) => (Scenario::Corunners, m.profiles.clone()),
    };
    let platform_cfg = plat
        .config
        .clone()
        .llc_policy(policy.instantiate(ways))
        .llc_seed(cell.derived_seed)
        .with_corunners(corunners);

    let prem_cfg = PremConfig {
        store: LocalStore::Llc {
            prefetch: PrefetchStrategy::Repeated { r: spec.r },
        },
        ..PremConfig::llc_tamed()
    }
    .with_seed(cell.derived_seed)
    .with_noise(spec.noise);

    let mut platform = platform_cfg.build();
    let prem = run_prem(&mut platform, &intervals, &prem_cfg, scenario)
        .expect("LLC-PREM execution cannot fail");

    let mut base_platform = platform_cfg.build();
    let base = run_baseline(
        &mut base_platform,
        &intervals,
        cell.derived_seed,
        scenario,
        spec.noise,
    )
    .expect("baseline execution cannot fail");

    CellResult {
        cell: cell.clone(),
        intervals: prem.intervals,
        makespan_us: platform.cycles_to_us(prem.makespan_cycles),
        cpmr: prem.cpmr,
        envelope_us: platform.cycles_to_us(prem.budget_envelope_cycles),
        violation_us: platform.cycles_to_us(prem.budget_violation_cycles),
        baseline_us: platform.cycles_to_us(base.cycles),
    }
}

/// Expands `spec` and executes every cell on `workers` threads.
///
/// The result is deterministic in the spec alone: per-cell seeds come from
/// stable coordinate hashes and results are collected in expansion order,
/// so any worker count produces byte-identical artifacts.
pub fn run_matrix(spec: &MatrixSpec, workers: usize) -> MatrixResult {
    let cells = spec.expand();
    let results = parallel_map(workers, &cells, |cell| run_cell(spec, cell));
    MatrixResult::new(spec, results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{CorunnerMix, MatrixPlatform};
    use prem_gpusim::CorunnerProfile;
    use prem_kernels::Bicg;

    fn tiny_spec() -> MatrixSpec {
        let mut spec = MatrixSpec::quick(vec![Box::new(Bicg::new(128, 128))]);
        spec.platforms = vec![MatrixPlatform::tx1()];
        spec
    }

    #[test]
    fn cell_produces_consistent_metrics() {
        let spec = tiny_spec();
        let cells = spec.expand();
        let iso = cells
            .iter()
            .find(|c| c.scenario == MatrixScenario::Preset(Scenario::Isolation))
            .unwrap();
        let r = run_cell(&spec, iso);
        assert!(r.makespan_us > 0.0);
        assert!(r.baseline_us > 0.0);
        assert!(
            r.envelope_us >= r.makespan_us - 1e-9,
            "envelope must bound the isolated run"
        );
        assert_eq!(r.violation_us, 0.0, "no violations in isolation");
        assert!(r.cpmr >= 0.0 && r.cpmr <= 1.0);
    }

    #[test]
    fn rerunning_a_cell_is_deterministic() {
        let spec = tiny_spec();
        let cell = &spec.expand()[0];
        assert_eq!(run_cell(&spec, cell), run_cell(&spec, cell));
    }

    #[test]
    fn mix_cells_interpolate_between_the_presets() {
        let mut spec = tiny_spec();
        spec.scenarios = vec![
            MatrixScenario::Preset(Scenario::Isolation),
            MatrixScenario::Mix(CorunnerMix::uniform(1, CorunnerProfile::Membomb)),
            MatrixScenario::Preset(Scenario::Interference),
        ];
        let cells = spec.expand();
        let by_name = |n: &str| {
            cells
                .iter()
                .find(|c| c.scenario.name() == n)
                .map(|c| run_cell(&spec, c))
                .unwrap()
        };
        let iso = by_name("isolation");
        let one = by_name("1xmembomb");
        let full = by_name("interference");
        // One membomb is a third of the calibrated demand: strictly
        // between isolation and the paper's three-bomb scenario.
        assert!(iso.baseline_us < one.baseline_us);
        assert!(one.baseline_us < full.baseline_us);
        assert!(iso.makespan_us <= one.makespan_us + 1e-9);
        assert!(one.makespan_us <= full.makespan_us + 1e-9);
    }
}
