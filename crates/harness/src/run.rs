//! Execution of one matrix cell and of whole matrices.
//!
//! Since the run-plan refactor a cell is *two* canonical
//! [`RunRequest`]s — the LLC-PREM run and the unprotected baseline under
//! the same coordinates — and [`run_matrix`] submits all of them to a
//! [`PlanExecutor`] as one plan. Execution therefore happens at **run**
//! granularity (twice the parallelism grain of the old per-cell map) and
//! any run another artifact already executed is served from the cache.

use prem_core::{BaselineRun, PremRun, RunWork};

use crate::agg::MatrixResult;
use crate::plan::{PlanExecutor, PlatformSpec, RunRequest, RunSource};
use crate::spec::{CellSpec, MatrixSpec};

/// Measured outcome of one cell: the PREM-LLC run plus the unprotected
/// baseline under the same platform, seed and scenario (the reference for
/// the WCET-inflation column).
#[derive(Clone, Debug, PartialEq)]
pub struct CellResult {
    /// The coordinates this result belongs to.
    pub cell: CellSpec,
    /// Number of PREM intervals executed.
    pub intervals: usize,
    /// PREM schedule makespan (µs).
    pub makespan_us: f64,
    /// Compute-phase miss ratio of the PREM run.
    pub cpmr: f64,
    /// Static budget envelope — the guaranteed WCET bound (µs).
    pub envelope_us: f64,
    /// Phase work exceeding the static budgets (µs); non-zero means the
    /// schedulability guarantee was violated in this cell.
    pub violation_us: f64,
    /// Unprotected baseline execution time (µs).
    pub baseline_us: f64,
}

/// The two canonical run requests of one cell: the LLC-PREM run and the
/// unprotected baseline under the same platform, policy, seed and
/// scenario. A preset scenario runs as itself; a mix installs its
/// co-runner actors on the platform's CPU (resolved by the plan layer).
/// The actors draw all their randomness from the cell's derived seed, so
/// co-runner traffic is as worker-count-independent as the rest of the
/// cell.
pub fn cell_requests<'s>(spec: &'s MatrixSpec, cell: &CellSpec) -> [RunRequest<'s>; 2] {
    let plat = &spec.platforms[cell.platform];
    let prem = RunRequest {
        kernel: spec.kernels[cell.kernel].as_ref(),
        platform: PlatformSpec::new(plat.name.clone(), plat.config.clone())
            .with_policy(spec.policies[cell.policy]),
        work: RunWork::PremLlc { r: spec.r },
        t_bytes: cell.t_bytes,
        seed: cell.derived_seed,
        scenario: cell.scenario.clone(),
        noise: spec.noise,
    };
    let base = RunRequest {
        work: RunWork::Baseline,
        ..prem.clone()
    };
    [prem, base]
}

/// Folds one cell's two run outputs into the aggregate row, converting
/// cycle counts at the cell platform's clock.
fn cell_result(spec: &MatrixSpec, cell: &CellSpec, prem: PremRun, base: BaselineRun) -> CellResult {
    let config = &spec.platforms[cell.platform].config;
    let to_us = |cycles: f64| config.cycles_to_us(cycles);
    CellResult {
        cell: cell.clone(),
        intervals: prem.intervals,
        makespan_us: to_us(prem.makespan_cycles),
        cpmr: prem.cpmr,
        envelope_us: to_us(prem.budget_envelope_cycles),
        violation_us: to_us(prem.budget_violation_cycles),
        baseline_us: to_us(base.cycles),
    }
}

/// Runs a single cell through `source`. Each underlying run owns its
/// platform and RNG state, so cells are embarrassingly parallel and
/// identical regardless of which worker (or which cached plan) produced
/// their outputs.
pub fn run_cell_with(spec: &MatrixSpec, cell: &CellSpec, source: &impl RunSource) -> CellResult {
    let [prem, base] = cell_requests(spec, cell);
    cell_result(
        spec,
        cell,
        source.output(&prem).prem(),
        source.output(&base).baseline(),
    )
}

/// Runs a single cell directly (no cache) — the sequential timing path
/// `bench_matrix` gates CI with.
pub fn run_cell(spec: &MatrixSpec, cell: &CellSpec) -> CellResult {
    run_cell_with(spec, cell, &crate::plan::Direct)
}

/// Expands `spec` and executes every cell's runs as **one deduplicated
/// plan** on `workers` threads (run granularity: 2 × cells tasks).
///
/// The result is deterministic in the spec alone: per-cell seeds come from
/// stable coordinate hashes and results are collected in expansion order,
/// so any worker count produces byte-identical artifacts.
pub fn run_matrix(spec: &MatrixSpec, workers: usize) -> MatrixResult {
    run_matrix_with(spec, workers, &PlanExecutor::new())
}

/// [`run_matrix`] against a caller-owned executor, so a matrix can share
/// its run cache with other artifacts in the same process.
pub fn run_matrix_with(spec: &MatrixSpec, workers: usize, executor: &PlanExecutor) -> MatrixResult {
    run_matrix_metered(spec, workers, executor, &prem_obs::NullMetrics)
}

/// [`run_matrix_with`] recording through `metrics` (the `--metrics`
/// path of the `figures` matrix subcommand). The result is identical to
/// the unmetered call — metrics observe execution, never steer it.
pub fn run_matrix_metered<M: prem_obs::MetricsSink>(
    spec: &MatrixSpec,
    workers: usize,
    executor: &PlanExecutor,
    metrics: &M,
) -> MatrixResult {
    let cells = spec.expand();
    let requests: Vec<RunRequest<'_>> = cells
        .iter()
        .flat_map(|cell| cell_requests(spec, cell))
        .collect();
    executor.execute_metered(&requests, workers, metrics);
    let results = cells
        .iter()
        .map(|cell| run_cell_with(spec, cell, executor))
        .collect();
    MatrixResult::new(spec, results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{CorunnerMix, MatrixPlatform, MatrixScenario};
    use prem_gpusim::{CorunnerProfile, Scenario};
    use prem_kernels::Bicg;

    fn tiny_spec() -> MatrixSpec {
        let mut spec = MatrixSpec::quick(vec![Box::new(Bicg::new(128, 128))]);
        spec.platforms = vec![MatrixPlatform::tx1()];
        spec
    }

    #[test]
    fn cell_produces_consistent_metrics() {
        let spec = tiny_spec();
        let cells = spec.expand();
        let iso = cells
            .iter()
            .find(|c| c.scenario == MatrixScenario::Preset(Scenario::Isolation))
            .unwrap();
        let r = run_cell(&spec, iso);
        assert!(r.makespan_us > 0.0);
        assert!(r.baseline_us > 0.0);
        assert!(
            r.envelope_us >= r.makespan_us - 1e-9,
            "envelope must bound the isolated run"
        );
        assert_eq!(r.violation_us, 0.0, "no violations in isolation");
        assert!(r.cpmr >= 0.0 && r.cpmr <= 1.0);
    }

    #[test]
    fn rerunning_a_cell_is_deterministic() {
        let spec = tiny_spec();
        let cell = &spec.expand()[0];
        assert_eq!(run_cell(&spec, cell), run_cell(&spec, cell));
    }

    #[test]
    fn mix_cells_interpolate_between_the_presets() {
        let mut spec = tiny_spec();
        spec.scenarios = vec![
            MatrixScenario::Preset(Scenario::Isolation),
            MatrixScenario::Mix(CorunnerMix::uniform(1, CorunnerProfile::Membomb)),
            MatrixScenario::Preset(Scenario::Interference),
        ];
        let cells = spec.expand();
        let by_name = |n: &str| {
            cells
                .iter()
                .find(|c| c.scenario.name() == n)
                .map(|c| run_cell(&spec, c))
                .unwrap()
        };
        let iso = by_name("isolation");
        let one = by_name("1xmembomb");
        let full = by_name("interference");
        // One membomb is a third of the calibrated demand: strictly
        // between isolation and the paper's three-bomb scenario.
        assert!(iso.baseline_us < one.baseline_us);
        assert!(one.baseline_us < full.baseline_us);
        assert!(iso.makespan_us <= one.makespan_us + 1e-9);
        assert!(one.makespan_us <= full.makespan_us + 1e-9);
    }
}
