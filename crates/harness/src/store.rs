//! The persistent, shareable on-disk run cache.
//!
//! [`PlanExecutor`](crate::PlanExecutor) memoizes run outputs in memory
//! and forgets them at process exit; a [`RunStore`] makes the
//! content-addressed cache durable, so consecutive `figures` / `matrix`
//! invocations are incremental: a warm regeneration is served entirely
//! from disk, and an experiment tweak re-executes only the requests whose
//! canonical keys actually changed (the platform-config digest inside
//! every key invalidates exactly the touched frontier).
//!
//! ## On-disk layout
//!
//! A store is a directory of up to [`STORE_SHARDS`] **segment files**,
//! `seg-0.prst` … `seg-f.prst`, one per low nibble of the request
//! fingerprint ([`crate::seed::fingerprint`]), in the style of
//! `prem-trace`'s `PRTC` container:
//!
//! ```text
//! segment := magic "PRST" | store version u8 | codec version u8
//!          | shard index u8 | reserved u8 (0) | record count u32 LE
//!          | record*
//! record  := fingerprint u64 LE
//!          | key length varint | canonical key (UTF-8)
//!          | payload length varint | payload (RunOutput, prem-core codec)
//!          | payload checksum u64 LE (FNV-1a + SplitMix64)
//! ```
//!
//! Records are sorted by canonical key when a segment is written, so two
//! stores holding the same entries are byte-identical regardless of
//! insertion history.
//!
//! ## Integrity: corruption is a hard error
//!
//! A cache that silently drops or invents results would corrupt published
//! artifacts, so every load re-validates everything and **fails loudly**:
//! bad magic, unknown store/codec version, a segment filed under the
//! wrong shard, truncation (mid-record EOF or a record count the bytes
//! cannot back), trailing bytes, a stored fingerprint that does not match
//! the record's key, a payload failing its checksum or decode, two
//! records with equal fingerprints but different keys (fingerprint
//! collision), and two records for one key with different outputs all
//! surface as [`io::ErrorKind::InvalidData`] /
//! [`io::ErrorKind::UnexpectedEof`]. Recovery is deletion: remove the
//! cache directory (or the one poisoned segment) and re-run — the store
//! is a cache of deterministic executions, never the only copy of
//! anything.
//!
//! ## Multi-process sharing
//!
//! Worker processes share one store through per-shard **advisory file
//! locks** (`seg-x.lock`, never renamed): readers take the lock shared,
//! writers exclusive. An append re-reads the segment under the exclusive
//! lock, merges (a raced duplicate of the same key must carry a
//! bit-identical output — determinism makes that a checkable invariant,
//! not an assumption), writes the merged segment to a temp file in the
//! same directory and atomically renames it into place. A concurrent
//! reader therefore sees either the old or the new segment, never a
//! partial write.

use std::collections::HashMap;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use prem_core::{RunOutput, CODEC_VERSION};
use prem_obs::{MetricsSink, NullMetrics, Span};

use crate::seed::{fingerprint, fingerprint_bytes};

/// File magic: the first four bytes of every segment file.
pub const STORE_MAGIC: [u8; 4] = *b"PRST";
/// Store container format version this crate writes and reads.
pub const STORE_VERSION: u8 = 1;
/// Number of segment files a store shards its records over. A power of
/// two so the fingerprint selects a segment by masking — the same scheme
/// (and count) as the in-memory `PlanExecutor` shards.
pub const STORE_SHARDS: usize = 16;

/// Segments larger than this many records are rejected as corrupt: at
/// ≥ 25 encoded bytes per record the byte count alone could never back
/// such a claim, so the cap bounds allocation on hostile headers without
/// constraining any real cache.
const MAX_SEGMENT_RECORDS: u64 = 1 << 28;

fn bad_data(path: &Path, msg: impl fmt::Display) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("run store {}: {msg}", path.display()),
    )
}

fn write_varint<W: Write>(w: &mut W, mut v: u64) -> io::Result<()> {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

fn read_varint(r: &mut &[u8], path: &Path) -> io::Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let mut buf = [0u8; 1];
        r.read_exact(&mut buf)?;
        let byte = buf[0];
        if shift >= 64 || (shift == 63 && byte > 1) {
            return Err(bad_data(path, "varint overflows u64"));
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// One shard's decoded records: canonical key → output, plus the
/// fingerprint → key index that makes fingerprint collisions detectable
/// at load and append time.
#[derive(Debug, Default, Clone)]
struct ShardMap {
    by_key: HashMap<String, RunOutput>,
    by_fp: HashMap<u64, String>,
}

impl ShardMap {
    /// Inserts one record, enforcing the collision and conflict
    /// invariants. Returns `true` when the record was new.
    fn insert(&mut self, fp: u64, key: String, output: RunOutput, path: &Path) -> io::Result<bool> {
        if let Some(prev) = self.by_fp.get(&fp) {
            if *prev != key {
                return Err(bad_data(
                    path,
                    format!("fingerprint collision: {fp:#018x} maps to both {prev:?} and {key:?}"),
                ));
            }
        }
        match self.by_key.get(&key) {
            Some(existing) if *existing == output => Ok(false),
            Some(_) => Err(bad_data(
                path,
                format!("conflicting outputs recorded for key {key:?}"),
            )),
            None => {
                self.by_fp.insert(fp, key.clone());
                self.by_key.insert(key, output);
                Ok(true)
            }
        }
    }
}

/// Aggregate shape of a store, as reported by [`RunStore::stats`] and
/// [`RunStore::verify`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Segment files present on disk.
    pub segments: usize,
    /// Total records across all segments.
    pub records: usize,
    /// Total segment bytes on disk.
    pub bytes: u64,
    /// Records per shard (index = fingerprint low nibble).
    pub shard_records: [usize; STORE_SHARDS],
}

impl fmt::Display for StoreStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "run store: {} records in {} segment file(s), {} bytes",
            self.records, self.segments, self.bytes
        )?;
        for (idx, count) in self.shard_records.iter().enumerate() {
            if *count > 0 {
                writeln!(f, "  seg-{idx:x}.prst: {count} record(s)")?;
            }
        }
        Ok(())
    }
}

/// Outcome of a [`RunStore::gc`] sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Records retained.
    pub kept: usize,
    /// Records dropped.
    pub removed: usize,
    /// Segment bytes before the sweep.
    pub bytes_before: u64,
    /// Segment bytes after the sweep.
    pub bytes_after: u64,
}

impl fmt::Display for GcReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "gc: kept {} record(s), removed {}, {} -> {} bytes",
            self.kept, self.removed, self.bytes_before, self.bytes_after
        )
    }
}

/// The persistent run cache: fingerprint-sharded segment files of
/// (canonical key, [`RunOutput`]) records under one directory. See the
/// [module docs](self) for format, integrity and locking.
///
/// Shards are loaded lazily (first lookup touching a shard parses its
/// segment, validating every record) and cached in memory; appends merge
/// with the on-disk state under an exclusive advisory lock, so multiple
/// worker processes can share one directory.
///
/// ```
/// use prem_harness::RunStore;
/// let dir = std::env::temp_dir().join(format!("prem-store-doc-{}", std::process::id()));
/// let store = RunStore::open(&dir)?;          // creates the directory
/// assert_eq!(store.stats()?.records, 0);      // empty store: no segments yet
/// assert!(store.get("bicg(128x128)|tx1|…")?.is_none());
/// # std::fs::remove_dir_all(&dir).ok();
/// # Ok::<(), std::io::Error>(())
/// ```
#[derive(Debug)]
pub struct RunStore {
    dir: PathBuf,
    shards: Vec<Mutex<Option<ShardMap>>>,
}

impl RunStore {
    /// Opens (creating if necessary) the store directory at `dir`.
    /// Segments are not read here — loading is lazy and per shard.
    ///
    /// # Errors
    ///
    /// Any I/O error creating the directory.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<RunStore> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        Ok(RunStore {
            dir,
            shards: (0..STORE_SHARDS).map(|_| Mutex::new(None)).collect(),
        })
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Shard index of a canonical key: low nibble of its fingerprint.
    fn shard_of(key: &str) -> usize {
        (fingerprint(key) as usize) & (STORE_SHARDS - 1)
    }

    fn segment_path(&self, idx: usize) -> PathBuf {
        self.dir.join(format!("seg-{idx:x}.prst"))
    }

    fn lock_path(&self, idx: usize) -> PathBuf {
        self.dir.join(format!("seg-{idx:x}.lock"))
    }

    /// Opens (creating if necessary) shard `idx`'s lock file. The lock
    /// file is separate from the segment and never renamed, so a lock
    /// taken on it stays meaningful across the segment's atomic
    /// replacement.
    fn lock_file(&self, idx: usize) -> io::Result<File> {
        OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .truncate(false)
            .open(self.lock_path(idx))
    }

    /// Parses one segment file's bytes, validating every record.
    fn parse_segment(&self, idx: usize, bytes: &[u8], path: &Path) -> io::Result<ShardMap> {
        let mut r = bytes;
        let mut header = [0u8; 12];
        r.read_exact(&mut header)?;
        if header[0..4] != STORE_MAGIC {
            return Err(bad_data(path, "not a run-store segment (bad magic)"));
        }
        if header[4] != STORE_VERSION {
            return Err(bad_data(
                path,
                format!(
                    "unsupported store version {} (expected {STORE_VERSION})",
                    header[4]
                ),
            ));
        }
        if header[5] != CODEC_VERSION {
            return Err(bad_data(
                path,
                format!(
                    "run-output codec version {} does not match this build's {CODEC_VERSION} — \
                     delete the cache directory to regenerate it",
                    header[5]
                ),
            ));
        }
        if usize::from(header[6]) != idx {
            return Err(bad_data(
                path,
                format!("segment filed under shard {idx} claims shard {}", header[6]),
            ));
        }
        if header[7] != 0 {
            return Err(bad_data(path, "nonzero reserved header byte"));
        }
        let count = u64::from(u32::from_le_bytes([
            header[8], header[9], header[10], header[11],
        ]));
        if count > MAX_SEGMENT_RECORDS {
            return Err(bad_data(path, "unreasonable record count"));
        }
        let mut map = ShardMap::default();
        for _ in 0..count {
            let mut fp_bytes = [0u8; 8];
            r.read_exact(&mut fp_bytes)?;
            let fp = u64::from_le_bytes(fp_bytes);
            let key_len = read_varint(&mut r, path)? as usize;
            if key_len > r.len() {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    format!("run store {}: truncated key", path.display()),
                ));
            }
            let mut key_bytes = vec![0u8; key_len];
            r.read_exact(&mut key_bytes)?;
            let key = String::from_utf8(key_bytes)
                .map_err(|_| bad_data(path, "record key is not UTF-8"))?;
            if fingerprint(&key) != fp {
                return Err(bad_data(
                    path,
                    format!("stored fingerprint does not match key {key:?}"),
                ));
            }
            if fp as usize & (STORE_SHARDS - 1) != idx {
                return Err(bad_data(
                    path,
                    format!("record for key {key:?} belongs to another shard"),
                ));
            }
            let payload_len = read_varint(&mut r, path)? as usize;
            if payload_len > r.len() {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    format!("run store {}: truncated payload", path.display()),
                ));
            }
            let (payload, rest) = r.split_at(payload_len);
            r = rest;
            let mut check = [0u8; 8];
            r.read_exact(&mut check)?;
            if u64::from_le_bytes(check) != fingerprint_bytes(payload) {
                return Err(bad_data(
                    path,
                    format!("payload checksum mismatch for key {key:?}"),
                ));
            }
            let output = RunOutput::decode(payload)
                .map_err(|e| bad_data(path, format!("undecodable payload for key {key:?}: {e}")))?;
            if !map.insert(fp, key, output, path)? {
                return Err(bad_data(path, "duplicate record within one segment"));
            }
        }
        if !r.is_empty() {
            return Err(bad_data(path, "trailing bytes after final record"));
        }
        Ok(map)
    }

    /// Reads and parses shard `idx` from disk; the caller holds the
    /// shard's advisory lock (shared or exclusive). An absent segment is
    /// an empty shard. Actual segment reads are metered: one
    /// `store.segment_loads` count, `store.bytes_read` (total and
    /// per-shard) and a `store.load_ns` latency sample.
    fn load_from_disk<M: MetricsSink>(&self, idx: usize, metrics: &M) -> io::Result<ShardMap> {
        let _load = Span::start(metrics, "store.load_ns");
        let path = self.segment_path(idx);
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(ShardMap::default()),
            Err(e) => return Err(e),
        };
        metrics.add("store.segment_loads", 1);
        metrics.add("store.bytes_read", bytes.len() as u64);
        if metrics.enabled() {
            // Dynamic names allocate; keep the format off the disabled path.
            metrics.add(
                &format!("store.shard.{idx:x}.bytes_read"),
                bytes.len() as u64,
            );
        }
        self.parse_segment(idx, &bytes, &path)
    }

    /// Serializes `map` and atomically replaces shard `idx`'s segment
    /// (write to a temp file in the same directory, fsync, rename). An
    /// empty map removes the segment file instead. Metered: written
    /// bytes land in `store.bytes_written` (total and per-shard).
    fn write_segment_metered<M: MetricsSink>(
        &self,
        idx: usize,
        map: &ShardMap,
        metrics: &M,
    ) -> io::Result<()> {
        let path = self.segment_path(idx);
        if map.by_key.is_empty() {
            return match fs::remove_file(&path) {
                Err(e) if e.kind() != io::ErrorKind::NotFound => Err(e),
                _ => Ok(()),
            };
        }
        let mut keys: Vec<&String> = map.by_key.keys().collect();
        keys.sort();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&STORE_MAGIC);
        bytes.extend_from_slice(&[STORE_VERSION, CODEC_VERSION, idx as u8, 0]);
        let count = u32::try_from(map.by_key.len())
            .map_err(|_| bad_data(&path, "record count overflows the segment header"))?;
        bytes.extend_from_slice(&count.to_le_bytes());
        for key in keys {
            bytes.extend_from_slice(&fingerprint(key).to_le_bytes());
            write_varint(&mut bytes, key.len() as u64).expect("writing to a Vec cannot fail");
            bytes.extend_from_slice(key.as_bytes());
            let payload = map.by_key[key].encode();
            write_varint(&mut bytes, payload.len() as u64).expect("writing to a Vec cannot fail");
            let checksum = fingerprint_bytes(&payload);
            bytes.extend_from_slice(&payload);
            bytes.extend_from_slice(&checksum.to_le_bytes());
        }
        metrics.add("store.bytes_written", bytes.len() as u64);
        if metrics.enabled() {
            metrics.add(
                &format!("store.shard.{idx:x}.bytes_written"),
                bytes.len() as u64,
            );
        }
        let tmp = self
            .dir
            .join(format!("seg-{idx:x}.tmp.{}", std::process::id()));
        let mut file = File::create(&tmp)?;
        file.write_all(&bytes)?;
        file.sync_all()?;
        drop(file);
        fs::rename(&tmp, &path)
    }

    /// Runs `f` on shard `idx`'s in-memory map, loading it from disk
    /// first (under a shared advisory lock, its wait metered as
    /// `store.lock_wait_ns`) if this is the shard's first touch.
    fn with_shard<T, M: MetricsSink>(
        &self,
        idx: usize,
        metrics: &M,
        f: impl FnOnce(&ShardMap) -> T,
    ) -> io::Result<T> {
        let mut guard = self.shards[idx].lock().expect("store shard poisoned");
        if guard.is_none() {
            let lock = self.lock_file(idx)?;
            {
                let _wait = Span::start(metrics, "store.lock_wait_ns");
                lock.lock_shared()?;
            }
            let loaded = self.load_from_disk(idx, metrics);
            let _ = File::unlock(&lock);
            *guard = Some(loaded?);
        }
        Ok(f(guard.as_ref().expect("shard loaded above")))
    }

    /// Looks up the output recorded for `key`, loading the key's shard on
    /// first touch.
    ///
    /// The in-memory image is a snapshot: records appended by *another*
    /// process after this process first loaded the shard are not visible
    /// until a fresh [`RunStore::open`] (or [`RunStore::verify`], which
    /// re-reads). Missing a racing writer's record is safe — the re-execution
    /// it causes appends a bit-identical output, which the merge accepts.
    ///
    /// # Errors
    ///
    /// Corruption anywhere in the shard's segment is a hard error (see
    /// the [module docs](self)); so is any underlying I/O failure.
    pub fn get(&self, key: &str) -> io::Result<Option<RunOutput>> {
        self.get_metered(key, &NullMetrics)
    }

    /// [`RunStore::get`] recording segment-load and lock-wait metrics
    /// into `metrics` (the store-backed executor's metered tier).
    ///
    /// # Errors
    ///
    /// As for [`RunStore::get`].
    pub fn get_metered<M: MetricsSink>(
        &self,
        key: &str,
        metrics: &M,
    ) -> io::Result<Option<RunOutput>> {
        self.with_shard(Self::shard_of(key), metrics, |map| {
            map.by_key.get(key).cloned()
        })
    }

    /// Whether `key` has a recorded output (same loading and error
    /// behavior as [`RunStore::get`], without cloning the payload).
    ///
    /// # Errors
    ///
    /// As for [`RunStore::get`].
    pub fn contains(&self, key: &str) -> io::Result<bool> {
        self.with_shard(Self::shard_of(key), &NullMetrics, |map| {
            map.by_key.contains_key(key)
        })
    }

    /// Durably records `entries` (canonical key → output), returning how
    /// many were new. Entries are grouped by shard; each touched shard is
    /// re-read from disk under an exclusive advisory lock, merged and
    /// atomically rewritten, so concurrent appenders from other processes
    /// cannot lose records.
    ///
    /// A key already recorded with a bit-identical output is skipped (two
    /// processes raced on the same deterministic run); one recorded with
    /// a *different* output is a hard error.
    ///
    /// # Errors
    ///
    /// Corruption (including output conflicts and fingerprint collisions)
    /// and any underlying I/O failure.
    pub fn append<'e>(
        &self,
        entries: impl IntoIterator<Item = (&'e str, &'e RunOutput)>,
    ) -> io::Result<usize> {
        self.append_metered(entries, &NullMetrics)
    }

    /// [`RunStore::append`] recording per-shard merge latency
    /// (`store.append_ns`), exclusive-lock waits (`store.lock_wait_ns`),
    /// written bytes and appended-record counts into `metrics`.
    ///
    /// # Errors
    ///
    /// As for [`RunStore::append`].
    pub fn append_metered<'e, M: MetricsSink>(
        &self,
        entries: impl IntoIterator<Item = (&'e str, &'e RunOutput)>,
        metrics: &M,
    ) -> io::Result<usize> {
        let mut by_shard: Vec<Vec<(&str, &RunOutput)>> = vec![Vec::new(); STORE_SHARDS];
        for (key, output) in entries {
            by_shard[Self::shard_of(key)].push((key, output));
        }
        let mut added_total = 0;
        for (idx, batch) in by_shard.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            let _append = Span::start(metrics, "store.append_ns");
            let mut guard = self.shards[idx].lock().expect("store shard poisoned");
            let lock = self.lock_file(idx)?;
            {
                let _wait = Span::start(metrics, "store.lock_wait_ns");
                lock.lock()?;
            }
            let result = (|| {
                let mut merged = self.load_from_disk(idx, metrics)?;
                let path = self.segment_path(idx);
                let mut added = 0;
                for (key, output) in batch {
                    if merged.insert(fingerprint(key), key.to_string(), output.clone(), &path)? {
                        added += 1;
                    }
                }
                if added > 0 {
                    self.write_segment_metered(idx, &merged, metrics)?;
                }
                *guard = Some(merged);
                Ok::<usize, io::Error>(added)
            })();
            let _ = File::unlock(&lock);
            added_total += result?;
        }
        metrics.add("store.appended_records", added_total as u64);
        Ok(added_total)
    }

    /// Counts records and bytes per shard, loading (and thereby
    /// validating) any shard not yet in memory.
    ///
    /// # Errors
    ///
    /// As for [`RunStore::get`].
    pub fn stats(&self) -> io::Result<StoreStats> {
        self.stats_metered(&NullMetrics)
    }

    /// [`RunStore::stats`] reporting through `metrics` as well: shape
    /// gauges (`store.records`, `store.segments`, `store.bytes`,
    /// per-shard `store.shard.<x>.records`/`.bytes`) plus the load
    /// latencies of any shard this call was first to touch — the
    /// registry-backed form behind `figures -- cache stats`.
    ///
    /// # Errors
    ///
    /// As for [`RunStore::get`].
    pub fn stats_metered<M: MetricsSink>(&self, metrics: &M) -> io::Result<StoreStats> {
        let mut stats = StoreStats::default();
        for idx in 0..STORE_SHARDS {
            stats.shard_records[idx] = self.with_shard(idx, metrics, |map| map.by_key.len())?;
            stats.records += stats.shard_records[idx];
            let mut shard_bytes = 0;
            match fs::metadata(self.segment_path(idx)) {
                Ok(meta) => {
                    stats.segments += 1;
                    stats.bytes += meta.len();
                    shard_bytes = meta.len();
                }
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
            if metrics.enabled() && (stats.shard_records[idx] > 0 || shard_bytes > 0) {
                metrics.gauge(
                    &format!("store.shard.{idx:x}.records"),
                    stats.shard_records[idx] as i64,
                );
                metrics.gauge(&format!("store.shard.{idx:x}.bytes"), shard_bytes as i64);
            }
        }
        metrics.gauge("store.records", stats.records as i64);
        metrics.gauge("store.segments", stats.segments as i64);
        metrics.gauge("store.bytes", stats.bytes as i64);
        Ok(stats)
    }

    /// Re-reads **every** segment from disk (discarding in-memory
    /// snapshots), which decodes and checksums every record — the full
    /// integrity pass behind `figures -- cache verify`. On success the
    /// refreshed snapshots replace the cached ones and the stats are
    /// returned.
    ///
    /// # Errors
    ///
    /// The first corruption or I/O failure found, as a hard error.
    pub fn verify(&self) -> io::Result<StoreStats> {
        for idx in 0..STORE_SHARDS {
            let mut guard = self.shards[idx].lock().expect("store shard poisoned");
            let lock = self.lock_file(idx)?;
            lock.lock_shared()?;
            let loaded = self.load_from_disk(idx, &NullMetrics);
            let _ = File::unlock(&lock);
            *guard = Some(loaded?);
        }
        self.stats()
    }

    /// Rewrites every segment keeping only records whose canonical key
    /// satisfies `keep`, under the same per-shard exclusive locking and
    /// atomic replacement as [`RunStore::append`]. Empty segments are
    /// deleted.
    ///
    /// # Errors
    ///
    /// As for [`RunStore::append`].
    pub fn gc(&self, keep: impl Fn(&str) -> bool) -> io::Result<GcReport> {
        let mut report = GcReport::default();
        for idx in 0..STORE_SHARDS {
            let mut guard = self.shards[idx].lock().expect("store shard poisoned");
            let lock = self.lock_file(idx)?;
            lock.lock()?;
            let result = (|| {
                let path = self.segment_path(idx);
                if let Ok(meta) = fs::metadata(&path) {
                    report.bytes_before += meta.len();
                }
                let loaded = self.load_from_disk(idx, &NullMetrics)?;
                let mut kept = ShardMap::default();
                for (key, output) in &loaded.by_key {
                    if keep(key) {
                        kept.insert(fingerprint(key), key.clone(), output.clone(), &path)?;
                    } else {
                        report.removed += 1;
                    }
                }
                report.kept += kept.by_key.len();
                if kept.by_key.len() != loaded.by_key.len() {
                    self.write_segment_metered(idx, &kept, &NullMetrics)?;
                }
                if let Ok(meta) = fs::metadata(&path) {
                    report.bytes_after += meta.len();
                }
                *guard = Some(kept);
                Ok::<(), io::Error>(())
            })();
            let _ = File::unlock(&lock);
            result?;
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prem_core::{execute_run, NoiseModel, RunWork};
    use prem_gpusim::{PlatformConfig, Scenario};
    use prem_kernels::{Bicg, Kernel};
    use prem_memsim::KIB;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A fresh per-test directory under the system temp dir.
    fn scratch_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "prem-store-test-{}-{tag}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        fs::remove_dir_all(&dir).ok();
        dir
    }

    fn sample_output_with(work: RunWork, seed: u64) -> RunOutput {
        let bicg = Bicg::new(64, 64);
        let intervals = bicg.intervals(32 * KIB).expect("tiling");
        execute_run(
            &PlatformConfig::tx1(),
            &intervals,
            work,
            seed,
            Scenario::Isolation,
            NoiseModel::off(),
        )
        .expect("sample run")
    }

    fn sample_output(seed: u64) -> RunOutput {
        sample_output_with(RunWork::PremLlc { r: 2 }, seed)
    }

    #[test]
    fn put_get_roundtrips_across_store_handles() {
        let dir = scratch_dir("roundtrip");
        let out = sample_output(3);
        {
            let store = RunStore::open(&dir).expect("open");
            assert!(store.get("k|a").expect("get").is_none());
            assert_eq!(store.append([("k|a", &out)]).expect("append"), 1);
            assert_eq!(store.get("k|a").expect("get"), Some(out.clone()));
        }
        // A second handle (≈ a second process) sees the persisted record.
        let store = RunStore::open(&dir).expect("reopen");
        assert_eq!(store.get("k|a").expect("get"), Some(out.clone()));
        let stats = store.stats().expect("stats");
        assert_eq!((stats.records, stats.segments), (1, 1));
        // Re-appending the identical output is a no-op, not an error.
        assert_eq!(store.append([("k|a", &out)]).expect("re-append"), 0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn segment_bytes_are_canonical_regardless_of_insertion_order() {
        let dir_ab = scratch_dir("canon-ab");
        let dir_ba = scratch_dir("canon-ba");
        let (a, b) = (sample_output(1), sample_output(2));
        // Find two keys landing in the same shard so order could matter.
        let base = "key|";
        let mut same_shard = Vec::new();
        for i in 0.. {
            let key = format!("{base}{i}");
            if RunStore::shard_of(&key) == 0 {
                same_shard.push(key);
                if same_shard.len() == 2 {
                    break;
                }
            }
        }
        let (k1, k2) = (same_shard[0].as_str(), same_shard[1].as_str());
        let store_ab = RunStore::open(&dir_ab).expect("open");
        store_ab.append([(k1, &a)]).expect("append");
        store_ab.append([(k2, &b)]).expect("append");
        let store_ba = RunStore::open(&dir_ba).expect("open");
        store_ba.append([(k2, &b)]).expect("append");
        store_ba.append([(k1, &a)]).expect("append");
        assert_eq!(
            fs::read(store_ab.segment_path(0)).expect("read ab"),
            fs::read(store_ba.segment_path(0)).expect("read ba"),
            "same content must produce byte-identical segments"
        );
        fs::remove_dir_all(&dir_ab).ok();
        fs::remove_dir_all(&dir_ba).ok();
    }

    #[test]
    fn conflicting_outputs_for_one_key_are_a_hard_error() {
        let dir = scratch_dir("conflict");
        let store = RunStore::open(&dir).expect("open");
        store
            .append([("k|x", &sample_output_with(RunWork::PremLlc { r: 1 }, 1))])
            .expect("first");
        let err = store
            .append([("k|x", &sample_output_with(RunWork::Baseline, 1))])
            .expect_err("conflicting append must fail");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("conflicting outputs"), "{err}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncation_and_corruption_are_hard_errors() {
        let dir = scratch_dir("corrupt");
        let out = sample_output(5);
        let store = RunStore::open(&dir).expect("open");
        store.append([("k|y", &out)]).expect("append");
        let seg = store.segment_path(RunStore::shard_of("k|y"));
        let bytes = fs::read(&seg).expect("read segment");

        // Truncated mid-record: UnexpectedEof.
        fs::write(&seg, &bytes[..bytes.len() - 3]).expect("truncate");
        let err = RunStore::open(&dir)
            .expect("open")
            .get("k|y")
            .expect_err("truncated");
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);

        // Flipped payload bit: checksum mismatch.
        let mut flipped = bytes.clone();
        let mid = flipped.len() - 12; // inside the payload, before the checksum
        flipped[mid] ^= 0x40;
        fs::write(&seg, &flipped).expect("flip");
        let err = RunStore::open(&dir)
            .expect("open")
            .get("k|y")
            .expect_err("corrupt");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("checksum"), "{err}");

        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        fs::write(&seg, &bad).expect("bad magic");
        let err = RunStore::open(&dir)
            .expect("open")
            .get("k|y")
            .expect_err("magic");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // Wrong codec version byte.
        let mut wrong = bytes.clone();
        wrong[5] = CODEC_VERSION + 1;
        fs::write(&seg, &wrong).expect("codec bump");
        let err = RunStore::open(&dir)
            .expect("open")
            .get("k|y")
            .expect_err("codec");
        assert!(err.to_string().contains("codec version"), "{err}");

        // Trailing garbage after the declared records.
        let mut trailing = bytes.clone();
        trailing.push(0xaa);
        fs::write(&seg, &trailing).expect("trailing");
        let err = RunStore::open(&dir)
            .expect("open")
            .get("k|y")
            .expect_err("trailing");
        assert!(err.to_string().contains("trailing"), "{err}");

        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn verify_rereads_disk_and_gc_drops_dead_keys() {
        let dir = scratch_dir("gc");
        let store = RunStore::open(&dir).expect("open");
        let (a, b) = (sample_output(1), sample_output(2));
        store
            .append([("live|1", &a), ("dead|1", &b)])
            .expect("append");
        let stats = store.verify().expect("verify");
        assert_eq!(stats.records, 2);
        let report = store.gc(|key| key.starts_with("live|")).expect("gc");
        assert_eq!((report.kept, report.removed), (1, 1));
        assert!(report.bytes_after < report.bytes_before);
        assert_eq!(store.get("live|1").expect("get"), Some(a));
        assert!(store.get("dead|1").expect("get").is_none());
        // A fresh handle agrees: the sweep was durable.
        let fresh = RunStore::open(&dir).expect("reopen");
        assert!(fresh.get("dead|1").expect("get").is_none());
        assert_eq!(fresh.stats().expect("stats").records, 1);
        fs::remove_dir_all(&dir).ok();
    }
}
