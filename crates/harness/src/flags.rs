//! Shared executor CLI flags.
//!
//! Every front end that owns a [`PlanExecutor`] — `figures`,
//! `bench_matrix`, `serve` — speaks the same flags: `--cache`,
//! `--no-cache`, `--cache-dir <path>` (or `--cache-dir=<path>`),
//! `--no-replay`, and the observability pair `--metrics` /
//! `--metrics-dir <dir>`. This module is the one parser and the one help string
//! for them, so the binaries cannot drift apart; each front end decides
//! what an explicit override *means* (figures honors all of them,
//! `bench_matrix` rejects toggles that would unground its gate), but the
//! spelling and precedence are defined exactly once.

use std::fs;
use std::io;
use std::path::PathBuf;

use prem_obs::Registry;

use crate::plan::PlanExecutor;
use crate::store::RunStore;

/// The shared help text for the executor flags, one bullet per flag —
/// embed verbatim in each binary's usage listing.
pub const EXEC_FLAGS_HELP: &str = "\
  --cache             use the persistent run cache (default)
  --no-cache          in-memory plan cache only, nothing persisted
  --cache-dir <path>  run cache location (also --cache-dir=<path>)
  --no-replay         disable derivation-family replay (every unique
                      request executes live)
  --metrics           record executor/store metrics and write a
                      metrics.json snapshot when the run finishes
  --metrics-dir <dir> snapshot directory, default results
                      (also --metrics-dir=<dir>)";

/// Parsed executor flags: the cache/replay toggles (tracking whether
/// each was set explicitly) and the cache directory.
#[derive(Clone, Debug)]
pub struct ExecFlags {
    /// Explicit `--cache`/`--no-cache`, `None` when neither was given.
    cache: Option<bool>,
    /// Explicit `--no-replay`, `None` when not given.
    replay: Option<bool>,
    /// Explicit `--metrics`; recording is off unless asked for.
    metrics: bool,
    /// Cache directory (the binary's default unless `--cache-dir`).
    pub cache_dir: PathBuf,
    /// Where [`ExecFlags::write_metrics`] drops `metrics.json`
    /// (`results` unless `--metrics-dir`).
    pub metrics_dir: PathBuf,
}

impl ExecFlags {
    /// Extracts the executor flags from `args`, returning the flags and
    /// the remaining (non-executor) arguments in their original order.
    /// The last occurrence of a toggle wins, matching how the flags have
    /// always behaved in `figures`. A `--cache-dir` with no path is a
    /// hard error (the message; the caller owns usage/exit).
    pub fn parse(
        default_dir: impl Into<PathBuf>,
        args: impl IntoIterator<Item = String>,
    ) -> Result<(ExecFlags, Vec<String>), String> {
        let mut flags = ExecFlags {
            cache: None,
            replay: None,
            metrics: false,
            cache_dir: default_dir.into(),
            metrics_dir: PathBuf::from("results"),
        };
        let mut rest = Vec::new();
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            if a == "--cache" {
                flags.cache = Some(true);
            } else if a == "--no-cache" {
                flags.cache = Some(false);
            } else if a == "--no-replay" {
                flags.replay = Some(false);
            } else if a == "--cache-dir" {
                flags.cache_dir = PathBuf::from(
                    it.next()
                        .ok_or_else(|| "--cache-dir needs a path".to_string())?,
                );
            } else if let Some(path) = a.strip_prefix("--cache-dir=") {
                flags.cache_dir = PathBuf::from(path);
            } else if a == "--metrics" {
                flags.metrics = true;
            } else if a == "--metrics-dir" {
                flags.metrics = true;
                flags.metrics_dir = PathBuf::from(
                    it.next()
                        .ok_or_else(|| "--metrics-dir needs a path".to_string())?,
                );
            } else if let Some(path) = a.strip_prefix("--metrics-dir=") {
                flags.metrics = true;
                flags.metrics_dir = PathBuf::from(path);
            } else {
                rest.push(a);
            }
        }
        Ok((flags, rest))
    }

    /// Whether the persistent run cache is enabled (default: yes).
    pub fn use_cache(&self) -> bool {
        self.cache.unwrap_or(true)
    }

    /// Whether derivation-family replay is enabled (default: yes).
    pub fn use_replay(&self) -> bool {
        self.replay.unwrap_or(true)
    }

    /// Whether `--cache`/`--no-cache` was given explicitly.
    pub fn cache_overridden(&self) -> bool {
        self.cache.is_some()
    }

    /// Whether `--no-replay` was given explicitly.
    pub fn replay_overridden(&self) -> bool {
        self.replay.is_some()
    }

    /// Whether `--metrics` (or `--metrics-dir`, which implies it) was
    /// given.
    pub fn metrics_enabled(&self) -> bool {
        self.metrics
    }

    /// A fresh registry when `--metrics` is on, `None` otherwise — the
    /// caller threads `Some` through the `*_metered` entry points and
    /// falls back to the null-sink paths on `None`.
    pub fn registry(&self) -> Option<Registry> {
        self.metrics.then(Registry::new)
    }

    /// Writes `registry`'s snapshot to `<metrics-dir>/metrics.json`
    /// (one line of versioned JSON plus a trailing newline), creating
    /// the directory as needed, and returns the path written.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation or write failure.
    pub fn write_metrics(&self, registry: &Registry) -> io::Result<PathBuf> {
        let path = self.metrics_dir.join("metrics.json");
        fs::create_dir_all(&self.metrics_dir)?;
        let mut json = registry.snapshot().to_json();
        json.push('\n');
        fs::write(&path, json)?;
        Ok(path)
    }

    /// Builds the executor these flags describe: store-backed unless
    /// `--no-cache`, replay-less under `--no-replay`. Opening the store
    /// creates the directory as needed; open failure (I/O or corruption)
    /// is the error, per the cache's hard-error policy.
    pub fn executor(&self) -> io::Result<PlanExecutor> {
        let mut executor = PlanExecutor::new();
        if self.use_cache() {
            executor = executor.with_store(RunStore::open(&self.cache_dir)?);
        }
        if !self.use_replay() {
            executor = executor.without_replay();
        }
        Ok(executor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_pass_everything_through() {
        let (flags, rest) = ExecFlags::parse("d", strs(&["fig3", "quick"])).unwrap();
        assert!(flags.use_cache() && flags.use_replay());
        assert!(!flags.cache_overridden() && !flags.replay_overridden());
        assert_eq!(flags.cache_dir, PathBuf::from("d"));
        assert_eq!(rest, strs(&["fig3", "quick"]));
    }

    #[test]
    fn toggles_last_occurrence_wins_and_both_dir_spellings_parse() {
        let (flags, rest) = ExecFlags::parse(
            "d",
            strs(&[
                "--no-cache",
                "--cache",
                "--no-replay",
                "--cache-dir",
                "a",
                "--cache-dir=b",
            ]),
        )
        .unwrap();
        assert!(flags.use_cache() && flags.cache_overridden());
        assert!(!flags.use_replay() && flags.replay_overridden());
        assert_eq!(flags.cache_dir, PathBuf::from("b"));
        assert!(rest.is_empty());

        let (flags, _) = ExecFlags::parse("d", strs(&["--cache", "--no-cache"])).unwrap();
        assert!(!flags.use_cache());
    }

    #[test]
    fn dangling_cache_dir_is_an_error() {
        assert!(ExecFlags::parse("d", strs(&["--cache-dir"])).is_err());
        assert!(ExecFlags::parse("d", strs(&["--metrics-dir"])).is_err());
    }

    #[test]
    fn metrics_flags_imply_recording_and_write_a_snapshot() {
        let (flags, _) = ExecFlags::parse("d", strs(&[])).unwrap();
        assert!(!flags.metrics_enabled() && flags.registry().is_none());
        assert_eq!(flags.metrics_dir, PathBuf::from("results"));

        let dir = std::env::temp_dir().join(format!("prem-metrics-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let arg = format!("--metrics-dir={}", dir.display());
        let (flags, rest) = ExecFlags::parse("d", strs(&[&arg])).unwrap();
        assert!(flags.metrics_enabled(), "--metrics-dir implies --metrics");
        assert!(rest.is_empty());
        let registry = flags.registry().expect("registry when enabled");
        use prem_obs::MetricsSink as _;
        registry.add("plan.requested", 2);
        let path = flags.write_metrics(&registry).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.starts_with(&format!("{{\"schema\":\"{}\"", prem_obs::SNAPSHOT_SCHEMA)));
        assert!(body.contains("\"plan.requested\":2") && body.ends_with('\n'));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn executor_honors_the_toggles() {
        let dir = std::env::temp_dir().join(format!("prem-flags-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (flags, _) = ExecFlags::parse(&dir, strs(&["--no-cache"])).unwrap();
        flags.executor().unwrap();
        assert!(!dir.exists(), "--no-cache must not touch the store dir");
        let (flags, _) = ExecFlags::parse(&dir, strs(&[])).unwrap();
        flags.executor().unwrap();
        assert!(dir.exists(), "default executor opens the store");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
