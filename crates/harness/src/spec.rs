//! Declarative description of a scenario matrix.

use prem_core::NoiseModel;
use prem_gpusim::{CorunnerProfile, PlatformConfig, Scenario};
use prem_kernels::Kernel;
use prem_memsim::{Policy, KIB};

use crate::seed::derive_seed;

/// A named platform column of the matrix.
///
/// [`PlatformConfig`] intentionally has no name of its own; the matrix
/// needs one for CSV rows and deduplication, so the pairing lives here.
#[derive(Clone, Debug)]
pub struct MatrixPlatform {
    /// Short name used in tables and CSV (`tx1`, `tx2`, …).
    pub name: String,
    /// The platform template. Its LLC policy and seed are overridden per
    /// cell by the policy axis and the seed derivation.
    pub config: PlatformConfig,
}

impl MatrixPlatform {
    /// The paper's TX1 platform.
    pub fn tx1() -> Self {
        MatrixPlatform {
            name: "tx1".into(),
            config: PlatformConfig::tx1(),
        }
    }

    /// The TX2-like platform preset.
    pub fn tx2() -> Self {
        MatrixPlatform {
            name: "tx2".into(),
            config: PlatformConfig::tx2(),
        }
    }

    /// The Xavier-like platform preset.
    pub fn xavier_like() -> Self {
        MatrixPlatform {
            name: "xavier".into(),
            config: PlatformConfig::xavier_like(),
        }
    }

    /// A synthetic geometry (see [`PlatformConfig::generic`]); named
    /// `g<llc>k<ways>w` in reports.
    pub fn generic(llc_kib: usize, ways: usize, spm_kib: usize) -> Self {
        MatrixPlatform {
            name: format!("g{llc_kib}k{ways}w"),
            config: PlatformConfig::generic(llc_kib, ways, spm_kib),
        }
    }
}

/// An LLC replacement policy column, abstract over associativity.
///
/// The concrete [`Policy`] is instantiated per platform because the
/// biased-random weight vector must match the platform's way count.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum MatrixPolicy {
    /// The vendor-measured biased-random policy, generalized to the
    /// platform's associativity ([`Policy::nvidia_like`]).
    VendorBiased,
    /// True LRU — the paper's "would be unproblematic" counterfactual.
    Lru,
    /// FIFO replacement (insertion-order victims).
    Fifo,
    /// Tree pseudo-LRU — the usual hardware LRU approximation.
    Plru,
    /// Not-most-recently-used: random among all but the MRU way.
    Nmru,
    /// Scan-resistant SRRIP — a "smarter vendor" counterfactual.
    Srrip,
    /// Uniform random replacement.
    Random,
}

impl MatrixPolicy {
    /// Short name used in tables and CSV.
    pub fn name(&self) -> &'static str {
        match self {
            MatrixPolicy::VendorBiased => "biased",
            MatrixPolicy::Lru => "lru",
            MatrixPolicy::Fifo => "fifo",
            MatrixPolicy::Plru => "plru",
            MatrixPolicy::Nmru => "nmru",
            MatrixPolicy::Srrip => "srrip",
            MatrixPolicy::Random => "random",
        }
    }

    /// The inverse of [`MatrixPolicy::name`]: parses the stable CSV/wire
    /// spelling back into the policy, `None` for anything unknown.
    pub fn from_name(name: &str) -> Option<MatrixPolicy> {
        MatrixPolicy::what_if_axis()
            .into_iter()
            .find(|p| p.name() == name)
    }

    /// The full seven-policy what-if axis (the `prem-trace` replay axis):
    /// vendor-biased plus every counterfactual, in stable report order.
    pub fn what_if_axis() -> [MatrixPolicy; 7] {
        [
            MatrixPolicy::VendorBiased,
            MatrixPolicy::Lru,
            MatrixPolicy::Fifo,
            MatrixPolicy::Plru,
            MatrixPolicy::Nmru,
            MatrixPolicy::Srrip,
            MatrixPolicy::Random,
        ]
    }

    /// Instantiates the concrete policy for a cache with `ways` ways.
    pub fn instantiate(&self, ways: usize) -> Policy {
        match self {
            MatrixPolicy::VendorBiased => Policy::nvidia_like(ways),
            MatrixPolicy::Lru => Policy::Lru,
            MatrixPolicy::Fifo => Policy::Fifo,
            MatrixPolicy::Plru => Policy::PseudoLru,
            MatrixPolicy::Nmru => Policy::Nmru,
            MatrixPolicy::Srrip => Policy::Srrip,
            MatrixPolicy::Random => Policy::Random,
        }
    }
}

/// Short stable name of a scenario preset, used in cell keys and CSV.
pub fn scenario_name(s: Scenario) -> &'static str {
    match s {
        Scenario::Isolation => "isolation",
        Scenario::Interference => "interference",
        Scenario::Corunners => "corunners",
    }
}

/// A named CPU co-runner mix: one entry of the matrix's scenario axis.
#[derive(Clone, Debug, PartialEq)]
pub struct CorunnerMix {
    /// Short stable name used in cell keys and CSV (`2xmembomb`, …).
    /// Part of the seed-derivation key, so renaming a mix re-seeds its
    /// cells — name mixes once.
    pub name: String,
    /// The co-runner actors of the mix.
    pub profiles: Vec<CorunnerProfile>,
}

impl CorunnerMix {
    /// A named mix from explicit profiles.
    pub fn new(name: impl Into<String>, profiles: Vec<CorunnerProfile>) -> Self {
        CorunnerMix {
            name: name.into(),
            profiles,
        }
    }

    /// `n` co-runners of the same profile, named `<n>x<profile>`
    /// (`0xmembomb` is the empty mix — an isolation measurement under a
    /// sweep-friendly name).
    pub fn uniform(n: usize, profile: CorunnerProfile) -> Self {
        CorunnerMix {
            name: format!("{n}x{}", profile.name()),
            profiles: vec![profile; n],
        }
    }
}

/// One entry of the scenario axis: a paper preset or a co-runner mix.
///
/// Presets keep their pre-engine names (`isolation`, `interference`) in
/// cell keys, so existing matrix artifacts and their derived seeds are
/// byte-identical; mixes extend the axis without re-seeding anything.
#[derive(Clone, Debug, PartialEq)]
pub enum MatrixScenario {
    /// One of the paper's measurement scenarios.
    Preset(Scenario),
    /// A named co-runner mix, activated via [`Scenario::Corunners`].
    Mix(CorunnerMix),
}

impl MatrixScenario {
    /// Short stable name used in cell keys and CSV.
    pub fn name(&self) -> &str {
        match self {
            MatrixScenario::Preset(s) => scenario_name(*s),
            MatrixScenario::Mix(m) => &m.name,
        }
    }

    /// A co-runner count sweep `0..=max` of `profile`, as scenario-axis
    /// entries (`0xmembomb`, `1xmembomb`, …).
    pub fn count_sweep(profile: CorunnerProfile, max: usize) -> Vec<MatrixScenario> {
        (0..=max)
            .map(|n| MatrixScenario::Mix(CorunnerMix::uniform(n, profile)))
            .collect()
    }
}

/// A declarative scenario matrix: kernels × platforms × policies ×
/// scenarios × seeds, expanded into independent simulation tasks.
#[derive(Debug)]
pub struct MatrixSpec {
    /// Kernel axis.
    pub kernels: Vec<Box<dyn Kernel>>,
    /// Platform axis.
    pub platforms: Vec<MatrixPlatform>,
    /// LLC replacement-policy axis.
    pub policies: Vec<MatrixPolicy>,
    /// Scenario axis: paper presets and/or named co-runner mixes.
    pub scenarios: Vec<MatrixScenario>,
    /// Base seeds; each cell's RNG seed is derived from these and the
    /// cell's coordinates (see [`crate::seed::derive_seed`]).
    pub seeds: Vec<u64>,
    /// Prefetch repetition factor for the LLC M-phases (paper: 8).
    pub r: u32,
    /// Interval size as a fraction of the cell's good-way LLC capacity,
    /// rounded down to a 32 KiB multiple. The paper's TX1 choice —
    /// T = 160 KiB of 192 KiB good capacity — corresponds to 5/6.
    pub t_fill: f64,
    /// Unmanaged compute-phase traffic model.
    pub noise: NoiseModel,
}

impl MatrixSpec {
    /// A matrix over `kernels` with the defaults of the paper's evaluation:
    /// platforms {tx1, tx2, xavier}, policies {biased, lru}, both
    /// scenarios, the standard three seeds, R = 8, T = 5/6 of the good-way
    /// capacity, TX1 noise.
    pub fn new(kernels: Vec<Box<dyn Kernel>>) -> Self {
        MatrixSpec {
            kernels,
            platforms: vec![
                MatrixPlatform::tx1(),
                MatrixPlatform::tx2(),
                MatrixPlatform::xavier_like(),
            ],
            policies: vec![MatrixPolicy::VendorBiased, MatrixPolicy::Lru],
            scenarios: vec![
                MatrixScenario::Preset(Scenario::Isolation),
                MatrixScenario::Preset(Scenario::Interference),
            ],
            seeds: vec![11, 23, 47],
            r: 8,
            t_fill: 5.0 / 6.0,
            noise: NoiseModel::tx1(),
        }
    }

    /// Single-seed variant of [`MatrixSpec::new`] for quick runs and tests.
    pub fn quick(kernels: Vec<Box<dyn Kernel>>) -> Self {
        MatrixSpec {
            seeds: vec![11],
            ..MatrixSpec::new(kernels)
        }
    }

    /// Number of cells the spec expands to.
    pub fn len(&self) -> usize {
        self.kernels.len()
            * self.platforms.len()
            * self.policies.len()
            * self.scenarios.len()
            * self.seeds.len()
    }

    /// Whether the matrix has no cells (any empty axis).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The interval size (bytes) used for a kernel on a platform/policy
    /// combination: `t_fill` of the good-way capacity, rounded down to a
    /// 32 KiB multiple (floored at 32 KiB), then raised to the kernel's
    /// minimum tileable interval if necessary.
    pub fn t_bytes(
        &self,
        kernel: &dyn Kernel,
        platform: &MatrixPlatform,
        policy: MatrixPolicy,
    ) -> usize {
        let llc = platform.config.llc.clone();
        let ways = llc.ways();
        let good = llc.policy(policy.instantiate(ways)).good_capacity_bytes();
        let quantum = 32 * KIB;
        let t = ((good as f64 * self.t_fill) as usize / quantum).max(1) * quantum;
        t.max(kernel.min_interval_bytes())
    }

    /// Expands the matrix into cell descriptors, in deterministic
    /// row-major order (kernels outermost, seeds innermost).
    pub fn expand(&self) -> Vec<CellSpec> {
        let mut cells = Vec::with_capacity(self.len());
        for (kernel, k) in self
            .kernels
            .iter()
            .enumerate()
            .map(|(i, k)| (i, k.as_ref()))
        {
            for (platform, plat) in self.platforms.iter().enumerate() {
                for (policy, &pol) in self.policies.iter().enumerate() {
                    let t_bytes = self.t_bytes(k, plat, pol);
                    for scenario in &self.scenarios {
                        for (seed_index, &base_seed) in self.seeds.iter().enumerate() {
                            // Dims disambiguate two instances of the same
                            // kernel type at different problem sizes.
                            let key = format!(
                                "{}({})|{}|{}|{}",
                                k.name(),
                                k.dims(),
                                plat.name,
                                pol.name(),
                                scenario.name()
                            );
                            cells.push(CellSpec {
                                kernel,
                                platform,
                                policy,
                                scenario: scenario.clone(),
                                seed_index,
                                derived_seed: derive_seed(&key, base_seed),
                                t_bytes,
                            });
                        }
                    }
                }
            }
        }
        cells
    }
}

/// One fully resolved simulation task: a coordinate in the matrix plus the
/// derived parameters that make it self-contained.
#[derive(Clone, Debug, PartialEq)]
pub struct CellSpec {
    /// Index into [`MatrixSpec::kernels`].
    pub kernel: usize,
    /// Index into [`MatrixSpec::platforms`].
    pub platform: usize,
    /// Index into [`MatrixSpec::policies`].
    pub policy: usize,
    /// The contention scenario of this cell (preset or co-runner mix).
    pub scenario: MatrixScenario,
    /// Index into [`MatrixSpec::seeds`].
    pub seed_index: usize,
    /// The cell's RNG seed, derived from its coordinates.
    pub derived_seed: u64,
    /// PREM interval size for this cell (bytes).
    pub t_bytes: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use prem_kernels::Bicg;

    fn spec() -> MatrixSpec {
        MatrixSpec::quick(vec![Box::new(Bicg::new(128, 128))])
    }

    #[test]
    fn expansion_covers_the_product() {
        let s = spec();
        let cells = s.expand();
        assert_eq!(cells.len(), s.len());
        // 1 kernel × 3 platforms × 2 policies × 2 scenarios × 1 seed
        assert_eq!(cells.len(), 12);
        // All coordinates distinct.
        let mut seen = std::collections::HashSet::new();
        for c in &cells {
            assert!(seen.insert((
                c.kernel,
                c.platform,
                c.policy,
                c.scenario.name().to_string(),
                c.seed_index
            )));
        }
    }

    #[test]
    fn corunner_mix_axis_extends_without_reseeding_presets() {
        let s = spec();
        let preset_cells = s.expand();
        let mut extended = spec();
        extended
            .scenarios
            .extend(MatrixScenario::count_sweep(CorunnerProfile::Membomb, 2));
        let cells = extended.expand();
        assert_eq!(cells.len(), preset_cells.len() / 2 * 5);
        // The preset cells keep their derived seeds: the axis grew, the
        // existing coordinates did not move in seed space.
        let seeds = |cs: &[CellSpec], name: &str| -> Vec<u64> {
            cs.iter()
                .filter(|c| c.scenario.name() == name)
                .map(|c| c.derived_seed)
                .collect()
        };
        for name in ["isolation", "interference"] {
            assert_eq!(seeds(&preset_cells, name), seeds(&cells, name));
        }
        // Mix names are sweep-friendly and distinct per count.
        assert_eq!(
            CorunnerMix::uniform(3, CorunnerProfile::CacheThrash).name,
            "3xcache_thrash"
        );
        assert_ne!(
            seeds(&cells, "1xmembomb"),
            seeds(&cells, "2xmembomb"),
            "different mixes must land on different seeds"
        );
    }

    #[test]
    fn seeds_differ_between_cells_but_not_scenarios_alone() {
        let cells = spec().expand();
        // Same coordinates → same derived seed on re-expansion.
        assert_eq!(cells, spec().expand());
        // Different platform → different seed.
        assert_ne!(cells[0].derived_seed, cells[4].derived_seed);
    }

    #[test]
    fn same_kernel_type_at_different_sizes_gets_different_seeds() {
        let mut s = spec();
        s.kernels = vec![Box::new(Bicg::new(128, 128)), Box::new(Bicg::new(192, 160))];
        let cells = s.expand();
        // Same name, same platform/policy/scenario/seed coordinates —
        // the dims in the key must still separate the two instances.
        let per_kernel = cells.len() / 2;
        assert_ne!(
            cells[0].derived_seed, cells[per_kernel].derived_seed,
            "two bicg instances share a derived seed"
        );
    }

    #[test]
    fn t_matches_the_paper_on_tx1_biased() {
        let s = spec();
        let k = Bicg::new(1024, 1024);
        let t = s.t_bytes(&k, &MatrixPlatform::tx1(), MatrixPolicy::VendorBiased);
        assert_eq!(t, 160 * KIB); // 5/6 of 192 KiB good capacity, 32 KiB grid
        let t_lru = s.t_bytes(&k, &MatrixPlatform::tx1(), MatrixPolicy::Lru);
        assert_eq!(t_lru, 192 * KIB); // 5/6 of the full 256 KiB
    }

    #[test]
    fn empty_axis_empties_the_matrix() {
        let mut s = spec();
        s.scenarios.clear();
        assert!(s.is_empty());
        assert!(s.expand().is_empty());
    }

    #[test]
    fn preset_names_are_stable() {
        // These strings are part of every published cell key; changing
        // them silently re-seeds all existing matrix artifacts.
        assert_eq!(
            MatrixScenario::Preset(Scenario::Isolation).name(),
            "isolation"
        );
        assert_eq!(
            MatrixScenario::Preset(Scenario::Interference).name(),
            "interference"
        );
    }
}
