//! A deterministic work-claiming thread pool on `std::thread::scope`.
//!
//! Workers race to claim task *indices* from a shared atomic counter —
//! idle workers steal whatever is next, so a slow task never serializes the
//! tail of the queue. Each result is written back into the slot of the task
//! that produced it, so the output order is the input order and is
//! **independent of the worker count and of scheduling**: determinism comes
//! from tasks owning all their state (seeds included), not from the pool.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of workers to use by default: the `PREM_WORKERS` environment
/// variable if set to a positive integer, otherwise the machine's available
/// parallelism (1 if that cannot be determined).
pub fn default_workers() -> usize {
    if let Ok(v) = std::env::var("PREM_WORKERS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Applies `f` to every item on `workers` threads, returning results in
/// item order. With `workers == 1` (or one item) this degenerates to a
/// plain sequential map on the calling thread — useful both as a baseline
/// and for the determinism tests comparing 1-vs-N worker outputs.
///
/// # Panics
///
/// Panics if `workers == 0`, and propagates any panic raised by `f`.
pub fn parallel_map<T, R, F>(workers: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    assert!(workers >= 1, "the pool needs at least one worker");
    if workers == 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers.min(items.len()) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let result = f(&items[i]);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every claimed task stores a result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_item_order() {
        let items: Vec<u64> = (0..257).collect();
        let doubled = parallel_map(4, &items, |&x| 2 * x);
        assert_eq!(doubled, items.iter().map(|x| 2 * x).collect::<Vec<_>>());
    }

    #[test]
    fn one_worker_equals_many() {
        let items: Vec<u64> = (0..64).collect();
        let seq = parallel_map(1, &items, |&x| x * x + 1);
        let par = parallel_map(8, &items, |&x| x * x + 1);
        assert_eq!(seq, par);
    }

    #[test]
    fn more_workers_than_items_is_fine() {
        assert_eq!(parallel_map(16, &[1, 2], |&x| x + 1), vec![2, 3]);
        assert_eq!(parallel_map(16, &[5], |&x| x + 1), vec![6]);
        assert_eq!(
            parallel_map(16, &[] as &[i32], |&x| x + 1),
            Vec::<i32>::new()
        );
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        parallel_map(0, &[1], |&x: &i32| x);
    }

    #[test]
    fn default_workers_is_positive() {
        assert!(default_workers() >= 1);
    }
}
