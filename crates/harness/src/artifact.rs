//! Artifact file writing shared by the front-end binaries.
//!
//! Every artifact writer used to create its own parent directories (or
//! assume a sibling had); the figures and bench front ends now funnel
//! through [`write_artifact`], so rendering into a fresh nested output
//! directory works from any entry point.

use std::fs;
use std::path::Path;

/// Writes `bytes` to `path`, creating the parent directory chain first —
/// a clean checkout, a nested `--cache-dir`-style output path, or a
/// directory deleted mid-run must not fail the write.
///
/// # Panics
///
/// Panics with the offending path on any I/O error: artifact writes are
/// the front ends' final output step, and a silently missing artifact is
/// worse than an aborted run.
pub fn write_artifact(path: impl AsRef<Path>, bytes: &[u8]) {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)
                .unwrap_or_else(|e| panic!("create {}: {e}", parent.display()));
        }
    }
    fs::write(path, bytes).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_nested_parents_and_overwrites() {
        let dir = std::env::temp_dir().join(format!("prem-artifact-test-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let path = dir.join("a/b/c/out.txt");
        write_artifact(&path, b"first");
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        write_artifact(&path, b"second");
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        // A bare filename (no parent) must not trip the dir creation.
        let cwd_file = dir.join("top.txt");
        write_artifact(&cwd_file, b"top");
        assert_eq!(std::fs::read(&cwd_file).unwrap(), b"top");
        std::fs::remove_dir_all(&dir).ok();
    }
}
