//! Aggregation of matrix cells into the report crate's tables.

use prem_gpusim::Scenario;
use prem_memsim::KIB;
use prem_table::table::{f3, pct};
use prem_table::{geomean, Table};

use crate::run::CellResult;
use crate::spec::{MatrixScenario, MatrixSpec};

/// All cell results of one matrix run, with enough axis metadata to render
/// seed-aggregated tables deterministically.
#[derive(Clone, Debug)]
pub struct MatrixResult {
    kernel_names: Vec<String>,
    kernel_dims: Vec<String>,
    platform_names: Vec<String>,
    policy_names: Vec<&'static str>,
    scenarios: Vec<MatrixScenario>,
    n_seeds: usize,
    r: u32,
    cells: Vec<CellResult>,
}

impl MatrixResult {
    /// Binds results (in expansion order) to their spec's axis names.
    pub(crate) fn new(spec: &MatrixSpec, cells: Vec<CellResult>) -> Self {
        assert_eq!(cells.len(), spec.len(), "one result per cell");
        MatrixResult {
            kernel_names: spec.kernels.iter().map(|k| k.name().to_string()).collect(),
            kernel_dims: spec.kernels.iter().map(|k| k.dims()).collect(),
            platform_names: spec.platforms.iter().map(|p| p.name.clone()).collect(),
            policy_names: spec.policies.iter().map(|p| p.name()).collect(),
            scenarios: spec.scenarios.clone(),
            n_seeds: spec.seeds.len(),
            r: spec.r,
            cells,
        }
    }

    /// The raw per-cell results, in expansion order.
    pub fn cells(&self) -> &[CellResult] {
        &self.cells
    }

    /// Flat index of a (kernel, platform, policy, scenario, seed) cell —
    /// the expansion order of [`MatrixSpec::expand`].
    fn idx(&self, k: usize, p: usize, pol: usize, sc: usize, seed: usize) -> usize {
        (((k * self.platform_names.len() + p) * self.policy_names.len() + pol)
            * self.scenarios.len()
            + sc)
            * self.n_seeds
            + seed
    }

    /// Mean of one metric over the seed axis of a cell group.
    fn seed_mean(
        &self,
        k: usize,
        p: usize,
        pol: usize,
        sc: usize,
        metric: impl Fn(&CellResult) -> f64,
    ) -> f64 {
        let sum: f64 = (0..self.n_seeds)
            .map(|s| metric(&self.cells[self.idx(k, p, pol, sc, s)]))
            .sum();
        sum / self.n_seeds as f64
    }

    /// Per-(kernel, platform, policy, scenario) table, seed-aggregated.
    /// Its CSV form is the `results/matrix.csv` artifact.
    pub fn cell_table(&self) -> Table {
        let mut t = Table::new(
            format!(
                "Scenario matrix: LLC-PREM (R={}) vs unprotected baseline, {} seed(s) per cell",
                self.r, self.n_seeds
            ),
            &[
                "kernel",
                "dims",
                "platform",
                "policy",
                "scenario",
                "T",
                "ivs",
                "prem-us",
                "cpmr",
                "wcet-us",
                "viol-us",
                "base-us",
                "prem/base",
            ],
        );
        for k in 0..self.kernel_names.len() {
            for p in 0..self.platform_names.len() {
                for pol in 0..self.policy_names.len() {
                    for sc in 0..self.scenarios.len() {
                        let first = &self.cells[self.idx(k, p, pol, sc, 0)];
                        let prem = self.seed_mean(k, p, pol, sc, |c| c.makespan_us);
                        let base = self.seed_mean(k, p, pol, sc, |c| c.baseline_us);
                        t.push_row(vec![
                            self.kernel_names[k].clone(),
                            self.kernel_dims[k].clone(),
                            self.platform_names[p].clone(),
                            self.policy_names[pol].to_string(),
                            self.scenarios[sc].name().to_string(),
                            format!("{}K", first.cell.t_bytes / KIB),
                            first.intervals.to_string(),
                            f3(prem),
                            pct(self.seed_mean(k, p, pol, sc, |c| c.cpmr)),
                            f3(self.seed_mean(k, p, pol, sc, |c| c.envelope_us)),
                            f3(self.seed_mean(k, p, pol, sc, |c| c.violation_us)),
                            f3(base),
                            f3(prem / base),
                        ]);
                    }
                }
            }
        }
        t
    }

    /// Per-(platform, policy) summary: geomean interference sensitivity of
    /// PREM and of the baseline, mean isolated CPMR, and geomean WCET
    /// inflation (static envelope over the isolated baseline). Sensitivity
    /// columns need both scenarios in the matrix and are `n/a` otherwise.
    pub fn summary_table(&self) -> Table {
        let iso = self
            .scenarios
            .iter()
            .position(|s| *s == MatrixScenario::Preset(Scenario::Isolation));
        let intf = self
            .scenarios
            .iter()
            .position(|s| *s == MatrixScenario::Preset(Scenario::Interference));
        let mut t = Table::new(
            "Matrix summary (geomean over kernels)",
            &[
                "platform",
                "policy",
                "prem-sens",
                "base-sens",
                "cpmr-iso",
                "wcet-infl",
            ],
        );
        let nk = self.kernel_names.len();
        for p in 0..self.platform_names.len() {
            for pol in 0..self.policy_names.len() {
                let sens = |metric: &dyn Fn(&CellResult) -> f64| -> String {
                    match (iso, intf) {
                        (Some(i), Some(j)) => {
                            let g = geomean((0..nk).map(|k| {
                                self.seed_mean(k, p, pol, j, metric)
                                    / self.seed_mean(k, p, pol, i, metric)
                            }));
                            pct(g - 1.0)
                        }
                        _ => "n/a".into(),
                    }
                };
                let cpmr_iso = iso
                    .map(|i| {
                        let m = (0..nk)
                            .map(|k| self.seed_mean(k, p, pol, i, |c| c.cpmr))
                            .sum::<f64>()
                            / nk as f64;
                        pct(m)
                    })
                    .unwrap_or_else(|| "n/a".into());
                let wcet_infl = iso
                    .map(|i| {
                        let g = geomean((0..nk).map(|k| {
                            self.seed_mean(k, p, pol, i, |c| c.envelope_us)
                                / self.seed_mean(k, p, pol, i, |c| c.baseline_us)
                        }));
                        f3(g)
                    })
                    .unwrap_or_else(|| "n/a".into());
                t.push_row(vec![
                    self.platform_names[p].clone(),
                    self.policy_names[pol].to_string(),
                    sens(&|c| c.makespan_us),
                    sens(&|c| c.baseline_us),
                    cpmr_iso,
                    wcet_infl,
                ]);
            }
        }
        t
    }

    /// The human-readable artifact: summary followed by the full cell
    /// table. Byte-stable for a given spec at any worker count.
    pub fn render(&self) -> String {
        format!("{}\n{}", self.summary_table(), self.cell_table())
    }

    /// The machine-readable artifact (`results/matrix.csv`).
    pub fn to_csv(&self) -> String {
        self.cell_table().to_csv()
    }
}
