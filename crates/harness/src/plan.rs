//! The content-addressed run-plan layer: one execution pipeline for every
//! consumer of the simulator.
//!
//! Every layer of the workspace ultimately turns a coordinate tuple —
//! (kernel, platform, policy, store, T, R, seed, scenario) — into a
//! [`run_prem`](prem_core::run_prem) or
//! [`run_baseline`](prem_core::run_baseline) call. Before this layer each
//! consumer re-derived that mapping privately and, worse, re-*executed*
//! identical runs: the figure modules share baseline and LLC grid points,
//! the matrix pairs every PREM cell with a baseline, and a full `figures`
//! invocation repeated dozens of simulations another figure had already
//! paid for.
//!
//! The plan layer canonicalizes the tuple as a [`RunRequest`] with a
//! stable content [`fingerprint`](RunRequest::fingerprint) (the FNV-1a +
//! SplitMix64 machinery of [`crate::seed`]), and executes requests through
//! a [`PlanExecutor`] that
//!
//! * **dedupes** a submitted plan by canonical key, so a merged
//!   multi-figure plan executes each shared request exactly once;
//! * **executes** the unique frontier on the work-claiming pool
//!   ([`crate::pool::parallel_map`]) at *run* granularity — a plan of 300
//!   runs load-balances across workers instead of serializing behind the
//!   largest figure;
//! * **derives** what-if siblings instead of executing them: the
//!   replay-eligible frontier partitions into *derivation families* (equal
//!   [`RunRequest::base_key`] — every coordinate but the LLC policy and
//!   seed), one representative per family executes live with capture on,
//!   and the siblings replay its captured LLC input stream — bit-identical
//!   to live execution by contract, proven by the plan-replay equivalence
//!   suite (`crates/harness/tests/plan_replay.rs`);
//! * **caches** outputs in a sharded in-memory map addressed by the full
//!   canonical key (the fingerprint selects the shard; the key string
//!   guarantees distinct requests can never alias a cache slot).
//!
//! Dedup is sound because execution is deterministic in the request: a
//! [`RunRequest`] resolves to a freshly built platform seeded from its own
//! coordinates, so the first execution of a key is byte-identical to any
//! repeat — the golden suite pins this for the figure and matrix CSVs.
//!
//! The same determinism makes the cache *durable*: an executor opened with
//! [`PlanExecutor::with_store`] adds a persistent tier
//! ([`crate::store::RunStore`]) between the in-memory map and live
//! execution. Lookups resolve **memory hit → disk hit → live execute**,
//! and every live execution is appended back to the store, so a warm
//! regeneration of the full artifact set executes nothing, while an
//! experiment tweak (the platform-config digest lives in every canonical
//! key) re-executes exactly the invalidated frontier.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::ops::AddAssign;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use prem_core::{
    execute_run_captured_profiled, execute_run_captured_reporting_profile, execute_run_profiled,
    execute_run_reporting_profile, profile_run, NoiseModel, RunCapture, RunOutput, RunWork,
};
use prem_gpusim::{PlatformConfig, Scenario};
use prem_kernels::Kernel;
use prem_obs::{MetricsSink, NullMetrics, Span};

use crate::pool::parallel_map;
use crate::seed::fingerprint;
use crate::spec::{scenario_name, MatrixPolicy, MatrixScenario};
use crate::store::RunStore;

/// How a request's platform is constructed: a named template plus an
/// optional LLC-policy override. The per-request LLC seed and co-runner
/// mix are applied at resolution time from the request's own coordinates.
#[derive(Clone, Debug)]
pub struct PlatformSpec {
    /// Short stable name used in canonical keys (`tx1`, `tx2`, …). The
    /// key also carries a digest of the full config, so two different
    /// configs under the same name never alias.
    pub name: String,
    /// The platform template.
    pub config: PlatformConfig,
    /// Optional LLC replacement-policy override (the matrix's policy
    /// axis); `None` keeps the template's own policy, as the figure
    /// experiments do.
    pub policy: Option<MatrixPolicy>,
}

impl PlatformSpec {
    /// A named platform template with no policy override.
    pub fn new(name: impl Into<String>, config: PlatformConfig) -> Self {
        PlatformSpec {
            name: name.into(),
            config,
            policy: None,
        }
    }

    /// The paper's TX1 platform — the template every figure experiment
    /// runs on.
    pub fn tx1() -> Self {
        PlatformSpec::new("tx1", PlatformConfig::tx1())
    }

    /// Overrides the LLC replacement policy.
    pub fn with_policy(mut self, policy: MatrixPolicy) -> Self {
        self.policy = Some(policy);
        self
    }
}

/// One canonical simulator invocation: every consumer-level run — a figure
/// grid point, a matrix cell half, a bench entry — lowers to this.
#[derive(Clone, Debug)]
pub struct RunRequest<'k> {
    /// The kernel to tile and execute.
    pub kernel: &'k dyn Kernel,
    /// Platform construction recipe.
    pub platform: PlatformSpec,
    /// Execution mode (LLC-PREM / SPM-PREM / baseline).
    pub work: RunWork,
    /// PREM interval size in bytes (also the baseline's tiling size).
    pub t_bytes: usize,
    /// Seed for every randomized component of the run.
    pub seed: u64,
    /// Contention scenario: a paper preset or a named co-runner mix.
    pub scenario: MatrixScenario,
    /// Unmanaged compute-phase traffic model.
    pub noise: NoiseModel,
}

impl RunRequest<'_> {
    /// The canonical content key: every coordinate that influences the
    /// run's outcome, spelled stably. Two requests with equal keys are the
    /// same simulation; two requests with different keys may never share a
    /// cache slot. Names alone are not trusted: the platform template is
    /// folded in as a digest of its full configuration and a co-runner mix
    /// as a digest of its profile list, so a renamed, hand-modified or
    /// same-named-but-different template/mix cannot alias another.
    pub fn key(&self) -> String {
        let policy = self
            .platform
            .policy
            .map(|p| p.name())
            .unwrap_or("template-policy");
        self.key_with(policy, &self.seed.to_string())
    }

    /// The derivation **base key**: [`RunRequest::key`] with the two
    /// replay-invariant axes — the LLC policy override and the seed —
    /// wildcarded. Requests sharing a base key agree on every other
    /// coordinate (kernel, platform template digest, scenario, work, T,
    /// noise), so their resolved platforms differ at most in LLC
    /// policy/seed and any one of them can derive the others by replay
    /// (when [`RunRequest::replay_eligible`]). Distinct base keys never
    /// share a family; equal base keys with unequal keys are siblings.
    pub fn base_key(&self) -> String {
        self.key_with("*", "*")
    }

    /// The **profile key**: [`RunRequest::key`] with exactly the scenario
    /// slot wildcarded, or `None` for baseline work (the baseline never
    /// profiles). The profiling pass runs isolated — no co-runner mix is
    /// ever activated ([`prem_core::profile_phases`]) — so its
    /// `(m_wcet, c_wcet)` is shared by every scenario sibling of a
    /// request. Every *other* coordinate stays in the key: policy and seed
    /// steer the profiled cache trajectory, and the noise model is
    /// injected into the profiled C stream, so none of them may be
    /// wildcarded (the profile-memo proptest pins this boundary).
    pub fn profile_key(&self) -> Option<String> {
        if matches!(self.work, RunWork::Baseline) {
            return None;
        }
        let policy = self
            .platform
            .policy
            .map(|p| p.name())
            .unwrap_or("template-policy");
        Some(self.key_slots(policy, &self.seed.to_string(), "*"))
    }

    /// [`RunRequest::key`] with explicit policy and seed slot contents —
    /// the shared skeleton of the canonical key and the base key. The
    /// scenario folds a digest of a mix's profile list in, so same-named-
    /// but-different mixes can alias neither keys nor base keys.
    fn key_with(&self, policy: &str, seed: &str) -> String {
        let scenario = match &self.scenario {
            MatrixScenario::Preset(s) => scenario_name(*s).to_string(),
            MatrixScenario::Mix(m) => format!(
                "{}#{:016x}",
                m.name,
                fingerprint(&format!("{:?}", m.profiles))
            ),
        };
        self.key_slots(policy, seed, &scenario)
    }

    /// The canonical key skeleton with every wildcardable slot explicit —
    /// the single format string behind [`RunRequest::key`],
    /// [`RunRequest::base_key`] and [`RunRequest::profile_key`].
    fn key_slots(&self, policy: &str, seed: &str, scenario: &str) -> String {
        format!(
            "{}({})|{}#{:016x}|{}|{}|{}|t{}|s{}|n{}x{}",
            self.kernel.name(),
            self.kernel.dims(),
            self.platform.name,
            fingerprint(&format!("{:?}", self.platform.config)),
            policy,
            scenario,
            self.work.key(),
            self.t_bytes,
            seed,
            self.noise.lines,
            self.noise.every,
        )
    }

    /// Stable content fingerprint of [`RunRequest::key`] — identical
    /// across processes for the same request (see
    /// [`crate::seed::fingerprint`]).
    pub fn fingerprint(&self) -> u64 {
        fingerprint(&self.key())
    }

    /// The fully-resolved platform configuration: template, then policy
    /// override (instantiated at the template's associativity), then the
    /// request seed, then the scenario's co-runner actors — the exact
    /// construction order the matrix engine has always used.
    pub fn resolved_platform(&self) -> PlatformConfig {
        let mut cfg = self.platform.config.clone();
        if let Some(policy) = self.platform.policy {
            let ways = cfg.llc.ways();
            cfg = cfg.llc_policy(policy.instantiate(ways));
        }
        let corunners = match &self.scenario {
            MatrixScenario::Preset(_) => Vec::new(),
            MatrixScenario::Mix(m) => m.profiles.clone(),
        };
        cfg.llc_seed(self.seed).with_corunners(corunners)
    }

    /// Tiles the kernel, resolves the platform and executes the request
    /// through the core bridge ([`execute_run`]).
    ///
    /// # Panics
    ///
    /// Panics when the kernel cannot be tiled at `t_bytes` or the SPM
    /// strategy overflows the scratchpad — plan-built experiment
    /// configurations are expected to respect kernel and platform limits,
    /// exactly as the pre-plan runners did.
    pub fn execute(&self) -> RunOutput {
        self.execute_profiled(None)
    }

    /// [`RunRequest::execute`] with an optional memoized profiling result
    /// from [`RunRequest::profile`] (for this request or any request
    /// sharing its [`RunRequest::profile_key`]): `Some` skips the
    /// profiling pass; the output is bit-identical either way.
    ///
    /// # Panics
    ///
    /// Exactly as [`RunRequest::execute`].
    pub fn execute_profiled(&self, profiled: Option<(f64, f64)>) -> RunOutput {
        execute_run_profiled(
            &self.resolved_platform(),
            &self.tiled_intervals(),
            self.work,
            self.seed,
            self.resolved_scenario(),
            self.noise,
            profiled,
        )
        .unwrap_or_else(|e| panic!("{} ({}): {e}", self.kernel.name(), self.key()))
    }

    /// Runs only the isolated profiling pass, returning its
    /// `(m_wcet, c_wcet)` — `None` for baseline work. The result is valid
    /// for every request sharing this request's
    /// [`RunRequest::profile_key`] and is what the plan layer's profile
    /// memo stores.
    ///
    /// # Panics
    ///
    /// Exactly as [`RunRequest::execute`].
    pub fn profile(&self) -> Option<(f64, f64)> {
        profile_run(
            &self.resolved_platform(),
            &self.tiled_intervals(),
            self.work,
            self.seed,
            self.noise,
        )
        .unwrap_or_else(|e| panic!("{} ({}): {e}", self.kernel.name(), self.key()))
    }

    /// [`RunRequest::execute`] additionally reporting the
    /// `(m_wcet, c_wcet)` the run's budgets derive from (`None` for
    /// baseline work) — the value to backfill a profile memo with. For
    /// constant-contention unpolluted mixes the profiling pass is fused
    /// into the timed run, so a memo miss costs one walk, not two.
    ///
    /// # Panics
    ///
    /// Exactly as [`RunRequest::execute`].
    pub fn execute_reporting_profile(&self) -> (RunOutput, Option<(f64, f64)>) {
        execute_run_reporting_profile(
            &self.resolved_platform(),
            &self.tiled_intervals(),
            self.work,
            self.seed,
            self.resolved_scenario(),
            self.noise,
            None,
        )
        .unwrap_or_else(|e| panic!("{} ({}): {e}", self.kernel.name(), self.key()))
    }

    /// The core-level scenario the request executes under (a mix activates
    /// its actors via [`Scenario::Corunners`]).
    pub fn resolved_scenario(&self) -> Scenario {
        match &self.scenario {
            MatrixScenario::Preset(s) => *s,
            MatrixScenario::Mix(_) => Scenario::Corunners,
        }
    }

    /// Tiles the kernel at the request's interval size through the shared
    /// interval arena ([`prem_kernels::arena`]): one build per distinct
    /// (kernel identity, dims, T) while any holder keeps the stream alive,
    /// so a request's profiling pass, timed run, scenario siblings and
    /// pool neighbors all share one allocation. Panics on untileable
    /// configurations exactly like [`RunRequest::execute`].
    pub fn tiled_intervals(&self) -> Arc<[prem_core::IntervalSpec]> {
        prem_kernels::arena::shared()
            .get(self.kernel, self.t_bytes)
            .unwrap_or_else(|e| panic!("{}: {e}", self.kernel.name()))
    }

    /// Whether this request may participate in a derivation family: its
    /// resolved run satisfies [`prem_core::replay_eligible`], i.e. the LLC
    /// input sequence is invariant in the LLC policy/seed axes.
    pub fn replay_eligible(&self) -> bool {
        prem_core::replay_eligible(
            &self.resolved_platform(),
            self.work,
            self.resolved_scenario(),
        )
    }

    /// [`RunRequest::execute`] with what-if capture on: returns the
    /// (bit-identical) live output plus a [`RunCapture`] from which every
    /// sibling request — same [`RunRequest::base_key`], different LLC
    /// policy/seed — derives its output via [`RunRequest::replay_from`].
    ///
    /// # Panics
    ///
    /// As [`RunRequest::execute`], plus when the request is not
    /// [`RunRequest::replay_eligible`].
    pub fn execute_captured(&self) -> (RunOutput, RunCapture) {
        self.execute_captured_profiled(None)
    }

    /// [`RunRequest::execute_captured`] with an optional memoized
    /// profiling result, as [`RunRequest::execute_profiled`].
    ///
    /// # Panics
    ///
    /// Exactly as [`RunRequest::execute_captured`].
    pub fn execute_captured_profiled(
        &self,
        profiled: Option<(f64, f64)>,
    ) -> (RunOutput, RunCapture) {
        execute_run_captured_profiled(
            &self.resolved_platform(),
            &self.tiled_intervals(),
            self.work,
            self.seed,
            self.resolved_scenario(),
            self.noise,
            profiled,
        )
        .unwrap_or_else(|e| panic!("{} ({}): {e}", self.kernel.name(), self.key()))
    }

    /// [`RunRequest::execute_captured`] additionally reporting the
    /// `(m_wcet, c_wcet)` pair, as [`RunRequest::execute_reporting_profile`].
    ///
    /// # Panics
    ///
    /// Exactly as [`RunRequest::execute_captured`].
    pub fn execute_captured_reporting_profile(
        &self,
    ) -> (RunOutput, Option<(f64, f64)>, RunCapture) {
        execute_run_captured_reporting_profile(
            &self.resolved_platform(),
            &self.tiled_intervals(),
            self.work,
            self.seed,
            self.resolved_scenario(),
            self.noise,
            None,
        )
        .unwrap_or_else(|e| panic!("{} ({}): {e}", self.kernel.name(), self.key()))
    }

    /// Derives this request's output from a family representative's
    /// capture instead of executing it. The result is bit-identical to
    /// [`RunRequest::execute`] — the contract the plan-replay equivalence
    /// suite proves.
    ///
    /// # Panics
    ///
    /// Panics (in [`RunCapture::replay_for`]) when `capture` was not taken
    /// from a sibling, i.e. this request's resolved platform differs from
    /// the representative's beyond the LLC policy/seed axes.
    pub fn replay_from(&self, capture: &RunCapture) -> RunOutput {
        capture.replay_for(&self.resolved_platform(), self.seed)
    }
}

/// Where renderers obtain run outputs: either a caching executor or the
/// direct bridge. Figure modules are written against this, so the same
/// rendering code serves a standalone figure call and a merged
/// cross-figure plan.
pub trait RunSource: Sync {
    /// The output for `req`, executing it if it is not already available.
    fn output(&self, req: &RunRequest<'_>) -> RunOutput;
}

/// The trivial source: executes every request directly, no dedup, no
/// result cache. `fig3(kernel, harness)` & friends run through this,
/// which makes them byte-identical to the pre-plan implementations.
/// Profiling passes do share the process-local profile memo — the
/// memoized `(m_wcet, c_wcet)` is bit-identical to profiling inline, so
/// outputs are unchanged while scenario-paired direct runs stop paying
/// the pass twice.
#[derive(Copy, Clone, Debug, Default)]
pub struct Direct;

/// The process-local profile memo [`Direct`] front ends share: one
/// `(m_wcet, c_wcet)` pair per distinct [`RunRequest::profile_key`] per
/// process, filled from whichever request computes it first.
fn direct_memo() -> &'static Mutex<HashMap<String, (f64, f64)>> {
    static MEMO: OnceLock<Mutex<HashMap<String, (f64, f64)>>> = OnceLock::new();
    MEMO.get_or_init(|| Mutex::new(HashMap::new()))
}

impl RunSource for Direct {
    fn output(&self, req: &RunRequest<'_>) -> RunOutput {
        let key = req.profile_key();
        if let Some(key) = &key {
            if let Some(&w) = direct_memo()
                .lock()
                .expect("direct profile memo poisoned")
                .get(key)
            {
                return req.execute_profiled(Some(w));
            }
        }
        // Memo miss: the executor self-profiles (fused into the timed
        // walk whenever the mix allows) and reports the pair it used.
        let (out, wcets) = req.execute_reporting_profile();
        if let (Some(key), Some(w)) = (key, wcets) {
            direct_memo()
                .lock()
                .expect("direct profile memo poisoned")
                .insert(key, w);
        }
        out
    }
}

/// Shard count of the result cache. A power of two so the fingerprint can
/// select a shard by masking; 16 keeps lock contention negligible at any
/// realistic worker count.
const SHARDS: usize = 16;

/// One schedulable piece of a plan's frontier: a plain live run, or a
/// whole derivation family (representative live with capture on, every
/// sibling replayed from it) — indices into the frontier/family tables
/// of one [`PlanExecutor::execute_metered`] call.
enum Unit {
    Live(usize),
    Family(usize),
}

/// Cumulative counters of one [`PlanExecutor`] (or the delta of a single
/// [`PlanExecutor::execute`] call).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct PlanSummary {
    /// Requests submitted.
    pub requested: usize,
    /// Unique requests actually executed.
    pub executed: usize,
    /// Duplicates elided within submitted plans (same key submitted more
    /// than once).
    pub elided: usize,
    /// Requests served from the cache (executed by an earlier plan or a
    /// lazy [`RunSource::output`] call).
    pub hits: usize,
    /// Requests served from the persistent on-disk store
    /// ([`PlanExecutor::with_store`]); always zero on a store-less
    /// executor.
    pub disk_hits: usize,
    /// Requests satisfied by replaying a family representative's capture
    /// instead of executing the simulator (bit-identical by contract).
    pub replayed: usize,
    /// Derivation families with at least one replayed sibling (a family of
    /// one is just a live run and is not counted).
    pub families: usize,
    /// Profiling passes served from the profile memo: executed units whose
    /// `(m_wcet, c_wcet)` another unit (this plan or an earlier one) had
    /// already computed under the same [`RunRequest::profile_key`].
    pub profile_hits: usize,
    /// Profiling passes actually charged: one per distinct profile key
    /// first seen by this call's executed units.
    pub profile_misses: usize,
}

impl AddAssign<&PlanSummary> for PlanSummary {
    /// Field-wise accumulation — the aggregation the serve front end's
    /// tick totals and flush barriers are built on.
    fn add_assign(&mut self, rhs: &PlanSummary) {
        self.requested += rhs.requested;
        self.executed += rhs.executed;
        self.elided += rhs.elided;
        self.hits += rhs.hits;
        self.disk_hits += rhs.disk_hits;
        self.replayed += rhs.replayed;
        self.families += rhs.families;
        self.profile_hits += rhs.profile_hits;
        self.profile_misses += rhs.profile_misses;
    }
}

impl fmt::Display for PlanSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "plan: requested={} unique={} elided={} cache-hits={} disk-hits={} \
             replayed={} families={} profile-hits={} profile-misses={}",
            self.requested,
            self.executed,
            self.elided,
            self.hits,
            self.disk_hits,
            self.replayed,
            self.families,
            self.profile_hits,
            self.profile_misses
        )
    }
}

/// One exactly-once `(m_wcet, c_wcet)` profile-memo cell, shared by every
/// unit whose request has the same [`RunRequest::profile_key`].
type ProfileCell = Arc<OnceLock<(f64, f64)>>;

/// The content-addressed execution pipeline: expands submitted plans,
/// dedupes by canonical key, executes the unique frontier on the
/// work-claiming pool and memoizes every output in a sharded in-memory
/// cache. See the [module docs](self) for the design.
#[derive(Debug)]
pub struct PlanExecutor {
    shards: Vec<Mutex<HashMap<String, RunOutput>>>,
    store: Option<RunStore>,
    replay: bool,
    profile_memo: bool,
    /// The profile memo: one exactly-once `(m_wcet, c_wcet)` cell per
    /// distinct [`RunRequest::profile_key`]. Cells are handed to pool
    /// units at expansion time; the first unit to need one computes the
    /// pass, concurrent sharers block on the `OnceLock` instead of
    /// re-profiling, and filled cells persist for every later plan.
    profiles: Mutex<HashMap<String, ProfileCell>>,
    requested: AtomicUsize,
    executed: AtomicUsize,
    elided: AtomicUsize,
    hits: AtomicUsize,
    disk_hits: AtomicUsize,
    replayed: AtomicUsize,
    families: AtomicUsize,
    profile_hits: AtomicUsize,
    profile_misses: AtomicUsize,
}

impl Default for PlanExecutor {
    fn default() -> Self {
        PlanExecutor::new()
    }
}

impl PlanExecutor {
    /// An empty executor with no persistent tier.
    pub fn new() -> Self {
        PlanExecutor {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            store: None,
            replay: true,
            profile_memo: true,
            profiles: Mutex::new(HashMap::new()),
            requested: AtomicUsize::new(0),
            executed: AtomicUsize::new(0),
            elided: AtomicUsize::new(0),
            hits: AtomicUsize::new(0),
            disk_hits: AtomicUsize::new(0),
            replayed: AtomicUsize::new(0),
            families: AtomicUsize::new(0),
            profile_hits: AtomicUsize::new(0),
            profile_misses: AtomicUsize::new(0),
        }
    }

    /// Disables replay-backed derivation: every unique request executes
    /// the simulator live, as before PR 7. The escape hatch behind the
    /// front ends' `--no-replay` flag; also what the equivalence suites
    /// compare replay-enabled execution against.
    pub fn without_replay(mut self) -> Self {
        self.replay = false;
        self
    }

    /// Disables profile-pass memoization: every executed unit profiles
    /// inline, as before this layer existed. What the equivalence suite
    /// and the `exec:profile-memo` bench compare memoized execution
    /// against; outputs are bit-identical either way.
    pub fn without_profile_memo(mut self) -> Self {
        self.profile_memo = false;
        self
    }

    /// Whether replay-backed derivation is enabled (default: yes).
    pub fn replay_enabled(&self) -> bool {
        self.replay
    }

    /// Attaches the persistent store `store` as this executor's durable
    /// tier: lookups resolve memory hit → disk hit → live execute, and
    /// every live execution is appended to the store, so a later process
    /// (or a later plan in this one) can serve it from disk. A chainable
    /// combinator like [`PlanExecutor::without_replay`]:
    /// `PlanExecutor::new().with_store(s).without_replay()` reads as one
    /// construction.
    ///
    /// Store failures — I/O errors and any form of on-disk corruption —
    /// panic: a cache that silently degrades to re-execution would mask
    /// the corruption it found. Recovery is deleting the cache directory.
    pub fn with_store(mut self, store: RunStore) -> Self {
        self.store = Some(store);
        self
    }

    /// The persistent tier, if this executor has one.
    pub fn store(&self) -> Option<&RunStore> {
        self.store.as_ref()
    }

    /// Probes the persistent tier for `key`. Hard-errors (panics) on
    /// store corruption or I/O failure, per the store's contract.
    fn disk_lookup<M: MetricsSink>(&self, key: &str, metrics: &M) -> Option<RunOutput> {
        self.store.as_ref().and_then(|store| {
            store
                .get_metered(key, metrics)
                .unwrap_or_else(|e| panic!("persistent run store failure: {e}"))
        })
    }

    /// Appends freshly executed outputs to the persistent tier (no-op
    /// without one). Hard-errors (panics) on store corruption or I/O
    /// failure.
    fn persist<'e, M: MetricsSink>(
        &self,
        entries: impl IntoIterator<Item = (&'e str, &'e RunOutput)>,
        metrics: &M,
    ) {
        if let Some(store) = &self.store {
            store
                .append_metered(entries, metrics)
                .unwrap_or_else(|e| panic!("persistent run store failure: {e}"));
        }
    }

    fn shard(&self, key: &str) -> &Mutex<HashMap<String, RunOutput>> {
        &self.shards[(fingerprint(key) as usize) & (SHARDS - 1)]
    }

    fn lookup(&self, key: &str) -> Option<RunOutput> {
        self.shard(key)
            .lock()
            .expect("plan cache shard poisoned")
            .get(key)
            .cloned()
    }

    /// Presence probe without cloning the cached output (dedup hot path).
    fn contains(&self, key: &str) -> bool {
        self.shard(key)
            .lock()
            .expect("plan cache shard poisoned")
            .contains_key(key)
    }

    /// Whether `key` would be served without any live execution or replay:
    /// a memory hit or (on a store-backed executor) a disk hit. The
    /// budgeted tick scheduler of `prem-serve` uses this to charge cached
    /// requests zero pool units. Hard-errors (panics) on store corruption
    /// or I/O failure, per the store's contract.
    pub fn cached(&self, key: &str) -> bool {
        self.contains(key)
            || self
                .store
                .as_ref()
                .map(|store| {
                    store
                        .contains(key)
                        .unwrap_or_else(|e| panic!("persistent run store failure: {e}"))
                })
                .unwrap_or(false)
    }

    fn insert(&self, key: String, output: RunOutput) {
        self.shard(&key)
            .lock()
            .expect("plan cache shard poisoned")
            .insert(key, output);
    }

    /// Expands `requests` into the unique, not-yet-cached frontier,
    /// executes it on `workers` pool threads at run granularity, caches
    /// every output, and reports what happened *in this call*. Results are
    /// independent of the worker count (each request owns its platform and
    /// seed), so any consumer of the cache renders byte-identical
    /// artifacts at any parallelism.
    ///
    /// This is the [`PlanExecutor::execute_metered`] monomorphization
    /// against [`NullMetrics`] — the instrumentation compiles to nothing
    /// here, which the `obs` criterion bench pins.
    pub fn execute(&self, requests: &[RunRequest<'_>], workers: usize) -> PlanSummary {
        self.execute_metered(requests, workers, &NullMetrics)
    }

    /// [`PlanExecutor::execute`] with metrics: expansion/dedup and pool
    /// spans (`plan.expand_ns`, `plan.execute_ns`, per-unit
    /// `plan.unit_ns`, per-member `plan.live_ns`/`plan.replay_ns`), the
    /// tier counters (`plan.live_runs`, `plan.memory_hits`,
    /// `plan.disk_hits`, `plan.replayed`, …), family fan-out
    /// (`plan.family_fanout`) and pool shape gauges (`plan.pool_units`,
    /// `plan.pool_workers`, `plan.pool_utilization_permille`) land in
    /// `metrics`. Counters are added even when zero, so a fully warm run
    /// still materializes `plan.live_runs=0` in the snapshot. Metrics
    /// are strictly write-only: outputs and the returned summary are
    /// byte-identical to [`PlanExecutor::execute`], with any sink.
    pub fn execute_metered<M: MetricsSink>(
        &self,
        requests: &[RunRequest<'_>],
        workers: usize,
        metrics: &M,
    ) -> PlanSummary {
        let _whole = Span::start(metrics, "plan.execute_ns");
        let expand = Span::start(metrics, "plan.expand_ns");
        let mut claimed = HashSet::new();
        let mut frontier: Vec<(String, &RunRequest<'_>)> = Vec::new();
        let mut summary = PlanSummary {
            requested: requests.len(),
            ..PlanSummary::default()
        };
        for req in requests {
            let key = req.key();
            if claimed.contains(&key) {
                summary.elided += 1;
            } else if self.contains(&key) {
                claimed.insert(key);
                summary.hits += 1;
            } else if let Some(output) = self.disk_lookup(&key, metrics) {
                self.insert(key.clone(), output);
                claimed.insert(key);
                summary.disk_hits += 1;
            } else {
                claimed.insert(key.clone());
                frontier.push((key, req));
            }
        }
        // Partition the eligible frontier into derivation families by base
        // key, in first-occurrence order. The first member of a family of
        // ≥2 is the representative: it executes live with capture on; the
        // siblings are derived from its capture. Everything else (replay
        // disabled, ineligible, or a family of one) executes plain live.
        let mut families: Vec<Vec<usize>> = Vec::new();
        if self.replay {
            let mut groups: Vec<Vec<usize>> = Vec::new();
            let mut by_base: HashMap<String, usize> = HashMap::new();
            for (i, (_, req)) in frontier.iter().enumerate() {
                if req.replay_eligible() {
                    let g = *by_base.entry(req.base_key()).or_insert_with(|| {
                        groups.push(Vec::new());
                        groups.len() - 1
                    });
                    groups[g].push(i);
                }
            }
            families.extend(groups.into_iter().filter(|m| m.len() >= 2));
        }
        let mut family_of: Vec<Option<usize>> = vec![None; frontier.len()];
        for (f, members) in families.iter().enumerate() {
            for &i in members {
                family_of[i] = Some(f);
            }
        }
        drop(expand);
        for members in &families {
            metrics.observe("plan.family_fanout", members.len() as u64);
        }

        // Schedule units: a frontier index outside any family is one plain
        // live run; a family is one unit — its representative executes
        // live with capture on, every sibling derives from that capture,
        // and the capture drops with the unit. Families execute as units
        // so peak capture memory is bounded by the worker count, never the
        // family count (a paper-scale merged plan forms hundreds of
        // families; their captures must not be alive simultaneously).
        // Derivation is deterministic in (capture, request), so outputs
        // stay independent of the worker count and of scheduling.
        let mut units: Vec<Unit> = Vec::new();
        for (i, family) in family_of.iter().enumerate() {
            match *family {
                None => units.push(Unit::Live(i)),
                Some(f) if families[f][0] == i => units.push(Unit::Family(f)),
                Some(_) => {} // sibling: produced by its family's unit
            }
        }
        // Hand each executed unit its profile-memo cell *now*, on the
        // expansion thread: hit/miss accounting is decided by the memo's
        // state at expansion (first unit of a new key is the miss, every
        // sharer is a hit), so the summary is deterministic at any worker
        // count even though the passes themselves race in the pool — the
        // `OnceLock` cell guarantees exactly one computation per key.
        let profile_cells: Vec<Option<ProfileCell>> = if self.profile_memo {
            let mut memo = self.profiles.lock().expect("profile memo poisoned");
            units
                .iter()
                .map(|unit| {
                    let req = match *unit {
                        Unit::Live(i) => frontier[i].1,
                        Unit::Family(f) => frontier[families[f][0]].1,
                    };
                    let key = req.profile_key()?;
                    use std::collections::hash_map::Entry;
                    Some(match memo.entry(key) {
                        Entry::Occupied(e) => {
                            summary.profile_hits += 1;
                            e.get().clone()
                        }
                        Entry::Vacant(v) => {
                            summary.profile_misses += 1;
                            v.insert(Arc::new(OnceLock::new())).clone()
                        }
                    })
                })
                .collect()
        } else {
            units.iter().map(|_| None).collect()
        };
        let tasks: Vec<(&Unit, Option<ProfileCell>)> = units.iter().zip(profile_cells).collect();
        let busy_ns = AtomicU64::new(0);
        let pool_start = metrics.enabled().then(Instant::now);
        let unit_outputs = parallel_map(workers, &tasks, |(unit, cell)| {
            let unit_start = metrics.enabled().then(Instant::now);
            let outs = self.run_unit(unit, cell.as_ref(), &frontier, &families, metrics);
            if let Some(start) = unit_start {
                let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                metrics.observe("plan.unit_ns", ns);
                busy_ns.fetch_add(ns, Ordering::Relaxed);
            }
            outs
        });
        if let Some(start) = pool_start {
            let wall_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            metrics.observe("plan.pool_wall_ns", wall_ns);
            metrics.gauge("plan.pool_units", units.len() as i64);
            metrics.gauge("plan.pool_workers", workers as i64);
            // Worker utilization: summed per-unit busy time over the
            // pool's total capacity (wall × workers), in permille so the
            // gauge stays integer-valued.
            let capacity = wall_ns.saturating_mul(workers as u64);
            let busy = busy_ns.load(Ordering::Relaxed).saturating_mul(1000);
            if let Some(permille) = busy.checked_div(capacity) {
                metrics.gauge("plan.pool_utilization_permille", permille as i64);
            }
        }

        summary.executed = units.len();
        summary.replayed = frontier.len() - units.len();
        summary.families = families.len();
        let mut outputs: Vec<Option<RunOutput>> = (0..frontier.len()).map(|_| None).collect();
        for (i, output) in unit_outputs.into_iter().flatten() {
            outputs[i] = Some(output);
        }
        let outputs: Vec<RunOutput> = outputs
            .into_iter()
            .map(|o| o.expect("every frontier slot is filled by exactly one unit"))
            .collect();

        // Replayed outputs persist and memoize exactly like live ones:
        // they are bit-identical to live execution, so the store stays a
        // pure content-addressed cache.
        self.persist(
            frontier
                .iter()
                .map(|(key, _)| key.as_str())
                .zip(outputs.iter()),
            metrics,
        );
        for ((key, _), output) in frontier.into_iter().zip(outputs) {
            self.insert(key, output);
        }
        self.requested
            .fetch_add(summary.requested, Ordering::Relaxed);
        self.executed.fetch_add(summary.executed, Ordering::Relaxed);
        self.elided.fetch_add(summary.elided, Ordering::Relaxed);
        self.hits.fetch_add(summary.hits, Ordering::Relaxed);
        self.disk_hits
            .fetch_add(summary.disk_hits, Ordering::Relaxed);
        self.replayed.fetch_add(summary.replayed, Ordering::Relaxed);
        self.families.fetch_add(summary.families, Ordering::Relaxed);
        self.profile_hits
            .fetch_add(summary.profile_hits, Ordering::Relaxed);
        self.profile_misses
            .fetch_add(summary.profile_misses, Ordering::Relaxed);
        // Counters are added unconditionally — a zero delta still
        // materializes the key, so a fully warm snapshot reports
        // `plan.live_runs=0` instead of omitting it (the CI warm gate
        // reads exactly that).
        metrics.add("plan.requested", summary.requested as u64);
        metrics.add("plan.live_runs", summary.executed as u64);
        metrics.add("plan.elided", summary.elided as u64);
        metrics.add("plan.memory_hits", summary.hits as u64);
        metrics.add("plan.disk_hits", summary.disk_hits as u64);
        metrics.add("plan.replayed", summary.replayed as u64);
        metrics.add("plan.families", summary.families as u64);
        metrics.add("plan.profile_hits", summary.profile_hits as u64);
        metrics.add("plan.profile_misses", summary.profile_misses as u64);
        summary
    }

    /// Executes one scheduled unit — a plain live run, or a whole
    /// derivation family (representative live with capture, siblings
    /// replayed) — returning `(frontier index, output)` pairs.
    fn run_unit<M: MetricsSink>(
        &self,
        unit: &Unit,
        cell: Option<&ProfileCell>,
        frontier: &[(String, &RunRequest<'_>)],
        families: &[Vec<usize>],
        metrics: &M,
    ) -> Vec<(usize, RunOutput)> {
        match *unit {
            Unit::Live(i) => {
                let req = frontier[i].1;
                // Pin the tiled stream for the whole unit so the profile
                // pass and the timed run share one arena entry.
                let _stream = req.tiled_intervals();
                match cell.and_then(|c| c.get().copied()) {
                    // Memo hit: feed the shared WCETs straight in.
                    Some(w) => {
                        let _live = Span::start(metrics, "plan.live_ns");
                        vec![(i, req.execute_profiled(Some(w)))]
                    }
                    // Memo miss (or memoization off): let the executor
                    // self-profile — fused into the timed walk for
                    // constant-contention unpolluted mixes, a separate
                    // inline pass otherwise — and backfill the cell so
                    // every sharer still gets the memoized pair.
                    None => {
                        let _live = Span::start(metrics, "plan.live_ns");
                        let (out, wcets) = req.execute_reporting_profile();
                        if let (Some(cell), Some(w)) = (cell, wcets) {
                            let _ = cell.set(w);
                        }
                        vec![(i, out)]
                    }
                }
            }
            Unit::Family(f) => {
                let members = &families[f];
                let rep = frontier[members[0]].1;
                let _stream = rep.tiled_intervals();
                let (rep_output, capture) = match cell.and_then(|c| c.get().copied()) {
                    Some(w) => {
                        let _live = Span::start(metrics, "plan.live_ns");
                        rep.execute_captured_profiled(Some(w))
                    }
                    None => {
                        let _live = Span::start(metrics, "plan.live_ns");
                        let (out, wcets, capture) = rep.execute_captured_reporting_profile();
                        if let (Some(cell), Some(w)) = (cell, wcets) {
                            let _ = cell.set(w);
                        }
                        (out, capture)
                    }
                };
                let mut outs = Vec::with_capacity(members.len());
                outs.push((members[0], rep_output));
                // Siblings resolving to an RNG-free LLC policy coalesce: a
                // deterministic policy's victim choices cannot depend on
                // the cache seed ([`prem_memsim::Policy::seed_sensitive`]),
                // so one replay serves that policy's whole seed axis and
                // the remaining seeds receive bit-identical clones.
                let mut class_slot: HashMap<(&str, Option<u64>), usize> = HashMap::new();
                for &i in &members[1..] {
                    let req = frontier[i].1;
                    let policy = req
                        .platform
                        .policy
                        .map(|p| p.name())
                        .unwrap_or("template-policy");
                    let seed_axis = req
                        .resolved_platform()
                        .llc
                        .policy_ref()
                        .seed_sensitive()
                        .then_some(req.seed);
                    let output = match class_slot.get(&(policy, seed_axis)) {
                        Some(&slot) => outs[slot].1.clone(),
                        None => {
                            class_slot.insert((policy, seed_axis), outs.len());
                            let _replay = Span::start(metrics, "plan.replay_ns");
                            req.replay_from(&capture)
                        }
                    };
                    outs.push((i, output));
                }
                outs
            }
        }
    }

    /// Cumulative counters over the executor's lifetime, including lazy
    /// [`RunSource::output`] executions and hits.
    pub fn summary(&self) -> PlanSummary {
        PlanSummary {
            requested: self.requested.load(Ordering::Relaxed),
            executed: self.executed.load(Ordering::Relaxed),
            elided: self.elided.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            replayed: self.replayed.load(Ordering::Relaxed),
            families: self.families.load(Ordering::Relaxed),
            profile_hits: self.profile_hits.load(Ordering::Relaxed),
            profile_misses: self.profile_misses.load(Ordering::Relaxed),
        }
    }

    /// Total simulator executions this executor has performed (the
    /// execution-count probe the dedup tests assert on).
    pub fn executed_runs(&self) -> usize {
        self.executed.load(Ordering::Relaxed)
    }

    /// Number of distinct outputs currently cached.
    pub fn cached_runs(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("plan cache shard poisoned").len())
            .sum()
    }
}

impl RunSource for PlanExecutor {
    /// Serves `req` through the full tier — memory hit, then disk hit
    /// (with a persistent store), then live execution on the calling
    /// thread; misses are memoized in memory and appended to the store,
    /// so the data-dependent tail of a figure — e.g. a best-T follow-up —
    /// stays correct and warm-cacheable even when its requests were not
    /// part of any submitted plan.
    fn output(&self, req: &RunRequest<'_>) -> RunOutput {
        let key = req.key();
        if let Some(out) = self.lookup(&key) {
            self.requested.fetch_add(1, Ordering::Relaxed);
            self.hits.fetch_add(1, Ordering::Relaxed);
            return out;
        }
        if let Some(out) = self.disk_lookup(&key, &NullMetrics) {
            self.requested.fetch_add(1, Ordering::Relaxed);
            self.disk_hits.fetch_add(1, Ordering::Relaxed);
            self.insert(key, out.clone());
            return out;
        }
        // A lazy miss profiles through the same memo the pool uses, so a
        // data-dependent tail (e.g. a best-T follow-up re-running a
        // scenario sibling) still skips the pass; a cold cell is filled
        // from the executor's self-reported WCETs (fused into the timed
        // run whenever the mix allows).
        let cell = self.lazy_cell(req);
        let out = match cell.as_ref().and_then(|c| c.get().copied()) {
            Some(w) => req.execute_profiled(Some(w)),
            None => {
                let (out, wcets) = req.execute_reporting_profile();
                if let (Some(cell), Some(w)) = (cell.as_ref(), wcets) {
                    let _ = cell.set(w);
                }
                out
            }
        };
        self.requested.fetch_add(1, Ordering::Relaxed);
        self.executed.fetch_add(1, Ordering::Relaxed);
        self.persist([(key.as_str(), &out)], &NullMetrics);
        self.insert(key, out.clone());
        out
    }
}

impl PlanExecutor {
    /// Memo-cell resolution for the lazy [`RunSource::output`] path:
    /// resolves (or creates) the request's profile memo cell and charges
    /// the hit/miss on this executor's counters. The caller reads a
    /// filled cell as a memoized `(m_wcet, c_wcet)` and backfills an
    /// empty one from the executor's self-reported pair.
    fn lazy_cell(&self, req: &RunRequest<'_>) -> Option<ProfileCell> {
        if !self.profile_memo {
            return None;
        }
        let key = req.profile_key()?;
        use std::collections::hash_map::Entry;
        let mut memo = self.profiles.lock().expect("profile memo poisoned");
        Some(match memo.entry(key) {
            Entry::Occupied(e) => {
                self.profile_hits.fetch_add(1, Ordering::Relaxed);
                e.get().clone()
            }
            Entry::Vacant(v) => {
                self.profile_misses.fetch_add(1, Ordering::Relaxed);
                v.insert(Arc::new(OnceLock::new())).clone()
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prem_kernels::Bicg;
    use prem_memsim::KIB;

    fn req(kernel: &Bicg, work: RunWork, t: usize, seed: u64) -> RunRequest<'_> {
        RunRequest {
            kernel,
            platform: PlatformSpec::tx1(),
            work,
            t_bytes: t,
            seed,
            scenario: MatrixScenario::Preset(Scenario::Isolation),
            noise: NoiseModel::tx1(),
        }
    }

    #[test]
    fn key_covers_every_coordinate() {
        let k = Bicg::new(128, 128);
        let base = req(&k, RunWork::PremLlc { r: 8 }, 32 * KIB, 11);
        let key = base.key();
        assert_eq!(key, base.key(), "key must be stable");
        // Every varied coordinate must move the key.
        assert_ne!(key, req(&k, RunWork::PremLlc { r: 1 }, 32 * KIB, 11).key());
        assert_ne!(key, req(&k, RunWork::PremSpm, 32 * KIB, 11).key());
        assert_ne!(key, req(&k, RunWork::Baseline, 32 * KIB, 11).key());
        assert_ne!(key, req(&k, RunWork::PremLlc { r: 8 }, 64 * KIB, 11).key());
        assert_ne!(key, req(&k, RunWork::PremLlc { r: 8 }, 32 * KIB, 12).key());
        let mut intf = req(&k, RunWork::PremLlc { r: 8 }, 32 * KIB, 11);
        intf.scenario = MatrixScenario::Preset(Scenario::Interference);
        assert_ne!(key, intf.key());
        let mut noisy = req(&k, RunWork::PremLlc { r: 8 }, 32 * KIB, 11);
        noisy.noise = NoiseModel::off();
        assert_ne!(key, noisy.key());
        let k2 = Bicg::new(192, 160);
        assert_ne!(key, req(&k2, RunWork::PremLlc { r: 8 }, 32 * KIB, 11).key());
    }

    #[test]
    fn same_named_mix_with_different_profiles_cannot_alias() {
        use crate::spec::CorunnerMix;
        use prem_gpusim::CorunnerProfile;
        let k = Bicg::new(128, 128);
        let mut a = req(&k, RunWork::PremLlc { r: 8 }, 32 * KIB, 11);
        a.scenario = MatrixScenario::Mix(CorunnerMix::new("mix", vec![CorunnerProfile::Membomb]));
        let mut b = a.clone();
        b.scenario = MatrixScenario::Mix(CorunnerMix::new("mix", vec![CorunnerProfile::Stream]));
        assert_ne!(a.key(), b.key(), "same name, different actors");
        // An independently rebuilt identical mix still dedups.
        let mut c = a.clone();
        c.scenario = MatrixScenario::Mix(CorunnerMix::new("mix", vec![CorunnerProfile::Membomb]));
        assert_eq!(a.key(), c.key());
    }

    #[test]
    fn hand_modified_template_cannot_alias_a_preset() {
        let k = Bicg::new(128, 128);
        let preset = req(&k, RunWork::PremLlc { r: 8 }, 32 * KIB, 11);
        let mut doctored = preset.clone();
        doctored.platform.config.clock_ghz = 2.0; // same name, different config
        assert_ne!(preset.key(), doctored.key());
    }

    #[test]
    fn executor_dedupes_and_caches() {
        let k = Bicg::new(128, 128);
        let a = req(&k, RunWork::PremLlc { r: 8 }, 32 * KIB, 11);
        let b = req(&k, RunWork::Baseline, 32 * KIB, 11);
        let exec = PlanExecutor::new();
        // a submitted twice: one elision.
        let s = exec.execute(&[a.clone(), b.clone(), a.clone()], 1);
        assert_eq!((s.requested, s.executed, s.elided, s.hits), (3, 2, 1, 0));
        assert_eq!(exec.cached_runs(), 2);
        // Resubmitting is all cache hits, nothing executes.
        let s = exec.execute(&[a.clone(), b.clone()], 1);
        assert_eq!((s.executed, s.hits), (0, 2));
        assert_eq!(exec.executed_runs(), 2);
        // Cached output equals a direct execution.
        assert_eq!(exec.output(&a), Direct.output(&a));
        assert_eq!(exec.executed_runs(), 2, "output() after execute() is a hit");
    }

    #[test]
    fn lazy_output_memoizes() {
        let k = Bicg::new(128, 128);
        let a = req(&k, RunWork::PremSpm, 32 * KIB, 11);
        let exec = PlanExecutor::new();
        let first = exec.output(&a);
        assert_eq!(exec.executed_runs(), 1);
        assert_eq!(exec.output(&a), first);
        assert_eq!(exec.executed_runs(), 1, "second output() must be a hit");
        assert_eq!(exec.summary().hits, 1);
    }

    #[test]
    fn store_backed_executor_serves_a_fresh_process_from_disk() {
        let dir = std::env::temp_dir().join(format!("prem-plan-store-test-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let k = Bicg::new(128, 128);
        let a = req(&k, RunWork::PremLlc { r: 8 }, 32 * KIB, 11);
        let b = req(&k, RunWork::Baseline, 32 * KIB, 11);
        let lazy = req(&k, RunWork::PremSpm, 32 * KIB, 11);

        // Cold process: everything executes live, then lands on disk.
        let cold = PlanExecutor::new().with_store(RunStore::open(&dir).expect("open"));
        let s = cold.execute(&[a.clone(), b.clone()], 1);
        assert_eq!((s.executed, s.disk_hits), (2, 0));
        let lazy_out = cold.output(&lazy); // lazy tail persists too
        assert_eq!(
            cold.store().expect("store").stats().expect("stats").records,
            3
        );

        // Warm "second process": fresh executor, same directory — all
        // three requests are disk hits, zero live executions, outputs
        // byte-identical to the cold run.
        let warm = PlanExecutor::new().with_store(RunStore::open(&dir).expect("reopen"));
        let s = warm.execute(&[a.clone(), b.clone()], 1);
        assert_eq!((s.executed, s.hits, s.disk_hits), (0, 0, 2));
        assert_eq!(warm.output(&lazy), lazy_out);
        assert_eq!(warm.executed_runs(), 0);
        assert_eq!(warm.summary().disk_hits, 3);
        assert_eq!(warm.output(&a), Direct.output(&a));

        // An invalidating platform tweak changes the key, so only the
        // tweaked request re-executes.
        let mut tweaked = a.clone();
        tweaked.platform.config.clock_ghz *= 2.0;
        let s = warm.execute(&[tweaked, b.clone()], 1);
        assert_eq!((s.executed, s.hits, s.disk_hits), (1, 1, 0));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn metered_execution_is_output_identical_and_records_counters() {
        use prem_obs::{Histogram, Registry};
        let k = Bicg::new(128, 128);
        let reqs: Vec<RunRequest<'_>> = (0..3)
            .map(|i| req(&k, RunWork::PremLlc { r: 8 }, 32 * KIB, 11 + i))
            .collect();
        let plain = PlanExecutor::new();
        let metered = PlanExecutor::new();
        let registry = Registry::new();
        let s1 = plain.execute(&reqs, 1);
        let s2 = metered.execute_metered(&reqs, 2, &registry);
        assert_eq!(s1, s2, "metrics must not change the summary");
        for r in &reqs {
            assert_eq!(plain.output(r), metered.output(r));
        }
        let snap = registry.snapshot();
        assert_eq!(snap.counter("plan.requested"), Some(3));
        assert_eq!(snap.counter("plan.live_runs"), Some(s2.executed as u64));
        assert_eq!(snap.counter("plan.replayed"), Some(s2.replayed as u64));
        assert_eq!(
            snap.counter("plan.disk_hits"),
            Some(0),
            "zero still present"
        );
        assert!(snap.hist("plan.execute_ns").is_some());
        assert!(snap.hist("plan.unit_ns").is_some());
        if s2.families > 0 {
            assert_eq!(snap.hist("plan.family_fanout").map(Histogram::max), Some(3));
        }
        // Summaries aggregate field-wise.
        let mut agg = PlanSummary::default();
        agg += &s1;
        agg += &s2;
        assert_eq!(agg.requested, 6);
        assert_eq!(agg.replayed, s1.replayed * 2);
    }

    #[test]
    fn executor_matches_direct_at_any_worker_count() {
        let k = Bicg::new(128, 128);
        let reqs: Vec<RunRequest<'_>> = (0..4)
            .map(|i| req(&k, RunWork::PremLlc { r: 8 }, 32 * KIB, 11 + i))
            .collect();
        let exec = PlanExecutor::new();
        exec.execute(&reqs, 4);
        for r in &reqs {
            assert_eq!(exec.output(r), Direct.output(r));
        }
    }
}
