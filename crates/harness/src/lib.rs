//! # prem-harness — the scenario-matrix engine
//!
//! The paper evaluates one TX1 in isolation vs. interference. This crate
//! generalizes that evaluation into a declarative *matrix*: a
//! [`MatrixSpec`] names the axes — kernels × platform presets
//! ([`MatrixPlatform`]) × LLC replacement policies ([`MatrixPolicy`]) ×
//! contention scenarios × seeds — and [`run_matrix`] expands the product
//! into independent simulation tasks executed on a deterministic
//! work-claiming thread pool ([`pool::parallel_map`]).
//!
//! Determinism is a design invariant, not an accident of scheduling:
//!
//! * per-cell seeds are derived from a **stable hash of the cell's
//!   coordinates** ([`seed::derive_seed`]) — never from enumeration order
//!   or worker identity;
//! * every cell owns its platform, RNG and interval stream;
//! * results are collected in expansion order.
//!
//! Consequently a matrix renders **byte-identical artifacts at any worker
//! count**, which `tests/determinism.rs` asserts.
//!
//! Since the run-plan refactor this crate also hosts the workspace's
//! **content-addressed execution pipeline** ([`plan`]): every consumer —
//! figure modules, matrix cells, benches — lowers its work to canonical
//! [`RunRequest`]s, and a [`PlanExecutor`] dedupes, executes and caches
//! them at run granularity on the same pool. [`run_matrix`] itself routes
//! every cell through it. The cache has a durable tier too: a
//! [`RunStore`] ([`store`]) persists executed outputs in fingerprint-
//! sharded segment files, and a [`PlanExecutor::with_store`] executor
//! resolves memory hit → disk hit → live execute, making warm artifact
//! regeneration near-instant (see `CACHING.md` at the repo root).
//!
//! ```
//! use prem_harness::{run_matrix, MatrixPlatform, MatrixPolicy, MatrixSpec};
//! use prem_kernels::Bicg;
//!
//! let mut spec = MatrixSpec::quick(vec![Box::new(Bicg::new(128, 128))]);
//! spec.platforms = vec![MatrixPlatform::tx1(), MatrixPlatform::tx2()];
//! spec.policies = vec![MatrixPolicy::VendorBiased];
//! let result = run_matrix(&spec, 2);
//! assert_eq!(result.cells().len(), spec.len());
//! assert!(result.to_csv().lines().count() > spec.len() / spec.seeds.len());
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod agg;
pub mod artifact;
pub mod flags;
pub mod plan;
pub mod pool;
mod run;
pub mod seed;
pub mod spec;
pub mod store;
pub mod wire;

pub use agg::MatrixResult;
pub use artifact::write_artifact;
pub use flags::{ExecFlags, EXEC_FLAGS_HELP};
pub use plan::{Direct, PlanExecutor, PlanSummary, PlatformSpec, RunRequest, RunSource};
pub use pool::{default_workers, parallel_map};
pub use run::{
    cell_requests, run_cell, run_cell_with, run_matrix, run_matrix_metered, run_matrix_with,
    CellResult,
};
pub use spec::{
    scenario_name, CellSpec, CorunnerMix, MatrixPlatform, MatrixPolicy, MatrixScenario, MatrixSpec,
};
pub use store::{GcReport, RunStore, StoreStats};
pub use wire::{OwnedRunRequest, PlatformId, ResolvedRunRequest, WIRE_VERSION};
