//! # prem-obs — the zero-overhead observability layer
//!
//! Every load-bearing runtime layer of the workspace — the deterministic
//! pool, the memoizing `PlanExecutor`, the advisory-locked `RunStore`,
//! the budgeted serve front end — wants the same three things observed:
//! **how often** (monotonic counters), **how much right now** (gauges)
//! and **how long** (latency histograms fed by RAII span timers). This
//! crate is the one registry for all of them, built on two hard
//! contracts inherited from the trace layer (`prem-memsim`'s
//! `TraceSink`):
//!
//! 1. **Zero overhead when off.** Instrumented code is generic over
//!    [`MetricsSink`]; the disabled path monomorphizes against
//!    [`NullMetrics`], whose methods are inlineable no-ops and whose
//!    [`MetricsSink::enabled`] is a constant `false` — so span timers
//!    never even read the clock. The un-metered entry points *are* the
//!    `NullMetrics` monomorphizations, pinned within noise of baseline
//!    by the `obs` criterion bench and the `bench_matrix` gate.
//!
//! 2. **Metrics never influence outputs.** A [`Registry`] only ever
//!    *receives* values; nothing in any instrumented layer reads it back
//!    mid-run. Artifacts are byte-identical with metrics on or off — the
//!    golden suite asserts it.
//!
//! Snapshots export two ways: a human-readable text listing
//! ([`Snapshot::to_text`]) and a versioned single-line JSON document
//! ([`Snapshot::to_json`], schema [`SNAPSHOT_SCHEMA`]) with entries in
//! stable sorted order and integer-only values, so two snapshots of
//! equal runs are byte-comparable modulo timing-valued entries.
//!
//! All values are `u64`/`i64`; a histogram's *unit* is carried by its
//! name (`*_ns` histograms hold nanoseconds, `plan.family_fanout` holds
//! member counts). Integer sums keep histogram merging exactly
//! associative — [`Histogram::merge`] ≡ concatenated inserts, which the
//! property suite proves.

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod hist;
mod registry;
mod sink;

pub use hist::{Histogram, HIST_BUCKETS};
pub use registry::{MetricValue, Registry, Snapshot, SNAPSHOT_SCHEMA};
pub use sink::{MetricsSink, NullMetrics, Span};

/// Formats `pairs` as one machine-parseable `key=value key=value …`
/// line — the one formatter for every key=value stderr line the front
/// ends print (serve's tick heartbeat and its `WARN` form both go
/// through here). Values are embedded as given; keys and values must not
/// contain whitespace or `=` for the line to stay unambiguous, which
/// every caller's fixed key set guarantees.
pub fn kv_line<'a>(pairs: impl IntoIterator<Item = (&'a str, String)>) -> String {
    let mut out = String::new();
    for (key, value) in pairs {
        if !out.is_empty() {
            out.push(' ');
        }
        out.push_str(key);
        out.push('=');
        out.push_str(&value);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kv_line_joins_pairs_in_order() {
        assert_eq!(kv_line([]), "");
        assert_eq!(
            kv_line([("tick", "3".to_string()), ("units", "2".to_string())]),
            "tick=3 units=2"
        );
    }
}
