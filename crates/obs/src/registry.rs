//! The metrics registry and its snapshot exporters.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;

use crate::hist::Histogram;
use crate::sink::MetricsSink;

/// Schema identifier stamped into every JSON snapshot; bump it whenever
/// the snapshot's field set or meaning changes.
pub const SNAPSHOT_SCHEMA: &str = "prem-obs/v1";

/// One registered metric. The histogram is boxed so the map entry for
/// the (far more common) counters and gauges stays two words instead of
/// carrying the histogram's 65-bucket array inline.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Metric {
    Counter(u64),
    Gauge(i64),
    Hist(Box<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Hist(_) => "histogram",
        }
    }
}

/// The live metrics registry: a name-keyed map of counters, gauges and
/// histograms behind one mutex. The map is a `BTreeMap` so iteration —
/// and therefore every snapshot export — is in stable sorted order
/// without a sort step.
///
/// Locking per event is deliberate: the instrumented layers emit metrics
/// at *run*, *segment* and *tick* granularity (microseconds to seconds
/// of work per event), so contention is negligible, and the disabled
/// path never reaches the registry at all (see [`NullMetrics`]).
///
/// Using one metric name with two different kinds (e.g. `add` then
/// `observe`) is a programming error and panics.
///
/// [`NullMetrics`]: crate::sink::NullMetrics
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn with_metric(&self, name: &str, default: Metric, f: impl FnOnce(&mut Metric)) {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        let metric = inner
            .entry(name.to_string())
            .or_insert_with(|| default.clone());
        assert!(
            metric.kind() == default.kind(),
            "metric {name:?} is a {}, used as a {}",
            metric.kind(),
            default.kind()
        );
        f(metric);
    }

    /// An immutable point-in-time copy of every metric, in sorted name
    /// order.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        Snapshot {
            entries: inner
                .iter()
                .map(|(name, metric)| {
                    let value = match metric {
                        Metric::Counter(n) => MetricValue::Counter(*n),
                        Metric::Gauge(v) => MetricValue::Gauge(*v),
                        Metric::Hist(h) => MetricValue::Hist(h.clone()),
                    };
                    (name.clone(), value)
                })
                .collect(),
        }
    }
}

impl MetricsSink for Registry {
    fn enabled(&self) -> bool {
        true
    }

    /// Increments counter `name` by `n`, registering it at zero first —
    /// so an `add(name, 0)` materializes the counter, which is how the
    /// plan layer guarantees a warm run still reports `live_runs=0`
    /// instead of omitting the key.
    fn add(&self, name: &str, n: u64) {
        self.with_metric(name, Metric::Counter(0), |m| {
            if let Metric::Counter(total) = m {
                *total += n;
            }
        });
    }

    /// Sets gauge `name` to `v` (last write wins).
    fn gauge(&self, name: &str, v: i64) {
        self.with_metric(name, Metric::Gauge(0), |m| {
            if let Metric::Gauge(current) = m {
                *current = v;
            }
        });
    }

    /// Records `v` into histogram `name`.
    fn observe(&self, name: &str, v: u64) {
        self.with_metric(name, Metric::Hist(Box::default()), |m| {
            if let Metric::Hist(h) = m {
                h.insert(v);
            }
        });
    }
}

/// One exported metric value inside a [`Snapshot`]. The histogram is
/// boxed for the same reason as in the registry: counter and gauge
/// entries stay two words.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetricValue {
    /// A monotonic counter's total.
    Counter(u64),
    /// A gauge's last value.
    Gauge(i64),
    /// A histogram's full state.
    Hist(Box<Histogram>),
}

/// A point-in-time export of a [`Registry`]: `(name, value)` entries in
/// sorted name order, renderable as text or versioned JSON.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    entries: Vec<(String, MetricValue)>,
}

impl Snapshot {
    /// The exported entries, sorted by name.
    pub fn entries(&self) -> &[(String, MetricValue)] {
        &self.entries
    }

    fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// The counter `name`'s total, if registered as a counter.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name)? {
            MetricValue::Counter(n) => Some(*n),
            _ => None,
        }
    }

    /// The gauge `name`'s value, if registered as a gauge.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        match self.get(name)? {
            MetricValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// The histogram `name`, if registered as a histogram.
    pub fn hist(&self, name: &str) -> Option<&Histogram> {
        match self.get(name)? {
            MetricValue::Hist(h) => Some(h),
            _ => None,
        }
    }

    /// Human-readable listing, one metric per line in sorted order:
    ///
    /// ```text
    /// counter plan.disk_hits 42
    /// gauge   plan.pool_workers 4
    /// hist    store.load_ns count=3 sum=61250 min=9000 p50=16383 p95=32767 max=31000
    /// ```
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.entries {
            match value {
                MetricValue::Counter(n) => writeln!(out, "counter {name} {n}"),
                MetricValue::Gauge(v) => writeln!(out, "gauge   {name} {v}"),
                MetricValue::Hist(h) => writeln!(
                    out,
                    "hist    {name} count={} sum={} min={} p50={} p95={} max={}",
                    h.count(),
                    h.sum(),
                    h.min(),
                    h.p50(),
                    h.p95(),
                    h.max()
                ),
            }
            .expect("writing to a String cannot fail");
        }
        out
    }

    /// The versioned single-line JSON export (schema
    /// [`SNAPSHOT_SCHEMA`]): three name-sorted sections — `counters`,
    /// `gauges`, `histograms` — with integer-only values, so snapshots
    /// of equal runs are byte-comparable modulo timing-valued entries.
    pub fn to_json(&self) -> String {
        let mut counters = String::new();
        let mut gauges = String::new();
        let mut hists = String::new();
        for (name, value) in &self.entries {
            match value {
                MetricValue::Counter(n) => {
                    json_entry(&mut counters, name, &n.to_string());
                }
                MetricValue::Gauge(v) => {
                    json_entry(&mut gauges, name, &v.to_string());
                }
                MetricValue::Hist(h) => {
                    let buckets: Vec<String> = h
                        .nonzero_buckets()
                        .iter()
                        .map(|(bit, n)| format!("[{bit},{n}]"))
                        .collect();
                    json_entry(
                        &mut hists,
                        name,
                        &format!(
                            "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\
                             \"p50\":{},\"p95\":{},\"buckets\":[{}]}}",
                            h.count(),
                            h.sum(),
                            h.min(),
                            h.max(),
                            h.p50(),
                            h.p95(),
                            buckets.join(",")
                        ),
                    );
                }
            }
        }
        format!(
            "{{\"schema\":\"{SNAPSHOT_SCHEMA}\",\"counters\":{{{counters}}},\
             \"gauges\":{{{gauges}}},\"histograms\":{{{hists}}}}}"
        )
    }
}

/// Appends `"key":value` (comma-separated) to a JSON object body.
fn json_entry(body: &mut String, key: &str, value: &str) {
    if !body.is_empty() {
        body.push(',');
    }
    body.push('"');
    // Metric names are ASCII identifiers with dots; escape defensively
    // anyway so a hostile name cannot break the document.
    for c in key.chars() {
        match c {
            '"' => body.push_str("\\\""),
            '\\' => body.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(body, "\\u{:04x}", c as u32);
            }
            c => body.push(c),
        }
    }
    body.push_str("\":");
    body.push_str(value);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_accumulates_and_snapshots_in_sorted_order() {
        let r = Registry::new();
        r.add("b.counter", 2);
        r.add("b.counter", 3);
        r.add("a.zero", 0);
        r.gauge("c.gauge", -7);
        r.observe("d.hist", 100);
        r.observe("d.hist", 900);
        let snap = r.snapshot();
        let names: Vec<&str> = snap.entries().iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["a.zero", "b.counter", "c.gauge", "d.hist"]);
        assert_eq!(snap.counter("a.zero"), Some(0), "add(0) materializes");
        assert_eq!(snap.counter("b.counter"), Some(5));
        assert_eq!(snap.gauge("c.gauge"), Some(-7));
        let h = snap.hist("d.hist").expect("hist");
        assert_eq!((h.count(), h.min(), h.max()), (2, 100, 900));
        assert_eq!(snap.counter("c.gauge"), None, "kind-checked accessors");
        assert_eq!(snap.counter("missing"), None);
    }

    #[test]
    #[should_panic(expected = "used as a")]
    fn kind_mismatch_is_a_programming_error() {
        let r = Registry::new();
        r.add("x", 1);
        r.observe("x", 1);
    }

    #[test]
    fn exports_are_stable_and_json_is_well_formed() {
        let r = Registry::new();
        r.add("plan.live_runs", 0);
        r.gauge("plan.pool_workers", 4);
        r.observe("store.load_ns", 9000);
        let snap = r.snapshot();
        assert_eq!(snap.to_text(), r.snapshot().to_text(), "export is stable");
        let json = r.snapshot().to_json();
        assert_eq!(
            json,
            "{\"schema\":\"prem-obs/v1\",\
             \"counters\":{\"plan.live_runs\":0},\
             \"gauges\":{\"plan.pool_workers\":4},\
             \"histograms\":{\"store.load_ns\":{\"count\":1,\"sum\":9000,\
             \"min\":9000,\"max\":9000,\"p50\":9000,\"p95\":9000,\
             \"buckets\":[[14,1]]}}}"
        );
        assert!(!json.contains('\n'), "snapshot JSON is one line");
    }

    #[test]
    fn json_escapes_hostile_metric_names() {
        let r = Registry::new();
        r.add("quote\"back\\slash", 1);
        let json = r.snapshot().to_json();
        assert!(json.contains("quote\\\"back\\\\slash"));
    }
}
