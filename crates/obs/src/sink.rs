//! The zero-overhead sink trait and the RAII span timer.

use std::time::Instant;

/// Where instrumented code sends its metrics. Mirrors the trace layer's
/// `TraceSink` discipline exactly: every method is an inlineable no-op
/// by default, [`NullMetrics`] overrides nothing, and instrumented hot
/// paths are generic over `M: MetricsSink` — so the disabled
/// monomorphization compiles to the uninstrumented code, which the `obs`
/// criterion bench pins.
///
/// `Sync` is a supertrait because the plan layer records from pool
/// worker threads through a shared `&M`.
pub trait MetricsSink: Sync {
    /// Whether this sink records anything. Gate *ancillary* work on it —
    /// clock reads for span timers, `format!` for dynamic metric names —
    /// never the metric calls themselves (those are already free when
    /// disabled).
    #[inline]
    fn enabled(&self) -> bool {
        false
    }

    /// Increments counter `name` by `n`.
    #[inline]
    fn add(&self, name: &str, n: u64) {
        let _ = (name, n);
    }

    /// Sets gauge `name` to `v`.
    #[inline]
    fn gauge(&self, name: &str, v: i64) {
        let _ = (name, v);
    }

    /// Records `v` into histogram `name`.
    #[inline]
    fn observe(&self, name: &str, v: u64) {
        let _ = (name, v);
    }
}

/// Forwarding impl so `&Registry` (and `&&M`, as closures capture) can
/// be passed wherever an `M: MetricsSink` is expected.
impl<M: MetricsSink + ?Sized> MetricsSink for &M {
    #[inline]
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    #[inline]
    fn add(&self, name: &str, n: u64) {
        (**self).add(name, n);
    }

    #[inline]
    fn gauge(&self, name: &str, v: i64) {
        (**self).gauge(name, v);
    }

    #[inline]
    fn observe(&self, name: &str, v: u64) {
        (**self).observe(name, v);
    }
}

/// The disabled sink: records nothing, reports nothing, costs nothing.
/// The un-metered entry points of every instrumented layer delegate to
/// their metered twins with this.
#[derive(Copy, Clone, Debug, Default)]
pub struct NullMetrics;

impl MetricsSink for NullMetrics {}

/// An RAII span timer: reads the clock at construction and records the
/// elapsed nanoseconds into histogram `name` on drop — but only against
/// an enabled sink. Against [`NullMetrics`] the clock is never read and
/// the drop is a no-op, so a span in a hot path monomorphizes away.
#[derive(Debug)]
#[must_use = "a span records on drop; binding it to _ drops it immediately"]
pub struct Span<'a, M: MetricsSink + ?Sized> {
    sink: &'a M,
    name: &'a str,
    start: Option<Instant>,
}

impl<'a, M: MetricsSink + ?Sized> Span<'a, M> {
    /// Starts timing `name` against `sink`.
    pub fn start(sink: &'a M, name: &'a str) -> Self {
        Span {
            sink,
            name,
            start: sink.enabled().then(Instant::now),
        }
    }
}

impl<M: MetricsSink + ?Sized> Drop for Span<'_, M> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.sink.observe(self.name, ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn null_sink_observes_nothing_and_spans_skip_the_clock() {
        let null = NullMetrics;
        assert!(!null.enabled());
        null.add("x", 1);
        null.gauge("x", 1);
        null.observe("x", 1);
        let span = Span::start(&null, "x");
        assert!(
            span.start.is_none(),
            "disabled span must not read the clock"
        );
        drop(span);
    }

    #[test]
    fn spans_record_elapsed_nanoseconds_into_the_registry() {
        let registry = Registry::new();
        {
            let _span = Span::start(&registry, "timed_ns");
            std::hint::black_box(0u64);
        }
        let snap = registry.snapshot();
        let h = snap.hist("timed_ns").expect("span recorded");
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn reference_forwarding_reaches_the_underlying_sink() {
        let registry = Registry::new();
        let by_ref: &Registry = &registry;
        assert!(by_ref.enabled());
        MetricsSink::add(&by_ref, "fwd", 2);
        assert_eq!(registry.snapshot().counter("fwd"), Some(2));
    }
}
