//! Fixed-bucket latency histograms.
//!
//! Buckets are power-of-two ranges indexed by the bit length of the
//! inserted value: bucket 0 holds exactly `0`, bucket `b` (1 ≤ b ≤ 64)
//! holds `[2^(b-1), 2^b - 1]`. The bounds are fixed at compile time, so
//! inserting is branch-free bit arithmetic, merging is element-wise
//! integer addition (exactly associative — no floating-point sums
//! anywhere), and two histograms over the same inserts are `==` no
//! matter how the inserts were split between them.
//!
//! Percentiles resolve to a bucket's upper bound clamped to the exact
//! observed maximum, so `p50 ≤ p95 ≤ max` holds by construction — the
//! property suite (`tests/hist_props.rs`) proves monotonicity and the
//! merge law over arbitrary inserts.

/// Bucket count: one bucket per possible bit length of a `u64` (0–64).
pub const HIST_BUCKETS: usize = 65;

/// A fixed-bucket histogram of `u64` values with exact count, sum, min
/// and max. The value *unit* is the owner's business (by convention the
/// metric name carries it, e.g. `store.load_ns`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; HIST_BUCKETS],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            // Sentinels chosen so min/max fold correctly under merge.
            min: u64::MAX,
            max: 0,
        }
    }

    /// Bucket index of `v`: its bit length.
    fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Inclusive upper bound of bucket `b`.
    fn bucket_upper(b: usize) -> u64 {
        match b {
            0 => 0,
            64 => u64::MAX,
            _ => (1u64 << b) - 1,
        }
    }

    /// Records one value.
    pub fn insert(&mut self, v: u64) {
        self.counts[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum += u128::from(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Folds `other` into `self`. Exactly equivalent to having inserted
    /// `other`'s values into `self` directly (integer arithmetic only).
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of recorded values.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Exact minimum recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact maximum recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The value at quantile `p` (clamped to `[0, 1]`): the upper bound
    /// of the first bucket whose cumulative count reaches rank
    /// `⌈p·count⌉`, clamped to the exact observed maximum. 0 when empty.
    /// Monotone in `p` by construction.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 1.0);
        let rank = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (b, &n) in self.counts.iter().enumerate() {
            cumulative += n;
            if cumulative >= rank {
                return Self::bucket_upper(b).min(self.max);
            }
        }
        self.max
    }

    /// Median estimate ([`Histogram::percentile`] at 0.50).
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 95th-percentile estimate ([`Histogram::percentile`] at 0.95).
    pub fn p95(&self) -> u64 {
        self.percentile(0.95)
    }

    /// The non-empty buckets as `(bit_length, count)` pairs, ascending —
    /// the snapshot exporters' compact bucket form.
    pub fn nonzero_buckets(&self) -> Vec<(u8, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(b, &n)| (b as u8, n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = Histogram::new();
        assert_eq!((h.count(), h.min(), h.max()), (0, 0, 0));
        assert_eq!(h.sum(), 0);
        assert_eq!((h.p50(), h.p95()), (0, 0));
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn exact_stats_and_bucketed_percentiles() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 100, 1000] {
            h.insert(v);
        }
        assert_eq!((h.count(), h.min(), h.max()), (6, 0, 1000));
        assert_eq!(h.sum(), 1106);
        // Rank 3 of 6 lands in the [2,3] bucket; p95 clamps to max.
        assert_eq!(h.p50(), 3);
        assert_eq!(h.p95(), 1000);
        assert!(h.p50() <= h.p95() && h.p95() <= h.max());
        // Extremes: bucket 0 holds exactly zero; u64::MAX round-trips.
        let mut extremes = Histogram::new();
        extremes.insert(u64::MAX);
        assert_eq!(extremes.p50(), u64::MAX);
        assert_eq!(extremes.nonzero_buckets(), vec![(64, 1)]);
    }

    #[test]
    fn merge_equals_concatenated_inserts() {
        let (xs, ys) = ([5u64, 7, 9], [1u64, 1 << 40, 3]);
        let mut merged = Histogram::new();
        let mut other = Histogram::new();
        xs.iter().for_each(|&v| merged.insert(v));
        ys.iter().for_each(|&v| other.insert(v));
        merged.merge(&other);
        let mut concat = Histogram::new();
        xs.iter().chain(ys.iter()).for_each(|&v| concat.insert(v));
        assert_eq!(merged, concat);
    }
}
