//! Property tests on the fixed-bucket histogram.
//!
//! Two laws carry the whole observability layer's integrity story:
//!
//! * **Percentile monotonicity** — `percentile(p)` is non-decreasing in
//!   `p`, bounded by the exact min/max, for *any* insert sequence. A
//!   snapshot can therefore never report `p95 < p50`.
//! * **Merge ≡ concatenated inserts** — folding one histogram into
//!   another is *exactly* (`==`, not approximately) the histogram of the
//!   concatenated value streams. This is what makes per-worker or
//!   per-process histograms safely combinable, and it holds because
//!   every accumulator is an integer (no float-sum reassociation).

use proptest::prelude::*;
use proptest::test_runner::ProptestConfig;

use prem_obs::Histogram;

/// Values spanning every bucket regime: zero, small, mid, and the
/// extreme top bucket.
fn value() -> impl Strategy<Value = u64> {
    proptest::sample::select(vec![
        0u64,
        1,
        2,
        3,
        100,
        1_000,
        65_535,
        65_536,
        1 << 40,
        u64::MAX - 1,
        u64::MAX,
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn percentiles_are_monotone_and_bounded(
        values in proptest::collection::vec(value(), 0..40),
        pa in 0u32..=100,
        pb in 0u32..=100,
    ) {
        let mut h = Histogram::new();
        for &v in &values {
            h.insert(v);
        }
        let (lo, hi) = (pa.min(pb), pa.max(pb));
        let (qlo, qhi) = (
            h.percentile(f64::from(lo) / 100.0),
            h.percentile(f64::from(hi) / 100.0),
        );
        prop_assert!(qlo <= qhi, "p{lo}={qlo} > p{hi}={qhi}");
        prop_assert!(h.p50() <= h.p95() && h.p95() <= h.max());
        if values.is_empty() {
            prop_assert_eq!((h.count(), qlo, qhi), (0, 0, 0));
        } else {
            let exact_min = *values.iter().min().expect("non-empty");
            let exact_max = *values.iter().max().expect("non-empty");
            prop_assert_eq!(h.min(), exact_min);
            prop_assert_eq!(h.max(), exact_max);
            prop_assert!(qhi <= exact_max);
            // Any percentile names a bucket upper bound at or above the
            // smallest observed value's bucket floor — never below min's
            // own bucket.
            prop_assert!(h.percentile(0.0) >= exact_min.next_power_of_two() / 2 || exact_min == 0);
            prop_assert_eq!(h.sum(), values.iter().map(|&v| u128::from(v)).sum::<u128>());
        }
    }

    #[test]
    fn merge_is_exactly_concatenated_inserts(
        xs in proptest::collection::vec(value(), 0..25),
        ys in proptest::collection::vec(value(), 0..25),
    ) {
        let mut left = Histogram::new();
        for &v in &xs {
            left.insert(v);
        }
        let mut right = Histogram::new();
        for &v in &ys {
            right.insert(v);
        }
        left.merge(&right);
        let mut concat = Histogram::new();
        for &v in xs.iter().chain(ys.iter()) {
            concat.insert(v);
        }
        prop_assert_eq!(&left, &concat);
        // Merging an empty histogram is the identity.
        left.merge(&Histogram::new());
        prop_assert_eq!(&left, &concat);
    }
}
