//! The compact binary trace format: delta-varint events behind a
//! magic/version header, with a streamed [`TraceWriter`] and an iterator
//! [`TraceReader`].
//!
//! ## Layout
//!
//! ```text
//! header  := magic "PRTC" | version u8 | label (varint len + UTF-8 bytes)
//!          | size_bytes | ways | line_bytes | index_hash u8 | seed
//!          | policy tag u8 [| weight count | weights…]        (all varint)
//! event   := tag u8 [operands…]
//! tag     := code (low 3 bits) | payload (high 5 bits)
//! trailer := tag End | event count (varint)
//! ```
//!
//! Line addresses are zigzag-encoded deltas against the previously coded
//! line, timestamps are wrapping u64 deltas against the previously coded
//! timestamp — both chosen for the shape of real captures, where
//! consecutive events touch neighbouring lines (delta ±1 fits one byte)
//! and timestamps advance monotonically by small strides. The encoding is
//! total: arbitrary event sequences (including non-monotone timestamps
//! fed in by the property suite) round-trip exactly, they just compress
//! worse.

use std::io::{self, Read, Write};

use prem_memsim::{CacheConfig, LineAddr, Policy};

use crate::event::{kind_code, kind_from_code, phase_code, phase_from_code, TraceEvent};

/// File magic: the first four bytes of every trace.
pub const MAGIC: [u8; 4] = *b"PRTC";
/// Format version this crate writes and reads.
pub const VERSION: u8 = 1;
/// Maximum encoded label length. The writer truncates longer labels at a
/// character boundary; the reader rejects anything beyond this as corrupt
/// — the two sides enforce the same cap so every written trace decodes.
pub const MAX_LABEL_BYTES: usize = 4096;

/// Event codes (low 3 bits of the tag byte).
const CODE_ACCESS: u8 = 0;
const CODE_FILL: u8 = 1;
const CODE_EVICT: u8 = 2;
const CODE_WRITEBACK: u8 = 3;
const CODE_INTERVAL: u8 = 4;
const CODE_PHASE: u8 = 5;
const CODE_DRAM: u8 = 6;
const CODE_END: u8 = 7;

/// Everything needed to rebuild the captured cache for replay: the full
/// [`CacheConfig`] (geometry, policy, index hashing and the *effective*
/// RNG seed of the timed run) plus a human-readable label naming the
/// captured workload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceHeader {
    /// Workload label, e.g. `bicg(512x512)`. Labels longer than
    /// [`MAX_LABEL_BYTES`] are truncated (at a character boundary) when
    /// encoded.
    pub label: String,
    /// The captured cache configuration (policy and seed included).
    pub cache: CacheConfig,
}

fn write_varint<W: Write>(w: &mut W, mut v: u64) -> io::Result<()> {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

fn read_u8<R: Read>(r: &mut R) -> io::Result<u8> {
    let mut buf = [0u8; 1];
    r.read_exact(&mut buf)?;
    Ok(buf[0])
}

fn read_varint<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = read_u8(r)?;
        if shift >= 64 || (shift == 63 && byte > 1) {
            return Err(bad_data("varint overflows u64"));
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(z: u64) -> i64 {
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

fn bad_data(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn policy_tag(policy: &Policy) -> u8 {
    match policy {
        Policy::Lru => 0,
        Policy::Fifo => 1,
        Policy::PseudoLru => 2,
        Policy::Random => 3,
        Policy::BiasedRandom { .. } => 4,
        Policy::Nmru => 5,
        Policy::Srrip => 6,
    }
}

fn write_header<W: Write>(w: &mut W, header: &TraceHeader) -> io::Result<()> {
    w.write_all(&MAGIC)?;
    w.write_all(&[VERSION])?;
    let mut label = header.label.as_str();
    if label.len() > MAX_LABEL_BYTES {
        let mut end = MAX_LABEL_BYTES;
        while !label.is_char_boundary(end) {
            end -= 1;
        }
        label = &label[..end];
    }
    write_varint(w, label.len() as u64)?;
    w.write_all(label.as_bytes())?;
    let c = &header.cache;
    write_varint(w, c.size_bytes() as u64)?;
    write_varint(w, c.ways() as u64)?;
    write_varint(w, c.line_bytes() as u64)?;
    w.write_all(&[u8::from(c.has_index_hash())])?;
    write_varint(w, c.seed_value())?;
    let policy = c.policy_ref();
    w.write_all(&[policy_tag(policy)])?;
    if let Policy::BiasedRandom { weights } = policy {
        write_varint(w, weights.len() as u64)?;
        for &weight in weights {
            write_varint(w, u64::from(weight))?;
        }
    }
    Ok(())
}

fn read_header<R: Read>(r: &mut R) -> io::Result<TraceHeader> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(bad_data("not a PREM trace (bad magic)"));
    }
    let version = read_u8(r)?;
    if version != VERSION {
        return Err(bad_data("unsupported trace version"));
    }
    let label_len = read_varint(r)? as usize;
    if label_len > MAX_LABEL_BYTES {
        return Err(bad_data("unreasonable label length"));
    }
    let mut label = vec![0u8; label_len];
    r.read_exact(&mut label)?;
    let label = String::from_utf8(label).map_err(|_| bad_data("label is not UTF-8"))?;
    let size_bytes = read_varint(r)? as usize;
    let ways = read_varint(r)? as usize;
    let line_bytes = read_varint(r)? as usize;
    let index_hash = read_u8(r)? != 0;
    let seed = read_varint(r)?;
    let policy = match read_u8(r)? {
        0 => Policy::Lru,
        1 => Policy::Fifo,
        2 => Policy::PseudoLru,
        3 => Policy::Random,
        4 => {
            let n = read_varint(r)? as usize;
            if n == 0 || n > 1024 {
                return Err(bad_data("unreasonable weight count"));
            }
            let mut weights = Vec::with_capacity(n);
            for _ in 0..n {
                let weight = read_varint(r)?;
                let weight = u32::try_from(weight).map_err(|_| bad_data("weight overflows u32"))?;
                weights.push(weight);
            }
            Policy::BiasedRandom { weights }
        }
        5 => Policy::Nmru,
        6 => Policy::Srrip,
        _ => return Err(bad_data("unknown policy tag")),
    };
    let cache = CacheConfig::new(size_bytes, ways, line_bytes)
        .policy(policy)
        .seed(seed)
        .index_hash(index_hash);
    // Reject corrupt geometry here, at the untrusted boundary, instead
    // of letting Cache::new panic (or set_index mis-mask) downstream.
    cache
        .validate()
        .map_err(|e| bad_data(&format!("invalid cache geometry in header: {e}")))?;
    Ok(TraceHeader { label, cache })
}

/// Streamed trace encoder over any [`Write`].
///
/// Events are encoded incrementally ([`TraceWriter::emit`]); the stream is
/// only complete once [`TraceWriter::finish`] has appended the end marker
/// and event count.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    w: W,
    prev_line: u64,
    prev_ts: u64,
    count: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Starts a trace on `w`, writing the header immediately.
    ///
    /// # Errors
    ///
    /// Any I/O error from the underlying writer.
    pub fn new(mut w: W, header: &TraceHeader) -> io::Result<Self> {
        write_header(&mut w, header)?;
        Ok(TraceWriter {
            w,
            prev_line: 0,
            prev_ts: 0,
            count: 0,
        })
    }

    fn line_delta(&mut self, line: LineAddr) -> u64 {
        let delta = zigzag(line.raw().wrapping_sub(self.prev_line) as i64);
        self.prev_line = line.raw();
        delta
    }

    fn ts_delta(&mut self, ts: u64) -> u64 {
        let delta = ts.wrapping_sub(self.prev_ts);
        self.prev_ts = ts;
        delta
    }

    /// Appends one event.
    ///
    /// # Errors
    ///
    /// Any I/O error from the underlying writer.
    pub fn emit(&mut self, event: &TraceEvent) -> io::Result<()> {
        self.count += 1;
        match *event {
            TraceEvent::Access {
                ts,
                line,
                kind,
                phase,
                hit,
            } => {
                let payload = kind_code(kind) | (phase_code(phase) << 2) | (u8::from(hit) << 4);
                self.w.write_all(&[CODE_ACCESS | (payload << 3)])?;
                let line = self.line_delta(line);
                write_varint(&mut self.w, line)?;
                let ts = self.ts_delta(ts);
                write_varint(&mut self.w, ts)
            }
            TraceEvent::Fill { line, way } => {
                self.w.write_all(&[CODE_FILL])?;
                let line = self.line_delta(line);
                write_varint(&mut self.w, line)?;
                write_varint(&mut self.w, u64::from(way))
            }
            TraceEvent::Evict {
                line,
                alive,
                dirty,
                foreign,
                by,
            } => {
                let payload = u8::from(alive)
                    | (u8::from(dirty) << 1)
                    | (u8::from(foreign) << 2)
                    | (phase_code(by) << 3);
                self.w.write_all(&[CODE_EVICT | (payload << 3)])?;
                let line = self.line_delta(line);
                write_varint(&mut self.w, line)
            }
            TraceEvent::Writeback { line } => {
                self.w.write_all(&[CODE_WRITEBACK])?;
                let line = self.line_delta(line);
                write_varint(&mut self.w, line)
            }
            TraceEvent::IntervalBegin => self.w.write_all(&[CODE_INTERVAL]),
            TraceEvent::PhaseBegin { ts, phase } => {
                self.w.write_all(&[CODE_PHASE | (phase_code(phase) << 3)])?;
                let ts = self.ts_delta(ts);
                write_varint(&mut self.w, ts)
            }
            TraceEvent::DramTransfer { ts, line, write } => {
                self.w.write_all(&[CODE_DRAM | (u8::from(write) << 3)])?;
                let line = self.line_delta(line);
                write_varint(&mut self.w, line)?;
                let ts = self.ts_delta(ts);
                write_varint(&mut self.w, ts)
            }
        }
    }

    /// Writes the end marker + event count and returns the inner writer.
    ///
    /// # Errors
    ///
    /// Any I/O error from the underlying writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.w.write_all(&[CODE_END])?;
        write_varint(&mut self.w, self.count)?;
        Ok(self.w)
    }
}

/// Streamed trace decoder over any [`Read`], yielding events as an
/// iterator.
///
/// The iterator ends (`None`) only after a valid end marker whose event
/// count matches; truncated or corrupt input yields an `Err` item instead.
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    r: R,
    header: TraceHeader,
    prev_line: u64,
    prev_ts: u64,
    count: u64,
    state: ReaderState,
}

#[derive(Debug, PartialEq, Eq)]
enum ReaderState {
    Streaming,
    Done,
    Failed,
}

impl<R: Read> TraceReader<R> {
    /// Opens a trace, reading and validating the header.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::InvalidData`] on bad magic/version/header fields,
    /// or any I/O error from the underlying reader.
    pub fn new(mut r: R) -> io::Result<Self> {
        let header = read_header(&mut r)?;
        Ok(TraceReader {
            r,
            header,
            prev_line: 0,
            prev_ts: 0,
            count: 0,
            state: ReaderState::Streaming,
        })
    }

    /// The decoded header.
    pub fn header(&self) -> &TraceHeader {
        &self.header
    }

    fn read_line(&mut self) -> io::Result<LineAddr> {
        let delta = unzigzag(read_varint(&mut self.r)?);
        self.prev_line = self.prev_line.wrapping_add(delta as u64);
        Ok(LineAddr::new(self.prev_line))
    }

    fn read_ts(&mut self) -> io::Result<u64> {
        let delta = read_varint(&mut self.r)?;
        self.prev_ts = self.prev_ts.wrapping_add(delta);
        Ok(self.prev_ts)
    }

    fn next_event(&mut self) -> io::Result<Option<TraceEvent>> {
        let tag = read_u8(&mut self.r)?;
        let payload = tag >> 3;
        let event = match tag & 0x07 {
            CODE_ACCESS => {
                let kind = kind_from_code(payload & 3)
                    .ok_or_else(|| bad_data("unassigned access kind"))?;
                let phase = phase_from_code((payload >> 2) & 3);
                let hit = payload & 0x10 != 0;
                let line = self.read_line()?;
                let ts = self.read_ts()?;
                TraceEvent::Access {
                    ts,
                    line,
                    kind,
                    phase,
                    hit,
                }
            }
            CODE_FILL => {
                let line = self.read_line()?;
                let way = read_varint(&mut self.r)?;
                let way = u32::try_from(way).map_err(|_| bad_data("way overflows u32"))?;
                TraceEvent::Fill { line, way }
            }
            CODE_EVICT => {
                let line = self.read_line()?;
                TraceEvent::Evict {
                    line,
                    alive: payload & 1 != 0,
                    dirty: payload & 2 != 0,
                    foreign: payload & 4 != 0,
                    by: phase_from_code((payload >> 3) & 3),
                }
            }
            CODE_WRITEBACK => {
                let line = self.read_line()?;
                TraceEvent::Writeback { line }
            }
            CODE_INTERVAL => TraceEvent::IntervalBegin,
            CODE_PHASE => {
                let ts = self.read_ts()?;
                TraceEvent::PhaseBegin {
                    ts,
                    phase: phase_from_code(payload & 3),
                }
            }
            CODE_DRAM => {
                let line = self.read_line()?;
                let ts = self.read_ts()?;
                TraceEvent::DramTransfer {
                    ts,
                    line,
                    write: payload & 1 != 0,
                }
            }
            _ => {
                // CODE_END: validate the trailer and stop.
                let declared = read_varint(&mut self.r)?;
                if declared != self.count {
                    return Err(bad_data("event count mismatch at end marker"));
                }
                return Ok(None);
            }
        };
        self.count += 1;
        Ok(Some(event))
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = io::Result<TraceEvent>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.state != ReaderState::Streaming {
            return None;
        }
        match self.next_event() {
            Ok(Some(event)) => Some(Ok(event)),
            Ok(None) => {
                self.state = ReaderState::Done;
                None
            }
            Err(e) => {
                self.state = ReaderState::Failed;
                Some(Err(e))
            }
        }
    }
}

/// An in-memory trace: header + decoded events.
#[derive(Clone, Debug, PartialEq)]
pub struct Trace {
    /// The capture header.
    pub header: TraceHeader,
    /// All events, in capture order.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Encodes the whole trace into a byte vector.
    pub fn encode(&self) -> Vec<u8> {
        let mut writer =
            TraceWriter::new(Vec::new(), &self.header).expect("writing to a Vec cannot fail");
        for event in &self.events {
            writer.emit(event).expect("writing to a Vec cannot fail");
        }
        writer.finish().expect("writing to a Vec cannot fail")
    }

    /// Decodes a trace from any reader.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::InvalidData`] on corrupt input,
    /// [`io::ErrorKind::UnexpectedEof`] on truncation, or any I/O error
    /// from the underlying reader.
    pub fn read_from<R: Read>(r: R) -> io::Result<Trace> {
        let mut reader = TraceReader::new(r)?;
        let mut events = Vec::new();
        for event in &mut reader {
            events.push(event?);
        }
        Ok(Trace {
            header: reader.header.clone(),
            events,
        })
    }

    /// Decodes a trace from a byte slice.
    ///
    /// # Errors
    ///
    /// As for [`Trace::read_from`].
    pub fn decode(bytes: &[u8]) -> io::Result<Trace> {
        Trace::read_from(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prem_memsim::{AccessKind, Phase, KIB};

    fn header() -> TraceHeader {
        TraceHeader {
            label: "unit".into(),
            cache: CacheConfig::new(256 * KIB, 4, 128)
                .policy(Policy::nvidia_tegra())
                .seed(11)
                .index_hash(true),
        }
    }

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::IntervalBegin,
            TraceEvent::PhaseBegin {
                ts: 40,
                phase: Phase::MPhase,
            },
            TraceEvent::Access {
                ts: 41,
                line: LineAddr::new(100),
                kind: AccessKind::Prefetch,
                phase: Phase::MPhase,
                hit: false,
            },
            TraceEvent::Evict {
                line: LineAddr::new(36),
                alive: true,
                dirty: true,
                foreign: false,
                by: Phase::MPhase,
            },
            TraceEvent::Writeback {
                line: LineAddr::new(36),
            },
            TraceEvent::Fill {
                line: LineAddr::new(100),
                way: 2,
            },
            TraceEvent::DramTransfer {
                ts: 50,
                line: LineAddr::new(7),
                write: true,
            },
            TraceEvent::Access {
                ts: 60,
                line: LineAddr::new(101),
                kind: AccessKind::Read,
                phase: Phase::CPhase,
                hit: true,
            },
        ]
    }

    #[test]
    fn roundtrip_preserves_header_and_events() {
        let trace = Trace {
            header: header(),
            events: sample_events(),
        };
        let bytes = trace.encode();
        let back = Trace::decode(&bytes).expect("decode");
        assert_eq!(back, trace);
    }

    #[test]
    fn sequential_lines_encode_compactly() {
        // 1000 sequential prefetches at a constant stride: tag + 1-byte
        // line delta + 1-byte ts delta = 3 bytes per event, plus
        // header/trailer slack.
        let events: Vec<TraceEvent> = (0..1000u64)
            .map(|i| TraceEvent::Access {
                ts: 40 + 30 * i,
                line: LineAddr::new(512 + i),
                kind: AccessKind::Prefetch,
                phase: Phase::MPhase,
                hit: false,
            })
            .collect();
        let trace = Trace {
            header: header(),
            events,
        };
        let bytes = trace.encode();
        assert!(bytes.len() < 3 * 1000 + 64, "encoded {} bytes", bytes.len());
        assert_eq!(Trace::decode(&bytes).expect("decode"), trace);
    }

    #[test]
    fn truncation_is_an_error_not_a_short_trace() {
        let trace = Trace {
            header: header(),
            events: sample_events(),
        };
        let bytes = trace.encode();
        let err = Trace::decode(&bytes[..bytes.len() - 1]).expect_err("truncated");
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn overlong_labels_are_truncated_not_unreadable() {
        let trace = Trace {
            header: TraceHeader {
                label: "€".repeat(2000), // 6000 bytes; 4096 falls mid-char
                cache: CacheConfig::new(1024, 2, 64),
            },
            events: sample_events(),
        };
        let back = Trace::decode(&trace.encode()).expect("truncated label must decode");
        assert!(back.header.label.len() <= MAX_LABEL_BYTES);
        assert!(trace.header.label.starts_with(&back.header.label));
        assert_eq!(back.events, trace.events);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = Trace {
            header: header(),
            events: vec![],
        }
        .encode();
        bytes[0] = b'X';
        let err = Trace::decode(&bytes).expect_err("bad magic");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn miscounted_trailer_is_rejected() {
        let header = header();
        let mut w = TraceWriter::new(Vec::new(), &header).unwrap();
        w.emit(&TraceEvent::IntervalBegin).unwrap();
        // Forge a trailer declaring two events.
        let mut bytes = w.w;
        bytes.push(CODE_END);
        bytes.push(2);
        let err = Trace::decode(&bytes).expect_err("count mismatch");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn all_policies_roundtrip_in_header() {
        for policy in [
            Policy::Lru,
            Policy::Fifo,
            Policy::PseudoLru,
            Policy::Random,
            Policy::nvidia_like(8),
            Policy::Nmru,
            Policy::Srrip,
        ] {
            let trace = Trace {
                header: TraceHeader {
                    label: format!("p-{}", policy.name()),
                    cache: CacheConfig::new(64 * KIB, 8, 128).policy(policy).seed(3),
                },
                events: vec![],
            };
            assert_eq!(Trace::decode(&trace.encode()).expect("decode"), trace);
        }
    }

    #[test]
    fn streamed_reader_yields_header_first() {
        let trace = Trace {
            header: header(),
            events: sample_events(),
        };
        let bytes = trace.encode();
        let reader = TraceReader::new(&bytes[..]).expect("open");
        assert_eq!(reader.header(), &trace.header);
        let events: Vec<TraceEvent> = reader.map(|e| e.expect("event")).collect();
        assert_eq!(events, trace.events);
    }
}
