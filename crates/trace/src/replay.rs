//! The trace-driven replay engine.
//!
//! A captured trace contains the full LLC input stream of a timed PREM
//! run: every access (demand, prefetch, unmanaged noise *and* co-runner
//! pollution) in issue order plus the interval boundaries that drive
//! self-eviction epochs. Replaying that stream against a cold cache built
//! from the captured header reproduces the live run's [`CacheStats`]
//! **field-for-field** — asserted by the property suite and the
//! `trace_policy_replay` artifact — because victim selection depends only
//! on replacement state reconstructed by the stream itself and on the RNG
//! stream, which the header's seed pins.
//!
//! The payoff is the fan-out: any [`CacheConfig`] × [`Policy`] what-if
//! over the same access stream is a replay instead of a re-execution —
//! no profiling pass, no cost model, no budget machinery — which is what
//! makes wide policy sweeps cheap ([`policy_sweep`] runs them on the
//! scenario-matrix thread pool).

use prem_harness::parallel_map;
use prem_memsim::rng::Rng;
use prem_memsim::{AccessCounts, Cache, CacheConfig, CacheStats, Policy, Replacer};

use crate::event::{kind_code, phase_code, TraceEvent};
use crate::format::Trace;

/// Replays `events` against a cold cache built from `cfg`, returning the
/// final statistics.
///
/// Only input events ([`TraceEvent::Access`], [`TraceEvent::IntervalBegin`])
/// drive the cache; recorded outcomes (fills, evictions, writebacks) are
/// ignored — replay re-derives them under whatever configuration it is
/// given.
///
/// # Panics
///
/// Panics if `cfg` is invalid, as [`Cache::new`] does.
pub fn replay_events(events: &[TraceEvent], cfg: CacheConfig) -> CacheStats {
    let mut cache = Cache::new(cfg);
    for event in events {
        match *event {
            TraceEvent::Access {
                line, kind, phase, ..
            } => {
                cache.access(line, kind, phase);
            }
            TraceEvent::IntervalBegin => cache.begin_interval(),
            _ => {}
        }
    }
    cache.stats().clone()
}

/// Replays a trace under its own captured configuration.
///
/// The replay-equivalence contract: this equals the live run's
/// [`CacheStats`] exactly.
pub fn replay_captured(trace: &Trace) -> CacheStats {
    replay_events(&trace.events, trace.header.cache.clone())
}

/// Replays a trace under the captured geometry with a different
/// replacement policy (the policy must drive the captured way count).
pub fn replay_with_policy(trace: &Trace, policy: Policy) -> CacheStats {
    replay_events(&trace.events, trace.header.cache.clone().policy(policy))
}

/// A trace pre-compiled for the replay fast path: the input events
/// reduced to flat `(line, metadata)` pairs with the set index — the only
/// per-access address computation — resolved once and amortized across
/// every replay of the stream.
///
/// Compilation fixes the geometry (sets/ways/line size/index hashing);
/// [`CompiledStream::replay`] then varies policy and seed freely. The
/// replacement state machine and RNG are the very same `prem-memsim`
/// types the live [`Cache`] runs on, so replayed statistics are
/// bit-exact by construction, not by reimplementation — asserted against
/// both the event-level replay and live re-execution by the test suite.
#[derive(Clone, Debug)]
pub struct CompiledStream {
    geometry: CacheConfig,
    /// Dense line IDs of access ops (see [`CompiledStream::compile`];
    /// meaningless for interval markers).
    lines: Vec<u32>,
    /// `set << 5 | kind << 3 | phase << 1 | interval_marker`.
    meta: Vec<u32>,
}

impl CompiledStream {
    /// Compiles the input events of `trace` under its captured geometry.
    ///
    /// Besides resolving set indices, compilation renames every distinct
    /// line to a dense ID ≥ 1 — tag arrays in the replay loop become
    /// `u32` with 0 as the invalid sentinel, so a whole 4-way set's tags
    /// fit in one 16-byte probe and no separate valid bitmap is needed.
    ///
    /// # Panics
    ///
    /// Panics if the trace touches ≥ `u32::MAX` distinct lines (a
    /// physically impossible capture).
    pub fn compile(trace: &Trace) -> CompiledStream {
        let cfg = &trace.header.cache;
        let mut lines = Vec::with_capacity(trace.events.len());
        let mut meta = Vec::with_capacity(trace.events.len());
        // Compilation runs once per sweep but still walks every event;
        // a multiply-xor hasher (FxHash-style) keeps the line-renaming
        // map off the SipHash slow path.
        let mut ids: std::collections::HashMap<u64, u32, BuildLineHasher> =
            std::collections::HashMap::default();
        for event in &trace.events {
            match *event {
                TraceEvent::Access {
                    line, kind, phase, ..
                } => {
                    let next = ids.len() as u32 + 1;
                    assert!(next != u32::MAX, "trace touches too many distinct lines");
                    let id = *ids.entry(line.raw()).or_insert(next);
                    lines.push(id);
                    meta.push(
                        (cfg.set_index(line) as u32) << 5
                            | u32::from(kind_code(kind)) << 3
                            | u32::from(phase_code(phase)) << 1,
                    );
                }
                TraceEvent::IntervalBegin => {
                    lines.push(0);
                    meta.push(1);
                }
                _ => {}
            }
        }
        CompiledStream {
            geometry: cfg.clone(),
            lines,
            meta,
        }
    }

    /// The captured geometry the stream was compiled against.
    pub fn geometry(&self) -> &CacheConfig {
        &self.geometry
    }

    /// Replays the compiled stream under `policy` and `seed`, returning
    /// the statistics a live run with that policy/seed would produce.
    ///
    /// This is the hot path of policy sweeps: a flat-array mirror of
    /// [`Cache::access`] (same probe order, same invalid-way preference,
    /// same [`Replacer`]/[`Rng`] state machines) without outcome
    /// construction, per-access set hashing or cost-model work.
    ///
    /// # Panics
    ///
    /// Panics if `policy` cannot drive the captured way count.
    pub fn replay(&self, policy: Policy, seed: u64) -> CacheStats {
        let sets = self.geometry.sets();
        let ways = self.geometry.ways();
        let slots = sets * ways;
        let mut replacer = Replacer::new(policy, sets, ways);
        let mut rng = Rng::seed_from_u64(seed);
        // Tag = dense line ID; 0 is the invalid sentinel (IDs start at 1).
        let mut tags = vec![0u32; slots];
        // Bit 0: dirty, bit 1: foreign (co-runner-owned).
        let mut flags = vec![0u8; slots];
        let mut fill_epoch = vec![0u32; slots];
        let mut epoch = 1u32;
        // Hit/miss counters indexed by phase code, folded into CacheStats
        // at the end.
        let mut hits = [0u64; 4];
        let mut misses = [0u64; 4];
        let mut stats = CacheStats::default();

        for (&line, &m) in self.lines.iter().zip(&self.meta) {
            if m & 1 != 0 {
                epoch += 1;
                continue;
            }
            let set = (m >> 5) as usize;
            let kind = (m >> 3) & 3;
            let phase = ((m >> 1) & 3) as usize;
            let base = set * ways;
            let set_tags = &mut tags[base..base + ways];

            if let Some(way) = set_tags.iter().position(|&t| t == line) {
                hits[phase] += 1;
                if kind == 1 {
                    flags[base + way] |= 1;
                }
                replacer.on_access(set, way);
                continue;
            }

            misses[phase] += 1;
            let fill = match set_tags.iter().position(|&t| t == 0) {
                Some(w) => w,
                None => {
                    let w = replacer.victim(set, &mut rng);
                    let alive = fill_epoch[base + w] == epoch;
                    stats.evictions += 1;
                    if alive && flags[base + w] & 2 == 0 {
                        if phase == 3 {
                            stats.corunner_evictions += 1;
                        } else {
                            stats.self_evictions += 1;
                        }
                    }
                    if flags[base + w] & 1 != 0 {
                        stats.writebacks += 1;
                    }
                    w
                }
            };
            tags[base + fill] = line;
            flags[base + fill] = u8::from(kind == 1) | (u8::from(phase == 3) << 1);
            fill_epoch[base + fill] = epoch;
            replacer.on_fill(set, fill);
        }

        stats.m_phase = counts(hits[0], misses[0]);
        stats.c_phase = counts(hits[1], misses[1]);
        stats.unphased = counts(hits[2], misses[2]);
        stats.corunner = counts(hits[3], misses[3]);
        stats
    }
}

fn counts(hits: u64, misses: u64) -> AccessCounts {
    AccessCounts { hits, misses }
}

/// Multiply-xor hasher for the compile-time line-renaming map: line
/// numbers are already well-distributed, so one multiplication beats the
/// default DoS-resistant hasher by a wide margin.
#[derive(Default)]
struct LineHasher(u64);

type BuildLineHasher = std::hash::BuildHasherDefault<LineHasher>;

impl std::hash::Hasher for LineHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x517c_c1b7_2722_0a95);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(0x517c_c1b7_2722_0a95);
    }
}

/// One result of a policy fan-out.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PolicyReplay {
    /// Short policy name (as in reports).
    pub name: String,
    /// Replayed statistics.
    pub stats: CacheStats,
}

/// Fans one captured stream out across `policies` on the scenario-matrix
/// thread pool, returning results in input order (deterministic at any
/// worker count, like every pool user). Compiles the stream once and
/// replays it through the [`CompiledStream`] fast path under the captured
/// seed.
pub fn policy_sweep(
    trace: &Trace,
    policies: &[(String, Policy)],
    workers: usize,
) -> Vec<PolicyReplay> {
    let compiled = CompiledStream::compile(trace);
    let seed = trace.header.cache.seed_value();
    parallel_map(workers, policies, |(name, policy)| PolicyReplay {
        name: name.clone(),
        stats: compiled.replay(policy.clone(), seed),
    })
}

/// The default policy axis for replay sweeps on a `ways`-way cache: the
/// vendor biased-random policy plus every deterministic and randomized
/// alternative the simulator models.
pub fn default_policy_axis(ways: usize) -> Vec<(String, Policy)> {
    vec![
        ("biased".into(), Policy::nvidia_like(ways)),
        ("lru".into(), Policy::Lru),
        ("fifo".into(), Policy::Fifo),
        ("plru".into(), Policy::PseudoLru),
        ("nmru".into(), Policy::Nmru),
        ("srrip".into(), Policy::Srrip),
        ("random".into(), Policy::Random),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::capture_llc;
    use prem_gpusim::Scenario;
    use prem_kernels::Bicg;
    use prem_memsim::KIB;

    #[test]
    fn replay_reproduces_live_stats_bit_exactly() {
        let (run, trace) = capture_llc(&Bicg::new(128, 128), 32 * KIB, 8, 11, Scenario::Isolation);
        assert_eq!(replay_captured(&trace), run.llc);
    }

    #[test]
    fn compiled_fast_path_equals_event_replay_for_every_policy_and_seed() {
        let (run, trace) = capture_llc(&Bicg::new(320, 320), 32 * KIB, 4, 11, Scenario::Isolation);
        let compiled = CompiledStream::compile(&trace);
        // Captured config through the fast path reproduces the live run.
        assert_eq!(
            compiled.replay(
                trace.header.cache.policy_ref().clone(),
                trace.header.cache.seed_value()
            ),
            run.llc
        );
        // Any policy/seed: fast path ≡ event-level replay through Cache.
        for (_, policy) in default_policy_axis(trace.header.cache.ways()) {
            for seed in [11u64, 23, 47] {
                let via_cache = replay_events(
                    &trace.events,
                    trace.header.cache.clone().policy(policy.clone()).seed(seed),
                );
                assert_eq!(
                    compiled.replay(policy.clone(), seed),
                    via_cache,
                    "fast path diverged for {} / seed {seed}",
                    policy.name()
                );
            }
        }
    }

    #[test]
    fn compiled_fast_path_handles_corunner_pollution() {
        // The interference *preset* is bus-only (membombs); foreign-line
        // bookkeeping in the fast path only runs under cache-thrashing
        // co-runners, so capture one of those mixes explicitly.
        use crate::capture::capture_prem;
        use prem_gpusim::{CorunnerProfile, PlatformConfig};
        use prem_kernels::Kernel;
        let kernel = Bicg::new(192, 192);
        let intervals = kernel.intervals(32 * KIB).expect("tiling");
        let cfg = prem_report::llc_prem_config(4, 11);
        let mut platform = PlatformConfig::tx1()
            .llc_seed(11)
            .with_corunners(vec![CorunnerProfile::CacheThrash; 2])
            .build();
        let (run, trace) = capture_prem(
            &mut platform,
            &intervals,
            &cfg,
            Scenario::Corunners,
            "bicg-thrash",
        )
        .expect("capture");
        assert!(
            run.llc.corunner.total() > 0,
            "thrashers injected no traffic — the test is vacuous"
        );
        let compiled = CompiledStream::compile(&trace);
        assert_eq!(
            compiled.replay(trace.header.cache.policy_ref().clone(), 11),
            run.llc
        );
        for (_, policy) in default_policy_axis(trace.header.cache.ways()) {
            let via_cache = replay_events(
                &trace.events,
                trace.header.cache.clone().policy(policy.clone()),
            );
            assert_eq!(
                compiled.replay(policy.clone(), 11),
                via_cache,
                "fast path diverged under pollution for {}",
                policy.name()
            );
        }
    }

    #[test]
    fn replay_reproduces_live_stats_under_interference() {
        let (run, trace) = capture_llc(
            &Bicg::new(128, 128),
            32 * KIB,
            8,
            23,
            Scenario::Interference,
        );
        assert_eq!(replay_captured(&trace), run.llc);
    }

    #[test]
    fn replay_survives_a_format_roundtrip() {
        let (run, trace) = capture_llc(&Bicg::new(128, 128), 32 * KIB, 4, 47, Scenario::Isolation);
        let decoded = Trace::decode(&trace.encode()).expect("decode");
        assert_eq!(replay_captured(&decoded), run.llc);
    }

    #[test]
    fn policy_sweep_is_deterministic_and_ordered() {
        // Large enough that the footprint overflows the 256 KiB TX1 LLC,
        // so eviction behavior — where policies differ — is exercised.
        let (_, trace) = capture_llc(&Bicg::new(320, 320), 32 * KIB, 2, 11, Scenario::Isolation);
        let axis = default_policy_axis(trace.header.cache.ways());
        let one = policy_sweep(&trace, &axis, 1);
        let many = policy_sweep(&trace, &axis, 4);
        assert_eq!(one, many);
        assert_eq!(
            one.iter().map(|r| r.name.as_str()).collect::<Vec<_>>(),
            axis.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>()
        );
        // LRU never self-evicts more than the biased policy on a stream
        // the paper's prefetch discipline already tamed; at minimum the
        // sweep must produce differing stats for differing policies
        // somewhere, proving the axis is actually exercised.
        assert!(
            one.iter().any(|r| r.stats != one[0].stats),
            "all policies produced identical stats — sweep is vacuous"
        );
    }
}
