//! Shared live-vs-replay comparison harness for equivalence suites.
//!
//! Every replay-equivalence test in the workspace — the trace crate's
//! replay suite and roundtrip proptests, and the harness's plan-replay
//! suite — reduces to the same three comparisons: capture a live run and
//! replay it (optionally across a format round-trip), re-execute live
//! under a what-if policy and compare to a policy replay, or run a plan
//! through replay-enabled and replay-disabled executors and compare
//! every served output. These helpers single-source those comparisons so
//! each suite asserts the *contract* instead of re-rolling the plumbing.
//!
//! This module is test support, not simulator surface: it lives in the
//! library only because integration tests in several crates share it.

use prem_core::{run_prem, LocalStore, NoiseModel, PrefetchStrategy, PremConfig, RunOutput};
use prem_gpusim::{PlatformConfig, Scenario};
use prem_harness::{PlanExecutor, RunRequest, RunSource};
use prem_kernels::Kernel;
use prem_memsim::{CacheStats, Policy};

use crate::{capture_llc, replay_captured, replay_with_policy, Trace};

/// The three stat views of one captured run: live, replayed in memory,
/// and replayed after an encode/decode round-trip. Equivalence suites
/// assert all three equal.
#[derive(Clone, Debug, PartialEq)]
pub struct LiveVsReplay {
    /// The live run's LLC statistics.
    pub live: CacheStats,
    /// Statistics reproduced by replaying the in-memory capture.
    pub replayed: CacheStats,
    /// Statistics reproduced after encoding and decoding the capture.
    pub reencoded: CacheStats,
}

impl LiveVsReplay {
    /// Whether replay reproduced the live statistics on both paths.
    pub fn bit_exact(&self) -> bool {
        self.live == self.replayed && self.live == self.reencoded
    }
}

/// Captures `kernel` live (LLC-PREM, `r` prefetch repetitions) and
/// replays the trace both in memory and across a format round-trip.
pub fn live_vs_replay(
    kernel: &dyn Kernel,
    t_bytes: usize,
    r: u32,
    seed: u64,
    scenario: Scenario,
) -> LiveVsReplay {
    let (live, trace) = capture_llc(kernel, t_bytes, r, seed, scenario);
    let replayed = replay_captured(&trace);
    let decoded = Trace::decode(&trace.encode()).expect("capture must round-trip");
    let reencoded = replay_captured(&decoded);
    LiveVsReplay {
        live: live.llc,
        replayed,
        reencoded,
    }
}

/// The policy what-if pair: (replayed, live) LLC statistics of `kernel`
/// under `policy` — the replayed side derived from a capture under the
/// *platform default* policy, the live side a full re-execution with the
/// policy installed. The access stream is policy-independent (fixed
/// prefetch repetition), so the two must agree exactly.
pub fn policy_whatif_pair(
    kernel: &dyn Kernel,
    t_bytes: usize,
    r: u32,
    seed: u64,
    policy: Policy,
) -> (CacheStats, CacheStats) {
    let (_, trace) = capture_llc(kernel, t_bytes, r, seed, Scenario::Isolation);
    let replayed = replay_with_policy(&trace, policy.clone());

    let intervals = kernel.intervals(t_bytes).expect("tiling");
    let cfg = PremConfig {
        store: LocalStore::Llc {
            prefetch: PrefetchStrategy::Repeated { r },
        },
        ..PremConfig::llc_tamed()
    }
    .with_seed(seed)
    .with_noise(NoiseModel::tx1());
    let mut platform = PlatformConfig::tx1()
        .llc_policy(policy)
        .llc_seed(seed)
        .build();
    let live = run_prem(&mut platform, &intervals, &cfg, Scenario::Isolation).expect("prem run");
    (replayed, live.llc)
}

/// Executes `requests` through a replay-enabled and a replay-disabled
/// [`PlanExecutor`] and returns the two output vectors, in request
/// order, after asserting the plan shapes agree (same dedup, replay only
/// re-labels how the unique frontier was satisfied). Callers assert the
/// vectors equal — the plan layer's replay-transparency contract.
pub fn plan_outputs_replay_vs_live(
    requests: &[RunRequest<'_>],
    workers: usize,
) -> (Vec<RunOutput>, Vec<RunOutput>) {
    let replayed = PlanExecutor::new();
    let live = PlanExecutor::new().without_replay();
    let with = replayed.execute(requests, workers);
    let without = live.execute(requests, workers);
    assert_eq!(with.requested, without.requested);
    assert_eq!(with.elided, without.elided);
    assert_eq!(
        with.executed + with.replayed,
        without.executed,
        "replay must only re-label frontier work, never add or drop any"
    );
    assert_eq!((without.replayed, without.families), (0, 0));
    (
        requests.iter().map(|r| replayed.output(r)).collect(),
        requests.iter().map(|r| live.output(r)).collect(),
    )
}
