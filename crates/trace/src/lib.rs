//! # prem-trace — cache-event capture, introspection and replay
//!
//! The simulator's answer to "what is the LLC *doing*?": the instrumentation
//! hooks in `prem-memsim`/`prem-gpusim`/`prem-core` ([`prem_memsim::TraceSink`])
//! stream every access, fill, eviction (with owner/alive/dirty attribution),
//! writeback, interval boundary and phase transition of a timed PREM run
//! into this crate, which provides:
//!
//! * **Capture** — [`CaptureSink`] / [`capture_prem`] / [`capture_llc`]
//!   record a run without perturbing it (the untraced path is the same
//!   monomorphized code with a no-op sink, pinned byte-identical by the
//!   golden suite).
//! * **A compact binary format** — delta-varint events behind a
//!   magic/version header ([`TraceWriter`], [`TraceReader`], [`Trace`]),
//!   with exact round-trip guarantees for arbitrary event sequences
//!   (property-tested) and ~3 bytes/event on real captures.
//! * **Analysis passes** — exact reuse-distance histograms
//!   ([`reuse_histogram`]), per-set heatmaps ([`per_set_stats`]),
//!   occupancy/working-set timelines ([`occupancy_timeline`]) and
//!   per-interval self-eviction attribution ([`self_eviction_timeline`]).
//! * **A trace-driven replay engine** — [`replay_captured`] reproduces the
//!   live run's [`prem_memsim::CacheStats`] **field-for-field** from the
//!   captured stream, and [`policy_sweep`] fans any
//!   `CacheConfig` × `Policy` what-if across the scenario-matrix thread
//!   pool at a fraction of a re-execution's cost (demonstrated by the
//!   `figures -- trace` artifact).
//!
//! ```
//! use prem_gpusim::Scenario;
//! use prem_kernels::Bicg;
//! use prem_memsim::KIB;
//! use prem_trace::{capture_llc, replay_captured, Trace};
//!
//! let (live, trace) = capture_llc(&Bicg::new(128, 128), 32 * KIB, 8, 11,
//!                                 Scenario::Isolation);
//! // Replay equivalence: the captured stream reproduces the live stats.
//! assert_eq!(replay_captured(&trace), live.llc);
//! // Round-trip guarantee: encode/decode is the identity.
//! assert_eq!(Trace::decode(&trace.encode()).unwrap(), trace);
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
pub mod artifacts;
mod capture;
mod event;
mod format;
mod replay;
pub mod testutil;

pub use analysis::{
    occupancy_timeline, per_set_stats, reuse_histogram, self_eviction_timeline,
    IntervalAttribution, ReuseHistogram, SetStats, TimelineSample,
};
pub use artifacts::{heatmap_table, quick_capture, reuse_table, trace_artifacts, TraceArtifacts};
pub use capture::{capture_llc, capture_prem, CaptureSink};
pub use event::TraceEvent;
pub use format::{Trace, TraceHeader, TraceReader, TraceWriter, MAGIC, MAX_LABEL_BYTES, VERSION};
pub use replay::{
    default_policy_axis, policy_sweep, replay_captured, replay_events, replay_with_policy,
    CompiledStream, PolicyReplay,
};
