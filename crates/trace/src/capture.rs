//! Recording sinks and end-to-end capture helpers.

use prem_core::{run_prem_traced, IntervalSpec, PremConfig, PremRun};
use prem_gpusim::{ExecError, Platform, Scenario};
use prem_kernels::Kernel;
use prem_memsim::{AccessKind, AccessOutcome, LineAddr, Phase, TraceSink};

use crate::event::TraceEvent;
use crate::format::{Trace, TraceHeader};

/// A [`TraceSink`] recording the full event stream in memory.
///
/// One [`TraceSink::on_access`] callback expands into up to four events,
/// in mechanism order: the access itself, the displaced victim (if any),
/// its writeback (if dirty), and the fill of the missed line.
#[derive(Clone, Debug, Default)]
pub struct CaptureSink {
    now: u64,
    events: Vec<TraceEvent>,
}

impl CaptureSink {
    /// An empty sink.
    pub fn new() -> Self {
        CaptureSink::default()
    }

    /// The events captured so far.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Consumes the sink, returning the captured events.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }
}

impl TraceSink for CaptureSink {
    fn on_access(
        &mut self,
        line: LineAddr,
        kind: AccessKind,
        phase: Phase,
        outcome: &AccessOutcome,
    ) {
        self.events.push(TraceEvent::Access {
            ts: self.now,
            line,
            kind,
            phase,
            hit: outcome.hit,
        });
        if let Some(ev) = outcome.evicted {
            self.events.push(TraceEvent::Evict {
                line: ev.line,
                alive: ev.alive,
                dirty: ev.dirty,
                foreign: ev.foreign,
                by: phase,
            });
            if ev.dirty {
                self.events.push(TraceEvent::Writeback { line: ev.line });
            }
        }
        if !outcome.hit {
            self.events.push(TraceEvent::Fill {
                line,
                way: outcome.way as u32,
            });
        }
    }

    fn on_interval(&mut self) {
        self.events.push(TraceEvent::IntervalBegin);
    }

    fn on_phase(&mut self, phase: Phase, cycles: f64) {
        // The transition also advances the sink clock, so traffic emitted
        // before the next op issue (co-runner pollution at a C-window
        // start) is stamped at the phase boundary.
        self.now = cycles as u64;
        self.events.push(TraceEvent::PhaseBegin {
            ts: self.now,
            phase,
        });
    }

    fn on_op_issue(&mut self, cycles: f64) {
        self.now = cycles as u64;
    }

    fn on_dram_transfer(&mut self, line: LineAddr, write: bool) {
        self.events.push(TraceEvent::DramTransfer {
            ts: self.now,
            line,
            write,
        });
    }
}

/// Runs PREM with capture enabled, returning the run and its trace.
///
/// The trace header records the LLC configuration with the **effective**
/// seed of the timed run (`cfg.seed` — [`prem_core::run_prem`] reseeds the
/// platform with it before the timed pass), which is exactly what the
/// replay engine needs to rebuild an equivalent cache.
///
/// # Errors
///
/// [`ExecError::Spm`] exactly as for [`prem_core::run_prem`].
pub fn capture_prem(
    platform: &mut Platform,
    intervals: &[IntervalSpec],
    cfg: &PremConfig,
    scenario: Scenario,
    label: impl Into<String>,
) -> Result<(PremRun, Trace), ExecError> {
    let mut sink = CaptureSink::new();
    let run = run_prem_traced(platform, intervals, cfg, scenario, &mut sink)?;
    let cache = platform.mem.llc().config().clone().seed(cfg.seed);
    Ok((
        run,
        Trace {
            header: TraceHeader {
                label: label.into(),
                cache,
            },
            events: sink.into_events(),
        },
    ))
}

/// Captures the standard LLC-PREM experiment configuration on the TX1
/// platform: interval size `t`, `r` prefetch repetitions, TX1 noise —
/// the traced twin of `prem_report::common::run_llc`, built from the
/// same shared config/platform builders and byte-identical in its
/// `PremRun` (pinned by the golden suite).
///
/// # Panics
///
/// Panics if the kernel cannot be tiled at `t`, like the experiment
/// runners it mirrors.
pub fn capture_llc(
    kernel: &dyn Kernel,
    t: usize,
    r: u32,
    seed: u64,
    scenario: Scenario,
) -> (PremRun, Trace) {
    let intervals = kernel
        .intervals(t)
        .unwrap_or_else(|e| panic!("{}: {e}", kernel.name()));
    let cfg = prem_report::llc_prem_config(r, seed);
    let mut platform = prem_report::llc_platform_config(seed).build();
    let label = format!("{}({})", kernel.name(), kernel.dims());
    capture_prem(&mut platform, &intervals, &cfg, scenario, label)
        .expect("llc prem capture cannot fail")
}

#[cfg(test)]
mod tests {
    use super::*;
    use prem_core::run_prem;
    use prem_gpusim::PlatformConfig;
    use prem_kernels::Bicg;
    use prem_memsim::KIB;

    #[test]
    fn capture_is_invisible_to_the_run() {
        let kernel = Bicg::new(128, 128);
        let intervals = kernel.intervals(32 * KIB).expect("tiling");
        let cfg = PremConfig::llc_tamed().with_seed(7);
        let mut p1 = PlatformConfig::tx1().build();
        let plain = run_prem(&mut p1, &intervals, &cfg, Scenario::Isolation).expect("plain");
        let mut p2 = PlatformConfig::tx1().build();
        let (captured, trace) =
            capture_prem(&mut p2, &intervals, &cfg, Scenario::Isolation, "bicg").expect("capture");
        assert_eq!(plain, captured, "capture perturbed the simulation");
        assert!(!trace.events.is_empty());
        // Every interval boundary and both phases of each interval appear.
        let intervals_seen = trace
            .events
            .iter()
            .filter(|e| matches!(e, TraceEvent::IntervalBegin))
            .count();
        assert_eq!(intervals_seen, captured.intervals);
        let phases = trace
            .events
            .iter()
            .filter(|e| matches!(e, TraceEvent::PhaseBegin { .. }))
            .count();
        assert_eq!(phases, 2 * captured.intervals);
    }

    #[test]
    fn captured_stream_is_consistent_with_stats() {
        let (run, trace) = capture_llc(&Bicg::new(128, 128), 32 * KIB, 8, 11, Scenario::Isolation);
        let mut hits = 0u64;
        let mut misses = 0u64;
        let mut evictions = 0u64;
        let mut writebacks = 0u64;
        for event in &trace.events {
            match event {
                TraceEvent::Access {
                    hit,
                    phase: Phase::MPhase | Phase::CPhase | Phase::Unphased,
                    ..
                } => {
                    if *hit {
                        hits += 1;
                    } else {
                        misses += 1;
                    }
                }
                TraceEvent::Evict { .. } => evictions += 1,
                TraceEvent::Writeback { .. } => writebacks += 1,
                _ => {}
            }
        }
        assert_eq!(
            hits,
            run.llc.m_phase.hits + run.llc.c_phase.hits + run.llc.unphased.hits
        );
        assert_eq!(misses, run.llc.total_misses());
        assert_eq!(evictions, run.llc.evictions);
        assert_eq!(writebacks, run.llc.writebacks);
    }

    #[test]
    fn timestamps_are_monotone() {
        let (_, trace) = capture_llc(&Bicg::new(128, 128), 32 * KIB, 2, 11, Scenario::Isolation);
        let mut prev = 0u64;
        for event in &trace.events {
            if let Some(ts) = event.ts() {
                assert!(ts >= prev, "timestamp went backwards: {ts} < {prev}");
                prev = ts;
            }
        }
        assert!(prev > 0);
    }
}
