//! The serializable cache-event model.
//!
//! A captured run is a sequence of [`TraceEvent`]s describing everything
//! the LLC did, in the order it did it: demand/prefetch accesses with
//! op-issue timestamps, the fills they triggered, displaced victims with
//! owner/alive/dirty attribution, writebacks, PREM interval boundaries and
//! phase transitions, plus direct (cache-bypassing) DRAM transfers. The
//! replay engine consumes only the *inputs* ([`TraceEvent::Access`] and
//! [`TraceEvent::IntervalBegin`]); the remaining events are recorded
//! *outcomes*, kept for introspection and cross-checked against replay.

use prem_memsim::{AccessKind, LineAddr, Phase};

/// One event of a captured run. Timestamps are op-issue times on the PREM
/// schedule clock, in GPU cycles (truncated to whole cycles).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// One access on the LLC path completed.
    Access {
        /// Op-issue timestamp (cycles).
        ts: u64,
        /// The line accessed.
        line: LineAddr,
        /// Demand read/write or software prefetch.
        kind: AccessKind,
        /// The PREM phase the access was attributed to.
        phase: Phase,
        /// Whether the line was already resident.
        hit: bool,
    },
    /// A missed access filled its line (always follows the miss's
    /// [`TraceEvent::Access`], after any [`TraceEvent::Evict`]).
    Fill {
        /// The line filled.
        line: LineAddr,
        /// The way the line was installed in.
        way: u32,
    },
    /// A fill displaced a victim from a full set.
    Evict {
        /// The displaced line.
        line: LineAddr,
        /// Whether the victim was filled during the current interval
        /// (displacing such a line is the paper's self-eviction when the
        /// victim was GPU-owned).
        alive: bool,
        /// Whether the victim was dirty (implies a writeback).
        dirty: bool,
        /// Whether the victim was owned by co-runner traffic.
        foreign: bool,
        /// The phase of the access that caused the displacement.
        by: Phase,
    },
    /// A dirty victim was written back to DRAM.
    Writeback {
        /// The line written back.
        line: LineAddr,
    },
    /// A new PREM interval began (self-eviction epochs advanced).
    IntervalBegin,
    /// A phase transition: subsequent accesses run under `phase`.
    PhaseBegin {
        /// Schedule time of the transition (cycles).
        ts: u64,
        /// The phase that begins.
        phase: Phase,
    },
    /// A direct DRAM line transfer bypassing the caches (SPM DMA).
    DramTransfer {
        /// Op-issue timestamp (cycles).
        ts: u64,
        /// The line transferred.
        line: LineAddr,
        /// `true` for a DMA-out write, `false` for a DMA-in read.
        write: bool,
    },
}

impl TraceEvent {
    /// The line this event refers to, if any.
    pub fn line(&self) -> Option<LineAddr> {
        match *self {
            TraceEvent::Access { line, .. }
            | TraceEvent::Fill { line, .. }
            | TraceEvent::Evict { line, .. }
            | TraceEvent::Writeback { line }
            | TraceEvent::DramTransfer { line, .. } => Some(line),
            TraceEvent::IntervalBegin | TraceEvent::PhaseBegin { .. } => None,
        }
    }

    /// The timestamp this event carries, if any.
    pub fn ts(&self) -> Option<u64> {
        match *self {
            TraceEvent::Access { ts, .. }
            | TraceEvent::PhaseBegin { ts, .. }
            | TraceEvent::DramTransfer { ts, .. } => Some(ts),
            _ => None,
        }
    }
}

/// 2-bit wire code of a [`Phase`].
pub(crate) fn phase_code(phase: Phase) -> u8 {
    match phase {
        Phase::MPhase => 0,
        Phase::CPhase => 1,
        Phase::Unphased => 2,
        Phase::Corunner => 3,
    }
}

/// Inverse of [`phase_code`]; `code` must be < 4.
pub(crate) fn phase_from_code(code: u8) -> Phase {
    match code & 3 {
        0 => Phase::MPhase,
        1 => Phase::CPhase,
        2 => Phase::Unphased,
        _ => Phase::Corunner,
    }
}

/// 2-bit wire code of an [`AccessKind`].
pub(crate) fn kind_code(kind: AccessKind) -> u8 {
    match kind {
        AccessKind::Read => 0,
        AccessKind::Write => 1,
        AccessKind::Prefetch => 2,
    }
}

/// Inverse of [`kind_code`]. Code 3 is unassigned and decodes as an error
/// at the format layer before this is reached.
pub(crate) fn kind_from_code(code: u8) -> Option<AccessKind> {
    match code & 3 {
        0 => Some(AccessKind::Read),
        1 => Some(AccessKind::Write),
        2 => Some(AccessKind::Prefetch),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_roundtrip() {
        for phase in [
            Phase::MPhase,
            Phase::CPhase,
            Phase::Unphased,
            Phase::Corunner,
        ] {
            assert_eq!(phase_from_code(phase_code(phase)), phase);
        }
        for kind in [AccessKind::Read, AccessKind::Write, AccessKind::Prefetch] {
            assert_eq!(kind_from_code(kind_code(kind)), Some(kind));
        }
        assert_eq!(kind_from_code(3), None);
    }

    #[test]
    fn accessors_expose_payload() {
        let ev = TraceEvent::Access {
            ts: 42,
            line: LineAddr::new(7),
            kind: AccessKind::Read,
            phase: Phase::MPhase,
            hit: false,
        };
        assert_eq!(ev.line(), Some(LineAddr::new(7)));
        assert_eq!(ev.ts(), Some(42));
        assert_eq!(TraceEvent::IntervalBegin.line(), None);
        assert_eq!(TraceEvent::IntervalBegin.ts(), None);
    }
}
