//! Analysis passes over captured traces: reuse-distance histograms,
//! per-set heatmaps, occupancy/working-set timelines and self-eviction
//! attribution — the "observing the invisible" layer that turns an event
//! stream into the cache-state insight the paper argues from.

use std::collections::{HashMap, HashSet};

use crate::event::TraceEvent;
use crate::format::Trace;
use prem_memsim::Phase;

/// A Fenwick (binary indexed) tree over event positions, used to count
/// distinct lines between two accesses in O(log n).
struct Fenwick {
    tree: Vec<i64>,
}

impl Fenwick {
    fn new(n: usize) -> Self {
        Fenwick {
            tree: vec![0; n + 1],
        }
    }

    fn add(&mut self, mut i: usize, delta: i64) {
        i += 1;
        while i < self.tree.len() {
            self.tree[i] += delta;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum over positions `0..=i`.
    fn prefix(&self, mut i: usize) -> i64 {
        i += 1;
        let mut sum = 0;
        while i > 0 {
            sum += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        sum
    }
}

/// Exact LRU stack-distance histogram of the captured LLC access stream,
/// in power-of-two buckets.
///
/// The reuse distance of an access is the number of **distinct** lines
/// touched since the previous access to the same line; first touches are
/// *cold*. Distances at or above the cache's line capacity can never hit
/// under LRU — the classic lens for judging how far a policy sits from
/// its idealized competitor (and for sizing PREM intervals).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReuseHistogram {
    /// First-touch (compulsory) accesses.
    pub cold: u64,
    /// `buckets[0]` counts distance 0; `buckets[b]` (b ≥ 1) counts
    /// distances in `[2^(b-1), 2^b)`.
    pub buckets: Vec<u64>,
    /// Total accesses analyzed.
    pub accesses: u64,
    /// Distinct lines in the stream.
    pub distinct_lines: u64,
}

impl ReuseHistogram {
    /// Human-readable label of bucket `b` (`"0"`, `"1"`, `"2-3"`, …).
    pub fn bucket_label(b: usize) -> String {
        if b == 0 {
            "0".into()
        } else {
            let lo = 1u64 << (b - 1);
            let hi = (1u64 << b) - 1;
            if lo == hi {
                format!("{lo}")
            } else {
                format!("{lo}-{hi}")
            }
        }
    }

    fn record(&mut self, distance: u64) {
        let bucket = if distance == 0 {
            0
        } else {
            64 - distance.leading_zeros() as usize
        };
        if self.buckets.len() <= bucket {
            self.buckets.resize(bucket + 1, 0);
        }
        self.buckets[bucket] += 1;
    }
}

/// Computes the exact reuse-distance histogram of every
/// [`TraceEvent::Access`] in the trace (co-runner traffic included — it
/// shares the physical cache, so it shares the stack).
pub fn reuse_histogram(trace: &Trace) -> ReuseHistogram {
    let accesses: Vec<u64> = trace
        .events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Access { line, .. } => Some(line.raw()),
            _ => None,
        })
        .collect();
    let mut hist = ReuseHistogram {
        accesses: accesses.len() as u64,
        ..ReuseHistogram::default()
    };
    let mut fen = Fenwick::new(accesses.len());
    let mut last: HashMap<u64, usize> = HashMap::new();
    for (t, &line) in accesses.iter().enumerate() {
        match last.insert(line, t) {
            None => {
                hist.cold += 1;
            }
            Some(prev) => {
                // Distinct lines whose most recent access lies strictly
                // between prev and t.
                let between = fen.prefix(t) - fen.prefix(prev);
                hist.record(between as u64);
                fen.add(prev, -1);
            }
        }
        fen.add(t, 1);
    }
    hist.distinct_lines = last.len() as u64;
    hist
}

/// Per-set counters accumulated over a trace.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SetStats {
    /// Accesses mapped to this set (all phases).
    pub accesses: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Victims displaced from this set.
    pub evictions: u64,
    /// Self-evictions (alive GPU-owned victim displaced by GPU traffic).
    pub self_evictions: u64,
}

/// Buckets every access and eviction by the set it maps to under the
/// captured geometry — the raw material of the occupancy heatmap.
pub fn per_set_stats(trace: &Trace) -> Vec<SetStats> {
    let cfg = &trace.header.cache;
    let mut sets = vec![SetStats::default(); cfg.sets()];
    for event in &trace.events {
        match *event {
            TraceEvent::Access { line, hit, .. } => {
                let s = &mut sets[cfg.set_index(line)];
                s.accesses += 1;
                if !hit {
                    s.misses += 1;
                }
            }
            TraceEvent::Evict {
                line,
                alive,
                foreign,
                by,
                ..
            } => {
                let s = &mut sets[cfg.set_index(line)];
                s.evictions += 1;
                if alive && !foreign && by != Phase::Corunner {
                    s.self_evictions += 1;
                }
            }
            _ => {}
        }
    }
    sets
}

/// One sample of the occupancy / working-set timeline.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct TimelineSample {
    /// Events processed up to this sample.
    pub events: u64,
    /// Valid lines resident in the cache (fills minus evictions).
    pub resident: u64,
    /// Distinct lines touched so far (the working-set curve).
    pub distinct: u64,
}

/// Samples cache occupancy and the cumulative working set about `samples`
/// times over the trace (always including the final state).
pub fn occupancy_timeline(trace: &Trace, samples: usize) -> Vec<TimelineSample> {
    let samples = samples.max(1);
    let stride = (trace.events.len() / samples).max(1);
    let mut out = Vec::with_capacity(samples + 1);
    let mut resident = 0u64;
    let mut touched: HashSet<u64> = HashSet::new();
    for (i, event) in trace.events.iter().enumerate() {
        match event {
            TraceEvent::Fill { .. } => resident += 1,
            TraceEvent::Evict { .. } => resident = resident.saturating_sub(1),
            TraceEvent::Access { line, .. } => {
                touched.insert(line.raw());
            }
            _ => {}
        }
        if (i + 1) % stride == 0 || i + 1 == trace.events.len() {
            out.push(TimelineSample {
                events: (i + 1) as u64,
                resident,
                distinct: touched.len() as u64,
            });
        }
    }
    out
}

/// Eviction attribution of one PREM interval.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct IntervalAttribution {
    /// Interval index (0-based, in execution order).
    pub interval: u32,
    /// Lines filled during the interval.
    pub fills: u64,
    /// Victims displaced during the interval.
    pub evictions: u64,
    /// Self-evictions: alive GPU lines displaced by the interval's own
    /// fills (the paper's §III phenomenon).
    pub self_evictions: u64,
    /// Alive GPU lines displaced by co-runner fills (pollution damage).
    pub corunner_evictions: u64,
}

/// Splits eviction attribution per interval — the timeline that shows
/// *when* self-eviction strikes, not just that it did.
pub fn self_eviction_timeline(trace: &Trace) -> Vec<IntervalAttribution> {
    let mut out: Vec<IntervalAttribution> = Vec::new();
    for event in &trace.events {
        match *event {
            TraceEvent::IntervalBegin => {
                let interval = out.len() as u32;
                out.push(IntervalAttribution {
                    interval,
                    ..IntervalAttribution::default()
                });
            }
            TraceEvent::Fill { .. } => {
                if let Some(cur) = out.last_mut() {
                    cur.fills += 1;
                }
            }
            TraceEvent::Evict {
                alive, foreign, by, ..
            } => {
                if let Some(cur) = out.last_mut() {
                    cur.evictions += 1;
                    if alive && !foreign {
                        if by == Phase::Corunner {
                            cur.corunner_evictions += 1;
                        } else {
                            cur.self_evictions += 1;
                        }
                    }
                }
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::capture_llc;
    use crate::format::TraceHeader;
    use prem_gpusim::Scenario;
    use prem_kernels::Bicg;
    use prem_memsim::{AccessKind, CacheConfig, LineAddr, KIB};

    fn synthetic(lines: &[u64]) -> Trace {
        Trace {
            header: TraceHeader {
                label: "synthetic".into(),
                cache: CacheConfig::new(1024, 2, 64),
            },
            events: lines
                .iter()
                .map(|&l| TraceEvent::Access {
                    ts: 0,
                    line: LineAddr::new(l),
                    kind: AccessKind::Read,
                    phase: Phase::Unphased,
                    hit: false,
                })
                .collect(),
        }
    }

    #[test]
    fn reuse_distances_are_exact_stack_distances() {
        // Stream: a b c a a b — distances: cold, cold, cold, 2, 0, 2.
        let hist = reuse_histogram(&synthetic(&[1, 2, 3, 1, 1, 2]));
        assert_eq!(hist.cold, 3);
        assert_eq!(hist.accesses, 6);
        assert_eq!(hist.distinct_lines, 3);
        assert_eq!(hist.buckets[0], 1); // the a-a pair
        assert_eq!(hist.buckets[2], 2); // the two distance-2 reuses
        assert_eq!(hist.buckets.iter().sum::<u64>() + hist.cold, 6);
    }

    #[test]
    fn bucket_labels_are_power_of_two_ranges() {
        assert_eq!(ReuseHistogram::bucket_label(0), "0");
        assert_eq!(ReuseHistogram::bucket_label(1), "1");
        assert_eq!(ReuseHistogram::bucket_label(3), "4-7");
        assert_eq!(ReuseHistogram::bucket_label(10), "512-1023");
    }

    #[test]
    fn per_set_stats_match_cache_stats_totals() {
        let (run, trace) = capture_llc(&Bicg::new(128, 128), 32 * KIB, 8, 11, Scenario::Isolation);
        let sets = per_set_stats(&trace);
        assert_eq!(sets.len(), trace.header.cache.sets());
        let accesses: u64 = sets.iter().map(|s| s.accesses).sum();
        let misses: u64 = sets.iter().map(|s| s.misses).sum();
        let evictions: u64 = sets.iter().map(|s| s.evictions).sum();
        let self_ev: u64 = sets.iter().map(|s| s.self_evictions).sum();
        assert_eq!(accesses, run.llc.total_accesses());
        assert_eq!(misses, run.llc.total_misses());
        assert_eq!(evictions, run.llc.evictions);
        assert_eq!(self_ev, run.llc.self_evictions);
    }

    #[test]
    fn occupancy_timeline_is_monotone_in_working_set() {
        let (run, trace) = capture_llc(&Bicg::new(128, 128), 32 * KIB, 4, 11, Scenario::Isolation);
        let timeline = occupancy_timeline(&trace, 32);
        assert!(!timeline.is_empty());
        let capacity = trace.header.cache.lines() as u64;
        let mut prev_distinct = 0;
        for sample in &timeline {
            assert!(sample.resident <= capacity);
            assert!(sample.distinct >= prev_distinct);
            prev_distinct = sample.distinct;
        }
        assert_eq!(timeline.last().unwrap().events, trace.events.len() as u64);
        let fills = run.llc.total_misses() + run.llc.corunner.misses;
        assert_eq!(timeline.last().unwrap().resident, fills - run.llc.evictions);
    }

    #[test]
    fn interval_attribution_sums_to_run_totals() {
        let (run, trace) = capture_llc(&Bicg::new(192, 192), 32 * KIB, 8, 11, Scenario::Isolation);
        let timeline = self_eviction_timeline(&trace);
        assert_eq!(timeline.len(), run.intervals);
        let self_ev: u64 = timeline.iter().map(|i| i.self_evictions).sum();
        let co_ev: u64 = timeline.iter().map(|i| i.corunner_evictions).sum();
        assert_eq!(self_ev, run.llc.self_evictions);
        assert_eq!(co_ev, run.llc.corunner_evictions);
    }
}
