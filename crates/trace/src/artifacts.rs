//! The `figures -- trace` artifact generators: tables and reports built
//! from one captured run (reuse histogram, per-set heatmap, policy-replay
//! sweep with live-vs-replay validation and speedup measurement).

use std::time::Instant;

use prem_gpusim::Scenario;
use prem_harness::parallel_map;
use prem_kernels::Kernel;
use prem_memsim::{CacheStats, KIB};
use prem_report::Table;

use crate::analysis::{
    occupancy_timeline, per_set_stats, reuse_histogram, self_eviction_timeline, ReuseHistogram,
};
use crate::capture::capture_llc;
use crate::format::Trace;
use crate::replay::default_policy_axis;

/// Everything the `figures -- trace` artifact emits for one captured run.
#[derive(Debug)]
pub struct TraceArtifacts {
    /// The captured trace.
    pub trace: Trace,
    /// The trace's binary encoding (the `trace_capture.bin` artifact) —
    /// encoded once here so consumers don't re-encode the whole stream.
    pub encoded: Vec<u8>,
    /// Reuse-distance histogram table (`trace_reuse.{csv,txt}`).
    pub reuse: Table,
    /// Per-set heatmap table (`trace_heatmap.{csv,txt}`).
    pub heatmap: Table,
    /// Occupancy / self-eviction timelines appended to the heatmap text.
    pub heatmap_extra: String,
    /// Policy-replay sweep table (`trace_policy_replay.{csv,txt}`).
    pub policy_replay: Table,
    /// Validation + speedup summary appended to the policy-replay text.
    pub policy_extra: String,
}

/// Renders the reuse-distance histogram as a table.
pub fn reuse_table(trace: &Trace) -> Table {
    let hist = reuse_histogram(trace);
    let mut table = Table::new(
        format!(
            "trace_reuse — LLC reuse distances, {} ({} accesses, {} lines)",
            trace.header.label, hist.accesses, hist.distinct_lines
        ),
        &["distance", "accesses", "fraction"],
    );
    let total = hist.accesses.max(1) as f64;
    table.push_row(vec![
        "cold".into(),
        hist.cold.to_string(),
        format!("{:.4}", hist.cold as f64 / total),
    ]);
    for (b, &count) in hist.buckets.iter().enumerate() {
        table.push_row(vec![
            ReuseHistogram::bucket_label(b),
            count.to_string(),
            format!("{:.4}", count as f64 / total),
        ]);
    }
    table
}

/// Number of consecutive-set groups the heatmap aggregates into.
const HEATMAP_GROUPS: usize = 32;

/// Renders the per-set access/miss/self-eviction heatmap, aggregated into
/// at most 32 groups of consecutive sets.
pub fn heatmap_table(trace: &Trace) -> Table {
    let sets = per_set_stats(trace);
    let group = sets.len().div_ceil(HEATMAP_GROUPS).max(1);
    let mut table = Table::new(
        format!(
            "trace_heatmap — per-set LLC traffic, {} ({} sets / {} per row)",
            trace.header.label,
            sets.len(),
            group
        ),
        &[
            "sets",
            "accesses",
            "misses",
            "miss%",
            "evictions",
            "self_ev",
        ],
    );
    for (g, chunk) in sets.chunks(group).enumerate() {
        let accesses: u64 = chunk.iter().map(|s| s.accesses).sum();
        let misses: u64 = chunk.iter().map(|s| s.misses).sum();
        let evictions: u64 = chunk.iter().map(|s| s.evictions).sum();
        let self_ev: u64 = chunk.iter().map(|s| s.self_evictions).sum();
        let lo = g * group;
        let hi = lo + chunk.len() - 1;
        table.push_row(vec![
            format!("{lo}-{hi}"),
            accesses.to_string(),
            misses.to_string(),
            format!("{:.1}%", 100.0 * misses as f64 / accesses.max(1) as f64),
            evictions.to_string(),
            self_ev.to_string(),
        ]);
    }
    table
}

/// Renders the occupancy/working-set and self-eviction timelines as plain
/// text (appended to the heatmap artifact).
pub fn timelines_text(trace: &Trace) -> String {
    let mut out = String::new();
    out.push_str("occupancy / working-set timeline (events, resident, distinct):\n");
    for sample in occupancy_timeline(trace, 16) {
        out.push_str(&format!(
            "  {:>9}  {:>7}  {:>8}\n",
            sample.events, sample.resident, sample.distinct
        ));
    }
    let attribution = self_eviction_timeline(trace);
    let shown = attribution.len().min(8);
    out.push_str(&format!(
        "self-eviction attribution, first {shown} of {} intervals \
         (interval, fills, evictions, self, corunner):\n",
        attribution.len()
    ));
    for iv in attribution.iter().take(shown) {
        out.push_str(&format!(
            "  {:>4}  {:>7}  {:>7}  {:>6}  {:>6}\n",
            iv.interval, iv.fills, iv.evictions, iv.self_evictions, iv.corunner_evictions
        ));
    }
    out
}

/// The seed axis of the replay sweep — the experiment harness's standard
/// three seeds.
const SWEEP_SEEDS: [u64; 3] = [11, 23, 47];

/// Builds the full `figures -- trace` artifact set for one kernel: capture
/// once, analyze, then run the policy × seed what-if grid **twice** — once
/// by live re-execution, once by replaying the compiled captured stream —
/// validating that every what-if's replayed [`CacheStats`] equals the live
/// rerun field-for-field, and measuring the speedup replay buys.
///
/// One capture amortizes over the whole grid because the issued access
/// stream is policy- and seed-independent (fixed prefetch repetition):
/// only victim selection varies, and that is exactly what replay
/// re-derives.
///
/// # Panics
///
/// Panics if replay fails to reproduce a live run's statistics — that is
/// a broken replay-equivalence contract, not a recoverable condition.
pub fn trace_artifacts(
    kernel: &dyn Kernel,
    t: usize,
    r: u32,
    seed: u64,
    workers: usize,
) -> TraceArtifacts {
    let scenario = Scenario::Isolation;
    let (live, trace) = capture_llc(kernel, t, r, seed, scenario);
    assert_eq!(
        crate::replay::replay_captured(&trace),
        live.llc,
        "replay-equivalence violated for the captured configuration"
    );

    let axis = default_policy_axis(trace.header.cache.ways());
    let grid: Vec<(String, prem_memsim::Policy, u64)> = axis
        .iter()
        .flat_map(|(name, policy)| {
            SWEEP_SEEDS
                .iter()
                .map(|&s| (name.clone(), policy.clone(), s))
        })
        .collect();

    // Live grid: what the what-ifs cost without traces — re-tile,
    // re-profile and re-execute the kernel per (policy, seed).
    let t0 = Instant::now();
    let live_grid = parallel_map(workers, &grid, |(_, policy, s)| {
        live_llc_with_policy(kernel, t, r, *s, scenario, policy.clone())
    });
    let live_ms = t0.elapsed().as_secs_f64() * 1000.0;

    // Replay grid: compile the captured stream once, then replay it per
    // (policy, seed) on the fast path. Compilation is part of the cost.
    let t0 = Instant::now();
    let compiled = crate::replay::CompiledStream::compile(&trace);
    let replay_grid = parallel_map(workers, &grid, |(_, policy, s)| {
        compiled.replay(policy.clone(), *s)
    });
    let replay_ms = t0.elapsed().as_secs_f64() * 1000.0;

    let mut table = Table::new(
        format!(
            "trace_policy_replay — {} replayed over {} policies x {} seeds",
            trace.header.label,
            axis.len(),
            SWEEP_SEEDS.len()
        ),
        &[
            "policy",
            "seed",
            "misses",
            "cpmr",
            "self_ev",
            "writebacks",
            "replay==live",
        ],
    );
    let mut all_match = true;
    for (i, (name, _, s)) in grid.iter().enumerate() {
        let matched = live_grid[i] == replay_grid[i];
        all_match &= matched;
        let stats: &CacheStats = &replay_grid[i];
        table.push_row(vec![
            name.clone(),
            s.to_string(),
            stats.total_misses().to_string(),
            format!("{:.4}", stats.cpmr()),
            stats.self_evictions.to_string(),
            stats.writebacks.to_string(),
            if matched { "yes" } else { "NO" }.to_string(),
        ]);
    }
    let speedup = live_ms / replay_ms.max(1e-9);
    let encoded = trace.encode();
    let policy_extra = format!(
        "{} what-ifs on {} workers: live re-execution {live_ms:.1} ms, \
         compile+replay {replay_ms:.1} ms -> {speedup:.1}x faster\n\
         replay==live for all {} what-ifs: {}\n\
         trace: {} events, {} bytes encoded\n",
        grid.len(),
        workers,
        grid.len(),
        if all_match { "yes" } else { "NO (regression!)" },
        trace.events.len(),
        encoded.len(),
    );
    assert!(
        all_match,
        "replay diverged from live re-execution on at least one what-if"
    );

    TraceArtifacts {
        reuse: reuse_table(&trace),
        heatmap: heatmap_table(&trace),
        heatmap_extra: timelines_text(&trace),
        policy_replay: table,
        policy_extra,
        encoded,
        trace,
    }
}

/// Live re-execution of the standard LLC experiment under a policy
/// override — the cost baseline replay is compared against. Built from
/// the same shared config/platform builders as `run_llc`/`capture_llc`.
fn live_llc_with_policy(
    kernel: &dyn Kernel,
    t: usize,
    r: u32,
    seed: u64,
    scenario: Scenario,
    policy: prem_memsim::Policy,
) -> CacheStats {
    let intervals = kernel
        .intervals(t)
        .unwrap_or_else(|e| panic!("{}: {e}", kernel.name()));
    let cfg = prem_report::llc_prem_config(r, seed);
    let mut platform = prem_report::llc_platform_config(seed)
        .llc_policy(policy)
        .build();
    prem_core::run_prem(&mut platform, &intervals, &cfg, scenario)
        .expect("llc prem cannot fail")
        .llc
}

/// The quick-suite capture configuration used by goldens, CI smoke runs
/// and the bench gate: bicg 512×512 at the paper's best LLC interval size.
pub fn quick_capture() -> (prem_core::PremRun, Trace) {
    capture_llc(
        &prem_kernels::Bicg::new(512, 512),
        160 * KIB,
        8,
        11,
        Scenario::Isolation,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use prem_kernels::Bicg;

    #[test]
    fn reuse_and_heatmap_tables_are_consistent() {
        let (_, trace) = capture_llc(&Bicg::new(128, 128), 32 * KIB, 4, 11, Scenario::Isolation);
        let reuse = reuse_table(&trace);
        assert!(!reuse.is_empty());
        // Counts in the table sum to the analyzed accesses.
        let total: u64 = reuse
            .rows()
            .iter()
            .map(|r| r[1].parse::<u64>().unwrap())
            .sum();
        assert_eq!(total, reuse_histogram(&trace).accesses);
        let heatmap = heatmap_table(&trace);
        assert!(heatmap.len() <= HEATMAP_GROUPS);
        assert!(!timelines_text(&trace).is_empty());
    }

    #[test]
    fn artifacts_validate_replay_against_live_execution() {
        let art = trace_artifacts(&Bicg::new(128, 128), 32 * KIB, 4, 11, 2);
        assert!(art.policy_extra.contains("replay==live for all"));
        assert!(!art.policy_replay.is_empty());
        assert!(art.policy_replay.rows().iter().all(|r| r[6] == "yes"));
    }

    #[test]
    fn run_llc_and_capture_llc_agree() {
        // The traced twin must not drift from the experiment runner the
        // figures use — same config, same PremRun.
        let kernel = Bicg::new(128, 128);
        let plain = prem_report::run_llc(&kernel, 32 * KIB, 8, 11, Scenario::Isolation);
        let (captured, _) = capture_llc(&kernel, 32 * KIB, 8, 11, Scenario::Isolation);
        assert_eq!(plain, captured);
    }
}
