//! Property tests for the trace subsystem's two load-bearing guarantees:
//!
//! 1. **Format round-trip**: arbitrary event sequences — including
//!    non-monotone timestamps and wild line addresses the delta encoder
//!    never sees in real captures — encode→decode to identity.
//! 2. **Replay equivalence**: replaying a captured run under the captured
//!    config/policy/seed reproduces the live `CacheStats` exactly, and a
//!    policy what-if via replay equals a live re-execution under that
//!    policy.

use proptest::prelude::*;

use prem_gpusim::Scenario;
use prem_kernels::Bicg;
use prem_memsim::{AccessKind, CacheConfig, LineAddr, Phase, Policy, KIB};
use prem_trace::testutil::{live_vs_replay, policy_whatif_pair};
use prem_trace::{Trace, TraceEvent, TraceHeader};

fn any_phase() -> impl Strategy<Value = Phase> {
    prop::sample::select(vec![
        Phase::MPhase,
        Phase::CPhase,
        Phase::Unphased,
        Phase::Corunner,
    ])
}

fn any_kind() -> impl Strategy<Value = AccessKind> {
    prop::sample::select(vec![
        AccessKind::Read,
        AccessKind::Write,
        AccessKind::Prefetch,
    ])
}

/// Any event, with unconstrained 64-bit lines and timestamps.
fn any_event() -> impl Strategy<Value = TraceEvent> {
    (
        0u8..7,
        any::<u64>(),
        any::<u64>(),
        0u32..64,
        any::<u8>(),
        (any_kind(), any_phase()),
    )
        .prop_map(|(code, line, ts, way, flags, (kind, phase))| {
            let line = LineAddr::new(line);
            match code {
                0 => TraceEvent::Access {
                    ts,
                    line,
                    kind,
                    phase,
                    hit: flags & 1 != 0,
                },
                1 => TraceEvent::Fill { line, way },
                2 => TraceEvent::Evict {
                    line,
                    alive: flags & 1 != 0,
                    dirty: flags & 2 != 0,
                    foreign: flags & 4 != 0,
                    by: phase,
                },
                3 => TraceEvent::Writeback { line },
                4 => TraceEvent::IntervalBegin,
                5 => TraceEvent::PhaseBegin { ts, phase },
                _ => TraceEvent::DramTransfer {
                    ts,
                    line,
                    write: flags & 1 != 0,
                },
            }
        })
}

fn any_header() -> impl Strategy<Value = TraceHeader> {
    (
        prop::sample::select(vec![2usize, 4, 8]),
        prop::sample::select(vec![64usize, 128]),
        1u32..=6,
        any::<u64>(),
        any::<u8>(),
    )
        .prop_map(|(ways, line, sets_log2, seed, flags)| {
            let sets = 1usize << sets_log2;
            let policy = match flags % 5 {
                0 => Policy::Lru,
                1 => Policy::Fifo,
                2 => Policy::Srrip,
                3 => Policy::nvidia_like(ways),
                _ => Policy::Random,
            };
            TraceHeader {
                label: format!("prop-{ways}w{line}b{sets}s"),
                cache: CacheConfig::new(sets * ways * line, ways, line)
                    .policy(policy)
                    .seed(seed)
                    .index_hash(flags & 0x80 != 0),
            }
        })
}

proptest! {
    /// Arbitrary event sequences encode→decode to identity, header
    /// included.
    #[test]
    fn encode_decode_is_identity(header in any_header(),
                                 events in prop::collection::vec(any_event(), 0..300)) {
        let trace = Trace { header, events };
        let bytes = trace.encode();
        let back = Trace::decode(&bytes);
        prop_assert!(back.is_ok(), "decode failed: {:?}", back.err());
        prop_assert_eq!(back.unwrap(), trace);
    }

    /// Any truncation of a non-empty encoding fails loudly instead of
    /// decoding to a silently shorter trace.
    #[test]
    fn truncation_never_decodes(header in any_header(),
                                events in prop::collection::vec(any_event(), 1..60),
                                cut in any::<u64>()) {
        let trace = Trace { header, events };
        let bytes = trace.encode();
        let cut = 1 + (cut as usize) % (bytes.len() - 1);
        prop_assert!(Trace::decode(&bytes[..cut]).is_err(),
                     "truncated to {cut}/{} bytes but still decoded", bytes.len());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Replay of a captured run reproduces the live `CacheStats` exactly,
    /// for the same config/policy/seed — including across a format
    /// round-trip — and for every kernel size/interval/repetition/seed
    /// combination sampled.
    #[test]
    fn replay_reproduces_live_cachestats(n in prop::sample::select(vec![64usize, 96, 128, 160]),
                                         m in prop::sample::select(vec![64usize, 96, 128, 160]),
                                         t_kib in prop::sample::select(vec![32usize, 64]),
                                         r in 1u32..=8,
                                         seed in any::<u64>(),
                                         interference in any::<u8>()) {
        let scenario = if interference & 1 == 0 {
            Scenario::Isolation
        } else {
            Scenario::Interference
        };
        let kernel = Bicg::new(n, m);
        let cmp = live_vs_replay(&kernel, t_kib * KIB, r, seed, scenario);
        prop_assert_eq!(&cmp.replayed, &cmp.live);
        prop_assert_eq!(&cmp.reencoded, &cmp.live);
    }

    /// A policy what-if via replay equals a live re-execution under that
    /// policy: the access stream is policy-independent (fixed prefetch
    /// repetition), so the captured stream is a faithful stand-in.
    #[test]
    fn replay_what_if_matches_live_reexecution(n in prop::sample::select(vec![96usize, 128, 160, 192]),
                                               t_kib in prop::sample::select(vec![32usize, 64]),
                                               seed in any::<u64>(),
                                               which in any::<u8>()) {
        let policy = match which % 4 {
            0 => Policy::Lru,
            1 => Policy::Srrip,
            2 => Policy::Random,
            _ => Policy::Fifo,
        };
        let kernel = Bicg::new(n, n);
        let (replayed, live) = policy_whatif_pair(&kernel, t_kib * KIB, 4, seed, policy);
        prop_assert_eq!(replayed, live);
    }
}
