//! Replay equivalence over the whole quick kernel suite (the ISSUE's
//! acceptance bar): for every kernel of `suite_small()`, replaying its
//! captured trace under the captured configuration reproduces the live
//! run's `CacheStats` field-for-field — in memory and across a format
//! round-trip, via the shared [`prem_trace::testutil`] harness.

use prem_gpusim::Scenario;
use prem_kernels::suite_small;
use prem_memsim::KIB;
use prem_trace::testutil::live_vs_replay;

#[test]
fn every_quick_suite_kernel_replays_bit_exactly() {
    for kernel in suite_small() {
        let t = (160 * KIB).max(kernel.min_interval_bytes());
        let cmp = live_vs_replay(kernel.as_ref(), t, 8, 11, Scenario::Isolation);
        assert_eq!(
            cmp.replayed,
            cmp.live,
            "replay diverged from live stats for {}",
            kernel.name()
        );
        // The equivalence must survive serialization, not just the
        // in-memory event list.
        assert_eq!(
            cmp.reencoded,
            cmp.live,
            "replay diverged after encode/decode for {}",
            kernel.name()
        );
    }
}

#[test]
fn interference_capture_replays_bit_exactly_for_a_sample_kernel() {
    // Pollution + noise traffic interleaved into the stream must replay
    // too; one kernel suffices for the heavier interference scenario.
    let suite = suite_small();
    let kernel = suite.first().expect("suite not empty");
    let t = (160 * KIB).max(kernel.min_interval_bytes());
    let cmp = live_vs_replay(kernel.as_ref(), t, 8, 23, Scenario::Interference);
    assert!(cmp.bit_exact(), "interference replay diverged: {cmp:?}");
}
