//! Guards the "zero-cost when disabled" contract of the instrumentation
//! layer.
//!
//! `run_prem` *is* `run_prem_traced::<NullSink>` — the untraced entry
//! point delegates to the generic with the no-op sink, so both calls
//! monomorphize to the same code and the no-op sink adds nothing to the
//! `prem_executor` hot path by construction (the criterion bench
//! `prem_executor/llc_r8_nullsink` shows the two within noise, <1%).
//! This test pins the delegation: if someone forks the traced path away
//! from the untraced one and makes it slower, the min-of-N ratio check
//! fails. The threshold is loose (10%) because CI machines are noisy;
//! the absolute regression gate lives in `bench_matrix`.

use std::time::Instant;

use prem_core::{run_prem, run_prem_traced, PremConfig};
use prem_gpusim::{PlatformConfig, Scenario};
use prem_kernels::{Bicg, Kernel};
use prem_memsim::{NullSink, KIB};

#[test]
fn nullsink_path_is_not_slower_than_untraced_path() {
    let kernel = Bicg::new(256, 256);
    let intervals = kernel.intervals(96 * KIB).expect("tiling");
    let cfg = PremConfig::llc_tamed();
    let mut platform = PlatformConfig::tx1().build();

    // Warm up once, then take the min of several trials per path —
    // min-of-N is robust against scheduler noise.
    let _ = run_prem(&mut platform, &intervals, &cfg, Scenario::Isolation).unwrap();
    let trials = 7;
    let mut plain = f64::INFINITY;
    let mut traced = f64::INFINITY;
    for _ in 0..trials {
        let t0 = Instant::now();
        let a = run_prem(&mut platform, &intervals, &cfg, Scenario::Isolation).unwrap();
        plain = plain.min(t0.elapsed().as_secs_f64());

        let t0 = Instant::now();
        let b = run_prem_traced(
            &mut platform,
            &intervals,
            &cfg,
            Scenario::Isolation,
            &mut NullSink,
        )
        .unwrap();
        traced = traced.min(t0.elapsed().as_secs_f64());
        assert_eq!(a, b, "NullSink changed the simulation");
    }
    assert!(
        traced <= plain * 1.10,
        "NullSink path took {:.3} ms vs {:.3} ms untraced (> +10%)",
        traced * 1e3,
        plain * 1e3
    );
}
