//! Cross-check of the paper's analytic coin-toss model (§IV) against the
//! simulated cache: after `R` prefetch passes, the fraction of the staged
//! footprint that is *not* resident (and would therefore miss in the
//! C-phase) should decay roughly geometrically in `R`, reaching the
//! sub-0.5 % regime at `R = 8` that the model `0.5^R` predicts.

use prem_core::analytic;
use prem_gpusim::{Op, OpStream, PlatformConfig, SmExecutor};
use prem_memsim::{Contention, LineAddr, Phase, KIB};

/// Runs `r` prefetch passes of `lines` onto a warm (fully valid) cache and
/// returns the fraction of lines absent afterwards.
fn absent_fraction(r: u32, seed: u64) -> f64 {
    let mut platform = PlatformConfig::tx1().llc_seed(seed).build();
    // Warm the cache with unrelated data so every fill must evict.
    let warm: OpStream = (0..4096u64)
        .map(|i| Op::Prefetch(LineAddr::new(0x40_0000 + i)))
        .collect();
    SmExecutor::new(&mut platform.mem, &platform.cost)
        .run(&warm, Phase::Unphased, Contention::Isolated)
        .unwrap();

    // Stage a good-way-sized footprint (160 KiB = 1280 lines) R times.
    let lines: Vec<LineAddr> = (0..(160 * KIB / 128) as u64).map(LineAddr::new).collect();
    let pass: OpStream = lines.iter().map(|&l| Op::Prefetch(l)).collect();
    platform.mem.begin_interval();
    for _ in 0..r {
        SmExecutor::new(&mut platform.mem, &platform.cost)
            .run(&pass, Phase::MPhase, Contention::Isolated)
            .unwrap();
    }
    let absent = lines
        .iter()
        .filter(|&&l| !platform.mem.llc().contains(l))
        .count();
    absent as f64 / lines.len() as f64
}

fn mean_absent(r: u32) -> f64 {
    let seeds = [3u64, 17, 29, 71];
    seeds.iter().map(|&s| absent_fraction(r, s)).sum::<f64>() / seeds.len() as f64
}

/// Residual absence decays monotonically in R, like the coin-toss model.
#[test]
fn absence_decays_with_repetition() {
    let series: Vec<f64> = [1u32, 2, 4, 8].iter().map(|&r| mean_absent(r)).collect();
    for w in series.windows(2) {
        assert!(w[1] <= w[0] + 1e-3, "not decaying: {series:?}");
    }
    assert!(series[0] > 0.01, "R=1 should leave holes: {series:?}");
}

/// At the paper's R = 8, the measured residual is in the sub-0.5 % regime
/// the model predicts (0.5^8 ≈ 0.39 %).
#[test]
fn r8_reaches_model_regime() {
    let measured = mean_absent(8);
    let predicted = analytic::bad_way_residency(8);
    assert!(
        measured <= predicted * 3.0 + 0.002,
        "measured {measured} vs model {predicted}"
    );
}

/// The model's halving-per-repetition is the right order: each extra pass
/// removes at least a third of the remaining holes (averaged over seeds) in
/// the early regime.
#[test]
fn per_pass_decay_is_geometric() {
    let r1 = mean_absent(1);
    let r2 = mean_absent(2);
    let r3 = mean_absent(3);
    assert!(r2 < r1 * 0.67, "pass 2: {r1} -> {r2}");
    assert!(r3 < r2 * 0.67, "pass 3: {r2} -> {r3}");
}
