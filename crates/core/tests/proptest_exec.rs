//! Property tests on the PREM executor's accounting invariants.

use proptest::prelude::*;

use prem_core::{run_baseline, run_prem, CAccess, IntervalSpec, NoiseModel, PremConfig};
use prem_gpusim::{PlatformConfig, Scenario};
use prem_memsim::LineAddr;

/// Random (but coverage-correct) interval sets: each interval stages a
/// random slice of a line range and touches a random subset of it.
fn intervals() -> impl Strategy<Value = Vec<IntervalSpec>> {
    prop::collection::vec((1u64..2000, 1usize..200, any::<u64>()), 1..8).prop_map(|descr| {
        descr
            .into_iter()
            .map(|(base, len, pick)| {
                let lines: Vec<LineAddr> = (0..len as u64)
                    .map(|i| LineAddr::new(base * 16 + i))
                    .collect();
                let accesses: Vec<CAccess> = lines
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| pick >> (i % 64) & 1 == 1 || *i == 0)
                    .map(|(i, &l)| {
                        if i % 5 == 0 {
                            CAccess::write(l)
                        } else {
                            CAccess::read(l)
                        }
                    })
                    .collect();
                IntervalSpec::new(lines, accesses, (len * 3) as u64)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Breakdown components always sum to the makespan; idle is never
    /// negative; slots never undercut the MSG.
    #[test]
    fn accounting_invariants(ivs in intervals(), seed in any::<u64>()) {
        let mut p = PlatformConfig::tx1().build();
        let cfg = PremConfig::llc_tamed().with_seed(seed);
        let run = run_prem(&mut p, &ivs, &cfg, Scenario::Isolation).unwrap();
        let b = &run.breakdown;
        prop_assert!((b.m_work + b.c_work + b.idle + b.sync - run.makespan_cycles).abs() < 1e-6);
        prop_assert!(b.idle >= 0.0);
        let msg = p.us_to_cycles(40.0);
        for (m, c) in &run.interval_timings {
            prop_assert!(m.elapsed() >= msg - 1e-6);
            prop_assert!(c.elapsed() >= msg - 1e-6);
        }
        prop_assert_eq!(run.interval_timings.len(), ivs.len());
    }

    /// Isolation runs never violate their own budgets, and the envelope
    /// always covers the measured makespan.
    #[test]
    fn envelope_covers_isolated_run(ivs in intervals(), seed in any::<u64>()) {
        let mut p = PlatformConfig::tx1().build();
        let cfg = PremConfig::llc_tamed().with_seed(seed);
        let run = run_prem(&mut p, &ivs, &cfg, Scenario::Isolation).unwrap();
        prop_assert_eq!(run.budget_violation_cycles, 0.0);
        prop_assert!(run.makespan_cycles <= run.budget_envelope_cycles + 1e-6);
    }

    /// Interference never shortens a PREM schedule or a baseline.
    #[test]
    fn interference_monotone(ivs in intervals(), seed in any::<u64>()) {
        let mut p = PlatformConfig::tx1().build();
        let cfg = PremConfig::llc_tamed().with_seed(seed).with_noise(NoiseModel::tx1());
        let iso = run_prem(&mut p, &ivs, &cfg, Scenario::Isolation).unwrap();
        let intf = run_prem(&mut p, &ivs, &cfg, Scenario::Interference).unwrap();
        prop_assert!(intf.makespan_cycles >= iso.makespan_cycles - 1e-6);

        let b_iso = run_baseline(&mut p, &ivs, seed, Scenario::Isolation, NoiseModel::tx1()).unwrap();
        let b_intf =
            run_baseline(&mut p, &ivs, seed, Scenario::Interference, NoiseModel::tx1()).unwrap();
        prop_assert!(b_intf.cycles >= b_iso.cycles - 1e-6);
    }

    /// CPMR is a ratio in [0, 1] and zero when nothing misses in C.
    #[test]
    fn cpmr_is_a_ratio(ivs in intervals(), seed in any::<u64>()) {
        let mut p = PlatformConfig::tx1().build();
        let run = run_prem(&mut p, &ivs, &PremConfig::llc_tamed().with_seed(seed),
                           Scenario::Isolation).unwrap();
        prop_assert!((0.0..=1.0).contains(&run.cpmr));
    }

    /// The whole executor is deterministic in (intervals, seed).
    #[test]
    fn executor_deterministic(ivs in intervals(), seed in any::<u64>()) {
        let mut p = PlatformConfig::tx1().build();
        let cfg = PremConfig::llc_tamed().with_seed(seed);
        let a = run_prem(&mut p, &ivs, &cfg, Scenario::Isolation).unwrap();
        let b = run_prem(&mut p, &ivs, &cfg, Scenario::Isolation).unwrap();
        prop_assert_eq!(a, b);
    }
}
