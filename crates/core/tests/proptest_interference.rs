//! Property tests on the co-runner interference engine: interference is
//! **monotone** — adding a co-runner to a mix never *decreases* the
//! observed DRAM latency, the execution times, or the CPMR.

use proptest::prelude::*;

use prem_core::{run_baseline, run_prem, CAccess, IntervalSpec, NoiseModel, PremConfig};
use prem_gpusim::{CorunnerProfile, InterferenceEngine, PlatformConfig, Scenario};
use prem_memsim::{DramConfig, LineAddr};

/// The statically-demanding profiles (no duty cycling): for these,
/// monotonicity is exact, not statistical.
fn static_profile() -> impl Strategy<Value = CorunnerProfile> {
    prop::sample::select(vec![
        CorunnerProfile::Membomb,
        CorunnerProfile::Stream,
        CorunnerProfile::CacheThrash,
        CorunnerProfile::Idle,
    ])
}

/// Random static co-runner mixes of 0–4 actors.
fn mix() -> impl Strategy<Value = Vec<CorunnerProfile>> {
    prop::collection::vec(static_profile(), 0..4)
}

/// A modest interval set exercising both phases (mirrors the executor's
/// toy kernel: 4 intervals of 64 streamed lines).
fn toy_intervals() -> Vec<IntervalSpec> {
    (0..4)
        .map(|i| {
            let lines: Vec<_> = (0..64u64).map(|j| LineAddr::new(i * 64 + j)).collect();
            let accesses = lines.iter().map(|&l| CAccess::read(l)).collect();
            IntervalSpec::new(lines, accesses, 128)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Appending any co-runner (static or bursty) never lowers the demand
    /// the engine reports, and therefore never lowers the DRAM latency or
    /// serialization the victim observes, at any sampled time.
    #[test]
    fn dram_latency_never_decreases_when_a_corunner_joins(
        base in mix(),
        extra in static_profile(),
        duty in 0u64..=10,
        seed in any::<u64>(),
        t in 0u64..1_000_000,
    ) {
        let dram = DramConfig::tx1();
        let a = InterferenceEngine::new(&base, seed);
        for extra in [extra, CorunnerProfile::Bursty {
            duty: duty as f64 / 10.0,
            period_cycles: 10_000.0,
        }] {
            let mut longer = base.clone();
            longer.push(extra);
            let b = InterferenceEngine::new(&longer, seed);
            let t = t as f64;
            prop_assert!(b.demand_at(t) >= a.demand_at(t) - 1e-12);
            prop_assert!(
                dram.effective_latency(b.contention_at(t))
                    >= dram.effective_latency(a.contention_at(t)) - 1e-9
            );
            prop_assert!(
                dram.serialization(128, b.contention_at(t))
                    >= dram.serialization(128, a.contention_at(t)) - 1e-9
            );
        }
    }

    /// Adding a static co-runner never speeds up the PREM schedule or the
    /// unprotected baseline, and never lowers the CPMR: non-polluting
    /// profiles leave cache behavior (and so the CPMR) exactly unchanged,
    /// while a thrasher's pollution can only push it up.
    #[test]
    fn execution_and_cpmr_never_improve_when_a_corunner_joins(
        base in mix(),
        extra in static_profile(),
        seed in any::<u64>(),
    ) {
        let ivs = toy_intervals();
        let mut longer = base.clone();
        longer.push(extra);

        let run_with = |corunners: &[CorunnerProfile]| {
            let mut p = PlatformConfig::tx1()
                .with_corunners(corunners.to_vec())
                .build();
            let cfg = PremConfig::llc_tamed().with_seed(seed).with_noise(NoiseModel::tx1());
            let prem = run_prem(&mut p, &ivs, &cfg, Scenario::Corunners).unwrap();
            let mut p2 = PlatformConfig::tx1()
                .with_corunners(corunners.to_vec())
                .build();
            let b = run_baseline(&mut p2, &ivs, seed, Scenario::Corunners, NoiseModel::tx1())
                .unwrap();
            (prem, b)
        };
        let (prem_a, base_a) = run_with(&base);
        let (prem_b, base_b) = run_with(&longer);

        prop_assert!(prem_b.makespan_cycles >= prem_a.makespan_cycles - 1e-6);
        prop_assert!(base_b.cycles >= base_a.cycles - 1e-6);
        prop_assert!(prem_b.cpmr >= prem_a.cpmr - 1e-12);
        if !extra.pollutes_llc() {
            // Bus-only co-runners cannot touch the LLC: the miss pattern —
            // and with it the CPMR — must be bit-identical.
            prop_assert_eq!(prem_b.llc.c_phase, prem_a.llc.c_phase);
            prop_assert!((prem_b.cpmr - prem_a.cpmr).abs() < 1e-15);
        }
    }

    /// The interference preset and the equivalent explicit mix are the
    /// same measurement: three membombs via `Scenario::Corunners` must be
    /// bit-identical to `Scenario::Interference`.
    #[test]
    fn explicit_three_membombs_equal_the_interference_preset(seed in any::<u64>()) {
        let ivs = toy_intervals();
        let cfg = PremConfig::llc_tamed().with_seed(seed).with_noise(NoiseModel::tx1());
        let mut preset = PlatformConfig::tx1().build();
        let a = run_prem(&mut preset, &ivs, &cfg, Scenario::Interference).unwrap();
        let mut explicit = PlatformConfig::tx1()
            .with_corunners(vec![CorunnerProfile::Membomb; 3])
            .build();
        let b = run_prem(&mut explicit, &ivs, &cfg, Scenario::Corunners).unwrap();
        prop_assert_eq!(a, b);
    }
}
