//! Local-store strategies: how an interval's footprint is staged and how its
//! compute phase addresses data.
//!
//! The paper contrasts two strategies (Fig 2):
//!
//! * **SPM** (the state of the art): the M-phase runs an explicit copy loop
//!   — a DRAM read, an SPM store, and address-translation arithmetic per
//!   line — and every compute access pays `transl_addr` overhead to map a
//!   DRAM address onto its scratchpad slot.
//! * **LLC** (the paper's proposal): the M-phase issues one *prefetch* per
//!   line — optionally repeated `R` times to defeat the biased-random
//!   replacement ([`PrefetchStrategy::Repeated`]) — and compute accesses use
//!   original addresses with no software overhead.

use prem_gpusim::{Op, OpStream};

use crate::interval::IntervalSpec;

/// How M-phase prefetches are issued on the LLC path.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum PrefetchStrategy {
    /// One prefetch pass (the naive approach of paper §III).
    Single,
    /// `r` full prefetch passes (the paper's contribution, §IV: `r = 8`
    /// drives the bad-way residency below 0.5 %).
    Repeated {
        /// The prefetch repetition factor `R ≥ 1`.
        r: u32,
    },
    /// Repeat passes until one pass hits entirely, up to `max_rounds`
    /// (adaptive variant; the natural extension of §IV).
    UntilResident {
        /// Upper bound on passes.
        max_rounds: u32,
    },
}

impl PrefetchStrategy {
    /// The fixed number of passes, or the maximum for the adaptive variant.
    pub fn max_rounds(self) -> u32 {
        match self {
            PrefetchStrategy::Single => 1,
            PrefetchStrategy::Repeated { r } => r.max(1),
            PrefetchStrategy::UntilResident { max_rounds } => max_rounds.max(1),
        }
    }

    /// Whether the executor may stop early on an all-hit pass.
    pub fn adaptive(self) -> bool {
        matches!(self, PrefetchStrategy::UntilResident { .. })
    }
}

/// A local-store strategy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LocalStore {
    /// Stage into the last-level cache via prefetches.
    Llc {
        /// Prefetch issuing strategy.
        prefetch: PrefetchStrategy,
    },
    /// Stage into the scratchpad via explicit copies.
    Spm {
        /// `transl_addr` warp instructions per compute access (Fig 2).
        transl_per_access: u32,
        /// Copy-loop overhead warp instructions per staged line.
        transl_per_line_copy: u32,
    },
}

impl LocalStore {
    /// The paper's proposed configuration: LLC with `R = 8`.
    pub fn llc_tamed() -> Self {
        LocalStore::Llc {
            prefetch: PrefetchStrategy::Repeated { r: 8 },
        }
    }

    /// The naive LLC configuration of §III (single prefetch pass).
    pub fn llc_naive() -> Self {
        LocalStore::Llc {
            prefetch: PrefetchStrategy::Single,
        }
    }

    /// The SPM state of the art with default software-addressing overheads.
    pub fn spm_default() -> Self {
        LocalStore::Spm {
            transl_per_access: 4,
            transl_per_line_copy: 2,
        }
    }

    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            LocalStore::Llc { .. } => "llc",
            LocalStore::Spm { .. } => "spm",
        }
    }

    /// Builds one M-phase staging pass for `interval`.
    ///
    /// For the LLC this is one prefetch sweep over the footprint (the
    /// executor repeats it per the [`PrefetchStrategy`]); for the SPM it is
    /// the full copy-in loop plus copy-out of the interval's written lines.
    pub fn m_phase_pass(&self, interval: &IntervalSpec) -> OpStream {
        match self {
            LocalStore::Llc { .. } => {
                let mut s = OpStream::with_capacity(interval.footprint.len());
                for &line in &interval.footprint {
                    s.push(Op::Prefetch(line));
                }
                s
            }
            LocalStore::Spm {
                transl_per_line_copy,
                ..
            } => {
                let written = interval.written_lines();
                let mut s = OpStream::with_capacity(interval.footprint.len() * 3 + written.len());
                for &line in &interval.footprint {
                    s.push(Op::DramLoad(line));
                    s.push(Op::SpmStore(line));
                    if *transl_per_line_copy > 0 {
                        s.push(Op::TranslAddr(*transl_per_line_copy));
                    }
                }
                // Copy-out of produced data (charged to this interval's
                // M-phase; the hardware cache does this implicitly through
                // write-back evictions).
                for line in written {
                    s.push(Op::DramStore(line));
                }
                s
            }
        }
    }

    /// Builds the compute-phase stream for `interval`.
    pub fn c_phase(&self, interval: &IntervalSpec) -> OpStream {
        let mut s = OpStream::with_capacity(interval.c_accesses.len() + 2);
        match self {
            LocalStore::Llc { .. } => {
                for a in &interval.c_accesses {
                    s.push(if a.write {
                        Op::CachedStore(a.line)
                    } else {
                        Op::CachedLoad(a.line)
                    });
                }
            }
            LocalStore::Spm {
                transl_per_access, ..
            } => {
                for a in &interval.c_accesses {
                    s.push(if a.write {
                        Op::SpmStore(a.line)
                    } else {
                        Op::SpmLoad(a.line)
                    });
                    if *transl_per_access > 0 {
                        s.push(Op::TranslAddr(*transl_per_access));
                    }
                }
            }
        }
        push_alu(&mut s, interval.alu);
        s
    }

    /// Builds the unprotected baseline stream (no PREM): demand accesses
    /// straight through the cache hierarchy.
    pub fn baseline(interval: &IntervalSpec) -> OpStream {
        let mut s = OpStream::with_capacity(interval.c_accesses.len() + 2);
        for a in &interval.c_accesses {
            s.push(if a.write {
                Op::CachedStore(a.line)
            } else {
                Op::CachedLoad(a.line)
            });
        }
        push_alu(&mut s, interval.alu);
        s
    }
}

fn push_alu(s: &mut OpStream, mut alu: u64) {
    while alu > 0 {
        let chunk = alu.min(u32::MAX as u64) as u32;
        s.push(Op::Alu(chunk));
        alu -= chunk as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::CAccess;
    use prem_memsim::LineAddr;

    fn l(n: u64) -> LineAddr {
        LineAddr::new(n)
    }

    fn iv() -> IntervalSpec {
        IntervalSpec::new(
            vec![l(0), l(1)],
            vec![CAccess::read(l(0)), CAccess::write(l(1))],
            10,
        )
    }

    #[test]
    fn llc_m_phase_is_prefetch_only() {
        let s = LocalStore::llc_naive().m_phase_pass(&iv());
        let c = s.counts();
        assert_eq!(c.prefetches, 2);
        assert_eq!(c.memory_instructions(), 2);
        assert_eq!(c.transl, 0);
    }

    #[test]
    fn spm_m_phase_copies_and_writes_back() {
        let s = LocalStore::spm_default().m_phase_pass(&iv());
        let c = s.counts();
        assert_eq!(c.dram_loads, 2);
        assert_eq!(c.spm_stores, 2);
        assert_eq!(c.dram_stores, 1); // one written line
        assert_eq!(c.transl, 4);
    }

    #[test]
    fn fig2_spm_needs_more_instructions_than_cache() {
        let spm = LocalStore::spm_default();
        let llc = LocalStore::llc_naive();
        let m_spm = spm.m_phase_pass(&iv()).counts().total_instructions();
        let m_llc = llc.m_phase_pass(&iv()).counts().total_instructions();
        assert!(m_spm > 2 * m_llc, "spm {m_spm} vs llc {m_llc}");
        let c_spm = spm.c_phase(&iv()).counts().total_instructions();
        let c_llc = llc.c_phase(&iv()).counts().total_instructions();
        assert!(c_spm > c_llc);
    }

    #[test]
    fn c_phase_respects_access_kinds() {
        let s = LocalStore::llc_naive().c_phase(&iv());
        let c = s.counts();
        assert_eq!(c.cached_loads, 1);
        assert_eq!(c.cached_stores, 1);
        assert_eq!(c.alu, 10);
    }

    #[test]
    fn strategies_report_rounds() {
        assert_eq!(PrefetchStrategy::Single.max_rounds(), 1);
        assert_eq!(PrefetchStrategy::Repeated { r: 8 }.max_rounds(), 8);
        assert_eq!(
            PrefetchStrategy::UntilResident { max_rounds: 12 }.max_rounds(),
            12
        );
        assert!(!PrefetchStrategy::Repeated { r: 8 }.adaptive());
        assert!(PrefetchStrategy::UntilResident { max_rounds: 4 }.adaptive());
    }

    #[test]
    fn repeated_zero_clamps_to_one() {
        assert_eq!(PrefetchStrategy::Repeated { r: 0 }.max_rounds(), 1);
    }

    #[test]
    fn baseline_has_no_staging() {
        let s = LocalStore::baseline(&iv());
        let c = s.counts();
        assert_eq!(c.prefetches + c.dram_loads + c.spm_stores, 0);
        assert_eq!(c.cached_loads, 1);
        assert_eq!(c.cached_stores, 1);
    }

    #[test]
    fn alu_chunking_handles_large_counts() {
        let big = IntervalSpec::new(vec![], vec![], u32::MAX as u64 + 5);
        let s = LocalStore::baseline(&big);
        assert_eq!(s.counts().alu, u32::MAX as u64 + 5);
    }
}
