//! Execution-time breakdowns and predictability metrics.

/// Breakdown of a PREM schedule's makespan (cycles), mirroring the stacked
/// bars of paper Figs 3 and 5.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct Breakdown {
    /// M-phase useful work ("without sync" share).
    pub m_work: f64,
    /// C-phase useful work ("without sync" share).
    pub c_work: f64,
    /// Idle time spent waiting for the synchronization partner when a phase
    /// finishes before the minimum synchronization granularity (Fig 1 (d)).
    pub idle: f64,
    /// Token-exchange cost (interrupt latency + handler).
    pub sync: f64,
}

impl Breakdown {
    /// Work executed regardless of synchronization ("without sync").
    pub fn work(&self) -> f64 {
        self.m_work + self.c_work
    }

    /// Total schedule length.
    pub fn total(&self) -> f64 {
        self.m_work + self.c_work + self.idle + self.sync
    }

    /// Accumulates another breakdown.
    pub fn merge(&mut self, other: &Breakdown) {
        self.m_work += other.m_work;
        self.c_work += other.c_work;
        self.idle += other.idle;
        self.sync += other.sync;
    }

    /// Scales every component (unit conversion).
    pub fn scaled(&self, k: f64) -> Breakdown {
        Breakdown {
            m_work: self.m_work * k,
            c_work: self.c_work * k,
            idle: self.idle * k,
            sync: self.sync * k,
        }
    }
}

/// Relative execution-time increase of `loaded` over `isolated`
/// (paper Fig 7's "sensitivity to interference"), e.g. `0.15` = +15 %.
pub fn sensitivity(isolated: f64, loaded: f64) -> f64 {
    if isolated <= 0.0 {
        0.0
    } else {
        (loaded - isolated) / isolated
    }
}

/// Speedup of `ours` relative to `other` (`> 1.0` means `ours` is faster).
pub fn speedup(other: f64, ours: f64) -> f64 {
    if ours <= 0.0 {
        f64::INFINITY
    } else {
        other / ours
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let b = Breakdown {
            m_work: 1.0,
            c_work: 2.0,
            idle: 3.0,
            sync: 4.0,
        };
        assert!((b.total() - 10.0).abs() < 1e-12);
        assert!((b.work() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn merge_and_scale() {
        let mut a = Breakdown::default();
        let b = Breakdown {
            m_work: 1.0,
            c_work: 1.0,
            idle: 1.0,
            sync: 1.0,
        };
        a.merge(&b);
        a.merge(&b);
        assert_eq!(a.total(), 8.0);
        assert_eq!(a.scaled(0.5).total(), 4.0);
    }

    #[test]
    fn sensitivity_is_relative_increase() {
        assert!((sensitivity(100.0, 345.0) - 2.45).abs() < 1e-12);
        assert_eq!(sensitivity(0.0, 10.0), 0.0);
    }

    #[test]
    fn speedup_ratio() {
        assert!((speedup(200.0, 100.0) - 2.0).abs() < 1e-12);
    }
}
