//! Replay-backed what-if execution: capture one live run, derive its
//! policy/seed siblings by replay.
//!
//! PR 4 established the enabling property: under a fixed prefetch
//! repetition the LLC's *input op sequence* does not depend on the LLC
//! replacement policy or seed — those axes only change which accesses hit.
//! The plan layer exploits this as a **derivation relation**: requests that
//! differ only in LLC policy and seed form a family, one representative
//! executes live with a capturing sink (`WhatIfSink`) recording the access
//! sequence, and
//! every sibling's full [`RunOutput`] is rebuilt by replaying the captured
//! sequence against a mirror cache carrying the sibling's policy/seed
//! ([`RunCapture::replay_for`]).
//!
//! ## Why replayed outputs are bit-identical to live ones
//!
//! * **Cache trajectory** — the mirror is a real [`Cache`] built from the
//!   sibling's configuration and fed the exact captured access sequence,
//!   so hits, misses, evictions and `CacheStats` are the live cache's by
//!   construction (the property `prem-trace`'s replay suite pins).
//! * **Cycle arithmetic** — floating-point accumulation is not
//!   associative, so the replay mirrors the executor's accumulator
//!   structure exactly: per-op adds into a per-round accumulator, per-round
//!   adds into the interval's M-phase work, fresh accumulators per C-phase,
//!   intervals folded in order. Per-op costs come from the captured
//!   [`CostModel`](prem_gpusim::CostModel) under the captured contention,
//!   i.e. the same pure functions the live executor charges.
//! * **Budgets** — the profiling pass and the timed run reset and reseed
//!   identically and feed identical op sequences, so their cache
//!   trajectories coincide; one captured walk therefore yields both the
//!   isolated-contention phase times that budgets derive from and the
//!   live-contention phase times the schedule reports (hit costs are
//!   contention-independent; only DRAM costs differ).
//!
//! Eligibility ([`replay_eligible`]) is exactly the set of runs where the
//! op-sequence invariance holds: LLC-staged PREM and baseline work (SPM
//! staging has no LLC what-if axis), no L1, and a co-runner mix whose
//! contention is constant and which never pollutes the LLC (pollution
//! volume depends on budgets, which depend on policy/seed).

use std::ops::Range;

use prem_gpusim::{ExecError, InterferenceEngine, PlatformConfig, Scenario};
use prem_memsim::{
    AccessKind, AccessOutcome, BusWindow, Cache, Contention, HitLevel, LineAddr, Phase, Policy,
    TraceSink,
};

use crate::budget::BudgetPolicy;
use crate::exec::{
    run_baseline_traced, run_prem_traced_reporting_profile, BaselineRun, NoiseModel, PremRun,
};
use crate::interval::IntervalSpec;
use crate::local_store::LocalStore;
use crate::metrics::Breakdown;
use crate::plan::{RunOutput, RunWork};
use crate::sync::PhaseTiming;

/// Whether a run is replay-derivable across the LLC policy/seed axes.
///
/// True exactly when the LLC's input op sequence is invariant in those
/// axes: LLC-PREM (fixed repetition) or baseline work, no L1 in front of
/// the LLC, and a co-runner mix under `scenario` that is time-invariant
/// (constant contention) and never pollutes the LLC.
pub fn replay_eligible(cfg: &PlatformConfig, work: RunWork, scenario: Scenario) -> bool {
    if cfg.l1.is_some() {
        return false;
    }
    match work {
        RunWork::PremLlc { .. } | RunWork::Baseline => {}
        // SPM staging bypasses the LLC: there is no policy/seed axis to
        // derive along (and the C-phase never touches the cache).
        RunWork::PremSpm => return false,
    }
    // Static/polluter properties are seed-independent, so probe with 0.
    let engine = InterferenceEngine::new(cfg.cpu.active_corunners(scenario), 0);
    engine.static_contention().is_some() && !engine.has_polluters()
}

/// One captured event of the LLC input sequence, in execution order.
#[derive(Copy, Clone, Debug)]
enum Entry {
    /// A PREM interval boundary (`begin_interval` on the PREM path; a pure
    /// cost-segment boundary on the baseline path).
    Interval,
    /// An M-phase begins (PREM only).
    MBegin,
    /// A C-phase begins (PREM only).
    CBegin,
    /// One cache access (line/kind/phase as the live run issued it).
    Access {
        line: LineAddr,
        kind: AccessKind,
        phase: Phase,
    },
    /// `n` warp arithmetic instructions charged between accesses.
    Compute { n: u64 },
}

/// The capturing sink: records the policy/seed-invariant input sequence.
///
/// Opts into deduplicated M-round delivery: a fixed repetition issues one
/// identical pass per round and this sink stores no outcomes, so recording
/// every round would store the same entries `r` times. The executor
/// delivers round 1 only; [`RunCapture::replay_for`] walks the recorded
/// round [`RunCapture::rounds`] times to reproduce the full sequence.
#[derive(Debug, Default)]
struct WhatIfSink {
    entries: Vec<Entry>,
}

impl TraceSink for WhatIfSink {
    const DEDUP_M_ROUNDS: bool = true;

    fn on_access(&mut self, line: LineAddr, kind: AccessKind, phase: Phase, _: &AccessOutcome) {
        self.entries.push(Entry::Access { line, kind, phase });
    }

    fn on_interval(&mut self) {
        self.entries.push(Entry::Interval);
    }

    fn on_phase(&mut self, phase: Phase, _cycles: f64) {
        match phase {
            Phase::MPhase => self.entries.push(Entry::MBegin),
            Phase::CPhase => self.entries.push(Entry::CBegin),
            Phase::Unphased | Phase::Corunner => {}
        }
    }

    fn on_compute(&mut self, n: u64) {
        self.entries.push(Entry::Compute { n });
    }
}

/// Which executor produced the capture (they segment differently).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum CaptureMode {
    Prem,
    Baseline,
}

/// A captured live run: everything needed to rebuild the [`RunOutput`] of
/// any policy/seed sibling without re-executing the simulator.
///
/// Produced by [`execute_run_captured`], consumed by
/// [`RunCapture::replay_for`].
#[derive(Clone, Debug)]
pub struct RunCapture {
    mode: CaptureMode,
    /// The representative's fully-resolved platform config — the defense
    /// baseline every sibling is checked against (equal modulo LLC
    /// policy/seed) and the source of geometry and cost constants.
    base_cfg: PlatformConfig,
    entries: Vec<Entry>,
    n_intervals: usize,
    /// Fixed M-phase prefetch rounds per interval (PREM mode only).
    rounds: u32,
    msg_cycles: f64,
    switch_cycles: f64,
    budget: BudgetPolicy,
    /// Constant C-phase / baseline bus contention of the mix.
    c_cont: Contention,
    /// M-phase contention (token held).
    m_cont: Contention,
    /// Mean contention used for the bus ledger.
    ledger_cont: Contention,
}

/// [`crate::execute_run`] with what-if capture: executes the run live and
/// additionally returns a [`RunCapture`] from which every LLC policy/seed
/// sibling's output can be derived by replay.
///
/// The returned output is bit-identical to what [`crate::execute_run`]
/// returns for the same request — capture is an observer.
///
/// # Panics
///
/// Panics when the request is not [`replay_eligible`] — capturing an
/// ineligible run would hand out a capture whose replays are wrong, so the
/// caller must gate on eligibility first.
///
/// # Errors
///
/// Exactly the [`crate::execute_run`] error conditions.
pub fn execute_run_captured(
    platform_cfg: &PlatformConfig,
    intervals: &[IntervalSpec],
    work: RunWork,
    seed: u64,
    scenario: Scenario,
    noise: NoiseModel,
) -> Result<(RunOutput, RunCapture), ExecError> {
    execute_run_captured_profiled(platform_cfg, intervals, work, seed, scenario, noise, None)
}

/// [`execute_run_captured`] with an optional memoized profiling result
/// from [`crate::profile_run`] — `Some` skips the representative's
/// profiling pass exactly as [`crate::execute_run_profiled`] does.
/// Capture and replay are unaffected: the capture records the timed run,
/// which is bit-identical either way.
///
/// # Panics
///
/// Panics when the request is not [`replay_eligible`], as for
/// [`execute_run_captured`].
///
/// # Errors
///
/// Exactly the [`crate::execute_run`] error conditions.
pub fn execute_run_captured_profiled(
    platform_cfg: &PlatformConfig,
    intervals: &[IntervalSpec],
    work: RunWork,
    seed: u64,
    scenario: Scenario,
    noise: NoiseModel,
    profiled: Option<(f64, f64)>,
) -> Result<(RunOutput, RunCapture), ExecError> {
    execute_run_captured_reporting_profile(
        platform_cfg,
        intervals,
        work,
        seed,
        scenario,
        noise,
        profiled,
    )
    .map(|(out, _, capture)| (out, capture))
}

/// Output of [`execute_run_captured_reporting_profile`]: the
/// representative's output, the `(m_wcet, c_wcet)` its budgets derive
/// from (`None` for baseline work), and the capture its siblings replay
/// from.
pub type CapturedReportedRun = (RunOutput, Option<(f64, f64)>, RunCapture);

/// [`execute_run_captured_profiled`], additionally returning the
/// `(m_wcet, c_wcet)` the representative's budgets derive from (`None`
/// for baseline work, which never profiles) — what the
/// plan layer backfills its profile memo with when the profiling pass is
/// fused into the representative's timed run (replay-eligible mixes are
/// always fusion-eligible: both require constant contention and no
/// polluters).
///
/// # Panics
///
/// Panics when the request is not [`replay_eligible`], as for
/// [`execute_run_captured`].
///
/// # Errors
///
/// Exactly the [`crate::execute_run`] error conditions.
pub fn execute_run_captured_reporting_profile(
    platform_cfg: &PlatformConfig,
    intervals: &[IntervalSpec],
    work: RunWork,
    seed: u64,
    scenario: Scenario,
    noise: NoiseModel,
    profiled: Option<(f64, f64)>,
) -> Result<CapturedReportedRun, ExecError> {
    assert!(
        replay_eligible(platform_cfg, work, scenario),
        "execute_run_captured: request is not replay-eligible"
    );
    let mut platform = platform_cfg.build();
    let mut sink = WhatIfSink::default();
    let engine = InterferenceEngine::new(platform_cfg.cpu.active_corunners(scenario), seed);
    let c_cont = engine
        .static_contention()
        .expect("eligible mixes have constant contention");

    let (output, wcets, mode, rounds, msg_cycles, switch_cycles, budget) = match work
        .prem_config(seed, noise)
    {
        Some(cfg) => {
            let msg_cycles = platform.us_to_cycles(cfg.sync.msg_us);
            let switch_cycles = platform.us_to_cycles(cfg.sync.switch_cost_us());
            let rounds = match &cfg.store {
                LocalStore::Llc { prefetch } => {
                    assert!(
                        !prefetch.adaptive(),
                        "adaptive prefetch round counts depend on policy/seed"
                    );
                    prefetch.max_rounds()
                }
                LocalStore::Spm { .. } => unreachable!("SPM work is not replay-eligible"),
            };
            let (run, wcets) = run_prem_traced_reporting_profile(
                &mut platform,
                intervals,
                &cfg,
                scenario,
                profiled,
                &mut sink,
            )?;
            (
                RunOutput::Prem(run),
                Some(wcets),
                CaptureMode::Prem,
                rounds,
                msg_cycles,
                switch_cycles,
                cfg.budget,
            )
        }
        None => {
            let run =
                run_baseline_traced(&mut platform, intervals, seed, scenario, noise, &mut sink)?;
            (
                RunOutput::Baseline(run),
                None,
                CaptureMode::Baseline,
                0,
                0.0,
                0.0,
                BudgetPolicy::fair(),
            )
        }
    };

    let capture = RunCapture {
        mode,
        base_cfg: platform_cfg.clone(),
        entries: sink.entries,
        n_intervals: intervals.len(),
        rounds,
        msg_cycles,
        switch_cycles,
        budget,
        c_cont,
        m_cont: platform_cfg.cpu.m_phase_contention(),
        ledger_cont: engine.mean_contention(),
    };
    Ok((output, wcets, capture))
}

/// Strips the replay-variant axes off a platform config: LLC policy and
/// seed are forced to fixed canonical values so two configs compare equal
/// exactly when they agree on everything replay preserves.
fn strip_llc_axes(cfg: &PlatformConfig) -> PlatformConfig {
    let mut stripped = cfg.clone();
    stripped.llc = stripped.llc.policy(Policy::Lru).seed(0);
    stripped
}

impl RunCapture {
    /// Derives the full [`RunOutput`] of the sibling request resolving to
    /// `cfg` with run seed `seed`, by replaying the captured sequence
    /// against a mirror cache under the sibling's LLC policy/seed.
    ///
    /// The result is bit-identical to executing the sibling live — the
    /// contract the plan layer's equivalence suite proves.
    ///
    /// # Panics
    ///
    /// Panics when `cfg` differs from the captured representative's config
    /// anywhere other than the LLC policy/seed — that means the caller
    /// grouped requests into a family whose members are not actually
    /// derivable from each other.
    pub fn replay_for(&self, cfg: &PlatformConfig, seed: u64) -> RunOutput {
        assert!(
            strip_llc_axes(cfg) == strip_llc_axes(&self.base_cfg),
            "replay_for: sibling config differs from the captured \
             representative beyond the LLC policy/seed axes"
        );
        // The sibling's mirror cache: captured geometry, sibling policy,
        // reseeded exactly as the live run reseeds after the cold build.
        let mut llc = Cache::new(cfg.llc.clone());
        llc.reseed(seed);

        let cost = &self.base_cfg.cost;
        // Per-op cost constants: the same pure cost-model functions the
        // live executor charges, evaluated once.
        let llc_hit = cost.access_cost(HitLevel::Llc, self.c_cont);
        let dram_live = cost.access_cost(HitLevel::Dram, self.c_cont);
        let dram_iso = cost.access_cost(HitLevel::Dram, Contention::Isolated);
        let pf_hit = cost.prefetch_cost(true, self.m_cont);
        let pf_miss = cost.prefetch_cost(false, self.m_cont);

        match self.mode {
            CaptureMode::Baseline => {
                let mut cycles = 0.0f64;
                for seg in self.baseline_segments() {
                    // Fresh accumulator per interval, folded in order —
                    // the live executor's exact summation structure. The
                    // epoch never advances: the live baseline never calls
                    // `begin_interval`.
                    let mut out_cycles = 0.0f64;
                    for e in &self.entries[seg] {
                        match *e {
                            Entry::Access { line, kind, phase } => {
                                let out = llc.access(line, kind, phase);
                                out_cycles += if out.hit { llc_hit } else { dram_live };
                            }
                            Entry::Compute { n } => out_cycles += cost.alu_cost(n),
                            Entry::Interval | Entry::MBegin | Entry::CBegin => {
                                unreachable!("marker inside a baseline segment")
                            }
                        }
                    }
                    cycles += out_cycles;
                }
                RunOutput::Baseline(BaselineRun {
                    cycles,
                    llc: llc.stats().clone(),
                })
            }
            CaptureMode::Prem => {
                let segments = self.prem_segments();
                let rounds = self.rounds.max(1) as usize;
                // Walk: per-interval (M-work, C-live, C-isolated, C DRAM
                // fills). The isolated accumulator reproduces the
                // profiling pass (identical trajectory, isolated DRAM
                // cost); the live accumulator reproduces the timed run.
                let mut per_iv = Vec::with_capacity(segments.len());
                let mut prefetch_hits = 0u64;
                let mut prefetch_misses = 0u64;
                for (m_range, c_range) in segments {
                    llc.begin_interval();
                    // The capture stores one M round (the sink deduplicates
                    // the fixed repetition); walking it `rounds` times feeds
                    // the mirror the exact live access sequence — repeats
                    // hit or miss per the *sibling's* trajectory, so every
                    // round must still flow through the mirror cache.
                    let m_entries = &self.entries[m_range];
                    let mut m_work = 0.0f64;
                    for _round in 0..rounds {
                        let mut cycles = 0.0f64;
                        for e in m_entries {
                            match *e {
                                Entry::Access { line, kind, phase } => {
                                    let out = llc.access(line, kind, phase);
                                    if out.hit {
                                        prefetch_hits += 1;
                                        cycles += pf_hit;
                                    } else {
                                        prefetch_misses += 1;
                                        cycles += pf_miss;
                                    }
                                }
                                Entry::Compute { n } => cycles += cost.alu_cost(n),
                                Entry::Interval | Entry::MBegin | Entry::CBegin => {
                                    unreachable!("marker inside an M-phase segment")
                                }
                            }
                        }
                        m_work += cycles;
                    }
                    let mut c_live = 0.0f64;
                    let mut c_iso = 0.0f64;
                    let mut c_dram = 0u64;
                    for e in &self.entries[c_range] {
                        match *e {
                            Entry::Access { line, kind, phase } => {
                                let out = llc.access(line, kind, phase);
                                if out.hit {
                                    c_live += llc_hit;
                                    c_iso += llc_hit;
                                } else {
                                    c_dram += 1;
                                    c_live += dram_live;
                                    c_iso += dram_iso;
                                }
                            }
                            Entry::Compute { n } => {
                                let a = cost.alu_cost(n);
                                c_live += a;
                                c_iso += a;
                            }
                            Entry::Interval | Entry::MBegin | Entry::CBegin => {
                                unreachable!("marker inside a C-phase segment")
                            }
                        }
                    }
                    per_iv.push((m_work, c_live, c_iso, c_dram));
                }

                let mut m_wcet = 0.0f64;
                let mut c_wcet = 0.0f64;
                for &(m_work, _, c_iso, _) in &per_iv {
                    m_wcet = m_wcet.max(m_work);
                    c_wcet = c_wcet.max(c_iso);
                }
                let budgets = self.budget.compute(m_wcet, c_wcet, self.msg_cycles);

                let mut breakdown = Breakdown::default();
                let mut budget_violation = 0.0f64;
                let mut interval_timings = Vec::with_capacity(per_iv.len());
                let mut bus = BusWindow::default();
                for &(m_work, c_live, _, c_dram) in &per_iv {
                    let m_t = PhaseTiming::in_slot(m_work, self.msg_cycles);
                    let c_t = PhaseTiming::in_slot(c_live, self.msg_cycles);
                    bus.merge(&cost.dram.account_window(
                        c_t.elapsed(),
                        c_dram as f64 * cost.line_bytes as f64,
                        self.ledger_cont,
                    ));
                    breakdown.m_work += m_t.work;
                    breakdown.c_work += c_t.work;
                    breakdown.idle += m_t.idle + c_t.idle;
                    breakdown.sync += 2.0 * self.switch_cycles;
                    budget_violation +=
                        (m_work - budgets.m_cycles).max(0.0) + (c_live - budgets.c_cycles).max(0.0);
                    interval_timings.push((m_t, c_t));
                }

                let llc_stats = llc.stats().clone();
                let cpmr = llc_stats.cpmr();
                let budget_envelope_cycles = self.n_intervals as f64
                    * (budgets.interval_cycles() + 2.0 * self.switch_cycles);
                RunOutput::Prem(PremRun {
                    intervals: self.n_intervals,
                    makespan_cycles: breakdown.total(),
                    breakdown,
                    budget_envelope_cycles,
                    budgets,
                    llc: llc_stats,
                    cpmr,
                    prefetch_hits,
                    prefetch_misses,
                    // Fixed-repetition staging uses every round in every
                    // interval (a zero-interval run uses none).
                    max_rounds_used: if self.n_intervals == 0 {
                        0
                    } else {
                        self.rounds
                    },
                    budget_violation_cycles: budget_violation,
                    interval_timings,
                    bus,
                    // Eligible mixes have no cache-thrashing actors.
                    polluted_lines: 0,
                })
            }
        }
    }

    /// Splits a PREM capture into per-interval (M-entries, C-entries)
    /// ranges, following the `Interval, MBegin, …, CBegin, …` layout the
    /// executor emits.
    fn prem_segments(&self) -> Vec<(Range<usize>, Range<usize>)> {
        let mut segments = Vec::with_capacity(self.n_intervals);
        let mut i = 0;
        while i < self.entries.len() {
            assert!(matches!(self.entries[i], Entry::Interval), "capture layout");
            assert!(
                matches!(self.entries[i + 1], Entry::MBegin),
                "capture layout"
            );
            let m_start = i + 2;
            let mut j = m_start;
            while !matches!(self.entries[j], Entry::CBegin) {
                j += 1;
            }
            let c_start = j + 1;
            let mut k = c_start;
            while k < self.entries.len() && !matches!(self.entries[k], Entry::Interval) {
                k += 1;
            }
            segments.push((m_start..j, c_start..k));
            i = k;
        }
        assert_eq!(segments.len(), self.n_intervals, "capture layout");
        segments
    }

    /// Splits a baseline capture into per-interval entry ranges (segments
    /// between `Interval` markers).
    fn baseline_segments(&self) -> Vec<Range<usize>> {
        let mut segments = Vec::with_capacity(self.n_intervals);
        let mut i = 0;
        while i < self.entries.len() {
            assert!(matches!(self.entries[i], Entry::Interval), "capture layout");
            let start = i + 1;
            let mut j = start;
            while j < self.entries.len() && !matches!(self.entries[j], Entry::Interval) {
                j += 1;
            }
            segments.push(start..j);
            i = j;
        }
        assert_eq!(segments.len(), self.n_intervals, "capture layout");
        segments
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::execute_run;
    use crate::interval::CAccess;
    use prem_gpusim::CorunnerProfile;

    /// A toy kernel whose footprint overflows a small biased cache, so
    /// policy and seed actually change the trajectory.
    fn toy_intervals() -> Vec<IntervalSpec> {
        (0..6)
            .map(|i| {
                let lines: Vec<_> = (0..96u64).map(|j| LineAddr::new(i * 96 + j)).collect();
                let accesses = lines.iter().map(|&l| CAccess::read(l)).collect();
                IntervalSpec::new(lines, accesses, 256)
            })
            .collect()
    }

    fn small_platform(policy: Policy, seed: u64) -> PlatformConfig {
        let mut cfg = PlatformConfig::generic(32, 4, 64);
        cfg = cfg.llc_policy(policy).llc_seed(seed);
        cfg
    }

    fn sibling_axis() -> Vec<(Policy, u64)> {
        let mut axis = Vec::new();
        for policy in [Policy::nvidia_like(4), Policy::Lru, Policy::Random] {
            for seed in [11u64, 23, 47] {
                axis.push((policy.clone(), seed));
            }
        }
        axis
    }

    #[test]
    fn captured_output_is_bit_identical_to_uncaptured() {
        let cfg = small_platform(Policy::nvidia_like(4), 11);
        let ivs = toy_intervals();
        for work in [RunWork::PremLlc { r: 4 }, RunWork::Baseline] {
            let live =
                execute_run(&cfg, &ivs, work, 11, Scenario::Isolation, NoiseModel::tx1()).unwrap();
            let (captured, _) =
                execute_run_captured(&cfg, &ivs, work, 11, Scenario::Isolation, NoiseModel::tx1())
                    .unwrap();
            assert_eq!(live, captured, "{work:?}: capture perturbed the run");
        }
    }

    #[test]
    fn replay_matches_live_for_every_policy_seed_sibling() {
        let ivs = toy_intervals();
        for work in [RunWork::PremLlc { r: 4 }, RunWork::Baseline] {
            for scenario in [Scenario::Isolation, Scenario::Interference] {
                let rep_cfg = small_platform(Policy::nvidia_like(4), 11);
                let (_, capture) =
                    execute_run_captured(&rep_cfg, &ivs, work, 11, scenario, NoiseModel::tx1())
                        .unwrap();
                for (policy, seed) in sibling_axis() {
                    let sib_cfg = small_platform(policy, seed);
                    let live = execute_run(&sib_cfg, &ivs, work, seed, scenario, NoiseModel::tx1())
                        .unwrap();
                    let replayed = capture.replay_for(&sib_cfg, seed);
                    assert_eq!(
                        live, replayed,
                        "{work:?}/{scenario:?} sibling seed {seed} diverged"
                    );
                }
            }
        }
    }

    #[test]
    fn eligibility_rules() {
        let cfg = PlatformConfig::tx1();
        let llc = RunWork::PremLlc { r: 8 };
        assert!(replay_eligible(&cfg, llc, Scenario::Isolation));
        assert!(replay_eligible(&cfg, llc, Scenario::Interference));
        assert!(replay_eligible(
            &cfg,
            RunWork::Baseline,
            Scenario::Interference
        ));
        // SPM has no LLC what-if axis.
        assert!(!replay_eligible(
            &cfg,
            RunWork::PremSpm,
            Scenario::Isolation
        ));
        // Pollution volume depends on budgets, budgets on policy/seed.
        let thrash = cfg
            .clone()
            .with_corunners(vec![CorunnerProfile::CacheThrash]);
        assert!(!replay_eligible(&thrash, llc, Scenario::Corunners));
        // Time-varying demand breaks the constant-contention fast path.
        let bursty = cfg.clone().with_corunners(vec![CorunnerProfile::Bursty {
            duty: 0.5,
            period_cycles: 10_000.0,
        }]);
        assert!(!replay_eligible(&bursty, llc, Scenario::Corunners));
        // The same mixes are eligible when the scenario never activates them.
        assert!(replay_eligible(&thrash, llc, Scenario::Isolation));
    }

    #[test]
    #[should_panic(expected = "beyond the LLC policy/seed axes")]
    fn replay_for_rejects_foreign_configs() {
        let ivs = toy_intervals();
        let cfg = small_platform(Policy::Lru, 11);
        let (_, capture) = execute_run_captured(
            &cfg,
            &ivs,
            RunWork::PremLlc { r: 2 },
            11,
            Scenario::Isolation,
            NoiseModel::off(),
        )
        .unwrap();
        // Same family axes, different geometry: must be refused.
        let foreign = PlatformConfig::generic(64, 4, 64);
        capture.replay_for(&foreign, 11);
    }

    #[test]
    #[should_panic(expected = "not replay-eligible")]
    fn capture_rejects_ineligible_work() {
        let ivs = toy_intervals();
        let cfg = PlatformConfig::tx1();
        let _ = execute_run_captured(
            &cfg,
            &ivs,
            RunWork::PremSpm,
            11,
            Scenario::Isolation,
            NoiseModel::off(),
        );
    }
}
