//! # prem-core — the Predictable Execution Model with tamed GPU caches
//!
//! This crate implements the contribution of Forsberg, Benini, Marongiu,
//! *"Taming Data Caches for Predictable Execution on GPU-based SoCs"*
//! (DATE 2019): executing GPU kernels as PREM interval schedules whose
//! memory phases stage data into the **last-level cache** using **repeated
//! prefetches** to defeat the biased-random replacement policy, with
//! watchdog-timer synchronization and phase budgeting.
//!
//! The moving parts:
//!
//! * [`IntervalSpec`] — a store-agnostic PREM interval (staged footprint +
//!   compute accesses), produced by kernel tilings (`prem-kernels`).
//! * [`LocalStore`] — SPM (explicit copies + `transl_addr` overhead) versus
//!   LLC (prefetches, optionally repeated: [`PrefetchStrategy`]).
//! * [`SyncConfig`] / [`BudgetPolicy`] — the token-exchange protocol with
//!   its minimum synchronization granularity (MSG), and WCET budgeting
//!   (fair co-scheduling by default, as in the paper's evaluation).
//! * [`run_prem`] / [`run_baseline`] — the executors producing
//!   [`Breakdown`]s, makespans and the **CPMR** predictability metric.
//! * [`analytic`] — the paper's coin-toss and good-way-capacity models for
//!   cross-checking the simulator.
//! * [`plan`] — the `RunRequest → run_prem / run_baseline` bridge the
//!   run-plan layer (`prem-harness::plan`) executes canonical requests
//!   through.
//! * [`codec`] — versioned, bit-exact binary serialization of executed
//!   [`RunOutput`]s, the payload format of the persistent run store
//!   (`prem-harness::store`).
//!
//! ```
//! use prem_core::{run_prem, CAccess, IntervalSpec, PremConfig};
//! use prem_gpusim::{PlatformConfig, Scenario};
//! use prem_memsim::LineAddr;
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut platform = PlatformConfig::tx1().build();
//! let lines: Vec<_> = (0..256u64).map(LineAddr::new).collect();
//! let accesses: Vec<_> = lines.iter().map(|&l| CAccess::read(l)).collect();
//! let interval = IntervalSpec::new(lines, accesses, 512);
//! let run = run_prem(&mut platform, &[interval], &PremConfig::llc_tamed(),
//!                    Scenario::Isolation)?;
//! assert!(run.cpmr < 0.01); // tamed: compute phase hits
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analytic;
mod budget;
pub mod codec;
mod exec;
mod interval;
mod local_store;
mod metrics;
pub mod plan;
pub mod schedulability;
mod sync;
mod tiling;
pub mod whatif;

pub use budget::{BudgetPolicy, Budgets};
pub use codec::CODEC_VERSION;
pub use exec::{
    profile_phases, run_baseline, run_baseline_traced, run_prem, run_prem_traced,
    run_prem_traced_reporting_profile, run_prem_traced_with_profile, run_prem_with_profile,
    BaselineRun, NoiseModel, PremConfig, PremRun,
};
pub use interval::{CAccess, IntervalSpec};
pub use local_store::{LocalStore, PrefetchStrategy};
pub use metrics::{sensitivity, speedup, Breakdown};
pub use plan::{
    execute_run, execute_run_profiled, execute_run_reporting_profile, profile_run, RunOutput,
    RunWork,
};
pub use sync::{PhaseTiming, SyncConfig};
pub use tiling::{check_tiling, rows_per_interval, TilingError};
pub use whatif::{
    execute_run_captured, execute_run_captured_profiled, execute_run_captured_reporting_profile,
    replay_eligible, RunCapture,
};
