//! System-level schedulability analysis for PREM co-schedules.
//!
//! The paper's motivation is real-time certification: PREM turns memory
//! interference into a *schedulable resource*. This module provides the
//! corresponding analysis: the GPU's worst-case response time is its budget
//! envelope, and the CPU side receives the DRAM token exactly during GPU
//! C-phase slots — so CPU memory phases are feasible iff their demand fits
//! that supply.

use crate::budget::Budgets;
use crate::exec::PremRun;
use crate::sync::SyncConfig;

/// One CPU-side PREM task (times in µs).
#[derive(Clone, Debug, PartialEq)]
pub struct CpuTask {
    /// Task name (diagnostics).
    pub name: String,
    /// Worst-case compute time per job (runs without the token).
    pub compute_us: f64,
    /// Worst-case memory-phase time per job (needs the DRAM token).
    pub memory_us: f64,
    /// Activation period.
    pub period_us: f64,
}

impl CpuTask {
    /// Creates a task.
    ///
    /// # Panics
    ///
    /// Panics if the period is not positive or demands are negative.
    pub fn new(name: impl Into<String>, compute_us: f64, memory_us: f64, period_us: f64) -> Self {
        assert!(period_us > 0.0 && compute_us >= 0.0 && memory_us >= 0.0);
        CpuTask {
            name: name.into(),
            compute_us,
            memory_us,
            period_us,
        }
    }

    /// Total CPU utilization of the task.
    pub fn utilization(&self) -> f64 {
        (self.compute_us + self.memory_us) / self.period_us
    }

    /// DRAM-token utilization of the task.
    pub fn token_utilization(&self) -> f64 {
        self.memory_us / self.period_us
    }
}

/// Outcome of the system analysis.
#[derive(Clone, Debug, PartialEq)]
pub struct SystemAnalysis {
    /// GPU worst-case response time (µs): the budget envelope.
    pub gpu_wcrt_us: f64,
    /// Fraction of time the CPU holds the DRAM token (GPU C-phase slots
    /// over the whole schedule).
    pub token_supply: f64,
    /// Aggregate CPU token demand of the task set.
    pub token_demand: f64,
    /// Aggregate CPU utilization of the task set.
    pub cpu_utilization: f64,
    /// Whether the task set is feasible under the co-schedule.
    pub feasible: bool,
}

/// GPU worst-case response time (µs) from a profiled run: the static
/// budget envelope converted at `clock_ghz`.
pub fn gpu_wcrt_us(run: &PremRun, clock_ghz: f64) -> f64 {
    run.budget_envelope_cycles / (clock_ghz * 1000.0)
}

/// The fraction of schedule time during which the CPU holds the DRAM token
/// under the budgeted co-schedule: C-slots over (M-slots + C-slots + sync).
pub fn token_supply(budgets: &Budgets, sync: &SyncConfig, clock_ghz: f64) -> f64 {
    let switch = sync.switch_cost_us() * clock_ghz * 1000.0;
    budgets.c_cycles / (budgets.interval_cycles() + 2.0 * switch)
}

/// Analyzes a CPU task set co-scheduled with a profiled GPU PREM run.
///
/// Feasibility requires (a) the CPU cores not being overloaded
/// (`Σ util ≤ cpu_cores`) and (b) the memory-phase demand fitting the token
/// windows the GPU schedule exposes.
pub fn analyze(
    run: &PremRun,
    sync: &SyncConfig,
    clock_ghz: f64,
    tasks: &[CpuTask],
    cpu_cores: usize,
) -> SystemAnalysis {
    let supply = token_supply(&run.budgets, sync, clock_ghz);
    let token_demand: f64 = tasks.iter().map(CpuTask::token_utilization).sum();
    let cpu_utilization: f64 = tasks.iter().map(CpuTask::utilization).sum();
    SystemAnalysis {
        gpu_wcrt_us: gpu_wcrt_us(run, clock_ghz),
        token_supply: supply,
        token_demand,
        cpu_utilization,
        feasible: token_demand <= supply && cpu_utilization <= cpu_cores as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{run_prem, PremConfig};
    use crate::interval::{CAccess, IntervalSpec};
    use prem_gpusim::{PlatformConfig, Scenario};
    use prem_memsim::LineAddr;

    fn sample_run() -> (PremRun, f64) {
        let mut p = PlatformConfig::tx1().build();
        let intervals: Vec<IntervalSpec> = (0..4)
            .map(|i| {
                let lines: Vec<_> = (0..256u64).map(|j| LineAddr::new(i * 256 + j)).collect();
                let acc = lines.iter().map(|&l| CAccess::read(l)).collect();
                IntervalSpec::new(lines, acc, 512)
            })
            .collect();
        let run = run_prem(
            &mut p,
            &intervals,
            &PremConfig::llc_tamed(),
            Scenario::Isolation,
        )
        .unwrap();
        (run, p.clock_ghz)
    }

    #[test]
    fn fair_budgets_give_roughly_half_supply() {
        let (run, clock) = sample_run();
        let supply = token_supply(&run.budgets, &SyncConfig::tx1(), clock);
        assert!((0.35..0.5).contains(&supply), "supply {supply}");
    }

    #[test]
    fn light_task_set_is_feasible() {
        let (run, clock) = sample_run();
        let tasks = vec![
            CpuTask::new("lidar", 500.0, 100.0, 10_000.0),
            CpuTask::new("control", 200.0, 50.0, 5_000.0),
        ];
        let a = analyze(&run, &SyncConfig::tx1(), clock, &tasks, 4);
        assert!(a.feasible, "{a:?}");
        assert!(a.gpu_wcrt_us > 0.0);
    }

    #[test]
    fn token_saturation_is_infeasible() {
        let (run, clock) = sample_run();
        // One task that wants the token 80% of the time.
        let tasks = vec![CpuTask::new("bomb", 0.0, 800.0, 1_000.0)];
        let a = analyze(&run, &SyncConfig::tx1(), clock, &tasks, 4);
        assert!(!a.feasible);
        assert!(a.token_demand > a.token_supply);
    }

    #[test]
    fn core_overload_is_infeasible() {
        let (run, clock) = sample_run();
        let tasks = vec![CpuTask::new("spin", 900.0, 0.0, 1_000.0); 5];
        let a = analyze(&run, &SyncConfig::tx1(), clock, &tasks, 4);
        assert!(!a.feasible);
        assert!(a.cpu_utilization > 4.0);
    }

    #[test]
    fn wcrt_is_envelope() {
        let (run, clock) = sample_run();
        let wcrt = gpu_wcrt_us(&run, clock);
        assert!((wcrt - run.budget_envelope_cycles / 1000.0).abs() < 1e-9);
        assert!(wcrt * 1000.0 >= run.makespan_cycles);
    }

    #[test]
    #[should_panic]
    fn zero_period_rejected() {
        CpuTask::new("bad", 1.0, 1.0, 0.0);
    }
}
