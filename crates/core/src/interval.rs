//! PREM intervals: the unit of predictable execution.
//!
//! A PREM interval (paper Fig 1) couples a *memory phase* that stages a
//! bounded data footprint into local memory with a *compute phase* that is
//! guaranteed to operate on local data only. [`IntervalSpec`] is the
//! store-agnostic description produced by kernel tilings; the
//! [`LocalStore`](crate::LocalStore) strategy lowers it to concrete op
//! streams.

use prem_memsim::LineAddr;

/// One compute-phase line touch.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct CAccess {
    /// The line touched.
    pub line: LineAddr,
    /// Whether the touch writes (affects writeback traffic).
    pub write: bool,
}

impl CAccess {
    /// A read touch.
    pub fn read(line: LineAddr) -> Self {
        CAccess { line, write: false }
    }

    /// A write touch.
    pub fn write(line: LineAddr) -> Self {
        CAccess { line, write: true }
    }
}

/// Store-agnostic description of one PREM interval.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IntervalSpec {
    /// Unique lines the M-phase must stage (inputs and outputs).
    pub footprint: Vec<LineAddr>,
    /// Ordered compute-phase line touches.
    pub c_accesses: Vec<CAccess>,
    /// Warp-level arithmetic instructions executed by the compute phase.
    pub alu: u64,
}

impl IntervalSpec {
    /// Creates an interval from its parts.
    pub fn new(footprint: Vec<LineAddr>, c_accesses: Vec<CAccess>, alu: u64) -> Self {
        IntervalSpec {
            footprint,
            c_accesses,
            alu,
        }
    }

    /// Data footprint in bytes for the given line size.
    pub fn footprint_bytes(&self, line_bytes: usize) -> usize {
        self.footprint.len() * line_bytes
    }

    /// Lines written by the compute phase (deduplicated, stable order).
    pub fn written_lines(&self) -> Vec<LineAddr> {
        let mut seen = std::collections::HashSet::new();
        self.c_accesses
            .iter()
            .filter(|a| a.write)
            .filter(|a| seen.insert(a.line))
            .map(|a| a.line)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(n: u64) -> LineAddr {
        LineAddr::new(n)
    }

    #[test]
    fn footprint_bytes_scales_with_line_size() {
        let iv = IntervalSpec::new(vec![l(0), l(1), l(2)], vec![], 0);
        assert_eq!(iv.footprint_bytes(128), 384);
        assert_eq!(iv.footprint_bytes(64), 192);
    }

    #[test]
    fn written_lines_dedup_preserves_order() {
        let iv = IntervalSpec::new(
            vec![l(0), l(1)],
            vec![
                CAccess::read(l(0)),
                CAccess::write(l(1)),
                CAccess::write(l(0)),
                CAccess::write(l(1)),
            ],
            0,
        );
        assert_eq!(iv.written_lines(), vec![l(1), l(0)]);
    }
}
