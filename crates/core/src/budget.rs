//! Phase budgeting: turning measured phase times into watchdog budgets.
//!
//! The paper budgets phases against a measured WCET plus the MSG floor, and
//! in the evaluation (§V) "co-schedules the TX1 CPU and GPU so that both
//! devices get an equal share of the memory bandwidth … by budgeting the M-
//! and C-phases to equal length" — [`BudgetPolicy::Fair`].

/// Budgets assigned to the two phases of every interval (cycles).
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Budgets {
    /// M-phase slot length.
    pub m_cycles: f64,
    /// C-phase slot length.
    pub c_cycles: f64,
}

impl Budgets {
    /// Total slot length of one interval (excluding switch costs).
    pub fn interval_cycles(&self) -> f64 {
        self.m_cycles + self.c_cycles
    }
}

/// How budgets are derived from profiled worst-case phase times.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum BudgetPolicy {
    /// Equal M and C slots — the paper's fair co-scheduling (§V): both
    /// devices get half of the memory-token time.
    Fair {
        /// Safety margin applied to the measured WCET (e.g. `0.1` = +10 %).
        margin: f64,
    },
    /// Independent slots per phase (tighter schedule, CPU gets less DRAM
    /// time; used for ablations).
    PerPhase {
        /// Safety margin applied to the measured WCET.
        margin: f64,
    },
}

impl BudgetPolicy {
    /// Fair co-scheduling with the default 10 % margin.
    pub fn fair() -> Self {
        BudgetPolicy::Fair { margin: 0.1 }
    }

    /// Computes budgets from profiled worst-case phase work, flooring each
    /// slot at the MSG.
    pub fn compute(&self, m_wcet: f64, c_wcet: f64, msg_cycles: f64) -> Budgets {
        match *self {
            BudgetPolicy::Fair { margin } => {
                let slot = (m_wcet.max(c_wcet) * (1.0 + margin)).max(msg_cycles);
                Budgets {
                    m_cycles: slot,
                    c_cycles: slot,
                }
            }
            BudgetPolicy::PerPhase { margin } => Budgets {
                m_cycles: (m_wcet * (1.0 + margin)).max(msg_cycles),
                c_cycles: (c_wcet * (1.0 + margin)).max(msg_cycles),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fair_budgets_are_equal_and_floored() {
        let b = BudgetPolicy::Fair { margin: 0.0 }.compute(30.0, 10.0, 50.0);
        assert_eq!(b.m_cycles, 50.0);
        assert_eq!(b.c_cycles, 50.0);
        let b = BudgetPolicy::Fair { margin: 0.0 }.compute(80.0, 10.0, 50.0);
        assert_eq!(b.m_cycles, 80.0);
        assert_eq!(b.c_cycles, 80.0);
    }

    #[test]
    fn per_phase_budgets_are_independent() {
        let b = BudgetPolicy::PerPhase { margin: 0.0 }.compute(80.0, 10.0, 50.0);
        assert_eq!(b.m_cycles, 80.0);
        assert_eq!(b.c_cycles, 50.0); // floored at MSG
    }

    #[test]
    fn margin_inflates_wcet() {
        let b = BudgetPolicy::Fair { margin: 0.1 }.compute(100.0, 100.0, 0.0);
        assert!((b.m_cycles - 110.0).abs() < 1e-9);
    }

    #[test]
    fn interval_cycles_sums_slots() {
        let b = Budgets {
            m_cycles: 10.0,
            c_cycles: 20.0,
        };
        assert_eq!(b.interval_cycles(), 30.0);
    }
}
