//! Binary serialization of executed run results.
//!
//! The persistent run cache (`prem-harness::store`) needs [`RunOutput`]s
//! that survive the process: this module gives the result types a compact,
//! versioned, bit-exact binary encoding in the style of `prem-trace`'s
//! `PRTC` format — varint integers, fixed 8-byte little-endian IEEE-754
//! bit patterns for every `f64` (so a decoded run compares equal to the
//! executed one field-for-field, which is what makes a disk hit
//! indistinguishable from a live execution), and hard
//! [`InvalidData`](std::io::ErrorKind::InvalidData) /
//! [`UnexpectedEof`](std::io::ErrorKind::UnexpectedEof) errors on
//! corruption or truncation.
//!
//! The encoding is a pure field dump behind a one-byte variant tag; it
//! carries no magic or version of its own. Container framing — magic,
//! format version, record lengths, checksums — is the store's job, and the
//! store couples its records to [`CODEC_VERSION`]: any change to the
//! layout encoded here (field added, removed, reordered, re-typed) must
//! bump that constant so stale caches are rejected instead of misread.

use std::io::{self, Read, Write};

use prem_memsim::{AccessCounts, BusWindow, CacheStats};

use crate::budget::Budgets;
use crate::metrics::Breakdown;
use crate::plan::RunOutput;
use crate::sync::PhaseTiming;
use crate::{BaselineRun, PremRun};

/// Version of the [`RunOutput`] field layout encoded by this module.
///
/// Persisted alongside the store's own format version in every segment
/// header: a store written with a different codec version is rejected as
/// a whole (hard error) rather than decoded into garbage.
pub const CODEC_VERSION: u8 = 1;

/// Variant tags (first byte of an encoded [`RunOutput`]).
const TAG_PREM: u8 = 0;
const TAG_BASELINE: u8 = 1;

/// An [`InvalidData`](io::ErrorKind::InvalidData) error with a message —
/// the hard-error constructor every decoder in the workspace shares.
pub fn bad_data(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Writes `v` as an LEB128-style varint (7 data bits per byte, high bit =
/// continuation) — the integer encoding shared by the run-output codec,
/// the persistent store's container format and the wire request codec.
pub fn write_varint<W: Write>(w: &mut W, mut v: u64) -> io::Result<()> {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

/// Reads one byte, with truncation surfacing as
/// [`UnexpectedEof`](io::ErrorKind::UnexpectedEof).
pub fn read_u8<R: Read>(r: &mut R) -> io::Result<u8> {
    let mut buf = [0u8; 1];
    r.read_exact(&mut buf)?;
    Ok(buf[0])
}

/// Reads one varint written by [`write_varint`].
///
/// # Errors
///
/// [`InvalidData`](io::ErrorKind::InvalidData) when the encoding overflows
/// a `u64`, [`UnexpectedEof`](io::ErrorKind::UnexpectedEof) on truncation.
pub fn read_varint<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = read_u8(r)?;
        if shift >= 64 || (shift == 63 && byte > 1) {
            return Err(bad_data("varint overflows u64"));
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// `f64`s are stored as their IEEE-754 bit pattern, little-endian, fixed
/// width: round trips are bit-exact by construction (varint-compressing
/// cycle counts would save nothing — they are full-precision reals).
pub fn write_f64<W: Write>(w: &mut W, v: f64) -> io::Result<()> {
    w.write_all(&v.to_bits().to_le_bytes())
}

/// Reads one `f64` written by [`write_f64`], bit-exact.
pub fn read_f64<R: Read>(r: &mut R) -> io::Result<f64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(f64::from_bits(u64::from_le_bytes(buf)))
}

fn write_counts<W: Write>(w: &mut W, c: &AccessCounts) -> io::Result<()> {
    write_varint(w, c.hits)?;
    write_varint(w, c.misses)
}

fn read_counts<R: Read>(r: &mut R) -> io::Result<AccessCounts> {
    Ok(AccessCounts {
        hits: read_varint(r)?,
        misses: read_varint(r)?,
    })
}

fn write_stats<W: Write>(w: &mut W, s: &CacheStats) -> io::Result<()> {
    write_counts(w, &s.m_phase)?;
    write_counts(w, &s.c_phase)?;
    write_counts(w, &s.unphased)?;
    write_counts(w, &s.corunner)?;
    write_varint(w, s.evictions)?;
    write_varint(w, s.self_evictions)?;
    write_varint(w, s.corunner_evictions)?;
    write_varint(w, s.writebacks)
}

fn read_stats<R: Read>(r: &mut R) -> io::Result<CacheStats> {
    Ok(CacheStats {
        m_phase: read_counts(r)?,
        c_phase: read_counts(r)?,
        unphased: read_counts(r)?,
        corunner: read_counts(r)?,
        evictions: read_varint(r)?,
        self_evictions: read_varint(r)?,
        corunner_evictions: read_varint(r)?,
        writebacks: read_varint(r)?,
    })
}

fn write_timing<W: Write>(w: &mut W, t: &PhaseTiming) -> io::Result<()> {
    write_f64(w, t.work)?;
    write_f64(w, t.idle)?;
    write_f64(w, t.overrun)
}

fn read_timing<R: Read>(r: &mut R) -> io::Result<PhaseTiming> {
    Ok(PhaseTiming {
        work: read_f64(r)?,
        idle: read_f64(r)?,
        overrun: read_f64(r)?,
    })
}

fn write_prem<W: Write>(w: &mut W, run: &PremRun) -> io::Result<()> {
    write_varint(w, run.intervals as u64)?;
    write_f64(w, run.breakdown.m_work)?;
    write_f64(w, run.breakdown.c_work)?;
    write_f64(w, run.breakdown.idle)?;
    write_f64(w, run.breakdown.sync)?;
    write_f64(w, run.makespan_cycles)?;
    write_f64(w, run.budget_envelope_cycles)?;
    write_f64(w, run.budgets.m_cycles)?;
    write_f64(w, run.budgets.c_cycles)?;
    write_stats(w, &run.llc)?;
    write_f64(w, run.cpmr)?;
    write_varint(w, run.prefetch_hits)?;
    write_varint(w, run.prefetch_misses)?;
    write_varint(w, u64::from(run.max_rounds_used))?;
    write_f64(w, run.budget_violation_cycles)?;
    write_varint(w, run.interval_timings.len() as u64)?;
    for (m, c) in &run.interval_timings {
        write_timing(w, m)?;
        write_timing(w, c)?;
    }
    write_f64(w, run.bus.cycles)?;
    write_f64(w, run.bus.victim_bytes)?;
    write_f64(w, run.bus.corunner_bytes)?;
    write_varint(w, run.polluted_lines)
}

fn read_prem<R: Read>(r: &mut R) -> io::Result<PremRun> {
    let intervals =
        usize::try_from(read_varint(r)?).map_err(|_| bad_data("interval count overflows usize"))?;
    let breakdown = Breakdown {
        m_work: read_f64(r)?,
        c_work: read_f64(r)?,
        idle: read_f64(r)?,
        sync: read_f64(r)?,
    };
    let makespan_cycles = read_f64(r)?;
    let budget_envelope_cycles = read_f64(r)?;
    let budgets = Budgets {
        m_cycles: read_f64(r)?,
        c_cycles: read_f64(r)?,
    };
    let llc = read_stats(r)?;
    let cpmr = read_f64(r)?;
    let prefetch_hits = read_varint(r)?;
    let prefetch_misses = read_varint(r)?;
    let max_rounds_used = u32::try_from(read_varint(r)?)
        .map_err(|_| bad_data("prefetch round count overflows u32"))?;
    let budget_violation_cycles = read_f64(r)?;
    let timings = read_varint(r)?;
    // An interval timing pair is ≥ 48 encoded bytes: a declared count the
    // input cannot possibly back is corruption, not an allocation request.
    if timings > (1 << 32) {
        return Err(bad_data("unreasonable interval-timing count"));
    }
    let mut interval_timings = Vec::with_capacity(timings as usize);
    for _ in 0..timings {
        interval_timings.push((read_timing(r)?, read_timing(r)?));
    }
    let bus = BusWindow {
        cycles: read_f64(r)?,
        victim_bytes: read_f64(r)?,
        corunner_bytes: read_f64(r)?,
    };
    let polluted_lines = read_varint(r)?;
    Ok(PremRun {
        intervals,
        breakdown,
        makespan_cycles,
        budget_envelope_cycles,
        budgets,
        llc,
        cpmr,
        prefetch_hits,
        prefetch_misses,
        max_rounds_used,
        budget_violation_cycles,
        interval_timings,
        bus,
        polluted_lines,
    })
}

impl RunOutput {
    /// Encodes this output into `w` (variant tag, then the fields in
    /// declaration order; see the [module docs](self) for the encoding
    /// rules).
    ///
    /// # Errors
    ///
    /// Any I/O error from the underlying writer.
    pub fn encode_into<W: Write>(&self, w: &mut W) -> io::Result<()> {
        match self {
            RunOutput::Prem(run) => {
                w.write_all(&[TAG_PREM])?;
                write_prem(w, run)
            }
            RunOutput::Baseline(run) => {
                w.write_all(&[TAG_BASELINE])?;
                write_f64(w, run.cycles)?;
                write_stats(w, &run.llc)
            }
        }
    }

    /// Encodes this output into a byte vector.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out)
            .expect("writing to a Vec cannot fail");
        out
    }

    /// Decodes one output from `r`.
    ///
    /// # Errors
    ///
    /// [`InvalidData`](io::ErrorKind::InvalidData) on an unknown variant
    /// tag or malformed varint,
    /// [`UnexpectedEof`](io::ErrorKind::UnexpectedEof) on truncation, or
    /// any I/O error from the reader.
    pub fn decode_from<R: Read>(r: &mut R) -> io::Result<RunOutput> {
        match read_u8(r)? {
            TAG_PREM => Ok(RunOutput::Prem(read_prem(r)?)),
            TAG_BASELINE => Ok(RunOutput::Baseline(BaselineRun {
                cycles: read_f64(r)?,
                llc: read_stats(r)?,
            })),
            _ => Err(bad_data("unknown run-output variant tag")),
        }
    }

    /// Decodes one output from a byte slice, requiring the slice to be
    /// consumed exactly.
    ///
    /// # Errors
    ///
    /// As for [`RunOutput::decode_from`], plus
    /// [`InvalidData`](io::ErrorKind::InvalidData) when trailing bytes
    /// follow the encoded output.
    pub fn decode(bytes: &[u8]) -> io::Result<RunOutput> {
        let mut r = bytes;
        let out = RunOutput::decode_from(&mut r)?;
        if !r.is_empty() {
            return Err(bad_data("trailing bytes after run output"));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::CAccess;
    use crate::plan::execute_run;
    use crate::RunWork;
    use prem_gpusim::{PlatformConfig, Scenario};
    use prem_memsim::LineAddr;

    fn sample(work: RunWork) -> RunOutput {
        let intervals: Vec<_> = (0..4)
            .map(|i| {
                let lines: Vec<_> = (0..64u64).map(|j| LineAddr::new(i * 64 + j)).collect();
                let accesses = lines.iter().map(|&l| CAccess::read(l)).collect();
                crate::IntervalSpec::new(lines, accesses, 128)
            })
            .collect();
        execute_run(
            &PlatformConfig::tx1(),
            &intervals,
            work,
            7,
            Scenario::Interference,
            crate::NoiseModel::tx1(),
        )
        .expect("sample run")
    }

    #[test]
    fn executed_outputs_roundtrip_bit_exactly() {
        for work in [
            RunWork::PremLlc { r: 8 },
            RunWork::PremSpm,
            RunWork::Baseline,
        ] {
            let out = sample(work);
            let bytes = out.encode();
            let back = RunOutput::decode(&bytes).expect("decode");
            assert_eq!(back, out, "decode(encode(x)) != x for {work:?}");
            assert_eq!(back.encode(), bytes, "re-encode is not canonical");
        }
    }

    #[test]
    fn nonfinite_cycles_survive_the_bit_encoding() {
        let out = RunOutput::Baseline(BaselineRun {
            cycles: f64::INFINITY,
            llc: CacheStats::default(),
        });
        let back = RunOutput::decode(&out.encode()).expect("decode");
        assert_eq!(
            back.baseline().cycles.to_bits(),
            f64::INFINITY.to_bits(),
            "f64 payloads must round-trip by bit pattern"
        );
    }

    #[test]
    fn truncation_is_a_hard_error() {
        let bytes = sample(RunWork::PremLlc { r: 1 }).encode();
        for cut in [1, bytes.len() / 2, bytes.len() - 1] {
            let err = RunOutput::decode(&bytes[..cut]).expect_err("truncated");
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut at {cut}");
        }
    }

    #[test]
    fn unknown_tag_and_trailing_bytes_are_rejected() {
        let mut bytes = sample(RunWork::Baseline).encode();
        bytes[0] = 0x7e;
        assert_eq!(
            RunOutput::decode(&bytes).expect_err("bad tag").kind(),
            io::ErrorKind::InvalidData
        );
        let mut bytes = sample(RunWork::Baseline).encode();
        bytes.push(0);
        assert_eq!(
            RunOutput::decode(&bytes).expect_err("trailing").kind(),
            io::ErrorKind::InvalidData
        );
    }
}
