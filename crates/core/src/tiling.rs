//! Tiling legality checks and sizing helpers.
//!
//! Kernels produce their own tilings (they know their iteration spaces);
//! this module provides the *checks* PREM correctness rests on:
//! every compute access must be covered by the interval's staged footprint,
//! and the footprint must respect the interval size `T`.

use std::collections::HashSet;
use std::error::Error;
use std::fmt;

use crate::interval::IntervalSpec;

/// A violation of the PREM tiling contract.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TilingError {
    /// A compute access touches a line missing from the footprint.
    UncoveredAccess {
        /// Index of the offending interval.
        interval: usize,
        /// The uncovered line (raw line number).
        line: u64,
    },
    /// An interval's footprint exceeds the requested interval size.
    FootprintTooLarge {
        /// Index of the offending interval.
        interval: usize,
        /// Footprint in bytes.
        footprint_bytes: usize,
        /// The interval-size limit `T` in bytes.
        t_bytes: usize,
    },
    /// The footprint lists the same line twice (would distort staging cost).
    DuplicateFootprintLine {
        /// Index of the offending interval.
        interval: usize,
        /// The duplicated line (raw line number).
        line: u64,
    },
}

impl fmt::Display for TilingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TilingError::UncoveredAccess { interval, line } => write!(
                f,
                "interval {interval}: compute access to line {line:#x} not covered by the m-phase footprint"
            ),
            TilingError::FootprintTooLarge {
                interval,
                footprint_bytes,
                t_bytes,
            } => write!(
                f,
                "interval {interval}: footprint {footprint_bytes} B exceeds interval size {t_bytes} B"
            ),
            TilingError::DuplicateFootprintLine { interval, line } => write!(
                f,
                "interval {interval}: footprint lists line {line:#x} twice"
            ),
        }
    }
}

impl Error for TilingError {}

/// Checks the PREM contract over a tiled kernel.
///
/// # Errors
///
/// The first [`TilingError`] found, scanning intervals in order.
pub fn check_tiling(
    intervals: &[IntervalSpec],
    t_bytes: usize,
    line_bytes: usize,
) -> Result<(), TilingError> {
    for (i, iv) in intervals.iter().enumerate() {
        let mut seen = HashSet::with_capacity(iv.footprint.len());
        for &line in &iv.footprint {
            if !seen.insert(line) {
                return Err(TilingError::DuplicateFootprintLine {
                    interval: i,
                    line: line.raw(),
                });
            }
        }
        let fp = iv.footprint_bytes(line_bytes);
        if fp > t_bytes {
            return Err(TilingError::FootprintTooLarge {
                interval: i,
                footprint_bytes: fp,
                t_bytes,
            });
        }
        for a in &iv.c_accesses {
            if !seen.contains(&a.line) {
                return Err(TilingError::UncoveredAccess {
                    interval: i,
                    line: a.line.raw(),
                });
            }
        }
    }
    Ok(())
}

/// How many rows fit in an interval of `t_bytes` when each row adds
/// `bytes_per_row` to the footprint on top of `fixed_bytes` of
/// interval-invariant data. At least one row is always returned.
pub fn rows_per_interval(t_bytes: usize, fixed_bytes: usize, bytes_per_row: usize) -> usize {
    if bytes_per_row == 0 {
        return usize::MAX;
    }
    t_bytes.saturating_sub(fixed_bytes) / bytes_per_row.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::CAccess;
    use prem_memsim::LineAddr;

    fn l(n: u64) -> LineAddr {
        LineAddr::new(n)
    }

    #[test]
    fn valid_tiling_passes() {
        let iv = IntervalSpec::new(vec![l(0), l(1)], vec![CAccess::read(l(1))], 0);
        assert!(check_tiling(&[iv], 1024, 128).is_ok());
    }

    #[test]
    fn uncovered_access_detected() {
        let iv = IntervalSpec::new(vec![l(0)], vec![CAccess::read(l(9))], 0);
        assert_eq!(
            check_tiling(&[iv], 1024, 128),
            Err(TilingError::UncoveredAccess {
                interval: 0,
                line: 9
            })
        );
    }

    #[test]
    fn oversized_footprint_detected() {
        let iv = IntervalSpec::new(vec![l(0), l(1), l(2)], vec![], 0);
        assert_eq!(
            check_tiling(&[iv], 256, 128),
            Err(TilingError::FootprintTooLarge {
                interval: 0,
                footprint_bytes: 384,
                t_bytes: 256
            })
        );
    }

    #[test]
    fn duplicate_footprint_detected() {
        let iv = IntervalSpec::new(vec![l(3), l(3)], vec![], 0);
        assert!(matches!(
            check_tiling(&[iv], 1024, 128),
            Err(TilingError::DuplicateFootprintLine { line: 3, .. })
        ));
    }

    #[test]
    fn rows_per_interval_math() {
        // 160 KiB interval, 8 KiB fixed, 4 KiB per row -> 38 rows.
        assert_eq!(rows_per_interval(160 * 1024, 8 * 1024, 4 * 1024), 38);
        assert_eq!(rows_per_interval(1024, 2048, 128), 0);
        assert_eq!(rows_per_interval(1024, 0, 0), usize::MAX);
    }
}
