//! CPU/GPU synchronization protocol model.
//!
//! On the TX1 the DRAM token is exchanged between CPU and GPU by software
//! (GPUguard-style): a watchdog timer expires at the end of a budgeted
//! phase, an interrupt fires, and the handler performs the token exchange
//! (paper Fig 1 (a)–(b)). Two costs follow:
//!
//! * a fixed **synchronization cost** per phase switch (interrupt latency +
//!   handler execution);
//! * a **minimum synchronization granularity (MSG)** (Fig 1 (c)): phases
//!   shorter than the MSG cannot release the token early — the device idles
//!   until the watchdog fires (Fig 1 (d)).

/// Synchronization timing parameters, in microseconds (device independent;
/// converted to cycles at the platform clock).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SyncConfig {
    /// Minimum synchronization granularity: the smallest admissible phase
    /// budget.
    pub msg_us: f64,
    /// Interrupt delivery latency.
    pub irq_latency_us: f64,
    /// Interrupt handler (token exchange) execution time.
    pub handler_us: f64,
}

impl SyncConfig {
    /// TX1-like defaults: 40 µs MSG, 3 µs interrupt latency, 2 µs handler.
    pub fn tx1() -> Self {
        SyncConfig {
            msg_us: 40.0,
            irq_latency_us: 3.0,
            handler_us: 2.0,
        }
    }

    /// A hypothetical faster synchronization fabric (ablation).
    pub fn fast(msg_us: f64) -> Self {
        SyncConfig {
            msg_us,
            irq_latency_us: 1.0,
            handler_us: 0.5,
        }
    }

    /// Cost of one phase switch (one token exchange), µs.
    pub fn switch_cost_us(&self) -> f64 {
        self.irq_latency_us + self.handler_us
    }
}

/// Timing of one executed phase inside its budgeted slot.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct PhaseTiming {
    /// Useful work performed (cycles).
    pub work: f64,
    /// Idle padding up to the budget (cycles); zero when the phase overran.
    pub idle: f64,
    /// Budget overrun beyond the slot (cycles); extends the schedule.
    pub overrun: f64,
}

impl PhaseTiming {
    /// Places `work` cycles into a slot of `budget` cycles.
    pub fn in_slot(work: f64, budget: f64) -> Self {
        if work <= budget {
            PhaseTiming {
                work,
                idle: budget - work,
                overrun: 0.0,
            }
        } else {
            PhaseTiming {
                work,
                idle: 0.0,
                overrun: work - budget,
            }
        }
    }

    /// Wall-clock length of the slot actually consumed.
    pub fn elapsed(&self) -> f64 {
        self.work + self.idle
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_phase_idles_to_budget() {
        let t = PhaseTiming::in_slot(10.0, 50.0);
        assert_eq!(t.idle, 40.0);
        assert_eq!(t.overrun, 0.0);
        assert_eq!(t.elapsed(), 50.0);
    }

    #[test]
    fn overrun_extends_schedule() {
        let t = PhaseTiming::in_slot(70.0, 50.0);
        assert_eq!(t.idle, 0.0);
        assert_eq!(t.overrun, 20.0);
        assert_eq!(t.elapsed(), 70.0);
    }

    #[test]
    fn exact_fit_has_no_padding() {
        let t = PhaseTiming::in_slot(50.0, 50.0);
        assert_eq!(t.idle, 0.0);
        assert_eq!(t.overrun, 0.0);
    }

    #[test]
    fn switch_cost_sums_components() {
        let s = SyncConfig::tx1();
        assert_eq!(s.switch_cost_us(), 5.0);
    }
}
